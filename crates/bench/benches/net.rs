//! Round-trip overhead of the TCP admission front-end.
//!
//! `net/echo_admission` measures one request/response round trip over a
//! warm loopback connection whose request is already in the result
//! cache — so the analysis cost is out of the picture and the number is
//! the front-end's own overhead: framing, the event loop, the
//! dispatcher hop, response rendering, and two loopback socket
//! traversals.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use rbs_bench::harness::Runner;
use rbs_net::{NetConfig, Server};
use rbs_svc::{Service, ServiceConfig, WorkerPool};

/// The Table 1 style one-task set used as the echo payload.
const REQUEST: &str = concat!(
    "[{\"name\":\"w\",\"criticality\":\"Lo\",",
    "\"lo\":{\"period\":{\"num\":5,\"den\":1},",
    "\"deadline\":{\"num\":5,\"den\":1},",
    "\"wcet\":{\"num\":1,\"den\":1}},",
    "\"hi\":{\"Continue\":{\"period\":{\"num\":5,\"den\":1},",
    "\"deadline\":{\"num\":5,\"den\":1},",
    "\"wcet\":{\"num\":1,\"den\":1}}}}]\n"
);

fn main() {
    let runner = Runner::new("net");

    let service = Service::with_config(WorkerPool::new(2), ServiceConfig::default());
    let server = Server::bind("127.0.0.1:0", service, NetConfig::default(), |_| {}).expect("binds");
    let mut stream = TcpStream::connect(server.addr()).expect("connects");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clones"));
    let mut line = String::new();

    // Warm the cache (and the connection) with one full round trip.
    stream.write_all(REQUEST.as_bytes()).expect("sends");
    reader.read_line(&mut line).expect("receives");
    assert!(line.contains("\"report\":"), "{line}");

    runner.bench("net/echo_admission", || {
        stream.write_all(REQUEST.as_bytes()).expect("sends");
        line.clear();
        reader.read_line(&mut line).expect("receives");
        line.len()
    });

    drop(stream);
    drop(reader);
    server.shutdown().expect("drains");
    runner.finish();
}
