//! Campaign-scale fleet partitioning: delta-backed vs fresh-per-probe.
//!
//! `first_fit_delta` vs `first_fit_fresh` is the tentpole comparison —
//! identical decisions (pinned by `tests/partition_differential.rs`),
//! but the delta engine answers each placement attempt against the
//! candidate core's resident profiles (O(1) admit/evict splices) where
//! the fresh engine rebuilds the core's three demand profiles from
//! scratch on every probe. `worst_fit_budget` exercises the
//! speedup-aware path: every probe sizes the candidate core exactly
//! (Theorem 2 `s_min`) under a shared overclock budget.

use rbs_bench::fleet_set;
use rbs_bench::harness::Runner;
use rbs_core::AnalysisLimits;
use rbs_partition::{
    partition_with_engine, Engine, Heuristic, Objective, PartitionSpec, PlatformCap,
};
use rbs_pool::WorkerPool;
use rbs_timebase::Rational;

fn main() {
    let runner = Runner::new("partition");
    let limits = AnalysisLimits::default();
    let pool = WorkerPool::with_available_parallelism();

    for size in [256usize, 4096] {
        let set = fleet_set(size, 0xf1ee7 + size as u64);
        // The fleet packs ~60 tasks per core, so first-fit drives every
        // core close to full and late placements probe (and screen) many
        // nearly-full candidates — the campaign-scale steady state. The
        // divisor leaves ~1.5x headroom over the cores first-fit uses.
        let cores = (set.len() / 40).max(2);
        let cap = PlatformCap::new(cores, Rational::TWO);

        let first_fit = PartitionSpec::new(cap, Heuristic::FirstFit);
        for (engine, tag) in [(Engine::Delta, "delta"), (Engine::Fresh, "fresh")] {
            runner.bench(&format!("partition/first_fit_{tag}/{size}"), || {
                let outcome = partition_with_engine(&set, &first_fit, engine, &pool, &limits)
                    .expect("partitioning completes");
                assert!(outcome.is_fit(), "fixture must fit its fleet");
                outcome.probes()
            });
        }

        // An average budget of 1.25x per core binds without starving.
        let budget = Rational::new(5 * cores as i128, 4);
        let worst_fit = PartitionSpec::new(cap, Heuristic::WorstFit)
            .with_objective(Objective::SharedBudget(budget));
        runner.bench(&format!("partition/worst_fit_budget/{size}"), || {
            let outcome = partition_with_engine(&set, &worst_fit, Engine::Delta, &pool, &limits)
                .expect("partitioning completes");
            outcome.probes()
        });
    }

    runner.finish();
}
