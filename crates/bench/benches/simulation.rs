//! Simulator throughput benchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rbs_bench::{synthetic_set, table1};
use rbs_gen::fms;
use rbs_sim::{ExecutionScenario, Simulation};
use rbs_timebase::Rational;
use std::hint::black_box;

fn bench_table1_scenarios(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_table1");
    for (name, scenario) in [
        ("no_overrun", ExecutionScenario::LoWcet),
        ("sustained_overrun", ExecutionScenario::HiWcet),
        (
            "random_overrun",
            ExecutionScenario::RandomOverrun {
                probability: 0.3,
                seed: 9,
            },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                Simulation::new(black_box(table1()))
                    .speedup(Rational::TWO)
                    .horizon(Rational::integer(1_000))
                    .execution(scenario.clone())
                    .run()
                    .expect("runs")
            });
        });
    }
    group.finish();
}

fn bench_synthetic_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_synthetic");
    for size in [5usize, 10, 20] {
        let set = synthetic_set(size, 50);
        group.bench_with_input(BenchmarkId::new("tasks", size), &set, |b, set| {
            b.iter(|| {
                Simulation::new(set.clone())
                    .speedup(Rational::TWO)
                    .horizon(Rational::integer(2_000))
                    .execution(ExecutionScenario::RandomOverrun {
                        probability: 0.3,
                        seed: 5,
                    })
                    .run()
                    .expect("runs")
            });
        });
    }
    group.finish();
}

fn bench_fms_flight(c: &mut Criterion) {
    let specs = fms::specs(Rational::TWO);
    let x = rbs_core::lo_mode::minimal_x_density(&specs).expect("feasible");
    let factors = rbs_model::ScalingFactors::new(x, Rational::TWO).expect("valid");
    let set = rbs_model::scaled_task_set(&specs, factors).expect("valid");
    c.bench_function("sim_fms_60s_flight", |b| {
        b.iter(|| {
            Simulation::new(set.clone())
                .speedup(Rational::TWO)
                .horizon(Rational::integer(60_000))
                .execution(ExecutionScenario::RandomOverrun {
                    probability: 0.05,
                    seed: 1,
                })
                .run()
                .expect("runs")
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table1_scenarios, bench_synthetic_sizes, bench_fms_flight
}
criterion_main!(benches);
