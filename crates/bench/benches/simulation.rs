//! Simulator throughput benchmarks.

use rbs_bench::harness::Runner;
use rbs_bench::{synthetic_set, table1};
use rbs_gen::fms;
use rbs_sim::{ExecutionScenario, Simulation};
use rbs_timebase::Rational;
use std::hint::black_box;

fn main() {
    let runner = Runner::new("simulation");

    for (name, scenario) in [
        ("no_overrun", ExecutionScenario::LoWcet),
        ("sustained_overrun", ExecutionScenario::HiWcet),
        (
            "random_overrun",
            ExecutionScenario::RandomOverrun {
                probability: 0.3,
                seed: 9,
            },
        ),
    ] {
        runner.bench(&format!("sim_table1/{name}"), || {
            Simulation::new(black_box(table1()))
                .speedup(Rational::TWO)
                .horizon(Rational::integer(1_000))
                .execution(scenario.clone())
                .run()
                .expect("runs")
        });
    }

    for size in [5usize, 10, 20] {
        let set = synthetic_set(size, 50);
        runner.bench(&format!("sim_synthetic/tasks/{size}"), || {
            Simulation::new(set.clone())
                .speedup(Rational::TWO)
                .horizon(Rational::integer(2_000))
                .execution(ExecutionScenario::RandomOverrun {
                    probability: 0.3,
                    seed: 5,
                })
                .run()
                .expect("runs")
        });
    }

    let specs = fms::specs(Rational::TWO);
    let x = rbs_core::lo_mode::minimal_x_density(&specs).expect("feasible");
    let factors = rbs_model::ScalingFactors::new(x, Rational::TWO).expect("valid");
    let set = rbs_model::scaled_task_set(&specs, factors).expect("valid");
    runner.bench("sim_fms_60s_flight", || {
        Simulation::new(set.clone())
            .speedup(Rational::TWO)
            .horizon(Rational::integer(60_000))
            .execution(ExecutionScenario::RandomOverrun {
                probability: 0.05,
                seed: 1,
            })
            .run()
            .expect("runs")
    });

    runner.finish();
}
