//! Micro-benchmarks of the exact analyses.

use rbs_bench::harness::Runner;
use rbs_bench::{synthetic_set, synthetic_specs, table1};
use rbs_core::adb::hi_arrival_profile;
use rbs_core::dbf::{hi_profile, total_dbf_hi};
use rbs_core::demand::sup_ratio_many;
use rbs_core::lo_mode::{is_lo_schedulable, minimal_feasible_x, minimal_x_density};
use rbs_core::resetting::resetting_time;
use rbs_core::speedup::minimum_speedup;
use rbs_core::tuning::minimal_speed_within_budget;
use rbs_core::{Analysis, AnalysisLimits, DeltaAnalysis, DeltaOp, SweepAnalysis, SweepMode};
use rbs_gen::fms;
use rbs_gen::synth::SynthConfig;
use rbs_model::{Criticality, Task, TaskSet};
use rbs_rng::Rng;
use rbs_timebase::Rational;
use std::collections::VecDeque;
use std::hint::black_box;

/// A small-utilization fleet candidate drawn from a harmonic period
/// menu (all periods divide 4800, as in avionics-style rate groups), so
/// the resident timebase never shifts and exact rate sums stay
/// representable at any fleet size — the same construction as
/// `examples/online_monitor.rs --fleet`.
fn fleet_candidate(rng: &mut Rng, id: usize) -> Task {
    const PERIOD_MENU: [i128; 10] = [200, 240, 320, 400, 480, 600, 800, 960, 1200, 1600];
    let period = Rational::integer(PERIOD_MENU[rng.gen_range_usize(0, PERIOD_MENU.len() - 1)]);
    let wcet = Rational::integer(rng.gen_range_i128(1, 3));
    if rng.gen_bool(0.4) {
        Task::builder(format!("hi{id}"), Criticality::Hi)
            .period(period)
            .deadline_lo(period * Rational::new(1, 2))
            .deadline_hi(period)
            .wcet_lo(wcet)
            .wcet_hi(wcet * Rational::TWO)
            .build()
            .expect("candidate parameters satisfy eq. (1)")
    } else {
        Task::builder(format!("lo{id}"), Criticality::Lo)
            .period(period)
            .deadline(period)
            .wcet(wcet)
            .build()
            .expect("candidate parameters satisfy eq. (2)")
    }
}

/// A `fleet_candidate` variant whose LO tasks are terminated at the
/// mode switch (eq. (3)): they carry no `ADB_HI` component, so churning
/// them never touches the arrival profile — the workload the frontier
/// repair is built for.
fn frontier_candidate(rng: &mut Rng, id: usize) -> Task {
    let task = fleet_candidate(rng, id);
    if task.criticality() == Criticality::Hi {
        return task;
    }
    terminated_candidate(rng, id)
}

/// A HI-terminated LO candidate from the same menu (the churned share
/// of the `churn_frontier` fleet).
fn terminated_candidate(rng: &mut Rng, id: usize) -> Task {
    const PERIOD_MENU: [i128; 10] = [200, 240, 320, 400, 480, 600, 800, 960, 1200, 1600];
    let period = Rational::integer(PERIOD_MENU[rng.gen_range_usize(0, PERIOD_MENU.len() - 1)]);
    let wcet = Rational::integer(rng.gen_range_i128(1, 3));
    Task::builder(format!("stop{id}"), Criticality::Lo)
        .period(period)
        .deadline(period)
        .wcet(wcet)
        .terminated()
        .build()
        .expect("candidate parameters satisfy eq. (3)")
}

fn main() {
    let runner = Runner::new("analysis");
    let limits = AnalysisLimits::default();

    let set = table1();
    runner.bench("minimum_speedup/table1", || {
        minimum_speedup(black_box(&set), &limits).expect("completes")
    });
    for size in [5usize, 10, 20, 40] {
        let set = synthetic_set(size, 42);
        runner.bench(&format!("minimum_speedup/synthetic/{size}"), || {
            minimum_speedup(black_box(&set), &limits).expect("completes")
        });
    }

    for size in [10usize, 20, 40] {
        let set = synthetic_set(size, 42);
        let profile = hi_profile(&set);
        runner.bench(&format!("sup_ratio/hi_profile/{size}"), || {
            black_box(&profile).sup_ratio(&limits).expect("completes")
        });
        // The pruned exact rational walk on the same profile — the
        // dispatch/pruned pair quantifies the integer fast path's gain.
        runner.bench(&format!("sup_ratio_pruned/hi_profile/{size}"), || {
            black_box(&profile)
                .sup_ratio_exact(&limits)
                .expect("completes")
        });
        // The unpruned full-hyperperiod reference walk — the pruned/exact
        // pair quantifies the utilization-envelope horizon's gain.
        runner.bench(&format!("sup_ratio_exact/hi_profile/{size}"), || {
            black_box(&profile)
                .sup_ratio_reference(&limits)
                .expect("completes")
        });
        // The same walk through the batched SoA driver with a single
        // machine — soa/dispatch quantifies the lockstep driver's
        // overhead on top of the raw kernel walk (should be ~nil).
        runner.bench(&format!("sup_ratio_soa/hi_profile/{size}"), || {
            sup_ratio_many(black_box(&[&profile]), &limits)
                .pop()
                .expect("one slot")
                .expect("completes")
        });
    }

    // Fleet sizing in one call: N cores' HI profiles walked in chunked
    // lockstep (the `crates/partition` speedup-bound pass) vs N separate
    // kernel walks.
    for fleet in [64usize, 256] {
        let sets: Vec<_> = (0..fleet)
            .map(|core| synthetic_set(8, 100 + core as u64))
            .collect();
        let profiles: Vec<_> = sets.iter().map(hi_profile).collect();
        let refs: Vec<&_> = profiles.iter().collect();
        runner.bench(&format!("walk_many/fleet/{fleet}"), || {
            for result in sup_ratio_many(black_box(&refs), &limits) {
                result.expect("completes");
            }
        });
    }

    for size in [10usize, 20] {
        let set = synthetic_set(size, 43);
        let profile = hi_arrival_profile(&set);
        let speed = Rational::integer(3);
        runner.bench(&format!("first_fit/adb_s3/{size}"), || {
            black_box(&profile)
                .first_fit(speed, &limits)
                .expect("completes")
        });
        runner.bench(&format!("first_fit_exact/adb_s3/{size}"), || {
            black_box(&profile)
                .first_fit_exact(speed, &limits)
                .expect("completes")
        });
    }

    let set = table1();
    runner.bench("resetting_time/table1_s2", || {
        resetting_time(black_box(&set), Rational::TWO, &limits).expect("completes")
    });
    for size in [5usize, 10, 20, 40] {
        let set = synthetic_set(size, 43);
        runner.bench(&format!("resetting_time/synthetic_s3/{size}"), || {
            resetting_time(black_box(&set), Rational::integer(3), &limits).expect("completes")
        });
    }

    // The one-pass reset frontier: build cost, and a whole speed sweep
    // answered from one frontier (vs one breakpoint walk per speed).
    for size in [10usize, 20] {
        let set = synthetic_set(size, 43);
        let profile = hi_arrival_profile(&set);
        let min_speed = Rational::TWO;
        runner.bench(&format!("reset_frontier/build_s2/{size}"), || {
            black_box(&profile)
                .reset_frontier(min_speed, &limits)
                .expect("completes")
        });
        let (frontier, _) = profile
            .reset_frontier(min_speed, &limits)
            .expect("completes");
        runner.bench(&format!("reset_frontier/lookup_sweep/{size}"), || {
            let mut fits = 0usize;
            for num in 8..40 {
                if black_box(&frontier).lookup(Rational::new(num, 4)).is_some() {
                    fits += 1;
                }
            }
            fits
        });
    }

    let set = synthetic_set(20, 44);
    runner.bench("demand_eval/point_formula_200_samples", || {
        let mut acc = Rational::ZERO;
        for i in 1..=200 {
            acc += total_dbf_hi(black_box(&set), Rational::integer(i));
        }
        acc
    });
    runner.bench("demand_eval/build_hi_profile", || {
        hi_profile(black_box(&set))
    });
    runner.bench("demand_eval/build_adb_profile", || {
        hi_arrival_profile(black_box(&set))
    });

    let set = synthetic_set(20, 45);
    runner.bench("lo_mode/exact_schedulability_20_tasks", || {
        is_lo_schedulable(black_box(&set), &limits).expect("completes")
    });
    let specs = SynthConfig::new(Rational::new(7, 10))
        .period_range_ms(5, 100)
        .generate(46);
    runner.bench("lo_mode/minimal_x_density", || {
        minimal_x_density(black_box(&specs))
    });

    let tolerance = Rational::new(1, 64);
    let set = table1();
    runner.bench("tuning/minimal_speed_within_budget/table1", || {
        minimal_speed_within_budget(
            black_box(&set),
            Rational::integer(10),
            Rational::integer(4),
            tolerance,
            &limits,
        )
        .expect("completes")
    });
    for size in [10usize, 20] {
        let set = synthetic_set(size, 47);
        runner.bench(
            &format!("tuning/minimal_speed_within_budget/synthetic/{size}"),
            || {
                minimal_speed_within_budget(
                    black_box(&set),
                    Rational::integer(200),
                    Rational::integer(4),
                    tolerance,
                    &limits,
                )
                .expect("completes")
            },
        );
    }

    // The incremental sweep engine's per-`y` step: patch the LO-task
    // components in place and answer `s_min` — what a campaign pays per
    // grid row after the one-off construction, vs a full fresh context.
    for size in [10usize, 40] {
        let specs = synthetic_specs(size, 48);
        let x = minimal_feasible_x(&specs).expect("feasible by construction");
        let ys = [Rational::ONE, Rational::new(3, 2), Rational::TWO];
        let mut sweep = SweepAnalysis::new(&specs, x, &ys, SweepMode::Degraded, &limits);
        let mut turn = 0usize;
        runner.bench(&format!("sweep/rescale_lo/{size}"), || {
            turn += 1;
            sweep.rescale_lo(ys[turn % ys.len()]);
            sweep.minimum_speedup().expect("completes")
        });
    }

    // Incremental delta-admission on a resident fleet vs fresh
    // re-analysis of the same set: `admit_one` is one admission decision
    // (admit + s_min + evict back), `churn_fleet` one steady-state
    // replacement (a batched evict + admit, then s_min), and
    // `fresh_fleet` the from-scratch analysis both are measured against
    // — the churn case is required to stay at least 5x below it at this
    // fleet size.
    {
        let fleet = 256usize;
        let mut rng = Rng::seed_from_u64(2015);
        let mut delta = DeltaAnalysis::new(TaskSet::empty(), &limits);
        let mut residents = VecDeque::with_capacity(fleet);
        for id in 0..fleet {
            let task = fleet_candidate(&mut rng, id);
            residents.push_back(task.name().to_owned());
            delta.admit(task).expect("admits");
        }
        delta.minimum_speedup().expect("completes");
        let mut next_id = fleet;
        runner.bench(&format!("delta/admit_one/{fleet}"), || {
            let task = fleet_candidate(&mut rng, next_id);
            let name = task.name().to_owned();
            next_id += 1;
            delta.admit(task).expect("admits");
            let s_min = delta.minimum_speedup().expect("completes");
            delta.evict(&name).expect("evicts");
            s_min
        });
        runner.bench(&format!("delta/churn_fleet/{fleet}"), || {
            let victim = residents.pop_front().expect("resident fleet");
            let task = fleet_candidate(&mut rng, next_id);
            next_id += 1;
            residents.push_back(task.name().to_owned());
            delta
                .apply_batch(vec![DeltaOp::Evict(victim), DeltaOp::Admit(task)])
                .expect("applies");
            delta.minimum_speedup().expect("completes")
        });
        runner.bench(&format!("delta/fresh_fleet/{fleet}"), || {
            let set = delta.set().clone();
            let fresh = Analysis::new(&set, &limits);
            fresh.minimum_speedup().expect("completes")
        });
    }

    // Batched multi-op splices: one composite 8-op churn burst against
    // the single replace it collapses to. The burst carries two
    // transient admit/evict pairs (cancelled during simulation, before
    // any profile work) and a four-link replace chain on one resident
    // (collapsed to the chain's last task), so the batch performs one
    // effective splice — one aux adjustment, one certificate check, one
    // frontier repair — and must land under 3x the single op, not 8x.
    for fleet in [256usize, 4096] {
        let mut rng = Rng::seed_from_u64(2015);
        let mut delta = DeltaAnalysis::new(TaskSet::empty(), &limits);
        let mut residents = VecDeque::with_capacity(fleet);
        for id in 0..fleet {
            let task = fleet_candidate(&mut rng, id);
            residents.push_back(task.name().to_owned());
            delta.admit(task).expect("admits");
        }
        let mut next_id = fleet;
        runner.bench(&format!("delta/single_op/{fleet}"), || {
            let victim = residents.pop_front().expect("resident fleet");
            let task = fleet_candidate(&mut rng, next_id);
            next_id += 1;
            residents.push_back(task.name().to_owned());
            delta.replace(&victim, task).expect("replaces")
        });
        runner.bench(&format!("delta/batched_ops/{fleet}"), || {
            let victim = residents.pop_front().expect("resident fleet");
            let transient_a = fleet_candidate(&mut rng, next_id);
            let transient_b = fleet_candidate(&mut rng, next_id + 1);
            let chain: Vec<Task> = (0..4)
                .map(|link| fleet_candidate(&mut rng, next_id + 2 + link))
                .collect();
            next_id += 6;
            residents.push_back(chain[3].name().to_owned());
            let ops = vec![
                DeltaOp::Admit(transient_a.clone()),
                DeltaOp::Replace {
                    id: victim,
                    task: chain[0].clone(),
                },
                DeltaOp::Admit(transient_b.clone()),
                DeltaOp::Evict(transient_a.name().to_owned()),
                DeltaOp::Replace {
                    id: chain[0].name().to_owned(),
                    task: chain[1].clone(),
                },
                DeltaOp::Replace {
                    id: chain[1].name().to_owned(),
                    task: chain[2].clone(),
                },
                DeltaOp::Evict(transient_b.name().to_owned()),
                DeltaOp::Replace {
                    id: chain[2].name().to_owned(),
                    task: chain[3].clone(),
                },
            ];
            delta.apply_batch(ops).expect("applies")
        });
    }

    // Frontier repair under churn-dominated admission: the churned
    // tasks are HI-terminated (eq. (3)), so every delta leaves the
    // `ADB_HI` profile untouched and the repaired staircase keeps
    // serving `Δ_R` queries without a walk — the resident HI base is
    // what the staircase describes. The pre-repair engine re-walked the
    // arrival profile on every delta here.
    for (fleet, speed) in [(256usize, 4), (4096, 16)] {
        let mut rng = Rng::seed_from_u64(2015);
        let mut delta = DeltaAnalysis::new(TaskSet::empty(), &limits);
        let mut residents = VecDeque::with_capacity(fleet);
        for id in 0..fleet {
            let task = frontier_candidate(&mut rng, id);
            if task.criticality() == Criticality::Lo {
                residents.push_back(task.name().to_owned());
            }
            delta.admit(task).expect("admits");
        }
        let speed = Rational::integer(speed);
        delta.resetting_time(speed).expect("completes");
        let mut next_id = fleet;
        runner.bench(&format!("delta/churn_frontier/{fleet}"), || {
            let victim = residents.pop_front().expect("resident fleet");
            let task = terminated_candidate(&mut rng, next_id);
            next_id += 1;
            residents.push_back(task.name().to_owned());
            delta
                .apply_batch(vec![DeltaOp::Evict(victim), DeltaOp::Admit(task)])
                .expect("applies");
            delta.resetting_time(speed).expect("completes")
        });
    }

    let specs = fms::specs(Rational::TWO);
    runner.bench("fms_full_analysis", || {
        let x = minimal_x_density(black_box(&specs)).expect("feasible");
        let factors = rbs_model::ScalingFactors::new(x, Rational::TWO).expect("valid");
        let set = rbs_model::scaled_task_set(&specs, factors).expect("valid");
        let s = minimum_speedup(&set, &limits).expect("completes");
        let r = resetting_time(&set, Rational::TWO, &limits).expect("completes");
        (s, r)
    });

    runner.finish();
}
