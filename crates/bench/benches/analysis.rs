//! Micro-benchmarks of the exact analyses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rbs_bench::{synthetic_set, table1};
use rbs_core::adb::hi_arrival_profile;
use rbs_core::dbf::{hi_profile, total_dbf_hi};
use rbs_core::lo_mode::{is_lo_schedulable, minimal_x_density};
use rbs_core::resetting::resetting_time;
use rbs_core::speedup::minimum_speedup;
use rbs_core::AnalysisLimits;
use rbs_gen::fms;
use rbs_gen::synth::SynthConfig;
use rbs_timebase::Rational;
use std::hint::black_box;

fn bench_minimum_speedup(c: &mut Criterion) {
    let limits = AnalysisLimits::default();
    let mut group = c.benchmark_group("minimum_speedup");
    group.bench_function("table1", |b| {
        let set = table1();
        b.iter(|| minimum_speedup(black_box(&set), &limits).expect("completes"));
    });
    for size in [5usize, 10, 20, 40] {
        let set = synthetic_set(size, 42);
        group.bench_with_input(BenchmarkId::new("synthetic", size), &set, |b, set| {
            b.iter(|| minimum_speedup(black_box(set), &limits).expect("completes"));
        });
    }
    group.finish();
}

fn bench_resetting_time(c: &mut Criterion) {
    let limits = AnalysisLimits::default();
    let mut group = c.benchmark_group("resetting_time");
    group.bench_function("table1_s2", |b| {
        let set = table1();
        b.iter(|| resetting_time(black_box(&set), Rational::TWO, &limits).expect("completes"));
    });
    for size in [5usize, 10, 20, 40] {
        let set = synthetic_set(size, 43);
        group.bench_with_input(BenchmarkId::new("synthetic_s3", size), &set, |b, set| {
            b.iter(|| {
                resetting_time(black_box(set), Rational::integer(3), &limits)
                    .expect("completes")
            });
        });
    }
    group.finish();
}

fn bench_demand_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("demand_eval");
    let set = synthetic_set(20, 44);
    group.bench_function("point_formula_200_samples", |b| {
        b.iter(|| {
            let mut acc = Rational::ZERO;
            for i in 1..=200 {
                acc += total_dbf_hi(black_box(&set), Rational::integer(i));
            }
            acc
        });
    });
    group.bench_function("build_hi_profile", |b| {
        b.iter(|| hi_profile(black_box(&set)));
    });
    group.bench_function("build_adb_profile", |b| {
        b.iter(|| hi_arrival_profile(black_box(&set)));
    });
    group.finish();
}

fn bench_lo_mode(c: &mut Criterion) {
    let limits = AnalysisLimits::default();
    let mut group = c.benchmark_group("lo_mode");
    let set = synthetic_set(20, 45);
    group.bench_function("exact_schedulability_20_tasks", |b| {
        b.iter(|| is_lo_schedulable(black_box(&set), &limits).expect("completes"));
    });
    let specs = SynthConfig::new(Rational::new(7, 10))
        .period_range_ms(5, 100)
        .generate(46);
    group.bench_function("minimal_x_density", |b| {
        b.iter(|| minimal_x_density(black_box(&specs)));
    });
    group.finish();
}

fn bench_fms_analysis(c: &mut Criterion) {
    let limits = AnalysisLimits::default();
    c.bench_function("fms_full_analysis", |b| {
        let specs = fms::specs(Rational::TWO);
        b.iter(|| {
            let x = minimal_x_density(black_box(&specs)).expect("feasible");
            let factors =
                rbs_model::ScalingFactors::new(x, Rational::TWO).expect("valid");
            let set = rbs_model::scaled_task_set(&specs, factors).expect("valid");
            let s = minimum_speedup(&set, &limits).expect("completes");
            let r = resetting_time(&set, Rational::TWO, &limits).expect("completes");
            (s, r)
        });
    });
}

criterion_group!(
    benches,
    bench_minimum_speedup,
    bench_resetting_time,
    bench_demand_evaluation,
    bench_lo_mode,
    bench_fms_analysis
);
criterion_main!(benches);
