//! One benchmark per paper table/figure (scaled-down regeneration).

use rbs_bench::harness::Runner;
use rbs_experiments::{fig1, fig3, fig4, fig5, fig6, fig7, table1};
use std::hint::black_box;

fn main() {
    let runner = Runner::new("figures");
    runner.bench("table1_examples_1_and_2", || black_box(table1::run()));
    runner.bench("fig1_demand_bound_functions", || black_box(fig1::run()));
    runner.bench("fig3_resetting_time_sweep", || black_box(fig3::run()));
    runner.bench("fig4_closed_form_tradeoffs", || black_box(fig4::run()));
    runner.bench("fig5_fms_contours", || black_box(fig5::run()));

    let config = fig6::Fig6Config {
        sets_per_point: 10,
        seed: 2015,
        jobs: 1,
    };
    runner.bench("fig6_synthetic_campaign_10_sets", || {
        black_box(fig6::run(&config))
    });
    // The same campaign through the worker pool, to expose the speedup on
    // multicore machines (identical output either way).
    let pooled = fig6::Fig6Config { jobs: 0, ..config };
    runner.bench("fig6_synthetic_campaign_10_sets_pooled", || {
        black_box(fig6::run(&pooled))
    });

    // One utilization point end to end (the incremental sweep engine's
    // target): the full (y, s) grid over a reduced set count.
    for sets in [25usize, 50] {
        let config = fig6::Fig6Config {
            sets_per_point: sets,
            seed: 2015,
            jobs: 1,
        };
        runner.bench(&format!("campaign/fig6_point/{sets}"), || {
            black_box(fig6::run_point(rbs_timebase::Rational::new(7, 10), &config))
        });
    }

    let config = fig7::Fig7Config {
        sets_per_point: 6,
        grid_step_twentieths: 5,
        seed: 77,
        jobs: 1,
    };
    runner.bench("fig7_schedulability_region_4x4", || {
        black_box(fig7::run(&config))
    });
    let pooled = fig7::Fig7Config { jobs: 0, ..config };
    runner.bench("fig7_schedulability_region_4x4_pooled", || {
        black_box(fig7::run(&pooled))
    });

    runner.finish();
}
