//! One benchmark per paper table/figure (scaled-down regeneration).

use criterion::{criterion_group, criterion_main, Criterion};
use rbs_experiments::{fig1, fig3, fig4, fig5, fig6, fig7, table1};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_examples_1_and_2", |b| {
        b.iter(|| black_box(table1::run()));
    });
}

fn bench_fig1(c: &mut Criterion) {
    c.bench_function("fig1_demand_bound_functions", |b| {
        b.iter(|| black_box(fig1::run()));
    });
}

fn bench_fig3(c: &mut Criterion) {
    c.bench_function("fig3_resetting_time_sweep", |b| {
        b.iter(|| black_box(fig3::run()));
    });
}

fn bench_fig4(c: &mut Criterion) {
    c.bench_function("fig4_closed_form_tradeoffs", |b| {
        b.iter(|| black_box(fig4::run()));
    });
}

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("fig5_fms_contours", |b| {
        b.iter(|| black_box(fig5::run()));
    });
}

fn bench_fig6(c: &mut Criterion) {
    let config = fig6::Fig6Config {
        sets_per_point: 10,
        seed: 2015,
    };
    c.bench_function("fig6_synthetic_campaign_10_sets", |b| {
        b.iter(|| black_box(fig6::run(&config)));
    });
}

fn bench_fig7(c: &mut Criterion) {
    let config = fig7::Fig7Config {
        sets_per_point: 6,
        grid_step_twentieths: 5,
        seed: 77,
    };
    c.bench_function("fig7_schedulability_region_4x4", |b| {
        b.iter(|| black_box(fig7::run(&config)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table1, bench_fig1, bench_fig3, bench_fig4, bench_fig5,
              bench_fig6, bench_fig7
}
criterion_main!(benches);
