//! Validates `BENCH_<suite>.json` files written by the bench harness.
//!
//! Usage: `bench-check [--baseline BASELINE] FILE...` — exits non-zero
//! (with a message per file) if any file is missing, unparseable, or
//! structurally malformed, so CI can gate on the machine-readable bench
//! output. With `--baseline`, every case name shared with the baseline
//! file is compared by median: a regression beyond 25% fails the check,
//! and improvement ratios are printed for the rest.

use std::process::ExitCode;

use rbs_json::Json;

/// A median regression beyond `median > baseline * 5/4` fails the check.
const REGRESSION_NUM: i128 = 5;
const REGRESSION_DEN: i128 = 4;

fn main() -> ExitCode {
    let mut baseline: Option<String> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--baseline" {
            let Some(path) = args.next() else {
                eprintln!("bench-check: --baseline requires a path");
                return ExitCode::FAILURE;
            };
            baseline = Some(path);
        } else {
            paths.push(arg);
        }
    }
    if paths.is_empty() {
        eprintln!("bench-check: no files given");
        return ExitCode::FAILURE;
    }
    let baseline_medians = match &baseline {
        Some(path) => match medians(path) {
            Ok(map) => Some(map),
            Err(message) => {
                eprintln!("bench-check: baseline {path}: {message}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let mut failed = false;
    for path in &paths {
        match validate(path) {
            Ok(summary) => println!("bench-check: {path}: {summary}"),
            Err(message) => {
                eprintln!("bench-check: {path}: {message}");
                failed = true;
                continue;
            }
        }
        if let Some(reference) = &baseline_medians {
            match compare(path, reference) {
                Ok(report) => print!("{report}"),
                Err(message) => {
                    eprintln!("bench-check: {path}: {message}");
                    failed = true;
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn validate(path: &str) -> Result<String, String> {
    let body = std::fs::read_to_string(path).map_err(|error| format!("unreadable: {error}"))?;
    let json = rbs_json::parse(&body).map_err(|error| format!("invalid JSON: {error}"))?;
    let suite = json
        .get("suite")
        .and_then(Json::as_str)
        .ok_or("missing string field `suite`")?;
    let samples = json
        .get("samples")
        .and_then(Json::as_i128)
        .ok_or("missing integer field `samples`")?;
    if samples <= 0 {
        return Err(format!("non-positive samples count {samples}"));
    }
    let results = json
        .get("results")
        .and_then(Json::as_array)
        .ok_or("missing array field `results`")?;
    if results.is_empty() {
        return Err("empty results array".to_owned());
    }
    for (index, result) in results.iter().enumerate() {
        let name = result
            .get("name")
            .and_then(Json::as_str)
            .ok_or(format!("results[{index}]: missing string field `name`"))?;
        for field in ["iters_per_sample", "min_ns", "median_ns", "mean_ns"] {
            let value = result.get(field).and_then(Json::as_i128).ok_or(format!(
                "results[{index}] ({name}): missing integer field `{field}`"
            ))?;
            if value <= 0 {
                return Err(format!(
                    "results[{index}] ({name}): non-positive `{field}` = {value}"
                ));
            }
        }
        let min = result.get("min_ns").and_then(Json::as_i128).unwrap_or(0);
        let median = result.get("median_ns").and_then(Json::as_i128).unwrap_or(0);
        if median < min {
            return Err(format!("results[{index}] ({name}): median_ns < min_ns"));
        }
    }
    Ok(format!("suite `{suite}` ok, {} results", results.len()))
}

/// Reads a bench file's `(name, median_ns)` pairs in file order.
fn medians(path: &str) -> Result<Vec<(String, i128)>, String> {
    let body = std::fs::read_to_string(path).map_err(|error| format!("unreadable: {error}"))?;
    let json = rbs_json::parse(&body).map_err(|error| format!("invalid JSON: {error}"))?;
    let results = json
        .get("results")
        .and_then(Json::as_array)
        .ok_or("missing array field `results`")?;
    let mut pairs = Vec::with_capacity(results.len());
    for (index, result) in results.iter().enumerate() {
        let name = result
            .get("name")
            .and_then(Json::as_str)
            .ok_or(format!("results[{index}]: missing string field `name`"))?;
        let median = result
            .get("median_ns")
            .and_then(Json::as_i128)
            .ok_or(format!("results[{index}] ({name}): missing `median_ns`"))?;
        pairs.push((name.to_owned(), median));
    }
    Ok(pairs)
}

/// Compares every case name shared with the baseline by median. Fails on
/// any regression beyond the 25% threshold; otherwise returns a report
/// with one `speedup` ratio line per shared case.
fn compare(path: &str, baseline: &[(String, i128)]) -> Result<String, String> {
    let current = medians(path)?;
    let mut report = String::new();
    let mut regressions = Vec::new();
    let mut shared = 0usize;
    for (name, median) in &current {
        let Some((_, reference)) = baseline.iter().find(|(base, _)| base == name) else {
            continue;
        };
        shared += 1;
        let ratio = *reference as f64 / (*median).max(1) as f64;
        report.push_str(&format!(
            "bench-check: {path}: {name}: median {median}ns vs baseline {reference}ns (speedup {ratio:.2}x)\n"
        ));
        if *median * REGRESSION_DEN > *reference * REGRESSION_NUM {
            regressions.push(format!(
                "{name}: median {median}ns exceeds baseline {reference}ns by more than 25%"
            ));
        }
    }
    if shared == 0 {
        return Err("no case names shared with the baseline".to_owned());
    }
    if !regressions.is_empty() {
        return Err(format!(
            "{} median regression(s) beyond 25%:\n  {}",
            regressions.len(),
            regressions.join("\n  ")
        ));
    }
    report.push_str(&format!(
        "bench-check: {path}: {shared} shared case(s) within the 25% regression gate\n"
    ));
    Ok(report)
}
