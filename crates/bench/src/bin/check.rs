//! Validates `BENCH_<suite>.json` files written by the bench harness.
//!
//! Usage: `bench-check FILE...` — exits non-zero (with a message per file)
//! if any file is missing, unparseable, or structurally malformed, so CI
//! can gate on the machine-readable bench output.

use std::process::ExitCode;

use rbs_json::Json;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("bench-check: no files given");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in &paths {
        match validate(path) {
            Ok(summary) => println!("bench-check: {path}: {summary}"),
            Err(message) => {
                eprintln!("bench-check: {path}: {message}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn validate(path: &str) -> Result<String, String> {
    let body = std::fs::read_to_string(path).map_err(|error| format!("unreadable: {error}"))?;
    let json = rbs_json::parse(&body).map_err(|error| format!("invalid JSON: {error}"))?;
    let suite = json
        .get("suite")
        .and_then(Json::as_str)
        .ok_or("missing string field `suite`")?;
    let samples = json
        .get("samples")
        .and_then(Json::as_i128)
        .ok_or("missing integer field `samples`")?;
    if samples <= 0 {
        return Err(format!("non-positive samples count {samples}"));
    }
    let results = json
        .get("results")
        .and_then(Json::as_array)
        .ok_or("missing array field `results`")?;
    if results.is_empty() {
        return Err("empty results array".to_owned());
    }
    for (index, result) in results.iter().enumerate() {
        let name = result
            .get("name")
            .and_then(Json::as_str)
            .ok_or(format!("results[{index}]: missing string field `name`"))?;
        for field in ["iters_per_sample", "min_ns", "median_ns", "mean_ns"] {
            let value = result.get(field).and_then(Json::as_i128).ok_or(format!(
                "results[{index}] ({name}): missing integer field `{field}`"
            ))?;
            if value <= 0 {
                return Err(format!(
                    "results[{index}] ({name}): non-positive `{field}` = {value}"
                ));
            }
        }
        let min = result.get("min_ns").and_then(Json::as_i128).unwrap_or(0);
        let median = result.get("median_ns").and_then(Json::as_i128).unwrap_or(0);
        if median < min {
            return Err(format!("results[{index}] ({name}): median_ns < min_ns"));
        }
    }
    Ok(format!("suite `{suite}` ok, {} results", results.len()))
}
