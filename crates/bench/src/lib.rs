//! Benchmarks for the `run-and-be-safe` workspace.
//!
//! Three suites (run with `cargo bench --workspace`):
//!
//! * `analysis` — micro-benchmarks of the exact analyses (Theorem 2's
//!   `s_min`, Corollary 5's `Δ_R`, demand-curve evaluation, minimal-`x`
//!   tuning) across workload sizes;
//! * `figures` — one benchmark per paper table/figure, regenerating a
//!   scaled-down version of the corresponding experiment;
//! * `simulation` — event-loop throughput of the variable-speed EDF
//!   simulator under sustained and sporadic overruns;
//! * `net` — round-trip overhead of the TCP admission front-end;
//! * `partition` — campaign-scale fleet bin-packing, delta-backed vs
//!   fresh-per-probe.
//!
//! The suites are plain `harness = false` binaries driven by the
//! dependency-free [`harness`] in this crate; shared fixtures live here so
//! the suites stay in sync.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

use rbs_gen::synth::SynthConfig;
use rbs_model::{Criticality, ImplicitTaskSpec, Task, TaskSet};
use rbs_timebase::Rational;

/// The reconstructed Table I task set.
#[must_use]
pub fn table1() -> TaskSet {
    TaskSet::new(vec![
        Task::builder("tau1", Criticality::Hi)
            .period(Rational::integer(5))
            .deadline_lo(Rational::integer(2))
            .deadline_hi(Rational::integer(5))
            .wcet_lo(Rational::integer(1))
            .wcet_hi(Rational::integer(2))
            .build()
            .expect("valid"),
        Task::builder("tau2", Criticality::Lo)
            .period(Rational::integer(10))
            .deadline(Rational::integer(10))
            .wcet(Rational::integer(3))
            .build()
            .expect("valid"),
    ])
}

/// A deterministic synthetic workload of roughly `size` tasks, prepared
/// with minimal `x` and `y = 2`.
#[must_use]
pub fn synthetic_set(size: usize, seed: u64) -> TaskSet {
    // u per task averages ~0.105, so target utilization ≈ size × 0.105.
    let target = Rational::new(21 * size as i128, 200);
    let generator = SynthConfig::new(target).period_range_ms(5, 100);
    let specs = generator.generate(seed);
    prepare_or_shrink(&specs)
}

/// A deterministic synthetic spec list of roughly `size` tasks for which
/// a density-feasible `x` exists (tasks are dropped from the tail until
/// it does) — the campaign-sweep analogue of [`synthetic_set`].
#[must_use]
pub fn synthetic_specs(size: usize, seed: u64) -> Vec<ImplicitTaskSpec> {
    let target = Rational::new(21 * size as i128, 200);
    let generator = SynthConfig::new(target).period_range_ms(5, 100);
    let mut specs = generator.generate(seed);
    while rbs_core::lo_mode::minimal_x_density(&specs).is_none() {
        specs.pop();
        assert!(!specs.is_empty(), "fixture became empty");
    }
    specs
}

/// A deterministic fleet-scale workload: `size` uniquely named tasks
/// (40% HI with a halved LO deadline and doubled HI WCET, 60% LO
/// terminated at the mode switch) drawn from an avionics-style harmonic
/// period menu, each contributing 1/128 to 3/128 of a processor — so a
/// core holds ~60 tasks and campaign-scale bin-packing probes many
/// nearly-full candidates. The LO tasks are terminated because a
/// continuing task with `D(HI) = D(LO)` adds a full unit to the sup
/// ratio (its carry-over job can be due *at* the switch, eq. (7)), so
/// `s_min` would grow with the per-core task count instead of the
/// per-core load. Unlike [`synthetic_set`], the result is *not* shrunk
/// to single-processor feasibility; it is meant for the multicore
/// partitioner.
#[must_use]
pub fn fleet_set(size: usize, seed: u64) -> TaskSet {
    // All menu entries are multiples of 128, so every WCET below lands
    // on the integer grid and the resident profiles keep one stable
    // timebase — admit/evict splices stay in place instead of rescaling.
    const PERIOD_MENU: [i128; 10] = [256, 384, 512, 640, 768, 896, 1024, 1280, 1536, 1920];
    let mut rng = rbs_rng::Rng::seed_from_u64(seed);
    let tasks = (0..size)
        .map(|id| {
            let period =
                Rational::integer(PERIOD_MENU[rng.gen_range_usize(0, PERIOD_MENU.len() - 1)]);
            let wcet = period * Rational::new(rng.gen_range_i128(1, 3), 128);
            if rng.gen_bool(0.4) {
                Task::builder(format!("hi{id}"), Criticality::Hi)
                    .period(period)
                    .deadline_lo(period * Rational::new(1, 2))
                    .deadline_hi(period)
                    .wcet_lo(wcet)
                    .wcet_hi(wcet * Rational::TWO)
                    .build()
                    .expect("fleet HI parameters satisfy eq. (1)")
            } else {
                Task::builder(format!("lo{id}"), Criticality::Lo)
                    .period(period)
                    .deadline(period)
                    .wcet(wcet)
                    .terminated()
                    .build()
                    .expect("fleet LO parameters satisfy eq. (2)")
            }
        })
        .collect();
    TaskSet::new(tasks)
}

fn prepare_or_shrink(specs: &[ImplicitTaskSpec]) -> TaskSet {
    let mut specs = specs.to_vec();
    loop {
        if let Some(x) = rbs_core::lo_mode::minimal_x_density(&specs) {
            let x = x.max(Rational::new(1, 1000)).min(Rational::ONE);
            let factors = rbs_model::ScalingFactors::new(x, Rational::TWO).expect("valid");
            return rbs_model::scaled_task_set(&specs, factors).expect("valid");
        }
        specs.pop();
        assert!(!specs.is_empty(), "fixture became empty");
    }
}
