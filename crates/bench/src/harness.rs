//! A minimal wall-clock benchmark harness (no external dependencies).
//!
//! Each benchmark is calibrated so one timed batch runs for at least
//! [`Runner::MIN_BATCH`]; the harness then takes a fixed number of batch
//! samples and reports per-iteration minimum / median / mean. The output
//! is one line per benchmark, so `cargo bench` stays grep-friendly, and
//! [`Runner::finish`] additionally writes the whole suite as one
//! machine-readable `BENCH_<suite>.json` file so runs can be diffed.

use std::cell::RefCell;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use rbs_json::Json;

/// One benchmark's per-iteration summary, in nanoseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchResult {
    /// Benchmark name within the suite.
    pub name: String,
    /// Iterations per timed batch after calibration.
    pub iters_per_sample: u64,
    /// Fastest per-iteration time observed across the samples.
    pub min_ns: u128,
    /// Median per-iteration time across the samples.
    pub median_ns: u128,
    /// Mean per-iteration time across the samples.
    pub mean_ns: u128,
}

impl BenchResult {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("name".to_owned(), Json::Str(self.name.clone())),
            (
                "iters_per_sample".to_owned(),
                Json::Int(i128::from(self.iters_per_sample)),
            ),
            ("min_ns".to_owned(), int_ns(self.min_ns)),
            ("median_ns".to_owned(), int_ns(self.median_ns)),
            ("mean_ns".to_owned(), int_ns(self.mean_ns)),
        ])
    }
}

fn int_ns(nanos: u128) -> Json {
    Json::Int(i128::try_from(nanos).unwrap_or(i128::MAX))
}

/// Collects and prints benchmark timings for one suite.
#[derive(Debug)]
pub struct Runner {
    suite: String,
    samples: usize,
    results: RefCell<Vec<BenchResult>>,
}

impl Runner {
    /// A calibration batch must run at least this long.
    pub const MIN_BATCH: Duration = Duration::from_millis(20);

    /// A runner for the named suite; honors `RBS_BENCH_SAMPLES` (default
    /// 10 batch samples per benchmark).
    #[must_use]
    pub fn new(suite: &str) -> Runner {
        let samples = std::env::var("RBS_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(10);
        println!("== bench suite: {suite} (samples per benchmark: {samples}) ==");
        Runner {
            suite: suite.to_owned(),
            samples,
            results: RefCell::new(Vec::new()),
        }
    }

    /// Times `f`, printing one summary line and recording the result for
    /// [`Runner::finish`]. The closure's result is passed through
    /// [`black_box`] so the work cannot be optimized away.
    pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) {
        // Calibrate: grow the batch until it takes MIN_BATCH.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Runner::MIN_BATCH || iters >= 1 << 24 {
                break;
            }
            // At least double; overshoot toward the target to converge fast.
            let target = Runner::MIN_BATCH.as_nanos().max(1);
            let scale = (target / elapsed.as_nanos().max(1)).max(2);
            iters = iters
                .saturating_mul(u64::try_from(scale).unwrap_or(2))
                .min(1 << 24);
        }

        let mut per_iter_nanos: Vec<u128> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                start.elapsed().as_nanos() / u128::from(iters)
            })
            .collect();
        per_iter_nanos.sort_unstable();
        let min = per_iter_nanos[0];
        let median = per_iter_nanos[per_iter_nanos.len() / 2];
        let mean = per_iter_nanos.iter().sum::<u128>() / per_iter_nanos.len() as u128;
        println!(
            "{name:<44} median {:>12}  min {:>12}  mean {:>12}  ({iters} iters/sample)",
            fmt_nanos(median),
            fmt_nanos(min),
            fmt_nanos(mean)
        );
        self.results.borrow_mut().push(BenchResult {
            name: name.to_owned(),
            iters_per_sample: iters,
            min_ns: min,
            median_ns: median,
            mean_ns: mean,
        });
    }

    /// Renders every recorded result as the suite's JSON document.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("suite".to_owned(), Json::Str(self.suite.clone())),
            (
                "samples".to_owned(),
                Json::Int(i128::try_from(self.samples).unwrap_or(i128::MAX)),
            ),
            (
                "results".to_owned(),
                Json::Array(
                    self.results
                        .borrow()
                        .iter()
                        .map(BenchResult::to_json)
                        .collect(),
                ),
            ),
        ])
    }

    /// Writes `BENCH_<suite>.json` into `RBS_BENCH_OUT` (default: the
    /// current directory) and prints where it went. Call once, at the end
    /// of the suite binary.
    pub fn finish(self) {
        let dir = std::env::var("RBS_BENCH_OUT").unwrap_or_else(|_| ".".to_owned());
        let path = PathBuf::from(dir).join(format!("BENCH_{}.json", self.suite));
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let body = format!("{}\n", self.to_json().render());
        match std::fs::write(&path, body) {
            Ok(()) => println!("== wrote {} ==", path.display()),
            Err(error) => eprintln!("== could not write {}: {error} ==", path.display()),
        }
    }
}

fn fmt_nanos(nanos: u128) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} us", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_time_units() {
        assert_eq!(fmt_nanos(999), "999 ns");
        assert_eq!(fmt_nanos(1_500), "1.500 us");
        assert_eq!(fmt_nanos(2_000_000), "2.000 ms");
        assert_eq!(fmt_nanos(3_500_000_000), "3.500 s");
    }

    #[test]
    fn suite_json_carries_every_result() {
        let runner = Runner::new("unit");
        runner.bench("noop", || 1 + 1);
        let json = runner.to_json();
        assert_eq!(json.get("suite").and_then(Json::as_str), Some("unit"));
        let results = json
            .get("results")
            .and_then(Json::as_array)
            .expect("results array");
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].get("name").and_then(Json::as_str), Some("noop"));
        assert!(results[0]
            .get("median_ns")
            .and_then(Json::as_i128)
            .is_some());
    }
}
