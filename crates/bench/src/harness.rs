//! A minimal wall-clock benchmark harness (no external dependencies).
//!
//! Each benchmark is calibrated so one timed batch runs for at least
//! [`Runner::MIN_BATCH`]; the harness then takes a fixed number of batch
//! samples and reports per-iteration minimum / median / mean. The output
//! is one line per benchmark, so `cargo bench` stays grep-friendly.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Collects and prints benchmark timings for one suite.
#[derive(Debug)]
pub struct Runner {
    samples: usize,
}

impl Runner {
    /// A calibration batch must run at least this long.
    pub const MIN_BATCH: Duration = Duration::from_millis(20);

    /// A runner for the named suite; honors `RBS_BENCH_SAMPLES` (default
    /// 10 batch samples per benchmark).
    #[must_use]
    pub fn new(suite: &str) -> Runner {
        let samples = std::env::var("RBS_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(10);
        println!("== bench suite: {suite} (samples per benchmark: {samples}) ==");
        Runner { samples }
    }

    /// Times `f`, printing one summary line. The closure's result is passed
    /// through [`black_box`] so the work cannot be optimized away.
    pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) {
        // Calibrate: grow the batch until it takes MIN_BATCH.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Runner::MIN_BATCH || iters >= 1 << 24 {
                break;
            }
            // At least double; overshoot toward the target to converge fast.
            let target = Runner::MIN_BATCH.as_nanos().max(1);
            let scale = (target / elapsed.as_nanos().max(1)).max(2);
            iters = iters
                .saturating_mul(u64::try_from(scale).unwrap_or(2))
                .min(1 << 24);
        }

        let mut per_iter_nanos: Vec<u128> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                start.elapsed().as_nanos() / u128::from(iters)
            })
            .collect();
        per_iter_nanos.sort_unstable();
        let min = per_iter_nanos[0];
        let median = per_iter_nanos[per_iter_nanos.len() / 2];
        let mean = per_iter_nanos.iter().sum::<u128>() / per_iter_nanos.len() as u128;
        println!(
            "{name:<44} median {:>12}  min {:>12}  mean {:>12}  ({iters} iters/sample)",
            fmt_nanos(median),
            fmt_nanos(min),
            fmt_nanos(mean)
        );
    }
}

fn fmt_nanos(nanos: u128) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} us", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_time_units() {
        assert_eq!(fmt_nanos(999), "999 ns");
        assert_eq!(fmt_nanos(1_500), "1.500 us");
        assert_eq!(fmt_nanos(2_000_000), "2.000 ms");
        assert_eq!(fmt_nanos(3_500_000_000), "3.500 s");
    }
}
