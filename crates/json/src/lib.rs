//! Dependency-free JSON support for the workspace wire formats.
//!
//! The analysis pipeline exchanges task sets and reports as JSON. The
//! container this workspace builds in has no network access, so instead of
//! `serde`/`serde_json` we carry a small, exact JSON layer of our own:
//!
//! * [`Json`] — a value tree whose numbers keep integer precision in `i128`
//!   (the timebase `Rational` wire format is `{"num": i128, "den": i128}`,
//!   which `f64` cannot represent faithfully).
//! * [`parse`] — a recursive-descent parser over UTF-8 text.
//! * [`Json::render`] — a compact writer with a stable field order, so two
//!   renderings of equal values are byte-identical (the svc golden tests
//!   rely on this).
//! * [`ToJson`] / [`FromJson`] — conversion traits implemented by the model
//!   and report types.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value with exact integer support.
///
/// Objects preserve insertion order via a `Vec` of pairs — the wire format of
/// the model types is order-sensitive only in that we want deterministic
/// output, and a `Vec` keeps the writer stable without sorting keys.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Integer that fits in `i128` (no fractional part, no exponent).
    Int(i128),
    /// Any other number (fractional or exponent form).
    Float(f64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

/// Errors produced by [`parse`] or by [`FromJson`] conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
    /// Byte offset into the input where the error was detected (parse errors
    /// only; conversion errors use 0).
    pub offset: usize,
}

impl JsonError {
    pub fn new(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
            offset: 0,
        }
    }

    fn at(message: impl Into<String>, offset: usize) -> Self {
        JsonError {
            message: message.into(),
            offset,
        }
    }

    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.offset > 0 {
            write!(f, "{} (at byte {})", self.message, self.offset)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for JsonError {}

/// Types that render themselves into a [`Json`] value.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

/// Types that can be reconstructed from a [`Json`] value.
pub trait FromJson: Sized {
    fn from_json(value: &Json) -> Result<Self, JsonError>;
}

impl Json {
    /// Borrow the value under `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Fetch a required object field, with a descriptive error.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::new(format!("missing field `{key}`")))
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Render compactly (no whitespace), matching `serde_json::to_string`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => {
                let mut buf = itoa_buffer();
                out.push_str(write_i128(*n, &mut buf));
            }
            Json::Float(x) => write_f64(*x, out),
            Json::Str(s) => write_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn itoa_buffer() -> [u8; 48] {
    [0u8; 48]
}

fn write_i128(n: i128, buf: &mut [u8; 48]) -> &str {
    // i128::MIN has 40 digits + sign; 48 bytes is comfortably enough.
    use std::io::Write as _;
    let mut cursor = std::io::Cursor::new(&mut buf[..]);
    write!(cursor, "{n}").expect("i128 fits in buffer");
    let len = cursor.position() as usize;
    std::str::from_utf8(&buf[..len]).expect("ascii digits")
}

fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        // Shortest round-trippable representation; integral floats keep a
        // fractional marker so they re-parse as Float, mirroring serde_json.
        let s = format!("{x}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no Inf/NaN; serde_json writes null.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a complete JSON document; trailing whitespace is allowed, trailing
/// content is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value(0)?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(JsonError::at("trailing characters", parser.pos));
    }
    Ok(value)
}

/// Maximum nesting depth accepted by the parser (defensive bound; the wire
/// formats nest at most ~5 levels).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(
                format!("expected `{}`", byte as char),
                self.pos,
            ))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::at("nesting too deep", self.pos));
        }
        self.skip_whitespace();
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Json::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Json::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(JsonError::at("unexpected character", self.pos)),
            None => Err(JsonError::at("unexpected end of input", self.pos)),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::at(format!("expected `{word}`"), self.pos))
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value(depth + 1)?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(JsonError::at("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            let value = self.parse_value(depth + 1)?;
            items.push(value);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(JsonError::at("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError::at("invalid utf-8 in string", start))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| JsonError::at("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.parse_hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(JsonError::at(
                                            "invalid low surrogate",
                                            self.pos,
                                        ));
                                    }
                                    let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(code)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| {
                                JsonError::at("invalid unicode escape", self.pos)
                            })?);
                        }
                        _ => return Err(JsonError::at("invalid escape", self.pos - 1)),
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(JsonError::at("control character in string", self.pos));
                }
                _ => return Err(JsonError::at("unterminated string", self.pos)),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| JsonError::at("truncated unicode escape", self.pos))?;
            let digit = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(JsonError::at("invalid hex digit", self.pos)),
            };
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn parse_number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == int_start {
            return Err(JsonError::at("invalid number", start));
        }
        // JSON forbids leading zeros ("01" is invalid, "0.1" is fine).
        if self.bytes[int_start] == b'0' && self.pos - int_start > 1 {
            return Err(JsonError::at("leading zero in number", start));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(JsonError::at("invalid number", start));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(JsonError::at("invalid number", start));
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        if is_float {
            let x: f64 = text
                .parse()
                .map_err(|_| JsonError::at("invalid number", start))?;
            Ok(Json::Float(x))
        } else {
            match text.parse::<i128>() {
                Ok(n) => Ok(Json::Int(n)),
                // Out-of-range integers degrade to f64 like serde_json's
                // default (arbitrary_precision off).
                Err(_) => {
                    let x: f64 = text
                        .parse()
                        .map_err(|_| JsonError::at("invalid number", start))?;
                    Ok(Json::Float(x))
                }
            }
        }
    }
}

// --- blanket conversions for common shapes -------------------------------

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(value.clone())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| JsonError::new("expected string"))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_bool()
            .ok_or_else(|| JsonError::new("expected bool"))
    }
}

impl ToJson for i128 {
    fn to_json(&self) -> Json {
        Json::Int(*self)
    }
}

impl FromJson for i128 {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_i128()
            .ok_or_else(|| JsonError::new("expected integer"))
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::Int(*self as i128)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Int(*self as i128)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_array()
            .ok_or_else(|| JsonError::new("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<K: fmt::Display, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json()))
                .collect(),
        )
    }
}

/// Convenience: parse text and convert in one step.
pub fn from_str<T: FromJson>(input: &str) -> Result<T, JsonError> {
    let value = parse(input)?;
    T::from_json(&value)
}

/// Convenience: convert and render in one step.
pub fn to_string<T: ToJson>(value: &T) -> String {
    value.to_json().render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Int(42));
        assert_eq!(parse("-17").unwrap(), Json::Int(-17));
        assert_eq!(parse("3.5").unwrap(), Json::Float(3.5));
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_i128_extremes() {
        let max = i128::MAX.to_string();
        assert_eq!(parse(&max).unwrap(), Json::Int(i128::MAX));
        let min = i128::MIN.to_string();
        assert_eq!(parse(&min).unwrap(), Json::Int(i128::MIN));
    }

    #[test]
    fn parses_nested_structures() {
        let value = parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(value.get("c").unwrap(), &Json::Str("x".into()));
        let a = value.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0], Json::Int(1));
        assert_eq!(a[1].get("b").unwrap(), &Json::Null);
    }

    #[test]
    fn render_round_trips() {
        let cases = [
            r#"{"num":3,"den":2}"#,
            r#"[{"name":"t1","criticality":"Hi"}]"#,
            r#"{"s":"a\"b\\c\nd"}"#,
            "[]",
            "{}",
            "[1,2.5,null,true]",
        ];
        for case in cases {
            let value = parse(case).unwrap();
            assert_eq!(value.render(), case, "round trip of {case}");
            assert_eq!(parse(&value.render()).unwrap(), value);
        }
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""A""#).unwrap(), Json::Str("A".into()));
        // Surrogate pair for U+1F600.
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("\u{1F600}".into()));
    }

    #[test]
    fn surrogate_pair_escapes_decode_and_round_trip() {
        // U+1F600 via its escaped surrogate pair decodes to the same
        // string as the literal code point…
        let escaped = parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(escaped, Json::Str("\u{1F600}".into()));
        // …and the writer emits it as a literal (no escaping needed),
        // which re-parses to the same value.
        assert_eq!(escaped.render(), "\"\u{1F600}\"");
        assert_eq!(parse(&escaped.render()).unwrap(), escaped);
        // Uppercase hex digits are accepted too.
        assert_eq!(parse("\"\\uD83D\\uDE00\"").unwrap(), escaped);
    }

    #[test]
    fn lone_surrogates_error_instead_of_panicking() {
        for bad in [
            r#""\ud800""#,       // high surrogate at end of string
            r#""\ud800x""#,      // high surrogate followed by a plain char
            r#""\ud800\n""#,     // high surrogate followed by a non-\u escape
            r#""\ud800A""#,      // high surrogate paired with a non-surrogate
            r#""\ud800\ud800""#, // two high surrogates
            r#""\udc00""#,       // unpaired low surrogate
            r#""\ud8"#,          // truncated inside the hex digits
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn every_control_character_round_trips_through_escapes() {
        for code in 0u32..0x20 {
            let c = char::from_u32(code).expect("ascii control");
            let value = Json::Str(format!("a{c}b"));
            let rendered = value.render();
            assert_eq!(
                parse(&rendered).unwrap(),
                value,
                "round trip of U+{code:04X} via {rendered:?}"
            );
        }
    }

    #[test]
    fn raw_control_characters_in_strings_are_rejected() {
        for code in 0u32..0x20 {
            let c = char::from_u32(code).expect("ascii control");
            let input = format!("\"a{c}b\"");
            assert!(parse(&input).is_err(), "should reject raw U+{code:04X}");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"abc",
            "01",
            "1.",
            "tru",
            "{\"a\" 1}",
            "[1]2",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn integral_floats_render_with_fraction() {
        assert_eq!(Json::Float(2.0).render(), "2.0");
        assert_eq!(Json::Float(2.5).render(), "2.5");
        assert_eq!(Json::Int(2).render(), "2");
    }

    #[test]
    fn control_characters_escape() {
        let value = Json::Str("\u{01}".into());
        assert_eq!(value.render(), "\"\\u0001\"");
        assert_eq!(parse(&value.render()).unwrap(), value);
    }
}
