//! Property tests for the partitioned-multicore extension, driven by a
//! seeded deterministic RNG.

use rbs_core::lo_mode::is_lo_schedulable;
use rbs_core::speedup::SpeedupBound;
use rbs_core::AnalysisLimits;
use rbs_experiments::workloads::prepare;
use rbs_gen::synth::SynthConfig;
use rbs_model::TaskSet;
use rbs_partition::{partition, Heuristic, PlatformCap};
use rbs_rng::Rng;
use rbs_timebase::Rational;

const CASES: usize = 32;

fn generated_set(seed: u64, cores: i128) -> Option<TaskSet> {
    // Per-core load ~0.5 keeps the instances mostly placeable while
    // still exercising rejections.
    let generator = SynthConfig::new(Rational::new(cores, 2)).period_range_ms(5, 50);
    let specs = generator.generate(seed);
    // The uniprocessor uniform-x prepare only works when U_LO(LO) < 1;
    // heavier multicore loads are covered by the unit tests.
    prepare(&specs, Rational::TWO)
}

#[test]
fn partitions_are_exact_covers() {
    let mut rng = Rng::seed_from_u64(0x9a57_0001);
    for _ in 0..CASES {
        let seed = rng.gen_range_u64(0, 499);
        let cores = rng.gen_range_usize(2, 4);
        let Some(set) = generated_set(seed, cores as i128) else {
            continue;
        };
        let limits = AnalysisLimits::default();
        let cap = PlatformCap::new(cores, Rational::TWO);
        for heuristic in [Heuristic::FirstFit, Heuristic::BestFit, Heuristic::WorstFit] {
            let Some(result) =
                partition(&set, cap, heuristic, &limits).expect("analysis completes")
            else {
                continue;
            };
            // Exact cover: every task appears on exactly one core.
            let mut placed: Vec<&str> = result
                .cores()
                .iter()
                .flat_map(|c| c.iter().map(rbs_model::Task::name))
                .collect();
            placed.sort_unstable();
            let mut expected: Vec<&str> = set.iter().map(rbs_model::Task::name).collect();
            expected.sort_unstable();
            assert_eq!(placed, expected);
            // Per-core guarantees hold.
            for (core, bound) in result.cores().iter().zip(result.core_speedups()) {
                if core.is_empty() {
                    continue;
                }
                assert!(is_lo_schedulable(core, &limits).expect("completes"));
                match bound {
                    SpeedupBound::Finite(s) => assert!(*s <= Rational::TWO),
                    SpeedupBound::Unbounded => panic!("unbounded core accepted"),
                }
            }
        }
    }
}

#[test]
fn partitioning_is_deterministic() {
    let mut rng = Rng::seed_from_u64(0x9a57_0002);
    for _ in 0..CASES {
        let seed = rng.gen_range_u64(0, 199);
        let Some(set) = generated_set(seed, 2) else {
            continue;
        };
        let limits = AnalysisLimits::default();
        let cap = PlatformCap::new(2, Rational::TWO);
        let a = partition(&set, cap, Heuristic::FirstFit, &limits).expect("completes");
        let b = partition(&set, cap, Heuristic::FirstFit, &limits).expect("completes");
        assert_eq!(a, b);
    }
}

#[test]
fn more_cores_never_hurt_first_fit() {
    // First-fit-decreasing with extra (initially empty) cores can
    // place at least everything it placed before: the placement on
    // the first m cores is unchanged and rejects gain new fallbacks.
    let mut rng = Rng::seed_from_u64(0x9a57_0003);
    for _ in 0..CASES {
        let seed = rng.gen_range_u64(0, 199);
        let Some(set) = generated_set(seed, 2) else {
            continue;
        };
        let limits = AnalysisLimits::default();
        let small = partition(
            &set,
            PlatformCap::new(2, Rational::TWO),
            Heuristic::FirstFit,
            &limits,
        )
        .expect("completes");
        if small.is_some() {
            let large = partition(
                &set,
                PlatformCap::new(3, Rational::TWO),
                Heuristic::FirstFit,
                &limits,
            )
            .expect("completes");
            assert!(large.is_some(), "extra core broke a feasible packing");
        }
    }
}
