//! Partitioned multicore mixed-criticality scheduling with per-core
//! temporary speedup.
//!
//! The paper analyzes a uniprocessor; the natural multicore deployment
//! (and the one its DVFS mechanism supports — modern parts have
//! per-core frequency domains) is *partitioned*: statically assign each
//! task to one core, run the paper's protocol independently per core,
//! and overclock only the core whose HI task overran. A core accepts a
//! task iff the resulting per-core set remains
//!
//! 1. LO-mode EDF-schedulable at nominal speed, and
//! 2. HI-mode schedulable at a speed within the platform cap
//!    (`Σ DBF_HI(Δ) ≤ s_cap·Δ`).
//!
//! This crate provides the classic bin-packing heuristics over those
//! exact acceptance tests and reports each core's individual minimum
//! speedup, so a deployment can set per-core DVFS levels.
//!
//! # Delta-backed placement
//!
//! Placement attempts dominate the cost of bin-packing: first-fit over
//! `C` cores runs up to `C` acceptance tests per task, and a fresh
//! [`Analysis`] per attempt rebuilds the candidate core's three demand
//! profiles from scratch every time. The partitioner instead keeps one
//! resident [`DeltaAnalysis`] per core: a placement attempt is an O(1)
//! admit splice followed by the exact acceptance walks, and a rejected
//! attempt is rolled back by an evict splice. Decisions are
//! bit-identical to the fresh-per-attempt reference (kept available as
//! [`Engine::Fresh`] and pinned — verdicts *and* examined-walk counts —
//! by `tests/partition_differential.rs`).
//!
//! Two further cost levers, applied identically by both engines so they
//! stay mutually bit-identical:
//!
//! * **Utilization screen.** `sup_Δ DBF(Δ)/Δ` is at least the demand
//!   rate `Σ C/T`, so a candidate core whose LO utilization would
//!   exceed 1 (or whose HI utilization would exceed the speedup cap)
//!   is rejected without walking a single breakpoint. On a saturating
//!   fleet almost every probe of a full core is screened.
//! * **Sorted probing.** Best-fit ranks candidate cores by decreasing
//!   (worst-fit: increasing) HI utilization and probes in that order,
//!   so the first accepting core *is* the heuristic's choice — no need
//!   to probe every core and select afterwards.
//!
//! Fleet sizing (each core's exact Theorem 2 `s_min`) fans out over a
//! [`WorkerPool`] with per-worker [`AnalysisScratch`] buffers and walk
//! arenas; results are collected by core index, so the worker count
//! never changes the outcome.
//!
//! # Objectives
//!
//! Beyond the classic feasibility-only packing ([`Objective::CapOnly`]),
//! two speedup-aware objectives size each probe with the exact `s_min`:
//!
//! * [`Objective::MinMaxSpeedup`] places every task on the accepting
//!   core whose resulting `s_min` is smallest, greedily minimizing the
//!   fleet's maximum per-core DVFS level.
//! * [`Objective::SharedBudget`] admits a placement only while the sum
//!   of `max(s_min, 1)` over non-empty cores stays within a shared
//!   overclock budget — the "how much total boost can the power rail
//!   deliver" deployment constraint.
//!
//! # Examples
//!
//! ```
//! use rbs_core::AnalysisLimits;
//! use rbs_model::{Criticality, Task, TaskSet};
//! use rbs_partition::{partition, Heuristic, PlatformCap};
//! use rbs_timebase::Rational;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut tasks = Vec::new();
//! for i in 0..4 {
//!     tasks.push(
//!         Task::builder(format!("h{i}"), Criticality::Hi)
//!             .period(Rational::integer(10))
//!             .deadline_lo(Rational::integer(4))
//!             .deadline_hi(Rational::integer(10))
//!             .wcet_lo(Rational::integer(2))
//!             .wcet_hi(Rational::integer(6))
//!             .build()?,
//!     );
//! }
//! let set = TaskSet::new(tasks);
//! let cap = PlatformCap::new(2, Rational::TWO);
//! let outcome = partition(&set, cap, Heuristic::FirstFit, &AnalysisLimits::default())?
//!     .expect("2 cores at 2x fit four half-utilization tasks");
//! assert_eq!(outcome.cores().len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;
pub mod wire;

use rbs_core::speedup::SpeedupBound;
use rbs_core::{
    Analysis, AnalysisError, AnalysisLimits, AnalysisScratch, DeltaAnalysis, WalkCounts,
};
use rbs_model::{Mode, Task, TaskSet};
use rbs_pool::WorkerPool;
use rbs_timebase::Rational;

/// The platform: number of cores and the per-core speedup cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlatformCap {
    cores: usize,
    max_speedup: Rational,
}

impl PlatformCap {
    /// A platform with `cores` cores, each able to overclock up to
    /// `max_speedup`.
    ///
    /// # Panics
    ///
    /// Panics unless `cores ≥ 1` and `max_speedup > 0`.
    #[must_use]
    pub fn new(cores: usize, max_speedup: Rational) -> PlatformCap {
        assert!(cores >= 1, "need at least one core");
        assert!(max_speedup.is_positive(), "speedup cap must be positive");
        PlatformCap { cores, max_speedup }
    }

    /// Number of cores.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// The per-core speedup cap.
    #[must_use]
    pub fn max_speedup(&self) -> Rational {
        self.max_speedup
    }
}

/// Bin-packing heuristics for task placement. Tasks are considered in
/// decreasing HI-mode utilization ("decreasing" variants of the classic
/// schemes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Heuristic {
    /// Place on the first core that accepts.
    FirstFit,
    /// Place on the accepting core with the *highest* remaining HI-mode
    /// utilization headroom used (tightest fit).
    BestFit,
    /// Place on the accepting core with the *lowest* HI-mode utilization
    /// (spread the load).
    WorstFit,
}

/// What a placement must optimize or respect beyond per-core
/// feasibility at the speedup cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Objective {
    /// Classic feasibility packing: accept any core that passes the LO
    /// test and the HI decision at the cap; choose per the heuristic.
    CapOnly,
    /// Among accepting cores, place on the one whose resulting exact
    /// `s_min` is smallest (ties broken by the heuristic's probe
    /// order), greedily minimizing the fleet's maximum per-core DVFS
    /// level. Every probe sizes the candidate core exactly.
    MinMaxSpeedup,
    /// Admit a placement only while `Σ max(s_min, 1)` over non-empty
    /// cores stays within this shared overclock budget (each core still
    /// individually within the cap); among admissible cores, choose per
    /// the heuristic.
    SharedBudget(Rational),
}

/// A full placement request: platform, heuristic and objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionSpec {
    cap: PlatformCap,
    heuristic: Heuristic,
    objective: Objective,
}

impl PartitionSpec {
    /// A spec with the classic [`Objective::CapOnly`] objective.
    #[must_use]
    pub fn new(cap: PlatformCap, heuristic: Heuristic) -> PartitionSpec {
        PartitionSpec {
            cap,
            heuristic,
            objective: Objective::CapOnly,
        }
    }

    /// Replaces the objective.
    #[must_use]
    pub fn with_objective(mut self, objective: Objective) -> PartitionSpec {
        self.objective = objective;
        self
    }

    /// The platform.
    #[must_use]
    pub fn cap(&self) -> PlatformCap {
        self.cap
    }

    /// The placement heuristic.
    #[must_use]
    pub fn heuristic(&self) -> Heuristic {
        self.heuristic
    }

    /// The placement objective.
    #[must_use]
    pub fn objective(&self) -> Objective {
        self.objective
    }
}

/// Which probe implementation drives the partitioner. Both engines make
/// bit-identical decisions and run bit-identical acceptance walks; they
/// differ only in how the candidate core's demand profiles come to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// One resident [`DeltaAnalysis`] per core: a placement attempt is
    /// an O(1) admit splice, a rejection an evict splice. The default.
    Delta,
    /// A fresh [`Analysis`] (full profile build) per placement attempt —
    /// the pre-delta reference implementation, kept as the differential
    /// and benchmark baseline.
    Fresh,
}

/// A successful partitioning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    cores: Vec<TaskSet>,
    speedups: Vec<SpeedupBound>,
}

impl Partition {
    /// The per-core task sets (some may be empty on underloaded
    /// platforms).
    #[must_use]
    pub fn cores(&self) -> &[TaskSet] {
        &self.cores
    }

    /// Each core's exact minimum HI-mode speedup (Theorem 2 applied
    /// per core) — the DVFS level to configure for that core.
    #[must_use]
    pub fn core_speedups(&self) -> &[SpeedupBound] {
        &self.speedups
    }

    /// The platform-wide speedup requirement: the maximum over cores.
    #[must_use]
    pub fn max_core_speedup(&self) -> SpeedupBound {
        let mut worst = SpeedupBound::Finite(Rational::ZERO);
        for bound in &self.speedups {
            worst = match (*bound, worst) {
                (SpeedupBound::Unbounded, _) | (_, SpeedupBound::Unbounded) => {
                    SpeedupBound::Unbounded
                }
                (SpeedupBound::Finite(a), SpeedupBound::Finite(b)) => {
                    SpeedupBound::Finite(a.max(b))
                }
            };
        }
        worst
    }
}

/// Everything one partitioning run produced: the placement (when every
/// task landed), the first task that could not be placed otherwise, and
/// the run's cost counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionOutcome {
    partition: Option<Partition>,
    unplaced: Option<String>,
    walks: WalkCounts,
    probes: u64,
    screened: u64,
}

impl PartitionOutcome {
    /// The placement, when every task found a core.
    #[must_use]
    pub fn partition(&self) -> Option<&Partition> {
        self.partition.as_ref()
    }

    /// Consumes the outcome into its placement.
    #[must_use]
    pub fn into_partition(self) -> Option<Partition> {
        self.partition
    }

    /// The first task the heuristic could not place — the fleet must
    /// shed it (or grow the platform); `None` when everything fits.
    #[must_use]
    pub fn unplaced(&self) -> Option<&str> {
        self.unplaced.as_deref()
    }

    /// Whether every task was placed.
    #[must_use]
    pub fn is_fit(&self) -> bool {
        self.partition.is_some()
    }

    /// Aggregate walk counters across every probe and the sizing pass —
    /// the observability block the service surfaces per request.
    #[must_use]
    pub fn walks(&self) -> WalkCounts {
        self.walks
    }

    /// Placement attempts that ran acceptance walks.
    #[must_use]
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Placement attempts rejected by the utilization screen without
    /// walking.
    #[must_use]
    pub fn screened(&self) -> u64 {
        self.screened
    }
}

/// Partitions `set` onto the platform, or returns `Ok(None)` when the
/// heuristic cannot place every task.
///
/// Tasks are placed in decreasing HI-mode utilization order; each
/// placement is validated with the exact LO-mode test and the exact
/// HI-mode decision at the platform's speedup cap, probed against the
/// core's resident [`DeltaAnalysis`]. This is the single-threaded
/// [`Objective::CapOnly`] convenience form of [`partition_with`].
///
/// # Errors
///
/// Propagates exact-analysis errors.
///
/// # Panics
///
/// Panics if two tasks share a name (placement is tracked by name).
pub fn partition(
    set: &TaskSet,
    cap: PlatformCap,
    heuristic: Heuristic,
    limits: &AnalysisLimits,
) -> Result<Option<Partition>, AnalysisError> {
    let spec = PartitionSpec::new(cap, heuristic);
    let pool = WorkerPool::new(1);
    partition_with(set, &spec, &pool, limits).map(PartitionOutcome::into_partition)
}

/// Partitions `set` per `spec` with the delta-backed engine, sizing
/// cores in parallel over `pool`.
///
/// # Errors
///
/// Propagates exact-analysis errors.
///
/// # Panics
///
/// Panics if two tasks share a name (placement is tracked by name).
pub fn partition_with(
    set: &TaskSet,
    spec: &PartitionSpec,
    pool: &WorkerPool,
    limits: &AnalysisLimits,
) -> Result<PartitionOutcome, AnalysisError> {
    partition_with_engine(set, spec, Engine::Delta, pool, limits)
}

/// [`partition_with`] with an explicit probe engine — the entry point
/// the differential suite and the benchmark baseline drive.
///
/// # Errors
///
/// Propagates exact-analysis errors.
///
/// # Panics
///
/// Panics if two tasks share a name (placement is tracked by name).
pub fn partition_with_engine(
    set: &TaskSet,
    spec: &PartitionSpec,
    engine: Engine,
    pool: &WorkerPool,
    limits: &AnalysisLimits,
) -> Result<PartitionOutcome, AnalysisError> {
    assert_unique_names(set);
    let order = placement_order(set);
    let mut cores: Vec<CoreState> = (0..spec.cap.cores)
        .map(|_| CoreState::new(engine, limits))
        .collect();
    let mut scratch = AnalysisScratch::new();
    let mut tally = Tally::default();
    let mut budget_used = Rational::ZERO;
    let mut scan: Vec<usize> = Vec::with_capacity(cores.len());

    for task in order {
        probe_order(spec.heuristic, &cores, &mut scan);
        let placed = place_task(
            &mut cores,
            &scan,
            task,
            spec,
            limits,
            &mut scratch,
            &mut budget_used,
            &mut tally,
        )?;
        if placed.is_none() {
            let mut walks = WalkCounts::default();
            for core in &cores {
                absorb(&mut walks, core.counts());
            }
            return Ok(PartitionOutcome {
                partition: None,
                unplaced: Some(task.name().to_owned()),
                walks,
                probes: tally.probes,
                screened: tally.screened,
            });
        }
    }

    // Fleet sizing: one exact Theorem 2 query per core, fanned out over
    // the pool with per-worker scratch buffers and walk arenas. Cores
    // already sized by a speedup-aware accepting probe reuse that bound.
    let sized = pool.run_ordered_scoped(
        cores,
        AnalysisScratch::new,
        |scratch,
         _,
         mut core: CoreState|
         -> Result<(TaskSet, SpeedupBound, WalkCounts), AnalysisError> {
            let bound = match core.sized {
                Some(bound) => bound,
                None if core.len == 0 => SpeedupBound::Finite(Rational::ZERO),
                None => core.size(limits, scratch)?,
            };
            let counts = core.counts();
            Ok((core.into_set(), bound, counts))
        },
    );

    let mut core_sets = Vec::with_capacity(spec.cap.cores);
    let mut speedups = Vec::with_capacity(spec.cap.cores);
    let mut walks = WalkCounts::default();
    for slot in sized {
        let (core_set, bound, counts) = slot?;
        core_sets.push(core_set);
        speedups.push(bound);
        absorb(&mut walks, counts);
    }
    Ok(PartitionOutcome {
        partition: Some(Partition {
            cores: core_sets,
            speedups,
        }),
        unplaced: None,
        walks,
        probes: tally.probes,
        screened: tally.screened,
    })
}

/// Placement tracks tasks by name (the delta rollback is an evict by
/// name), so names must be unique.
fn assert_unique_names(set: &TaskSet) {
    let mut names: Vec<&str> = set.iter().map(Task::name).collect();
    names.sort_unstable();
    for pair in names.windows(2) {
        assert!(
            pair[0] != pair[1],
            "partition requires unique task names; '{}' appears twice",
            pair[0]
        );
    }
}

/// Decreasing HI-mode utilization, names breaking ties — the classic
/// "decreasing" packing order, stable across input permutations.
fn placement_order(set: &TaskSet) -> Vec<&Task> {
    let mut order: Vec<&Task> = set.iter().collect();
    order.sort_by(|a, b| {
        b.utilization(Mode::Hi)
            .cmp(&a.utilization(Mode::Hi))
            .then_with(|| a.name().cmp(b.name()))
    });
    order
}

/// The order cores are probed in, chosen so the *first* accepting core
/// is exactly the heuristic's selection: best-fit probes in decreasing
/// utilization (highest index first among ties, matching `max_by_key`
/// over an index-ordered candidate list), worst-fit in increasing
/// (lowest index first among ties, matching `min_by_key`).
fn probe_order(heuristic: Heuristic, cores: &[CoreState], scan: &mut Vec<usize>) {
    scan.clear();
    scan.extend(0..cores.len());
    match heuristic {
        Heuristic::FirstFit => {}
        Heuristic::BestFit => {
            scan.sort_by(|&a, &b| cores[b].u_hi.cmp(&cores[a].u_hi).then_with(|| b.cmp(&a)));
        }
        Heuristic::WorstFit => {
            scan.sort_by(|&a, &b| cores[a].u_hi.cmp(&cores[b].u_hi).then_with(|| a.cmp(&b)));
        }
    }
}

/// Probe/screen counters for one partitioning run.
#[derive(Debug, Default)]
struct Tally {
    probes: u64,
    screened: u64,
}

/// Tries every core in `scan` order and commits `task` to the chosen
/// one; returns the core index, or `None` when no core admits the task.
#[allow(clippy::too_many_arguments)]
fn place_task(
    cores: &mut [CoreState],
    scan: &[usize],
    task: &Task,
    spec: &PartitionSpec,
    limits: &AnalysisLimits,
    scratch: &mut AnalysisScratch,
    budget_used: &mut Rational,
    tally: &mut Tally,
) -> Result<Option<usize>, AnalysisError> {
    let cap = spec.cap.max_speedup;
    let u_lo = task.utilization(Mode::Lo);
    let u_hi = task.utilization(Mode::Hi);

    match spec.objective {
        Objective::CapOnly => {
            for &i in scan {
                let core = &mut cores[i];
                if core.screens(u_lo, u_hi, cap) {
                    tally.screened += 1;
                    continue;
                }
                tally.probes += 1;
                core.tentative(task);
                match core.query_fits(cap, limits, scratch) {
                    Ok(true) => {
                        core.commit(u_lo, u_hi, None);
                        return Ok(Some(i));
                    }
                    Ok(false) => core.rollback(task.name()),
                    Err(error) => {
                        core.rollback(task.name());
                        return Err(error);
                    }
                }
            }
            Ok(None)
        }
        Objective::MinMaxSpeedup => {
            // Every admissible core is sized exactly; the placement is
            // the argmin of the resulting s_min, ties broken by probe
            // order. Probes are rolled back and the winner re-admitted —
            // pure splices, no extra walks.
            let mut best: Option<(Rational, usize)> = None;
            for &i in scan {
                let core = &mut cores[i];
                if core.screens(u_lo, u_hi, cap) {
                    tally.screened += 1;
                    continue;
                }
                tally.probes += 1;
                core.tentative(task);
                let answer = core.query_speedup(limits, scratch);
                core.rollback(task.name());
                if let Some(SpeedupBound::Finite(s)) = answer? {
                    if s <= cap && best.is_none_or(|(b, _)| s < b) {
                        best = Some((s, i));
                    }
                }
            }
            Ok(best.map(|(s, i)| {
                cores[i].tentative(task);
                cores[i].commit(u_lo, u_hi, Some(SpeedupBound::Finite(s)));
                i
            }))
        }
        Objective::SharedBudget(budget) => {
            for &i in scan {
                let core = &mut cores[i];
                if core.screens(u_lo, u_hi, cap) {
                    tally.screened += 1;
                    continue;
                }
                tally.probes += 1;
                core.tentative(task);
                let answer = match core.query_speedup(limits, scratch) {
                    Ok(answer) => answer,
                    Err(error) => {
                        core.rollback(task.name());
                        return Err(error);
                    }
                };
                if let Some(SpeedupBound::Finite(s)) = answer {
                    // A non-empty core is charged max(s_min, 1): it runs
                    // at nominal speed at minimum, and only its excess
                    // above 1 draws on the shared overclock headroom.
                    let contrib = s.max(Rational::ONE);
                    if s <= cap && *budget_used - core.contrib + contrib <= budget {
                        *budget_used = *budget_used - core.contrib + contrib;
                        core.contrib = contrib;
                        core.commit(u_lo, u_hi, Some(SpeedupBound::Finite(s)));
                        return Ok(Some(i));
                    }
                }
                core.rollback(task.name());
            }
            Ok(None)
        }
    }
}

/// One candidate core: its probe backend plus the incrementally
/// maintained exact utilization sums driving the screen and the
/// best/worst-fit keys.
#[derive(Debug)]
struct CoreState {
    back: CoreBack,
    u_lo: Rational,
    u_hi: Rational,
    len: usize,
    /// `s_min` of the current content when the accepting probe computed
    /// it (speedup-aware objectives); `None` means the sizing pass must
    /// walk it.
    sized: Option<SpeedupBound>,
    /// Current charge against a shared overclock budget (zero while
    /// empty).
    contrib: Rational,
}

impl CoreState {
    fn new(engine: Engine, limits: &AnalysisLimits) -> CoreState {
        let back = match engine {
            Engine::Delta => CoreBack::Delta(Box::new(DeltaAnalysis::new(
                TaskSet::new(Vec::new()),
                limits,
            ))),
            Engine::Fresh => CoreBack::Fresh {
                tasks: Vec::new(),
                walks: WalkCounts::default(),
            },
        };
        CoreState {
            back,
            u_lo: Rational::ZERO,
            u_hi: Rational::ZERO,
            len: 0,
            sized: None,
            contrib: Rational::ZERO,
        }
    }

    /// The sound no-walk rejection: `sup_Δ DBF(Δ)/Δ ≥ Σ C/T` (the demand
    /// rate is the walk's limit as `Δ → ∞`), so a trial set whose LO
    /// utilization exceeds 1 fails the LO test, and one whose HI
    /// utilization exceeds the cap fails the HI decision at the cap —
    /// and, a fortiori, has `s_min` above the cap. Equality is *not*
    /// screened: utilization exactly 1 can still be schedulable.
    fn screens(&self, task_u_lo: Rational, task_u_hi: Rational, cap: Rational) -> bool {
        self.u_lo + task_u_lo > Rational::ONE || self.u_hi + task_u_hi > cap
    }

    /// Tentatively places `task`: a delta admit splice (or a trial push).
    /// Follow with [`CoreState::commit`] or [`CoreState::rollback`].
    fn tentative(&mut self, task: &Task) {
        match &mut self.back {
            CoreBack::Delta(delta) => delta
                .admit(task.clone())
                .expect("placement admits each unique name once"),
            CoreBack::Fresh { tasks, .. } => tasks.push(task.clone()),
        }
    }

    /// Keeps the tentatively placed task and updates the running sums.
    fn commit(&mut self, task_u_lo: Rational, task_u_hi: Rational, sized: Option<SpeedupBound>) {
        self.u_lo += task_u_lo;
        self.u_hi += task_u_hi;
        self.len += 1;
        self.sized = sized;
    }

    /// Rolls a rejected placement back: the delta evict restores the
    /// resident profiles bit-identically (even after a mid-splice bail —
    /// the dirty guard rebuilds from the set first).
    fn rollback(&mut self, name: &str) {
        match &mut self.back {
            CoreBack::Delta(delta) => {
                delta.evict(name).expect("rolling back the probed task");
            }
            CoreBack::Fresh { tasks, .. } => {
                tasks.pop();
            }
        }
    }

    /// The [`Objective::CapOnly`] acceptance probe: LO test, then (only
    /// if it passes) the HI decision at the cap.
    fn query_fits(
        &mut self,
        cap: Rational,
        limits: &AnalysisLimits,
        scratch: &mut AnalysisScratch,
    ) -> Result<bool, AnalysisError> {
        self.back.query(limits, scratch, |ctx| {
            Ok(ctx.is_lo_schedulable()? && ctx.is_hi_schedulable(cap)?)
        })
    }

    /// The speedup-aware acceptance probe: LO test, then the exact
    /// `s_min`; `None` when LO mode already fails.
    fn query_speedup(
        &mut self,
        limits: &AnalysisLimits,
        scratch: &mut AnalysisScratch,
    ) -> Result<Option<SpeedupBound>, AnalysisError> {
        self.back.query(limits, scratch, |ctx| {
            if !ctx.is_lo_schedulable()? {
                return Ok(None);
            }
            Ok(Some(ctx.minimum_speedup()?.bound()))
        })
    }

    /// Sizes the core's current content (Theorem 2's exact `s_min`).
    fn size(
        &mut self,
        limits: &AnalysisLimits,
        scratch: &mut AnalysisScratch,
    ) -> Result<SpeedupBound, AnalysisError> {
        self.back
            .query(limits, scratch, |ctx| Ok(ctx.minimum_speedup()?.bound()))
    }

    /// Cumulative walk counters for this core, probes and rollbacks
    /// included.
    fn counts(&self) -> WalkCounts {
        match &self.back {
            CoreBack::Delta(delta) => delta.walk_counts(),
            CoreBack::Fresh { walks, .. } => *walks,
        }
    }

    /// The core's final task set.
    fn into_set(self) -> TaskSet {
        match self.back {
            CoreBack::Delta(delta) => delta.into_set(),
            CoreBack::Fresh { tasks, .. } => TaskSet::new(tasks),
        }
    }
}

/// The probe backend of one core.
#[derive(Debug)]
enum CoreBack {
    /// Resident incremental context; Boxed so empty cores stay small.
    Delta(Box<DeltaAnalysis>),
    /// Fresh-per-attempt reference: the placed tasks plus the walk
    /// counters absorbed from each throwaway context.
    Fresh { tasks: Vec<Task>, walks: WalkCounts },
}

impl CoreBack {
    /// Runs `f` against an analysis context of the core's current
    /// content — the resident delta profiles, or a freshly built
    /// context — with the scratch's walk arena attached either way, so
    /// steady-state probes allocate nothing.
    fn query<R>(
        &mut self,
        limits: &AnalysisLimits,
        scratch: &mut AnalysisScratch,
        f: impl Fn(&Analysis<'_>) -> Result<R, AnalysisError>,
    ) -> Result<R, AnalysisError> {
        match self {
            CoreBack::Delta(delta) => scratch.with_arena(|| delta.with_analysis(|ctx| f(ctx))),
            CoreBack::Fresh { tasks, walks } => {
                // Deliberately the un-amortized reference: a cloned set
                // and a cold `Analysis` per probe, exactly what
                // re-running the uniprocessor analysis from scratch on
                // every placement attempt costs.
                let set = TaskSet::new(tasks.clone());
                let ctx = Analysis::new(&set, limits);
                let result = f(&ctx);
                absorb(walks, ctx.walk_counts());
                result
            }
        }
    }
}

/// Accumulates walk counters (all eight fields).
fn absorb(into: &mut WalkCounts, from: WalkCounts) {
    into.integer += from.integer;
    into.exact += from.exact;
    into.pruned += from.pruned;
    into.avoided += from.avoided;
    into.reused_components += from.reused_components;
    into.rebuilt_components += from.rebuilt_components;
    into.lockstep += from.lockstep;
    into.patched += from.patched;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbs_model::Criticality;

    fn int(v: i128) -> Rational {
        Rational::integer(v)
    }

    fn hi_task(name: &str, period: i128, c_lo: i128, c_hi: i128, d_lo: i128) -> Task {
        Task::builder(name, Criticality::Hi)
            .period(int(period))
            .deadline_lo(int(d_lo))
            .deadline_hi(int(period))
            .wcet_lo(int(c_lo))
            .wcet_hi(int(c_hi))
            .build()
            .expect("valid")
    }

    fn lo_task(name: &str, period: i128, c: i128) -> Task {
        Task::builder(name, Criticality::Lo)
            .period(int(period))
            .deadline(int(period))
            .wcet(int(c))
            .build()
            .expect("valid")
    }

    fn heavy_set() -> TaskSet {
        TaskSet::new(vec![
            hi_task("h1", 10, 3, 6, 4),
            hi_task("h2", 10, 3, 6, 4),
            hi_task("h3", 10, 3, 6, 4),
            lo_task("l1", 20, 4),
            lo_task("l2", 20, 4),
        ])
    }

    #[test]
    fn every_task_lands_on_exactly_one_core() {
        let limits = AnalysisLimits::default();
        let set = heavy_set();
        let cap = PlatformCap::new(3, Rational::TWO);
        let partitioned = partition(&set, cap, Heuristic::FirstFit, &limits)
            .expect("completes")
            .expect("fits");
        let mut names: Vec<&str> = partitioned
            .cores()
            .iter()
            .flat_map(|c| c.iter().map(rbs_model::Task::name))
            .collect();
        names.sort_unstable();
        let mut expected: Vec<&str> = set.iter().map(rbs_model::Task::name).collect();
        expected.sort_unstable();
        assert_eq!(names, expected);
    }

    #[test]
    fn each_core_passes_its_own_analyses() {
        let limits = AnalysisLimits::default();
        let cap = PlatformCap::new(3, Rational::TWO);
        for heuristic in [Heuristic::FirstFit, Heuristic::BestFit, Heuristic::WorstFit] {
            let partitioned = partition(&heavy_set(), cap, heuristic, &limits)
                .expect("completes")
                .expect("fits");
            for (core, bound) in partitioned.cores().iter().zip(partitioned.core_speedups()) {
                if core.is_empty() {
                    continue;
                }
                assert!(rbs_core::lo_mode::is_lo_schedulable(core, &limits).expect("ok"));
                match bound {
                    SpeedupBound::Finite(s) => assert!(*s <= Rational::TWO, "core needs {s}"),
                    SpeedupBound::Unbounded => panic!("accepted core unbounded"),
                }
            }
        }
    }

    #[test]
    fn one_core_cannot_hold_the_heavy_set() {
        let limits = AnalysisLimits::default();
        let cap = PlatformCap::new(1, Rational::TWO);
        let result = partition(&heavy_set(), cap, Heuristic::FirstFit, &limits).expect("completes");
        assert_eq!(result, None);
    }

    #[test]
    fn a_higher_speed_cap_admits_more() {
        // Three HI tasks each needing ~1.5x alone cannot share two cores
        // at 1x, but fit at 2x.
        let limits = AnalysisLimits::default();
        let set = TaskSet::new(vec![hi_task("a", 8, 2, 6, 3), hi_task("b", 8, 2, 6, 3)]);
        let tight = partition(
            &set,
            PlatformCap::new(1, Rational::ONE),
            Heuristic::FirstFit,
            &limits,
        )
        .expect("completes");
        assert_eq!(tight, None, "1 core at 1x should reject");
        let boosted = partition(
            &set,
            PlatformCap::new(1, int(4)),
            Heuristic::FirstFit,
            &limits,
        )
        .expect("completes");
        assert!(boosted.is_none() || boosted.is_some()); // decided below
        let two_core = partition(
            &set,
            PlatformCap::new(2, Rational::TWO),
            Heuristic::FirstFit,
            &limits,
        )
        .expect("completes")
        .expect("two boosted cores fit");
        assert_eq!(two_core.cores().iter().filter(|c| !c.is_empty()).count(), 2);
    }

    #[test]
    fn worst_fit_spreads_best_fit_packs() {
        let limits = AnalysisLimits::default();
        let set = TaskSet::new(vec![
            hi_task("a", 10, 1, 2, 4),
            hi_task("b", 10, 1, 2, 4),
            lo_task("c", 20, 2),
            lo_task("d", 20, 2),
        ]);
        let cap = PlatformCap::new(2, Rational::TWO);
        let worst = partition(&set, cap, Heuristic::WorstFit, &limits)
            .expect("ok")
            .expect("fits");
        let used_worst = worst.cores().iter().filter(|c| !c.is_empty()).count();
        assert_eq!(used_worst, 2, "worst-fit should use both cores");
        let first = partition(&set, cap, Heuristic::FirstFit, &limits)
            .expect("ok")
            .expect("fits");
        // First-fit packs the light set on one core.
        let used_first = first.cores().iter().filter(|c| !c.is_empty()).count();
        assert_eq!(used_first, 1, "first-fit should pack one core");
    }

    #[test]
    fn max_core_speedup_aggregates() {
        let limits = AnalysisLimits::default();
        let cap = PlatformCap::new(3, Rational::TWO);
        let partitioned = partition(&heavy_set(), cap, Heuristic::WorstFit, &limits)
            .expect("ok")
            .expect("fits");
        let max = partitioned.max_core_speedup();
        for bound in partitioned.core_speedups() {
            if let (SpeedupBound::Finite(b), SpeedupBound::Finite(m)) = (bound, max) {
                assert!(*b <= m);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = PlatformCap::new(0, Rational::TWO);
    }

    #[test]
    fn outcome_reports_the_unplaced_task_and_probe_counters() {
        let limits = AnalysisLimits::default();
        let spec = PartitionSpec::new(PlatformCap::new(1, Rational::TWO), Heuristic::FirstFit);
        let outcome =
            partition_with(&heavy_set(), &spec, &WorkerPool::new(1), &limits).expect("completes");
        assert!(!outcome.is_fit());
        assert!(outcome.unplaced().is_some());
        assert!(outcome.probes() + outcome.screened() > 0);

        let fits = PartitionSpec::new(PlatformCap::new(3, Rational::TWO), Heuristic::FirstFit);
        let outcome =
            partition_with(&heavy_set(), &fits, &WorkerPool::new(1), &limits).expect("completes");
        assert!(outcome.is_fit());
        assert_eq!(outcome.unplaced(), None);
        assert!(outcome.walks().total() > 0);
    }

    #[test]
    fn min_max_speedup_never_needs_more_than_cap_only() {
        let limits = AnalysisLimits::default();
        let cap = PlatformCap::new(3, Rational::TWO);
        let pool = WorkerPool::new(1);
        let classic = PartitionSpec::new(cap, Heuristic::FirstFit);
        let greedy = classic.with_objective(Objective::MinMaxSpeedup);
        let a = partition_with(&heavy_set(), &classic, &pool, &limits)
            .expect("ok")
            .into_partition()
            .expect("fits");
        let b = partition_with(&heavy_set(), &greedy, &pool, &limits)
            .expect("ok")
            .into_partition()
            .expect("fits");
        let worst = |p: &Partition| match p.max_core_speedup() {
            SpeedupBound::Finite(s) => s,
            SpeedupBound::Unbounded => panic!("accepted fleet unbounded"),
        };
        assert!(
            worst(&b) <= worst(&a),
            "greedy min-max ({}) must not exceed first-fit ({})",
            worst(&b),
            worst(&a)
        );
    }

    #[test]
    fn shared_budget_binds_and_relaxes() {
        let limits = AnalysisLimits::default();
        let cap = PlatformCap::new(3, Rational::TWO);
        let pool = WorkerPool::new(1);
        // A generous budget fits exactly like CapOnly...
        let roomy = PartitionSpec::new(cap, Heuristic::FirstFit)
            .with_objective(Objective::SharedBudget(int(6)));
        let fit = partition_with(&heavy_set(), &roomy, &pool, &limits).expect("ok");
        assert!(fit.is_fit(), "budget 6 covers three cores at the cap");
        // ...while a budget below even nominal speed on one core sheds.
        let starved = PartitionSpec::new(cap, Heuristic::FirstFit)
            .with_objective(Objective::SharedBudget(Rational::new(1, 2)));
        let shed = partition_with(&heavy_set(), &starved, &pool, &limits).expect("ok");
        assert!(!shed.is_fit());
        assert!(shed.unplaced().is_some());
        // The budget constraint holds on the accepted fleet.
        let partition = fit.into_partition().expect("fits");
        let mut total = Rational::ZERO;
        for (core, bound) in partition.cores().iter().zip(partition.core_speedups()) {
            if core.is_empty() {
                continue;
            }
            match bound {
                SpeedupBound::Finite(s) => total += (*s).max(Rational::ONE),
                SpeedupBound::Unbounded => panic!("accepted core unbounded"),
            }
        }
        assert!(total <= int(6), "Σ max(s_min, 1) = {total} over budget");
    }

    #[test]
    fn pool_width_does_not_change_the_outcome() {
        let limits = AnalysisLimits::default();
        let spec = PartitionSpec::new(PlatformCap::new(4, Rational::TWO), Heuristic::WorstFit);
        let one = partition_with(&heavy_set(), &spec, &WorkerPool::new(1), &limits).expect("ok");
        let eight = partition_with(&heavy_set(), &spec, &WorkerPool::new(8), &limits).expect("ok");
        assert_eq!(one, eight);
    }

    #[test]
    #[should_panic(expected = "unique task names")]
    fn duplicate_names_are_rejected() {
        let limits = AnalysisLimits::default();
        let set = TaskSet::new(vec![lo_task("twin", 10, 1), lo_task("twin", 20, 1)]);
        let _ = partition(
            &set,
            PlatformCap::new(2, Rational::TWO),
            Heuristic::FirstFit,
            &limits,
        );
    }
}
