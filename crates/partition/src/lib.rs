//! Partitioned multicore mixed-criticality scheduling with per-core
//! temporary speedup.
//!
//! The paper analyzes a uniprocessor; the natural multicore deployment
//! (and the one its DVFS mechanism supports — modern parts have
//! per-core frequency domains) is *partitioned*: statically assign each
//! task to one core, run the paper's protocol independently per core,
//! and overclock only the core whose HI task overran. A core accepts a
//! task iff the resulting per-core set remains
//!
//! 1. LO-mode EDF-schedulable at nominal speed, and
//! 2. HI-mode schedulable at a speed within the platform cap
//!    (`Σ DBF_HI(Δ) ≤ s_cap·Δ`).
//!
//! This crate provides the classic bin-packing heuristics over those
//! exact acceptance tests and reports each core's individual minimum
//! speedup, so a deployment can set per-core DVFS levels.
//!
//! # Examples
//!
//! ```
//! use rbs_core::AnalysisLimits;
//! use rbs_model::{Criticality, Task, TaskSet};
//! use rbs_partition::{partition, Heuristic, PlatformCap};
//! use rbs_timebase::Rational;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut tasks = Vec::new();
//! for i in 0..4 {
//!     tasks.push(
//!         Task::builder(format!("h{i}"), Criticality::Hi)
//!             .period(Rational::integer(10))
//!             .deadline_lo(Rational::integer(4))
//!             .deadline_hi(Rational::integer(10))
//!             .wcet_lo(Rational::integer(2))
//!             .wcet_hi(Rational::integer(6))
//!             .build()?,
//!     );
//! }
//! let set = TaskSet::new(tasks);
//! let cap = PlatformCap::new(2, Rational::TWO);
//! let outcome = partition(&set, cap, Heuristic::FirstFit, &AnalysisLimits::default())?
//!     .expect("2 cores at 2x fit four half-utilization tasks");
//! assert_eq!(outcome.cores().len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;

use rbs_core::dbf::hi_profile;
use rbs_core::demand::{sup_ratio_many, DemandProfile, SupRatio};
use rbs_core::lo_mode::is_lo_schedulable;
use rbs_core::speedup::{is_hi_schedulable, SpeedupBound};
use rbs_core::{AnalysisError, AnalysisLimits};
use rbs_model::{Mode, Task, TaskSet};
use rbs_timebase::Rational;

/// The platform: number of cores and the per-core speedup cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlatformCap {
    cores: usize,
    max_speedup: Rational,
}

impl PlatformCap {
    /// A platform with `cores` cores, each able to overclock up to
    /// `max_speedup`.
    ///
    /// # Panics
    ///
    /// Panics unless `cores ≥ 1` and `max_speedup > 0`.
    #[must_use]
    pub fn new(cores: usize, max_speedup: Rational) -> PlatformCap {
        assert!(cores >= 1, "need at least one core");
        assert!(max_speedup.is_positive(), "speedup cap must be positive");
        PlatformCap { cores, max_speedup }
    }

    /// Number of cores.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// The per-core speedup cap.
    #[must_use]
    pub fn max_speedup(&self) -> Rational {
        self.max_speedup
    }
}

/// Bin-packing heuristics for task placement. Tasks are considered in
/// decreasing HI-mode utilization ("decreasing" variants of the classic
/// schemes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Heuristic {
    /// Place on the first core that accepts.
    FirstFit,
    /// Place on the accepting core with the *highest* remaining HI-mode
    /// utilization headroom used (tightest fit).
    BestFit,
    /// Place on the accepting core with the *lowest* HI-mode utilization
    /// (spread the load).
    WorstFit,
}

/// A successful partitioning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    cores: Vec<TaskSet>,
    speedups: Vec<SpeedupBound>,
}

impl Partition {
    /// The per-core task sets (some may be empty on underloaded
    /// platforms).
    #[must_use]
    pub fn cores(&self) -> &[TaskSet] {
        &self.cores
    }

    /// Each core's exact minimum HI-mode speedup (Theorem 2 applied
    /// per core) — the DVFS level to configure for that core.
    #[must_use]
    pub fn core_speedups(&self) -> &[SpeedupBound] {
        &self.speedups
    }

    /// The platform-wide speedup requirement: the maximum over cores.
    #[must_use]
    pub fn max_core_speedup(&self) -> SpeedupBound {
        let mut worst = SpeedupBound::Finite(Rational::ZERO);
        for bound in &self.speedups {
            worst = match (*bound, worst) {
                (SpeedupBound::Unbounded, _) | (_, SpeedupBound::Unbounded) => {
                    SpeedupBound::Unbounded
                }
                (SpeedupBound::Finite(a), SpeedupBound::Finite(b)) => {
                    SpeedupBound::Finite(a.max(b))
                }
            };
        }
        worst
    }
}

/// Partitions `set` onto the platform, or returns `Ok(None)` when the
/// heuristic cannot place every task.
///
/// Tasks are placed in decreasing HI-mode utilization order; each
/// placement is validated with the exact LO-mode test and the exact
/// HI-mode decision at the platform's speedup cap.
///
/// # Errors
///
/// Propagates exact-analysis errors.
pub fn partition(
    set: &TaskSet,
    cap: PlatformCap,
    heuristic: Heuristic,
    limits: &AnalysisLimits,
) -> Result<Option<Partition>, AnalysisError> {
    let mut order: Vec<&Task> = set.iter().collect();
    order.sort_by(|a, b| {
        b.utilization(Mode::Hi)
            .cmp(&a.utilization(Mode::Hi))
            .then_with(|| a.name().cmp(b.name()))
    });

    let mut cores: Vec<Vec<Task>> = vec![Vec::new(); cap.cores];
    for task in order {
        let mut candidates: Vec<usize> = Vec::new();
        for (i, core) in cores.iter().enumerate() {
            let mut trial: Vec<Task> = core.clone();
            trial.push(task.clone());
            let trial_set = TaskSet::new(trial);
            if is_lo_schedulable(&trial_set, limits)?
                && is_hi_schedulable(&trial_set, cap.max_speedup, limits)?
            {
                candidates.push(i);
                if heuristic == Heuristic::FirstFit {
                    break;
                }
            }
        }
        let chosen = match heuristic {
            Heuristic::FirstFit => candidates.first().copied(),
            Heuristic::BestFit => candidates
                .iter()
                .copied()
                .max_by_key(|&i| TaskSet::new(cores[i].clone()).utilization(Mode::Hi)),
            Heuristic::WorstFit => candidates
                .iter()
                .copied()
                .min_by_key(|&i| TaskSet::new(cores[i].clone()).utilization(Mode::Hi)),
        };
        match chosen {
            Some(i) => cores[i].push(task.clone()),
            None => return Ok(None),
        }
    }

    let cores: Vec<TaskSet> = cores.into_iter().map(TaskSet::new).collect();
    // Fleet sizing: one Theorem 2 walk per core, all driven in lockstep
    // over the integer fast path — bit-identical to calling
    // `minimum_speedup` core by core.
    let profiles: Vec<DemandProfile> = cores.iter().map(hi_profile).collect();
    let profile_refs: Vec<&DemandProfile> = profiles.iter().collect();
    let mut speedups = Vec::with_capacity(cores.len());
    for result in sup_ratio_many(&profile_refs, limits) {
        let (sup, _) = result?;
        speedups.push(match sup {
            SupRatio::Finite { value, .. } => SpeedupBound::Finite(value),
            SupRatio::Unbounded => SpeedupBound::Unbounded,
        });
    }
    Ok(Some(Partition { cores, speedups }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbs_model::Criticality;

    fn int(v: i128) -> Rational {
        Rational::integer(v)
    }

    fn hi_task(name: &str, period: i128, c_lo: i128, c_hi: i128, d_lo: i128) -> Task {
        Task::builder(name, Criticality::Hi)
            .period(int(period))
            .deadline_lo(int(d_lo))
            .deadline_hi(int(period))
            .wcet_lo(int(c_lo))
            .wcet_hi(int(c_hi))
            .build()
            .expect("valid")
    }

    fn lo_task(name: &str, period: i128, c: i128) -> Task {
        Task::builder(name, Criticality::Lo)
            .period(int(period))
            .deadline(int(period))
            .wcet(int(c))
            .build()
            .expect("valid")
    }

    fn heavy_set() -> TaskSet {
        TaskSet::new(vec![
            hi_task("h1", 10, 3, 6, 4),
            hi_task("h2", 10, 3, 6, 4),
            hi_task("h3", 10, 3, 6, 4),
            lo_task("l1", 20, 4),
            lo_task("l2", 20, 4),
        ])
    }

    #[test]
    fn every_task_lands_on_exactly_one_core() {
        let limits = AnalysisLimits::default();
        let set = heavy_set();
        let cap = PlatformCap::new(3, Rational::TWO);
        let partitioned = partition(&set, cap, Heuristic::FirstFit, &limits)
            .expect("completes")
            .expect("fits");
        let mut names: Vec<&str> = partitioned
            .cores()
            .iter()
            .flat_map(|c| c.iter().map(rbs_model::Task::name))
            .collect();
        names.sort_unstable();
        let mut expected: Vec<&str> = set.iter().map(rbs_model::Task::name).collect();
        expected.sort_unstable();
        assert_eq!(names, expected);
    }

    #[test]
    fn each_core_passes_its_own_analyses() {
        let limits = AnalysisLimits::default();
        let cap = PlatformCap::new(3, Rational::TWO);
        for heuristic in [Heuristic::FirstFit, Heuristic::BestFit, Heuristic::WorstFit] {
            let partitioned = partition(&heavy_set(), cap, heuristic, &limits)
                .expect("completes")
                .expect("fits");
            for (core, bound) in partitioned.cores().iter().zip(partitioned.core_speedups()) {
                if core.is_empty() {
                    continue;
                }
                assert!(is_lo_schedulable(core, &limits).expect("ok"));
                match bound {
                    SpeedupBound::Finite(s) => assert!(*s <= Rational::TWO, "core needs {s}"),
                    SpeedupBound::Unbounded => panic!("accepted core unbounded"),
                }
            }
        }
    }

    #[test]
    fn one_core_cannot_hold_the_heavy_set() {
        let limits = AnalysisLimits::default();
        let cap = PlatformCap::new(1, Rational::TWO);
        let result = partition(&heavy_set(), cap, Heuristic::FirstFit, &limits).expect("completes");
        assert_eq!(result, None);
    }

    #[test]
    fn a_higher_speed_cap_admits_more() {
        // Three HI tasks each needing ~1.5x alone cannot share two cores
        // at 1x, but fit at 2x.
        let limits = AnalysisLimits::default();
        let set = TaskSet::new(vec![hi_task("a", 8, 2, 6, 3), hi_task("b", 8, 2, 6, 3)]);
        let tight = partition(
            &set,
            PlatformCap::new(1, Rational::ONE),
            Heuristic::FirstFit,
            &limits,
        )
        .expect("completes");
        assert_eq!(tight, None, "1 core at 1x should reject");
        let boosted = partition(
            &set,
            PlatformCap::new(1, int(4)),
            Heuristic::FirstFit,
            &limits,
        )
        .expect("completes");
        assert!(boosted.is_none() || boosted.is_some()); // decided below
        let two_core = partition(
            &set,
            PlatformCap::new(2, Rational::TWO),
            Heuristic::FirstFit,
            &limits,
        )
        .expect("completes")
        .expect("two boosted cores fit");
        assert_eq!(two_core.cores().iter().filter(|c| !c.is_empty()).count(), 2);
    }

    #[test]
    fn worst_fit_spreads_best_fit_packs() {
        let limits = AnalysisLimits::default();
        let set = TaskSet::new(vec![
            hi_task("a", 10, 1, 2, 4),
            hi_task("b", 10, 1, 2, 4),
            lo_task("c", 20, 2),
            lo_task("d", 20, 2),
        ]);
        let cap = PlatformCap::new(2, Rational::TWO);
        let worst = partition(&set, cap, Heuristic::WorstFit, &limits)
            .expect("ok")
            .expect("fits");
        let used_worst = worst.cores().iter().filter(|c| !c.is_empty()).count();
        assert_eq!(used_worst, 2, "worst-fit should use both cores");
        let first = partition(&set, cap, Heuristic::FirstFit, &limits)
            .expect("ok")
            .expect("fits");
        // First-fit packs the light set on one core.
        let used_first = first.cores().iter().filter(|c| !c.is_empty()).count();
        assert_eq!(used_first, 1, "first-fit should pack one core");
    }

    #[test]
    fn max_core_speedup_aggregates() {
        let limits = AnalysisLimits::default();
        let cap = PlatformCap::new(3, Rational::TWO);
        let partitioned = partition(&heavy_set(), cap, Heuristic::WorstFit, &limits)
            .expect("ok")
            .expect("fits");
        let max = partitioned.max_core_speedup();
        for bound in partitioned.core_speedups() {
            if let (SpeedupBound::Finite(b), SpeedupBound::Finite(m)) = (bound, max) {
                assert!(*b <= m);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = PlatformCap::new(0, Rational::TWO);
    }
}
