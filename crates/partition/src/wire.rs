//! Wire forms for the service's `partition` request kind.
//!
//! A request names the task set plus the platform/heuristic/objective
//! spec; the response is the full [`PartitionOutcome`]: the per-core
//! assignment with each core's exact `s_min`, the first unplaced task
//! on a shed, and the run's probe/screen counters.
//!
//! ```json
//! {"partition": {"tasks": [...], "cores": 4,
//!                "max_speedup": {"num": 2, "den": 1},
//!                "heuristic": "worst_fit",
//!                "objective": {"shared_budget": {"num": 5, "den": 1}}}}
//! ```

use rbs_json::{FromJson, Json, JsonError, ToJson};
use rbs_model::{Task, TaskSet};
use rbs_timebase::Rational;

use crate::{Heuristic, Objective, PartitionOutcome, PartitionSpec, PlatformCap};

/// One `partition` request: the set to place and the placement spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionRequest {
    /// The tasks to place.
    pub set: TaskSet,
    /// Platform, heuristic and objective.
    pub spec: PartitionSpec,
}

impl FromJson for PartitionRequest {
    fn from_json(value: &Json) -> Result<PartitionRequest, JsonError> {
        let set = TaskSet::from_json(value.field("tasks")?)?;
        let cores = value
            .field("cores")?
            .as_i128()
            .filter(|&n| n >= 1)
            .ok_or_else(|| JsonError::new("partition requires \"cores\" >= 1"))?;
        let cores = usize::try_from(cores)
            .map_err(|_| JsonError::new("partition \"cores\" out of range"))?;
        let max_speedup = Rational::from_json(value.field("max_speedup")?)?;
        if !max_speedup.is_positive() {
            return Err(JsonError::new("partition \"max_speedup\" must be positive"));
        }
        let heuristic = match value.get("heuristic") {
            None => Heuristic::FirstFit,
            Some(tag) => match tag.as_str() {
                Some("first_fit") => Heuristic::FirstFit,
                Some("best_fit") => Heuristic::BestFit,
                Some("worst_fit") => Heuristic::WorstFit,
                _ => {
                    return Err(JsonError::new(
                        "partition \"heuristic\" must be \"first_fit\", \"best_fit\" or \"worst_fit\"",
                    ));
                }
            },
        };
        let objective = match value.get("objective") {
            None => Objective::CapOnly,
            Some(tag) => objective_from_json(tag)?,
        };
        let mut names: Vec<&str> = set.iter().map(Task::name).collect();
        names.sort_unstable();
        if names.windows(2).any(|pair| pair[0] == pair[1]) {
            return Err(JsonError::new("partition requires unique task names"));
        }
        let spec = PartitionSpec::new(PlatformCap::new(cores, max_speedup), heuristic)
            .with_objective(objective);
        Ok(PartitionRequest { set, spec })
    }
}

fn objective_from_json(value: &Json) -> Result<Objective, JsonError> {
    match value {
        Json::Str(tag) if tag == "cap_only" => Ok(Objective::CapOnly),
        Json::Str(tag) if tag == "min_max_speedup" => Ok(Objective::MinMaxSpeedup),
        Json::Object(fields) if fields.len() == 1 && fields[0].0 == "shared_budget" => {
            let budget = Rational::from_json(&fields[0].1)?;
            if !budget.is_positive() {
                return Err(JsonError::new("partition shared budget must be positive"));
            }
            Ok(Objective::SharedBudget(budget))
        }
        _ => Err(JsonError::new(
            "partition \"objective\" must be \"cap_only\", \"min_max_speedup\" or {\"shared_budget\": rational}",
        )),
    }
}

impl PartitionSpec {
    /// Deterministic byte encoding of the spec for canonical-form cache
    /// keying; the task set itself is canonicalized separately, so two
    /// requests differing only in task order share a key.
    #[must_use]
    pub fn canonical_detail(&self) -> Vec<u8> {
        let cap = self.cap();
        let mut detail = Vec::with_capacity(64);
        detail.extend_from_slice(b"cores ");
        detail.extend_from_slice(cap.cores().to_string().as_bytes());
        detail.extend_from_slice(b"|cap ");
        push_rational(&mut detail, cap.max_speedup());
        detail.extend_from_slice(b"|h ");
        detail.extend_from_slice(match self.heuristic() {
            Heuristic::FirstFit => b"ff".as_slice(),
            Heuristic::BestFit => b"bf".as_slice(),
            Heuristic::WorstFit => b"wf".as_slice(),
        });
        detail.extend_from_slice(b"|obj ");
        match self.objective() {
            Objective::CapOnly => detail.extend_from_slice(b"cap"),
            Objective::MinMaxSpeedup => detail.extend_from_slice(b"minmax"),
            Objective::SharedBudget(budget) => {
                detail.extend_from_slice(b"budget ");
                push_rational(&mut detail, budget);
            }
        }
        detail
    }
}

fn push_rational(detail: &mut Vec<u8>, value: Rational) {
    detail.extend_from_slice(value.numer().to_string().as_bytes());
    detail.push(b'/');
    detail.extend_from_slice(value.denom().to_string().as_bytes());
}

impl ToJson for PartitionOutcome {
    fn to_json(&self) -> Json {
        let mut fields = vec![("fits".to_owned(), Json::Bool(self.is_fit()))];
        if let Some(partition) = self.partition() {
            let cores: Vec<Json> = partition
                .cores()
                .iter()
                .zip(partition.core_speedups())
                .map(|(core, bound)| {
                    Json::Object(vec![
                        (
                            "tasks".to_owned(),
                            Json::Array(
                                core.iter()
                                    .map(|t| Json::Str(t.name().to_owned()))
                                    .collect(),
                            ),
                        ),
                        ("s_min".to_owned(), bound.to_json()),
                    ])
                })
                .collect();
            fields.push(("cores".to_owned(), Json::Array(cores)));
            fields.push((
                "max_s_min".to_owned(),
                partition.max_core_speedup().to_json(),
            ));
        }
        if let Some(name) = self.unplaced() {
            fields.push(("unplaced".to_owned(), Json::Str(name.to_owned())));
        }
        fields.push(("probes".to_owned(), Json::Int(i128::from(self.probes()))));
        fields.push((
            "screened".to_owned(),
            Json::Int(i128::from(self.screened())),
        ));
        Json::Object(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use rbs_model::Criticality;

    fn request_json(extra: &[(&str, Json)]) -> Json {
        let task = Task::builder("a", Criticality::Lo)
            .period(Rational::integer(10))
            .deadline(Rational::integer(10))
            .wcet(Rational::TWO)
            .build()
            .expect("valid");
        let set = TaskSet::new(vec![task]);
        let mut fields = vec![
            ("tasks".to_owned(), set.to_json()),
            ("cores".to_owned(), Json::Int(2)),
            ("max_speedup".to_owned(), Rational::TWO.to_json()),
        ];
        for (key, value) in extra {
            fields.push(((*key).to_owned(), value.clone()));
        }
        Json::Object(fields)
    }

    #[test]
    fn defaults_are_first_fit_cap_only() {
        let request = PartitionRequest::from_json(&request_json(&[])).expect("parses");
        assert_eq!(request.spec.heuristic(), Heuristic::FirstFit);
        assert_eq!(request.spec.objective(), Objective::CapOnly);
        assert_eq!(request.spec.cap().cores(), 2);
    }

    #[test]
    fn explicit_heuristic_and_objective_parse() {
        let request = PartitionRequest::from_json(&request_json(&[
            ("heuristic", Json::Str("worst_fit".to_owned())),
            (
                "objective",
                Json::Object(vec![(
                    "shared_budget".to_owned(),
                    Rational::new(5, 2).to_json(),
                )]),
            ),
        ]))
        .expect("parses");
        assert_eq!(request.spec.heuristic(), Heuristic::WorstFit);
        assert_eq!(
            request.spec.objective(),
            Objective::SharedBudget(Rational::new(5, 2))
        );
    }

    #[test]
    fn bad_fields_are_rejected() {
        for extra in [
            ("heuristic", Json::Str("next_fit".to_owned())),
            ("objective", Json::Str("cheapest".to_owned())),
            (
                "objective",
                Json::Object(vec![("shared_budget".to_owned(), Rational::ZERO.to_json())]),
            ),
        ] {
            assert!(PartitionRequest::from_json(&request_json(&[extra])).is_err());
        }
    }

    #[test]
    fn canonical_detail_distinguishes_specs() {
        let base = PartitionSpec::new(PlatformCap::new(4, Rational::TWO), Heuristic::FirstFit);
        let mut seen = std::collections::HashSet::new();
        for spec in [
            base,
            base.with_objective(Objective::MinMaxSpeedup),
            base.with_objective(Objective::SharedBudget(Rational::new(7, 2))),
            PartitionSpec::new(PlatformCap::new(5, Rational::TWO), Heuristic::FirstFit),
            PartitionSpec::new(
                PlatformCap::new(4, Rational::new(3, 2)),
                Heuristic::FirstFit,
            ),
            PartitionSpec::new(PlatformCap::new(4, Rational::TWO), Heuristic::BestFit),
        ] {
            assert!(
                seen.insert(spec.canonical_detail()),
                "collision for {spec:?}"
            );
        }
    }
}
