//! Simulating a partitioned deployment: every core runs the paper's
//! protocol independently.
//!
//! [`simulate`] drives one [`rbs_sim::Simulation`] per core — each at
//! its own analytically sized speedup — and aggregates the results into
//! a [`FleetReport`]. Because cores share nothing in the partitioned
//! model (per-core DVFS domains, no migration), the composition is
//! exact: the uniprocessor guarantees apply core-wise.

use rbs_core::speedup::SpeedupBound;
use rbs_sim::{ExecutionScenario, SimError, SimReport, Simulation};
use rbs_timebase::Rational;

use crate::Partition;

/// Aggregated outcome of simulating every core of a partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetReport {
    per_core: Vec<SimReport>,
    speeds: Vec<Rational>,
}

impl FleetReport {
    /// The per-core simulation reports (empty cores produce quiet
    /// reports).
    #[must_use]
    pub fn per_core(&self) -> &[SimReport] {
        &self.per_core
    }

    /// The HI-mode speed each core was driven at.
    #[must_use]
    pub fn core_speeds(&self) -> &[Rational] {
        &self.speeds
    }

    /// Total deadline misses across the platform.
    #[must_use]
    pub fn total_misses(&self) -> usize {
        self.per_core.iter().map(|r| r.misses().len()).sum()
    }

    /// Total dynamic energy across the platform (cubic DVFS model).
    #[must_use]
    pub fn total_energy(&self) -> Rational {
        self.per_core.iter().map(SimReport::energy).sum()
    }

    /// The longest measured recovery on any core.
    #[must_use]
    pub fn max_recovery(&self) -> Option<Rational> {
        self.per_core
            .iter()
            .filter_map(SimReport::max_recovery)
            .max()
    }

    /// Total HI-mode episodes across the platform.
    #[must_use]
    pub fn total_episodes(&self) -> usize {
        self.per_core.iter().map(|r| r.hi_episodes().len()).sum()
    }
}

/// Rounds a speed up onto a `1/16` grid (keeps exact simulated
/// timestamps on small denominators).
fn snap_up(s: Rational) -> Rational {
    let q = Rational::new(1, 16);
    let steps = s / q;
    if steps.is_integer() {
        s
    } else {
        Rational::integer(steps.floor() + 1) * q
    }
}

/// Simulates every core of `partition` for `horizon` time units under
/// the given overrun scenario. Each core runs at its own analytic
/// `s_min` (snapped up to a `1/16` grid, floored at nominal speed), so
/// the platform uses exactly as much boost per core as that core needs.
///
/// # Errors
///
/// Propagates the first core's [`SimError`], if any.
///
/// # Panics
///
/// Panics if some accepted core has an unbounded speedup requirement
/// (cannot happen for partitions produced by [`crate::partition`]).
pub fn simulate(
    partition: &Partition,
    horizon: Rational,
    scenario: &ExecutionScenario,
) -> Result<FleetReport, SimError> {
    let mut per_core = Vec::with_capacity(partition.cores().len());
    let mut speeds = Vec::with_capacity(partition.cores().len());
    for (core, bound) in partition.cores().iter().zip(partition.core_speedups()) {
        let speed = match bound {
            SpeedupBound::Finite(s) => snap_up((*s).max(Rational::ONE)),
            SpeedupBound::Unbounded => {
                panic!("accepted partitions have finite per-core speedups")
            }
        };
        let report = Simulation::new(core.clone())
            .speedup(speed)
            .horizon(horizon)
            .execution(scenario.clone())
            .run()?;
        per_core.push(report);
        speeds.push(speed);
    }
    Ok(FleetReport { per_core, speeds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{partition, Heuristic, PlatformCap};
    use rbs_core::AnalysisLimits;
    use rbs_model::{Criticality, Task, TaskSet};

    fn int(v: i128) -> Rational {
        Rational::integer(v)
    }

    fn workload() -> TaskSet {
        let mut tasks = Vec::new();
        for i in 0..3 {
            tasks.push(
                Task::builder(format!("h{i}"), Criticality::Hi)
                    .period(int(10))
                    .deadline_lo(int(4))
                    .deadline_hi(int(10))
                    .wcet_lo(int(3))
                    .wcet_hi(int(6))
                    .build()
                    .expect("valid"),
            );
        }
        tasks.push(
            Task::builder("l0", Criticality::Lo)
                .period(int(20))
                .deadline(int(20))
                .wcet(int(4))
                .build()
                .expect("valid"),
        );
        TaskSet::new(tasks)
    }

    #[test]
    fn partitioned_fleet_meets_all_deadlines() {
        let limits = AnalysisLimits::default();
        let cap = PlatformCap::new(3, Rational::TWO);
        let parts = partition(&workload(), cap, Heuristic::WorstFit, &limits)
            .expect("completes")
            .expect("fits");
        let fleet = simulate(&parts, int(500), &ExecutionScenario::HiWcet).expect("runs");
        assert_eq!(fleet.total_misses(), 0);
        assert!(
            fleet.total_episodes() > 0,
            "overruns should trigger episodes"
        );
        assert_eq!(fleet.per_core().len(), 3);
        assert_eq!(fleet.core_speeds().len(), 3);
        // Speeds are per-core: at least nominal, at most the cap plus
        // the snap grid.
        for s in fleet.core_speeds() {
            assert!(*s >= Rational::ONE);
            assert!(*s <= Rational::TWO + Rational::new(1, 16));
        }
    }

    #[test]
    fn fleet_energy_aggregates_cores() {
        let limits = AnalysisLimits::default();
        let cap = PlatformCap::new(3, Rational::TWO);
        let parts = partition(&workload(), cap, Heuristic::FirstFit, &limits)
            .expect("completes")
            .expect("fits");
        let quiet = simulate(&parts, int(200), &ExecutionScenario::LoWcet).expect("runs");
        let stressed = simulate(&parts, int(200), &ExecutionScenario::HiWcet).expect("runs");
        assert_eq!(quiet.total_misses(), 0);
        assert_eq!(stressed.total_misses(), 0);
        // Sustained overruns execute more work at boosted speed.
        assert!(stressed.total_energy() > quiet.total_energy());
        assert_eq!(quiet.total_episodes(), 0);
        assert!(quiet.max_recovery().is_none());
        assert!(stressed.max_recovery().is_some());
    }
}
