//! Table I and Examples 1–2: minimum speedup and resetting time for the
//! running example.

use std::fmt;

use rbs_core::resetting::{resetting_time, ResettingBound};
use rbs_core::speedup::{minimum_speedup, SpeedupBound};
use rbs_core::AnalysisLimits;
use rbs_timebase::Rational;

use crate::workloads::{table1, table1_degraded};

/// The computed Example 1/2 quantities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Results {
    /// `s_min` with τ2 at its original service (paper: `4/3`).
    pub s_min_plain: SpeedupBound,
    /// `s_min` with `D_2(HI) = 15, T_2(HI) = 20` (paper: ≈ 0.94).
    pub s_min_degraded: SpeedupBound,
    /// `(s, Δ_R plain, Δ_R degraded)` rows (paper: `Δ_R = 6` at `s = 2`
    /// for its lost Table I numbers; the reconstruction yields 5).
    pub resetting_rows: Vec<(Rational, ResettingBound, ResettingBound)>,
}

/// Runs the Table I experiment.
///
/// # Panics
///
/// Panics if the exact analysis fails on this two-task example (it
/// cannot, short of a bug).
#[must_use]
pub fn run() -> Table1Results {
    let limits = AnalysisLimits::default();
    let plain = table1();
    let degraded = table1_degraded();
    let s_min_plain = minimum_speedup(&plain, &limits)
        .expect("analysis completes")
        .bound();
    let s_min_degraded = minimum_speedup(&degraded, &limits)
        .expect("analysis completes")
        .bound();
    let speeds = [
        Rational::new(4, 3),
        Rational::new(3, 2),
        Rational::TWO,
        Rational::new(5, 2),
        Rational::integer(3),
    ];
    let resetting_rows = speeds
        .iter()
        .map(|&s| {
            let plain_dr = resetting_time(&plain, s, &limits)
                .expect("analysis completes")
                .bound();
            let degraded_dr = resetting_time(&degraded, s, &limits)
                .expect("analysis completes")
                .bound();
            (s, plain_dr, degraded_dr)
        })
        .collect();
    Table1Results {
        s_min_plain,
        s_min_degraded,
        resetting_rows,
    }
}

impl fmt::Display for Table1Results {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== Table I / Examples 1-2 (reconstructed task set) ==")?;
        writeln!(f, "tau  chi  C(LO) C(HI) D(LO) D(HI) T(LO) T(HI)")?;
        writeln!(f, "tau1 HI   1     2     2     5     5     5")?;
        writeln!(f, "tau2 LO   3     3     10    10    10    10")?;
        writeln!(f, "degraded tau2: D(HI)=15, T(HI)=20")?;
        writeln!(f)?;
        writeln!(
            f,
            "s_min (no degradation):   {}  [paper: 4/3]",
            self.s_min_plain
        )?;
        writeln!(
            f,
            "s_min (with degradation): {} ~= {:.4}  [paper: ~0.94; claim preserved: < 1]",
            self.s_min_degraded,
            self.s_min_degraded
                .as_finite()
                .map_or(f64::INFINITY, Rational::to_f64)
        )?;
        writeln!(f)?;
        writeln!(f, "service resetting time Delta_R:")?;
        writeln!(f, "{:>8} {:>16} {:>16}", "s", "plain", "degraded")?;
        for (s, plain, degraded) in &self.resetting_rows {
            writeln!(
                f,
                "{:>8} {:>16} {:>16}",
                s.to_string(),
                plain.to_string(),
                degraded.to_string()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_paper_anchors() {
        let results = run();
        // Exact headline value.
        assert_eq!(
            results.s_min_plain,
            SpeedupBound::Finite(Rational::new(4, 3))
        );
        // Qualitative claim: degradation brings the requirement below 1.
        let degraded = results.s_min_degraded.as_finite().expect("finite");
        assert!(degraded < Rational::ONE);
        // Δ_R at s = 2 for the reconstruction is 5 (paper's lost set: 6).
        let (_, plain_at_2, _) = results.resetting_rows[2];
        assert_eq!(
            plain_at_2,
            ResettingBound::Finite(Rational::TWO + Rational::integer(3))
        );
    }

    #[test]
    fn resetting_rows_decrease_with_speed() {
        let results = run();
        let finite: Vec<Rational> = results
            .resetting_rows
            .iter()
            .filter_map(|(_, plain, _)| plain.as_finite())
            .collect();
        assert!(finite.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn display_contains_the_key_rows() {
        let text = run().to_string();
        assert!(text.contains("s_min (no degradation):   4/3"));
        assert!(text.contains("Delta_R"));
    }
}
