//! Exact order statistics for box-whisker summaries (Fig. 6).

use rbs_timebase::Rational;

/// A five-number summary plus mean, as plotted by the paper's
/// box-whisker figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FiveNumber {
    /// Minimum.
    pub min: Rational,
    /// Lower quartile (25th percentile).
    pub q1: Rational,
    /// Median (50th percentile).
    pub median: Rational,
    /// Upper quartile (75th percentile).
    pub q3: Rational,
    /// Maximum.
    pub max: Rational,
    /// Arithmetic mean.
    pub mean: Rational,
}

/// Computes the five-number summary of a non-empty sample.
///
/// Quantiles use the common linear-interpolation rule (R-7), evaluated
/// exactly in rational arithmetic.
///
/// Returns `None` for an empty sample.
///
/// # Examples
///
/// ```
/// use rbs_experiments::stats::five_number;
/// use rbs_timebase::Rational;
///
/// let sample: Vec<Rational> = (1..=5).map(Rational::integer).collect();
/// let s = five_number(&sample).expect("non-empty");
/// assert_eq!(s.median, Rational::integer(3));
/// assert_eq!(s.q1, Rational::integer(2));
/// assert_eq!(s.q3, Rational::integer(4));
/// assert_eq!(s.mean, Rational::integer(3));
/// ```
#[must_use]
pub fn five_number(sample: &[Rational]) -> Option<FiveNumber> {
    if sample.is_empty() {
        return None;
    }
    let mut sorted = sample.to_vec();
    sorted.sort_unstable();
    let mean = robust_mean(&sorted);
    Some(FiveNumber {
        min: sorted[0],
        q1: quantile_sorted(&sorted, Rational::new(1, 4)),
        median: quantile_sorted(&sorted, Rational::new(1, 2)),
        q3: quantile_sorted(&sorted, Rational::new(3, 4)),
        max: sorted[sorted.len() - 1],
        mean,
    })
}

/// Exact R-7 quantile of an already-sorted sample.
///
/// # Panics
///
/// Panics if the sample is empty or `q` is outside `[0, 1]`.
#[must_use]
pub fn quantile_sorted(sorted: &[Rational], q: Rational) -> Rational {
    assert!(!sorted.is_empty(), "sample must be non-empty");
    assert!(
        !q.is_negative() && q <= Rational::ONE,
        "quantile must lie in [0, 1]"
    );
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    // h = (n − 1)·q; interpolate between floor(h) and floor(h)+1.
    let h = Rational::integer((n - 1) as i128) * q;
    let lo = h.floor();
    let frac = h - Rational::integer(lo);
    let lo_idx = usize::try_from(lo).expect("index fits");
    if frac.is_zero() || lo_idx + 1 >= n {
        sorted[lo_idx]
    } else {
        sorted[lo_idx] + frac * (sorted[lo_idx + 1] - sorted[lo_idx])
    }
}

/// The mean of a non-empty sample: exact when the rational sum fits in
/// `i128`, otherwise rounded to a nanoscale grid (summing hundreds of
/// samples with unrelated denominators can overflow the exact
/// representation; quantiles never do, as they touch at most two
/// values).
fn robust_mean(sample: &[Rational]) -> Rational {
    let n = Rational::integer(sample.len() as i128);
    let mut acc = Rational::ZERO;
    for &v in sample {
        match acc.checked_add(v) {
            Ok(sum) => acc = sum,
            Err(_) => {
                let approx: f64 =
                    sample.iter().map(|r| r.to_f64()).sum::<f64>() / sample.len() as f64;
                return Rational::new((approx * 1e9).round() as i128, 1_000_000_000);
            }
        }
    }
    acc / n
}

/// The exact median of a sample (`None` when empty).
#[must_use]
pub fn median(sample: &[Rational]) -> Option<Rational> {
    five_number(sample).map(|s| s.median)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i128) -> Rational {
        Rational::integer(v)
    }

    #[test]
    fn empty_sample_is_none() {
        assert_eq!(five_number(&[]), None);
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn singleton_sample() {
        let s = five_number(&[int(7)]).expect("non-empty");
        assert_eq!(s.min, int(7));
        assert_eq!(s.q1, int(7));
        assert_eq!(s.median, int(7));
        assert_eq!(s.q3, int(7));
        assert_eq!(s.max, int(7));
        assert_eq!(s.mean, int(7));
    }

    #[test]
    fn even_sample_interpolates_median() {
        let s = five_number(&[int(1), int(2), int(3), int(4)]).expect("non-empty");
        assert_eq!(s.median, Rational::new(5, 2));
        assert_eq!(s.q1, Rational::new(7, 4));
        assert_eq!(s.q3, Rational::new(13, 4));
    }

    #[test]
    fn order_does_not_matter() {
        let a = five_number(&[int(3), int(1), int(2)]).expect("non-empty");
        let b = five_number(&[int(1), int(2), int(3)]).expect("non-empty");
        assert_eq!(a, b);
        assert_eq!(a.median, int(2));
    }

    #[test]
    fn quantile_extremes_hit_min_and_max() {
        let sorted = [int(1), int(5), int(9)];
        assert_eq!(quantile_sorted(&sorted, Rational::ZERO), int(1));
        assert_eq!(quantile_sorted(&sorted, Rational::ONE), int(9));
    }

    #[test]
    fn mean_is_exact() {
        let s = five_number(&[Rational::new(1, 3), Rational::new(2, 3)]).expect("non-empty");
        assert_eq!(s.mean, Rational::new(1, 2));
    }

    #[test]
    #[should_panic(expected = "quantile must lie in [0, 1]")]
    fn out_of_range_quantile_panics() {
        let _ = quantile_sorted(&[Rational::ZERO], Rational::TWO);
    }
}
