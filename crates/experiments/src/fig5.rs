//! Fig. 5: the flight-management-system case study — contour data for
//! the required speedup over `(x, y)` and for the resetting time over
//! `(s, γ)`.

use std::fmt;

use rbs_core::resetting::{resetting_time, ResettingBound};
use rbs_core::speedup::{minimum_speedup, SpeedupBound};
use rbs_core::AnalysisLimits;
use rbs_gen::fms;
use rbs_model::{scaled_task_set, ScalingFactors};
use rbs_timebase::Rational;

/// The Fig. 5 data (times in milliseconds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig5Results {
    /// Panel (a): `(x, y, exact s_min)` over a grid, at `γ = 2`.
    pub speedup_contour: Vec<(Rational, Rational, SpeedupBound)>,
    /// Panel (b): `(s, γ, Δ_R in ms)` over a grid, at `x` minimal and
    /// `y = 2`.
    pub resetting_contour: Vec<(Rational, Rational, ResettingBound)>,
    /// The paper's headline: worst-case recovery at `s = 2` across the
    /// γ grid (paper: < 3 s).
    pub max_recovery_at_2x: Option<Rational>,
}

/// Runs the Fig. 5 experiment.
#[must_use]
pub fn run() -> Fig5Results {
    let limits = AnalysisLimits::default();

    // Panel (a): sweep x and y at γ = 2.
    let specs = fms::specs(Rational::TWO);
    let mut speedup_contour = Vec::new();
    for xi in 1..=10 {
        let x = Rational::new(xi, 10);
        for yi in [1, 2, 3] {
            let y = Rational::integer(yi);
            let factors = ScalingFactors::new(x, y).expect("validated");
            let set = scaled_task_set(&specs, factors).expect("valid FMS set");
            let bound = minimum_speedup(&set, &limits)
                .expect("analysis completes")
                .bound();
            speedup_contour.push((x, y, bound));
        }
    }

    // Panel (b): sweep s and γ with the experiment campaign's defaults
    // (x minimal for LO-schedulability, y = 2).
    let mut resetting_contour = Vec::new();
    let mut max_recovery_at_2x: Option<Rational> = None;
    for gi in [10, 15, 20, 25, 30] {
        let gamma = Rational::new(gi, 10);
        let specs = fms::specs(gamma);
        let Some(set) = crate::workloads::prepare(&specs, Rational::TWO) else {
            continue;
        };
        for si in [12, 15, 20, 25, 30] {
            let s = Rational::new(si, 10);
            let bound = resetting_time(&set, s, &limits)
                .expect("analysis completes")
                .bound();
            if s == Rational::TWO {
                if let ResettingBound::Finite(v) = bound {
                    max_recovery_at_2x = Some(max_recovery_at_2x.map_or(v, |m: Rational| m.max(v)));
                }
            }
            resetting_contour.push((s, gamma, bound));
        }
    }

    Fig5Results {
        speedup_contour,
        resetting_contour,
        max_recovery_at_2x,
    }
}

impl fmt::Display for Fig5Results {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== Fig. 5: flight management system (times in ms) ==")?;
        writeln!(f, "-- (a) exact s_min over (x, y), gamma = 2 --")?;
        writeln!(f, "{:>6} {:>4} {:>12}", "x", "y", "s_min")?;
        for (x, y, bound) in &self.speedup_contour {
            let shown = bound
                .as_finite()
                .map_or_else(|| "+inf".to_owned(), |v| format!("{:.3}", v.to_f64()));
            writeln!(f, "{:>6} {:>4} {:>12}", x.to_string(), y.to_string(), shown)?;
        }
        writeln!(f, "-- (b) Delta_R [ms] over (s, gamma), y = 2 --")?;
        writeln!(f, "{:>6} {:>6} {:>12}", "s", "gamma", "Delta_R")?;
        for (s, gamma, bound) in &self.resetting_contour {
            let shown = bound
                .as_finite()
                .map_or_else(|| "+inf".to_owned(), |v| format!("{:.1}", v.to_f64()));
            writeln!(
                f,
                "{:>6} {:>6} {:>12}",
                s.to_string(),
                gamma.to_string(),
                shown
            )?;
        }
        if let Some(max) = self.max_recovery_at_2x {
            writeln!(
                f,
                "worst-case recovery at s = 2: {:.1} ms  [paper: < 3000 ms]",
                max.to_f64()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preparation_and_degradation_reduce_the_requirement() {
        let results = run();
        // For fixed y, s_min grows with x.
        for yi in [1i128, 2, 3] {
            let y = Rational::integer(yi);
            let values: Vec<Rational> = results
                .speedup_contour
                .iter()
                .filter(|(_, yy, _)| *yy == y)
                .filter_map(|(_, _, b)| b.as_finite())
                .collect();
            assert!(values.windows(2).all(|w| w[0] <= w[1]), "y = {y}");
        }
        // For fixed x, s_min shrinks with y.
        for xi in 1..=9 {
            let x = Rational::new(xi, 10);
            let values: Vec<Rational> = results
                .speedup_contour
                .iter()
                .filter(|(xx, _, _)| *xx == x)
                .filter_map(|(_, _, b)| b.as_finite())
                .collect();
            assert!(values.windows(2).all(|w| w[0] >= w[1]), "x = {x}");
        }
    }

    #[test]
    fn recovery_headline_holds() {
        // Section VI-A: "FMS takes in the worst-case less than 3s to
        // recover with a speedup of 2".
        let results = run();
        let max = results.max_recovery_at_2x.expect("finite recoveries");
        assert!(max < Rational::integer(3000), "recovery {max} ms >= 3 s");
    }

    #[test]
    fn resetting_grows_with_gamma_and_shrinks_with_speed() {
        let results = run();
        // Fixed gamma: decreasing in s.
        for gi in [10i128, 20, 30] {
            let gamma = Rational::new(gi, 10);
            let values: Vec<Rational> = results
                .resetting_contour
                .iter()
                .filter(|(_, gg, _)| *gg == gamma)
                .filter_map(|(_, _, b)| b.as_finite())
                .collect();
            assert!(values.windows(2).all(|w| w[0] >= w[1]), "gamma = {gamma}");
        }
        // Fixed s = 2: increasing in gamma.
        let values: Vec<Rational> = results
            .resetting_contour
            .iter()
            .filter(|(s, _, _)| *s == Rational::TWO)
            .filter_map(|(_, _, b)| b.as_finite())
            .collect();
        assert!(values.windows(2).all(|w| w[0] <= w[1]), "{values:?}");
    }

    #[test]
    fn display_renders_contours() {
        let text = run().to_string();
        assert!(text.contains("(a) exact s_min"));
        assert!(text.contains("(b) Delta_R"));
    }
}
