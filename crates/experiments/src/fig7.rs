//! Fig. 7: schedulability regions under temporary processor speedup —
//! `s = 2`, resetting time required to stay within 5 s, LO tasks
//! terminated at the switch.
//!
//! For every `(U_HI, U_LO)` grid point a batch of task sets is generated
//! in its neighborhood; the reported value is the fraction accepted by
//! each policy:
//!
//! * `speedup` — the paper's scheme: LO-schedulable, HI-schedulable at
//!   `s = 2`, and `Δ_R ≤ 5000 ms`;
//! * `no_speedup` — the same protocol at `s = 1` (the "compared to no
//!   processor speedup" baseline);
//! * `edf_vd` — the classic EDF-VD utilization test;
//! * `reservation` — worst-case reservation EDF.

use std::fmt;

use rbs_baselines::{edf_vd, reservation};
use rbs_core::lo_mode::minimal_feasible_x;
use rbs_core::resetting::ResettingBound;
use rbs_core::{AnalysisLimits, AnalysisScratch, SweepAnalysis, SweepMode};
use rbs_gen::grid::GridConfig;
use rbs_timebase::Rational;

/// Campaign scale knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig7Config {
    /// Task sets per grid point.
    pub sets_per_point: usize,
    /// Grid step numerator over 20 (e.g. 2 → 0.1 steps; the paper uses
    /// 0.05 steps with thousands of sets).
    pub grid_step_twentieths: i128,
    /// RNG master seed.
    pub seed: u64,
    /// Worker threads for the per-grid-point batches (`0` = available
    /// parallelism). Every point's seeds are fixed, so the regions are
    /// identical for every worker count.
    pub jobs: usize,
}

impl Default for Fig7Config {
    fn default() -> Fig7Config {
        Fig7Config {
            sets_per_point: 100,
            grid_step_twentieths: 1,
            seed: 77,
            jobs: 0,
        }
    }
}

/// Acceptance fractions at one grid point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionPoint {
    /// HI-task HI-mode utilization target.
    pub u_hi: Rational,
    /// LO-task utilization target.
    pub u_lo: Rational,
    /// Sets evaluated.
    pub evaluated: usize,
    /// Fraction accepted with 2× speedup and the 5 s reset budget.
    pub speedup: f64,
    /// Fraction accepted without speedup.
    pub no_speedup: f64,
    /// Fraction accepted by the classic EDF-VD test.
    pub edf_vd: f64,
    /// Fraction accepted by worst-case reservations.
    pub reservation: f64,
}

/// The schedulability-region data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Results {
    /// One entry per `(U_HI, U_LO)` grid point.
    pub points: Vec<RegionPoint>,
}

/// Runs the Fig. 7 campaign.
#[must_use]
pub fn run(config: &Fig7Config) -> Fig7Results {
    let limits = AnalysisLimits::default();
    let speed = Rational::TWO;
    let reset_budget = Rational::integer(5000); // 5 s in ms
    let step = config.grid_step_twentieths;
    let mut grid = Vec::new();
    let mut i = step;
    while i <= 20 {
        let mut j = step;
        while j <= 20 {
            grid.push((Rational::new(i, 20), Rational::new(j, 20)));
            j += step;
        }
        i += step;
    }
    let pool = rbs_svc::WorkerPool::for_jobs(config.jobs);
    // One job per grid point; collection by index keeps the row order (and
    // every number — the per-point seeds are fixed) worker-count-invariant.
    // Each worker carries one scratch across its whole share of the grid.
    let points = pool.run_ordered_scoped(grid, AnalysisScratch::new, |scratch, _, (u_hi, u_lo)| {
        region_point(u_hi, u_lo, config, &limits, speed, reset_budget, scratch)
    });
    Fig7Results { points }
}

fn region_point(
    u_hi: Rational,
    u_lo: Rational,
    config: &Fig7Config,
    limits: &AnalysisLimits,
    speed: Rational,
    reset_budget: Rational,
    scratch: &mut AnalysisScratch,
) -> RegionPoint {
    let generator = GridConfig::new(u_hi, u_lo).with_gamma(Rational::integer(10));
    let mut evaluated = 0usize;
    let mut accept_edf_vd = 0usize;
    let mut accept_reservation = 0usize;
    // One sweep context per set with a feasible x (the paper's scheme:
    // x minimal, LO tasks terminated in HI mode). With LO tasks
    // terminated every profile is y-invariant, so this is pure
    // construction sharing — the LO profile serves the LO verdict and
    // the HI/arrival profiles serve all speed queries, built once into
    // the worker's recycled scratch buffers. The whole batch is held so
    // its fits walks can run in lockstep below.
    let mut sweeps: Vec<SweepAnalysis> = Vec::with_capacity(config.sets_per_point);
    for k in 0..config.sets_per_point {
        let seed = config
            .seed
            .wrapping_mul(0x9e37_79b9)
            .wrapping_add((u_hi.numer() as u64) << 32)
            .wrapping_add((u_lo.numer() as u64) << 16)
            .wrapping_add(k as u64);
        let Some(specs) = generator.generate(seed) else {
            continue;
        };
        evaluated += 1;
        if reservation::is_schedulable(&specs) {
            accept_reservation += 1;
        }
        if edf_vd::is_schedulable(&specs) {
            accept_edf_vd += 1;
        }
        let Some(x) = minimal_feasible_x(&specs) else {
            continue;
        };
        sweeps.push(SweepAnalysis::new_in(
            &specs,
            x,
            &[Rational::ONE],
            SweepMode::Terminated,
            limits,
            scratch,
        ));
    }
    // Batched verdicts, same gates in the same order as the per-set
    // protocol: the LO verdict first for every set, the HI verdicts at
    // s = 1 and at `speed` only for LO-schedulable sets, and the reset
    // budget only where the sped-up HI verdict passed. Analysis errors
    // reject the set, matching the sequential protocol.
    let accept_no_speedup;
    let mut accept_speedup = 0usize;
    {
        let mut refs: Vec<&mut SweepAnalysis> = sweeps.iter_mut().collect();
        let lo_ok = SweepAnalysis::is_lo_schedulable_many(&mut refs);
        let mut survivors: Vec<&mut SweepAnalysis> = refs
            .into_iter()
            .zip(lo_ok)
            .filter_map(|(sweep, ok)| ok.unwrap_or(false).then_some(sweep))
            .collect();
        accept_no_speedup = SweepAnalysis::is_hi_schedulable_many(&mut survivors, Rational::ONE)
            .into_iter()
            .filter(|ok| *ok.as_ref().unwrap_or(&false))
            .count();
        let hi_at_speed = SweepAnalysis::is_hi_schedulable_many(&mut survivors, speed);
        for (sweep, ok) in survivors.into_iter().zip(hi_at_speed) {
            if ok.unwrap_or(false)
                && matches!(
                    sweep.resetting_time(speed).map(|reset| reset.bound()),
                    Ok(ResettingBound::Finite(dr)) if dr <= reset_budget
                )
            {
                accept_speedup += 1;
            }
        }
    }
    for sweep in sweeps {
        sweep.recycle_into(scratch);
    }
    let denom = evaluated.max(1) as f64;
    RegionPoint {
        u_hi,
        u_lo,
        evaluated,
        speedup: accept_speedup as f64 / denom,
        no_speedup: accept_no_speedup as f64 / denom,
        edf_vd: accept_edf_vd as f64 / denom,
        reservation: accept_reservation as f64 / denom,
    }
}

impl fmt::Display for Fig7Results {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== Fig. 7: schedulability region (s = 2, Delta_R <= 5 s, LO terminated) =="
        )?;
        writeln!(
            f,
            "{:>6} {:>6} {:>6} {:>9} {:>11} {:>8} {:>12}",
            "U_HI", "U_LO", "sets", "speedup%", "no-speedup%", "EDF-VD%", "reservation%"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:>6} {:>6} {:>6} {:>9.1} {:>11.1} {:>8.1} {:>12.1}",
                p.u_hi.to_string(),
                p.u_lo.to_string(),
                p.evaluated,
                p.speedup * 100.0,
                p.no_speedup * 100.0,
                p.edf_vd * 100.0,
                p.reservation * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Fig7Results {
        run(&Fig7Config {
            sets_per_point: 12,
            grid_step_twentieths: 5, // 0.25 steps → 4×4 grid
            seed: 5,
            jobs: 2,
        })
    }

    #[test]
    fn speedup_dominates_no_speedup() {
        let results = quick();
        for p in &results.points {
            assert!(
                p.speedup >= p.no_speedup,
                "({}, {}): speedup {} < no-speedup {}",
                p.u_hi,
                p.u_lo,
                p.speedup,
                p.no_speedup
            );
        }
    }

    #[test]
    fn low_utilization_corner_is_fully_schedulable() {
        let results = quick();
        let corner = results
            .points
            .iter()
            .find(|p| p.u_hi == Rational::new(1, 4) && p.u_lo == Rational::new(1, 4))
            .expect("corner present");
        assert!(corner.evaluated > 0);
        assert!(corner.speedup >= 0.95, "low corner only {}", corner.speedup);
    }

    #[test]
    fn high_utilization_corner_shows_the_gain() {
        // The paper: at (0.85, 0.85), 90% schedulable with 2× speedup
        // while (well) under 25% without.
        let results = quick();
        let hot = results
            .points
            .iter()
            .filter(|p| p.u_hi >= Rational::new(3, 4) && p.u_lo >= Rational::new(3, 4))
            .collect::<Vec<_>>();
        assert!(!hot.is_empty());
        let gain: f64 = hot.iter().map(|p| p.speedup - p.no_speedup).sum::<f64>();
        assert!(gain > 0.0, "no speedup gain in the hot corner");
    }

    #[test]
    fn display_renders_rows() {
        let text = quick().to_string();
        assert!(text.contains("speedup%"));
        assert!(text.contains("EDF-VD%"));
    }
}
