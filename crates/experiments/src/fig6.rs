//! Fig. 6: the synthetic campaign — distributions of the minimum
//! required speedup and of the service resetting time across system
//! utilizations, and the impact of degradation (`y`) and speedup (`s`).
//!
//! The paper draws 500 task sets per utilization point with the caption
//! distributions, sets `x` to the minimum guaranteeing LO-mode
//! schedulability, and reports box-whisker statistics. Times are in
//! milliseconds.

use std::fmt;

use rbs_core::lo_mode::minimal_feasible_x;
use rbs_core::resetting::ResettingBound;
use rbs_core::speedup::SpeedupBound;
use rbs_core::{AnalysisLimits, AnalysisScratch, SweepAnalysis, SweepMode};
use rbs_gen::synth::SynthConfig;
use rbs_model::ImplicitTaskSpec;
use rbs_timebase::Rational;

use rbs_svc::WorkerPool;

use crate::stats::{five_number, median, FiveNumber};

/// Campaign scale knobs (the paper uses 500 sets per point; tests and
/// benches use fewer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig6Config {
    /// Task sets per utilization point.
    pub sets_per_point: usize,
    /// RNG master seed.
    pub seed: u64,
    /// Worker threads for the per-set analyses (`0` = available
    /// parallelism). Results are aggregated in generation order, so the
    /// numbers are identical for every worker count.
    pub jobs: usize,
}

impl Default for Fig6Config {
    fn default() -> Fig6Config {
        Fig6Config {
            sets_per_point: 500,
            seed: 2015,
            jobs: 0,
        }
    }
}

/// Results for one utilization point.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationPoint {
    /// The generator's `U_bound`.
    pub u_bound: Rational,
    /// Box-whisker summary of `s_min` at `y = 2` (panel a).
    pub s_min_summary: Option<FiveNumber>,
    /// Fraction of sets schedulable without speedup (`s_min ≤ 1`) and
    /// with `s_min ≤ 1.9` at `y = 2` (the text's 25%/75% comparison).
    pub schedulable_at: Vec<(Rational, f64)>,
    /// Median `s_min` per degradation factor `y` (panel b).
    pub median_s_min_by_y: Vec<(Rational, Option<Rational>)>,
    /// Box-whisker summary of `Δ_R` (ms) at `y = 2, s = 3` (panel c).
    pub resetting_summary: Option<FiveNumber>,
    /// Median `Δ_R` (ms) per `(s, y)` combination (panel d).
    pub median_resetting_by_sy: Vec<(Rational, Rational, Option<Rational>)>,
    /// Sets skipped because no feasible `x` exists.
    pub infeasible: usize,
}

/// The whole campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Results {
    /// One entry per `U_bound ∈ {0.5, 0.6, 0.7, 0.8, 0.9}`.
    pub points: Vec<UtilizationPoint>,
}

/// Runs the Fig. 6 campaign.
#[must_use]
pub fn run(config: &Fig6Config) -> Fig6Results {
    let limits = AnalysisLimits::default();
    let ys = [Rational::ONE, Rational::TWO, Rational::integer(3)];
    let speeds = [Rational::TWO, Rational::integer(3)];
    let pool = WorkerPool::for_jobs(config.jobs);
    let points = (5..=9)
        .map(|ub| {
            let u_bound = Rational::new(ub, 10);
            campaign_point(u_bound, config, &pool, &limits, &ys, &speeds)
        })
        .collect();
    Fig6Results { points }
}

/// Runs one utilization point of the Fig. 6 campaign — the unit the
/// `campaign/fig6_point/*` benchmarks time end to end.
#[must_use]
pub fn run_point(u_bound: Rational, config: &Fig6Config) -> UtilizationPoint {
    let limits = AnalysisLimits::default();
    let ys = [Rational::ONE, Rational::TWO, Rational::integer(3)];
    let speeds = [Rational::TWO, Rational::integer(3)];
    let pool = WorkerPool::for_jobs(config.jobs);
    campaign_point(u_bound, config, &pool, &limits, &ys, &speeds)
}

/// Everything one task set contributes to a utilization point; computed on
/// the pool, folded into the aggregates sequentially in generation order.
struct SetContribution {
    infeasible: bool,
    s_min_by_y: Vec<Option<Rational>>,
    resetting_by_sy: Vec<Option<Rational>>,
}

/// Sets analyzed together per pool job: each job drives its whole chunk's
/// `minimum_speedup` walks through one lockstep batch per `y`
/// ([`SweepAnalysis::minimum_speedup_many`]), so the batching pays off
/// even at `jobs: 1`. Matches the core's lockstep chunk size.
const CAMPAIGN_CHUNK: usize = 16;

fn campaign_point(
    u_bound: Rational,
    config: &Fig6Config,
    pool: &WorkerPool,
    limits: &AnalysisLimits,
    ys: &[Rational],
    speeds: &[Rational],
) -> UtilizationPoint {
    let generator = SynthConfig::new(u_bound);
    let seed = config.seed ^ (u_bound.numer() as u64);
    let sets = generator.generate_many(config.sets_per_point, seed);

    // Chunks are consecutive runs of the generation order, and the pool
    // returns them in submission order, so flattening the per-chunk
    // contribution lists reproduces the per-set aggregation order.
    let mut chunks: Vec<Vec<Vec<ImplicitTaskSpec>>> =
        Vec::with_capacity(sets.len().div_ceil(CAMPAIGN_CHUNK.max(1)));
    let mut iter = sets.into_iter();
    loop {
        let chunk: Vec<Vec<ImplicitTaskSpec>> = iter.by_ref().take(CAMPAIGN_CHUNK).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let contributions =
        pool.run_ordered_scoped(chunks, AnalysisScratch::new, |scratch, _, chunk| {
            campaign_chunk(&chunk, scratch, limits, ys, speeds)
        });

    let mut infeasible = 0usize;
    let mut s_min_at_y: Vec<Vec<Rational>> = vec![Vec::new(); ys.len()];
    let mut resetting_at_sy: Vec<Vec<Rational>> = vec![Vec::new(); ys.len() * speeds.len()];
    for contribution in contributions.into_iter().flatten() {
        if contribution.infeasible {
            infeasible += 1;
        }
        for (yi, value) in contribution.s_min_by_y.into_iter().enumerate() {
            if let Some(s_min) = value {
                s_min_at_y[yi].push(s_min);
            }
        }
        for (slot, value) in contribution.resetting_by_sy.into_iter().enumerate() {
            if let Some(dr) = value {
                resetting_at_sy[slot].push(dr);
            }
        }
    }

    // y = 2 is the paper's default for panels (a) and (c).
    let y2 = 1usize;
    let s3 = 1usize; // speeds[1] = 3
    let s_min_summary = five_number(&s_min_at_y[y2]);
    // The generator owes exactly `sets_per_point` contributions, so the
    // infeasible count can never exceed it. If it does, the aggregation
    // and the generator disagree — clamping to zero here would silently
    // zero every schedulable fraction, so fail loudly instead.
    let feasible = config
        .sets_per_point
        .checked_sub(infeasible)
        .unwrap_or_else(|| {
            panic!(
                "campaign accounting inconsistent at U_bound {u_bound}: \
                 {infeasible} infeasible sets out of {} generated",
                config.sets_per_point
            )
        });
    let schedulable_at = schedulable_fractions(&s_min_at_y[y2], feasible);
    let median_s_min_by_y = ys
        .iter()
        .enumerate()
        .map(|(yi, &y)| (y, median(&s_min_at_y[yi])))
        .collect();
    let resetting_summary = five_number(&resetting_at_sy[y2 * speeds.len() + s3]);
    let median_resetting_by_sy = ys
        .iter()
        .enumerate()
        .flat_map(|(yi, &y)| {
            speeds
                .iter()
                .enumerate()
                .map(move |(si, &s)| (yi, y, si, s))
        })
        .map(|(yi, y, si, s)| (s, y, median(&resetting_at_sy[yi * speeds.len() + si])))
        .collect();
    UtilizationPoint {
        u_bound,
        s_min_summary,
        schedulable_at,
        median_s_min_by_y,
        resetting_summary,
        median_resetting_by_sy,
        infeasible,
    }
}

/// The fraction of *feasible* sets whose `s_min` is at or below each
/// reporting threshold. `finite_s_min` only carries the finite values —
/// a feasible set with unbounded `s_min` is absent from it but still
/// belongs in the denominator (it is schedulable at no threshold), which
/// is why the denominator is the feasible-set count, not
/// `finite_s_min.len()`.
/// Analyzes one chunk of task sets on a single worker: one sweep context
/// per feasible set, `rescale_lo` patching per `y`, and the chunk's
/// `minimum_speedup` walks driven in lockstep. Per-set results are
/// bit-identical to the set-at-a-time loop this replaces.
fn campaign_chunk(
    chunk: &[Vec<ImplicitTaskSpec>],
    scratch: &mut AnalysisScratch,
    limits: &AnalysisLimits,
    ys: &[Rational],
    speeds: &[Rational],
) -> Vec<SetContribution> {
    let mut contributions: Vec<SetContribution> = chunk
        .iter()
        .map(|_| SetContribution {
            infeasible: false,
            s_min_by_y: vec![None; ys.len()],
            resetting_by_sy: vec![None; ys.len() * speeds.len()],
        })
        .collect();
    // One sweep context per feasible set, held for the whole `y` loop:
    // the LO profile and every HI-task demand component are built once
    // (into the worker's recycled scratch buffers) and `rescale_lo`
    // patches only the LO-task components per `y` — bit-identical to a
    // fresh per-`y` context.
    let mut sweeps: Vec<(usize, SweepAnalysis)> = Vec::with_capacity(chunk.len());
    for (index, specs) in chunk.iter().enumerate() {
        match minimal_feasible_x(specs) {
            Some(x) => sweeps.push((
                index,
                SweepAnalysis::new_in(specs, x, ys, SweepMode::Degraded, limits, scratch),
            )),
            None => contributions[index].infeasible = true,
        }
    }
    for (yi, &y) in ys.iter().enumerate() {
        for (_, sweep) in &mut sweeps {
            sweep.rescale_lo(y);
        }
        let mut refs: Vec<&mut SweepAnalysis> = sweeps.iter_mut().map(|(_, sweep)| sweep).collect();
        let speedups = SweepAnalysis::minimum_speedup_many(&mut refs);
        for ((index, sweep), speedup) in sweeps.iter_mut().zip(speedups) {
            if let Ok(analysis) = speedup {
                if let SpeedupBound::Finite(s_min) = analysis.bound() {
                    contributions[*index].s_min_by_y[yi] = Some(s_min);
                }
            }
            for (si, &s) in speeds.iter().enumerate() {
                if let Ok(analysis) = sweep.resetting_time(s) {
                    if let ResettingBound::Finite(dr) = analysis.bound() {
                        contributions[*index].resetting_by_sy[yi * speeds.len() + si] = Some(dr);
                    }
                }
            }
        }
    }
    for (_, sweep) in sweeps {
        sweep.recycle_into(scratch);
    }
    contributions
}

fn schedulable_fractions(finite_s_min: &[Rational], feasible: usize) -> Vec<(Rational, f64)> {
    let total = feasible.max(1) as f64;
    [Rational::ONE, Rational::new(19, 10)]
        .iter()
        .map(|&threshold| {
            let count = finite_s_min.iter().filter(|&&v| v <= threshold).count();
            (threshold, count as f64 / total)
        })
        .collect()
}

fn fmt_opt(v: Option<Rational>) -> String {
    v.map_or_else(|| "-".to_owned(), |r| format!("{:.3}", r.to_f64()))
}

impl fmt::Display for Fig6Results {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== Fig. 6: synthetic campaign (times in ms) ==")?;
        writeln!(f, "-- (a) s_min distribution (y = 2) --")?;
        writeln!(
            f,
            "{:>7} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "U_bound", "min", "q1", "median", "q3", "max", "mean"
        )?;
        for p in &self.points {
            if let Some(s) = p.s_min_summary {
                writeln!(
                    f,
                    "{:>7} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
                    p.u_bound.to_string(),
                    s.min.to_f64(),
                    s.q1.to_f64(),
                    s.median.to_f64(),
                    s.q3.to_f64(),
                    s.max.to_f64(),
                    s.mean.to_f64()
                )?;
            }
        }
        writeln!(f, "-- schedulable fraction (y = 2) --")?;
        for p in &self.points {
            for (threshold, fraction) in &p.schedulable_at {
                writeln!(
                    f,
                    "U_bound {}: s_min <= {} for {:.1}% of sets",
                    p.u_bound,
                    threshold,
                    fraction * 100.0
                )?;
            }
        }
        writeln!(f, "-- (b) median s_min by degradation y --")?;
        writeln!(f, "{:>7} {:>6} {:>10}", "U_bound", "y", "median")?;
        for p in &self.points {
            for (y, m) in &p.median_s_min_by_y {
                writeln!(
                    f,
                    "{:>7} {:>6} {:>10}",
                    p.u_bound.to_string(),
                    y.to_string(),
                    fmt_opt(*m)
                )?;
            }
        }
        writeln!(f, "-- (c) Delta_R distribution (y = 2, s = 3) [ms] --")?;
        writeln!(
            f,
            "{:>7} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "U_bound", "min", "q1", "median", "q3", "max"
        )?;
        for p in &self.points {
            if let Some(s) = p.resetting_summary {
                writeln!(
                    f,
                    "{:>7} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
                    p.u_bound.to_string(),
                    s.min.to_f64(),
                    s.q1.to_f64(),
                    s.median.to_f64(),
                    s.q3.to_f64(),
                    s.max.to_f64()
                )?;
            }
        }
        writeln!(f, "-- (d) median Delta_R by (s, y) [ms] --")?;
        writeln!(f, "{:>7} {:>6} {:>6} {:>10}", "U_bound", "s", "y", "median")?;
        for p in &self.points {
            for (s, y, m) in &p.median_resetting_by_sy {
                writeln!(
                    f,
                    "{:>7} {:>6} {:>6} {:>10}",
                    p.u_bound.to_string(),
                    s.to_string(),
                    y.to_string(),
                    fmt_opt(*m)
                )?;
            }
        }
        for p in &self.points {
            if p.infeasible > 0 {
                writeln!(
                    f,
                    "note: U_bound {}: {} sets had no LO-feasible x and were skipped",
                    p.u_bound, p.infeasible
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Fig6Results {
        run(&Fig6Config {
            sets_per_point: 16,
            seed: 7,
            jobs: 2,
        })
    }

    #[test]
    fn campaign_produces_all_points() {
        let results = quick();
        assert_eq!(results.points.len(), 5);
        for p in &results.points {
            assert!(p.s_min_summary.is_some(), "U = {}", p.u_bound);
            assert!(p.resetting_summary.is_some());
        }
    }

    #[test]
    fn median_s_min_grows_with_utilization() {
        let results = quick();
        let medians: Vec<Rational> = results
            .points
            .iter()
            .filter_map(|p| p.s_min_summary.map(|s| s.median))
            .collect();
        assert!(
            medians.first() < medians.last(),
            "median s_min did not grow: {medians:?}"
        );
    }

    #[test]
    fn degradation_reduces_median_s_min() {
        // Panel (b)'s claim: larger y → smaller required speedup.
        let results = quick();
        for p in &results.points {
            let by_y: Vec<Rational> = p.median_s_min_by_y.iter().filter_map(|(_, m)| *m).collect();
            assert!(
                by_y.windows(2).all(|w| w[1] <= w[0]),
                "U {}: {:?}",
                p.u_bound,
                by_y
            );
        }
    }

    #[test]
    fn more_speed_reduces_median_resetting() {
        // Panel (d)'s claim: larger s → smaller Δ_R at fixed y.
        let results = quick();
        for p in &results.points {
            for (yi, y) in [Rational::ONE, Rational::TWO, Rational::integer(3)]
                .iter()
                .enumerate()
            {
                let at_y: Vec<Rational> = p
                    .median_resetting_by_sy
                    .iter()
                    .filter(|(_, yy, _)| yy == y)
                    .filter_map(|(_, _, m)| *m)
                    .collect();
                assert!(
                    at_y.windows(2).all(|w| w[1] <= w[0]),
                    "U {} yi {yi}: {at_y:?}",
                    p.u_bound
                );
            }
        }
    }

    #[test]
    fn unbounded_s_min_stays_in_the_denominator() {
        // Three feasible sets, one of which has unbounded s_min: it
        // contributes no finite value, but it is schedulable at no
        // threshold and must stay in the denominator — the fractions are
        // out of 3, not out of the 2 finite values.
        let finite = [Rational::ONE, Rational::new(3, 2)];
        let fractions = schedulable_fractions(&finite, 3);
        assert_eq!(fractions[0], (Rational::ONE, 1.0 / 3.0));
        assert_eq!(fractions[1], (Rational::new(19, 10), 2.0 / 3.0));
    }

    #[test]
    fn display_renders_all_panels() {
        let text = quick().to_string();
        for marker in [
            "(a) s_min",
            "(b) median s_min",
            "(c) Delta_R",
            "(d) median Delta_R",
        ] {
            assert!(text.contains(marker), "missing {marker}");
        }
    }
}
