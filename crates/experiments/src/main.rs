//! CLI for the experiment harness:
//! `cargo run -p rbs-experiments --release -- <id> [--sets N] [--jobs N] [--quick]`.

use std::env;
use std::process::ExitCode;

use rbs_core::AnalysisLimits;
use rbs_experiments::{
    analyze, energy_tradeoff, fig1, fig3, fig4, fig5, fig6, fig7, multicore, sim_validate, table1,
};
use rbs_model::TaskSet;

const USAGE: &str = "\
usage: rbs-experiments <id> [--sets N] [--jobs N] [--quick]

ids:
  table1        Table I & Examples 1-2
  fig1          demand bound functions vs supplied service
  fig3          service resetting time vs speedup
  fig4          closed-form trade-offs (Lemmas 6 & 7)
  fig5          FMS contours
  fig6          synthetic campaign (500 sets/point; --sets overrides)
  fig7          schedulability regions (--sets overrides; --quick coarsens the grid)
  sim-validate  simulator vs analysis validation
  all           everything above
  analyze IN    analyze task sets: IN is a JSON file, '-' (JSON Lines on
                stdin), or a directory of *.json workloads
  energy        energy-vs-service cost of speedup / degradation / termination
  multicore     partitioned multicore acceptance (extension)

--jobs N parallelizes the fig6/fig7 campaigns over N worker threads
(default: available parallelism); the printed numbers are identical for
every N.
";

fn run_analyze(input: &str) -> ExitCode {
    let requests = match rbs_svc::read_source(input) {
        Ok(requests) => requests,
        Err(error) => {
            eprintln!("cannot read {input}: {error}");
            return ExitCode::FAILURE;
        }
    };
    let banner = requests.len() > 1;
    let mut code = ExitCode::SUCCESS;
    for request in &requests {
        if banner {
            println!("== {} ==", request.label);
        }
        let set: TaskSet = match rbs_json::from_str(&request.body) {
            Ok(set) => set,
            Err(error) => {
                eprintln!("cannot parse {}: {error}", request.label);
                code = ExitCode::FAILURE;
                continue;
            }
        };
        match analyze::run(set, &AnalysisLimits::default()) {
            Ok(report) => println!("{report}"),
            Err(error) => {
                eprintln!("analysis of {} failed: {error}", request.label);
                code = ExitCode::FAILURE;
            }
        }
    }
    code
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let Some(id) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if id == "analyze" {
        let Some(input) = args.get(1) else {
            eprintln!("analyze requires a JSON file, '-', or a workload directory");
            return ExitCode::FAILURE;
        };
        return run_analyze(input);
    }
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<usize>().ok())
    };
    let sets = flag_value("--sets");
    let jobs = flag_value("--jobs").unwrap_or(0); // 0 = available parallelism
    let quick = args.iter().any(|a| a == "--quick");

    let run_one = |name: &str| -> bool {
        match name {
            "table1" => println!("{}", table1::run()),
            "fig1" => println!("{}", fig1::run()),
            "fig3" => println!("{}", fig3::run()),
            "fig4" => println!("{}", fig4::run()),
            "fig5" => println!("{}", fig5::run()),
            "fig6" => {
                let mut config = fig6::Fig6Config {
                    jobs,
                    ..fig6::Fig6Config::default()
                };
                if let Some(n) = sets {
                    config.sets_per_point = n;
                }
                if quick {
                    config.sets_per_point = config.sets_per_point.min(50);
                }
                println!("{}", fig6::run(&config));
            }
            "fig7" => {
                let mut config = fig7::Fig7Config {
                    jobs,
                    ..fig7::Fig7Config::default()
                };
                if let Some(n) = sets {
                    config.sets_per_point = n;
                }
                if quick {
                    config.sets_per_point = config.sets_per_point.min(25);
                    config.grid_step_twentieths = 4;
                }
                println!("{}", fig7::run(&config));
            }
            "sim-validate" => println!("{}", sim_validate::run()),
            "energy" => println!("{}", energy_tradeoff::run()),
            "multicore" => {
                let mut config = multicore::MulticoreConfig::default();
                if let Some(n) = sets {
                    config.sets_per_cell = n;
                }
                if quick {
                    config.sets_per_cell = config.sets_per_cell.min(10);
                }
                println!("{}", multicore::run(&config));
            }
            _ => return false,
        }
        true
    };

    let ok = if id == "all" {
        for name in [
            "table1",
            "fig1",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "sim-validate",
            "energy",
            "multicore",
        ] {
            assert!(run_one(name), "built-in id {name} must dispatch");
        }
        true
    } else {
        run_one(id)
    };

    if ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("unknown experiment id: {id}");
        eprint!("{USAGE}");
        ExitCode::FAILURE
    }
}
