//! Fig. 4: closed-form trade-offs of Section V — the impact of overrun
//! preparation `x` and service degradation `y` on the required speedup
//! (Lemma 6) and of the chosen speedup `s` on the resetting time
//! (Lemma 7).

use std::fmt;

use rbs_core::closed_form::{resetting_bound, speedup_bound};
use rbs_core::resetting::ResettingBound;
use rbs_core::speedup::SpeedupBound;
use rbs_model::{ImplicitTaskSpec, ScalingFactors};
use rbs_timebase::Rational;

/// Table I mapped onto the implicit-deadline parameterization of
/// eqs. (13)–(14): the mode-independent `(T, C(LO), C(HI))` triples.
#[must_use]
pub fn table1_specs() -> Vec<ImplicitTaskSpec> {
    vec![
        ImplicitTaskSpec::hi("tau1", Rational::integer(5), Rational::ONE, Rational::TWO),
        ImplicitTaskSpec::lo("tau2", Rational::integer(10), Rational::integer(3)),
    ]
}

/// The Fig. 4 data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig4Results {
    /// Panel (a): rows `(x, y, s_min upper bound)` over a grid.
    pub speedup_surface: Vec<(Rational, Rational, SpeedupBound)>,
    /// Panel (b): per reference load `s_min`, the `(s, Δ_R)` curve.
    pub resetting_curves: Vec<(Rational, Vec<(Rational, ResettingBound)>)>,
}

/// Runs the Fig. 4 experiment.
#[must_use]
pub fn run() -> Fig4Results {
    let specs = table1_specs();
    let mut speedup_surface = Vec::new();
    for xi in 1..=9 {
        let x = Rational::new(xi, 10);
        for yi in [10, 15, 20, 30, 40] {
            let y = Rational::new(yi, 10);
            let factors = ScalingFactors::new(x, y).expect("validated");
            speedup_surface.push((x, y, speedup_bound(&specs, factors)));
        }
    }

    // Panel (b): Lemma 7 curves for three artificial HI-mode loads,
    // realized by picking (x, y) whose closed-form s_min brackets them.
    let mut resetting_curves = Vec::new();
    for (xi, yi) in [(2, 30), (5, 20), (8, 10)] {
        let factors =
            ScalingFactors::new(Rational::new(xi, 10), Rational::new(yi, 10)).expect("validated");
        let SpeedupBound::Finite(s_min) = speedup_bound(&specs, factors) else {
            continue;
        };
        let curve = (1..=20)
            .map(|k| {
                let s = s_min + Rational::new(k, 5);
                (s, resetting_bound(&specs, factors, s))
            })
            .collect();
        resetting_curves.push((s_min, curve));
    }
    Fig4Results {
        speedup_surface,
        resetting_curves,
    }
}

impl fmt::Display for Fig4Results {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== Fig. 4: closed-form trade-offs (Lemmas 6 & 7) ==")?;
        writeln!(f, "-- (a) s_min upper bound over (x, y) --")?;
        writeln!(f, "{:>6} {:>6} {:>14}", "x", "y", "s_min bound")?;
        for (x, y, bound) in &self.speedup_surface {
            writeln!(
                f,
                "{:>6} {:>6} {:>14}",
                x.to_string(),
                y.to_string(),
                bound.to_string()
            )?;
        }
        writeln!(f, "-- (b) Delta_R vs s for different loads --")?;
        for (s_min, curve) in &self.resetting_curves {
            writeln!(f, "load s_min = {s_min} (~{:.3}):", s_min.to_f64())?;
            for (s, dr) in curve {
                writeln!(f, "  s = {:>8}  Delta_R = {}", s.to_string(), dr)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surface_is_monotone_in_x_and_y() {
        let results = run();
        // For fixed y, the bound grows with x (less preparation).
        for yi in [10, 15, 20, 30, 40] {
            let y = Rational::new(yi, 10);
            let mut prev: Option<Rational> = None;
            for (_, _, bound) in results.speedup_surface.iter().filter(|(_, yy, _)| *yy == y) {
                let v = bound.as_finite().expect("x < 1 stays finite");
                if let Some(p) = prev {
                    assert!(v >= p, "not increasing in x: {v} < {p}");
                }
                prev = Some(v);
            }
        }
        // For fixed x, the bound shrinks with y (more degradation).
        for xi in 1..=9 {
            let x = Rational::new(xi, 10);
            let mut prev: Option<Rational> = None;
            for (_, _, bound) in results.speedup_surface.iter().filter(|(xx, _, _)| *xx == x) {
                let v = bound.as_finite().expect("finite");
                if let Some(p) = prev {
                    assert!(v <= p, "not decreasing in y: {v} > {p}");
                }
                prev = Some(v);
            }
        }
    }

    #[test]
    fn resetting_curves_decay_in_s() {
        let results = run();
        assert!(!results.resetting_curves.is_empty());
        for (_, curve) in &results.resetting_curves {
            let finite: Vec<Rational> = curve.iter().filter_map(|(_, dr)| dr.as_finite()).collect();
            assert!(finite.windows(2).all(|w| w[1] <= w[0]));
        }
    }

    #[test]
    fn heavier_loads_reset_slower_at_equal_headroom() {
        // Example 4's observation: with artificially increased s_min the
        // resetting time grows — at equal headroom s − s_min the curve
        // value Σ C(HI)/(s − s_min) is identical, so compare at equal
        // absolute s instead: pick s above all loads.
        let _results = run();
        let s = Rational::integer(5);
        let specs = table1_specs();
        let mut values = Vec::new();
        for (xi, yi) in [(2, 30), (5, 20), (8, 10)] {
            let factors = ScalingFactors::new(Rational::new(xi, 10), Rational::new(yi, 10))
                .expect("validated");
            if let ResettingBound::Finite(v) = resetting_bound(&specs, factors, s) {
                values.push(v);
            }
        }
        assert!(values.windows(2).all(|w| w[0] <= w[1]), "{values:?}");
    }

    #[test]
    fn display_renders_the_grid() {
        let text = run().to_string();
        assert!(text.contains("(a) s_min upper bound"));
        assert!(text.contains("(b) Delta_R vs s"));
    }
}
