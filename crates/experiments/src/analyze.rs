//! `analyze`: full report for a user-supplied task set (JSON).
//!
//! The analysis itself lives in [`rbs_core::report`] so the
//! admission-control service (`rbs-svc`) and this CLI share one entry
//! point; this module re-exports it under the historical names and keeps
//! the experiment-level tests against the paper's running example.

pub use rbs_core::report::analyze as run;
pub use rbs_core::report::AnalyzeReport;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::table1;
    use rbs_core::speedup::SpeedupBound;
    use rbs_core::AnalysisLimits;
    use rbs_model::TaskSet;
    use rbs_timebase::Rational;

    #[test]
    fn analyzes_the_running_example() {
        let report = run(table1(), &AnalysisLimits::default()).expect("completes");
        assert!(report.lo_schedulable);
        assert_eq!(report.lo_requirement, Rational::new(1, 2));
        assert_eq!(report.s_min, SpeedupBound::Finite(Rational::new(4, 3)));
        assert_eq!(report.witness, Some(Rational::integer(3)));
        assert!(report.sized_speed.is_some());
        let text = report.to_string();
        assert!(text.contains("s_min = 4/3"));
        assert!(text.contains("Delta_R"));
    }

    #[test]
    fn json_round_trip_feeds_the_analyzer() {
        let json = rbs_json::to_string(&table1());
        let set: TaskSet = rbs_json::from_str(&json).expect("deserialize");
        let report = run(set, &AnalysisLimits::default()).expect("completes");
        assert_eq!(report.s_min, SpeedupBound::Finite(Rational::new(4, 3)));
    }

    #[test]
    fn shipped_sample_workloads_parse() {
        let json = include_str!("../../../examples/workloads/table1.json");
        let set: TaskSet = rbs_json::from_str(json).expect("sample parses");
        let report = run(set, &AnalysisLimits::default()).expect("completes");
        assert_eq!(report.s_min, SpeedupBound::Finite(Rational::new(4, 3)));

        let json = include_str!("../../../examples/workloads/table1_degraded.json");
        let set: TaskSet = rbs_json::from_str(json).expect("sample parses");
        let report = run(set, &AnalysisLimits::default()).expect("completes");
        let s = report.s_min.as_finite().expect("finite");
        assert!(s < Rational::ONE, "degraded sample should slow down: {s}");

        let json = include_str!("../../../examples/workloads/terminated.json");
        let set: TaskSet = rbs_json::from_str(json).expect("sample parses");
        assert!(set
            .by_name("telemetry")
            .expect("present")
            .is_terminated_in_hi());
        let report = run(set, &AnalysisLimits::default()).expect("completes");
        assert!(report.lo_schedulable);
        assert!(report.s_min.as_finite().is_some());
    }

    #[test]
    fn unbounded_sets_are_reported_readably() {
        use rbs_model::{Criticality, Task};
        let set = TaskSet::new(vec![Task::builder("naive", Criticality::Hi)
            .period(Rational::integer(5))
            .deadline(Rational::integer(5))
            .wcet_lo(Rational::ONE)
            .wcet_hi(Rational::TWO)
            .build()
            .expect("valid")]);
        let report = run(set, &AnalysisLimits::default()).expect("completes");
        assert_eq!(report.s_min, SpeedupBound::Unbounded);
        assert!(report.to_string().contains("UNBOUNDED"));
    }
}
