//! `analyze`: full report for a user-supplied task set (JSON).
//!
//! Turns the workspace into a usable tool: feed it a serialized
//! [`TaskSet`] (see `examples/workloads/table1.json`) and get the
//! LO-mode verdict, Theorem 2's minimum speedup, Corollary 5's resetting
//! times at a few speeds, and a platform-sizing suggestion.

use std::fmt;

use rbs_core::lo_mode::{is_lo_schedulable, lo_speed_requirement};
use rbs_core::resetting::{resetting_time, ResettingBound};
use rbs_core::speedup::{minimum_speedup, SpeedupBound};
use rbs_core::tuning::minimal_speed_within_budget;
use rbs_core::{AnalysisError, AnalysisLimits};
use rbs_model::TaskSet;
use rbs_timebase::Rational;

/// The report for one task set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyzeReport {
    /// The analyzed set (echoed back for context).
    pub set: TaskSet,
    /// Whether LO mode meets all deadlines at nominal speed.
    pub lo_schedulable: bool,
    /// The smallest speed at which LO mode would be schedulable.
    pub lo_requirement: Rational,
    /// Theorem 2's minimum HI-mode speedup.
    pub s_min: SpeedupBound,
    /// The demand witness interval, if finite.
    pub witness: Option<Rational>,
    /// `(s, Δ_R)` rows for a few representative speeds.
    pub resetting_rows: Vec<(Rational, ResettingBound)>,
    /// The smallest speed meeting a 10-"period-scale" reset budget (ten
    /// times the largest HI-mode period), when one exists below 4x.
    pub sized_speed: Option<Rational>,
}

/// Analyzes a task set.
///
/// # Errors
///
/// Propagates exact-analysis errors (breakpoint budgets on pathological
/// inputs).
pub fn run(set: TaskSet, limits: &AnalysisLimits) -> Result<AnalyzeReport, AnalysisError> {
    let lo_schedulable = is_lo_schedulable(&set, limits)?;
    let lo_requirement = lo_speed_requirement(&set, limits)?;
    let analysis = minimum_speedup(&set, limits)?;
    let s_min = analysis.bound();
    let witness = analysis.witness();
    let mut speeds: Vec<Rational> = vec![Rational::ONE, Rational::new(3, 2), Rational::TWO];
    if let SpeedupBound::Finite(v) = s_min {
        if !speeds.contains(&v) && v.is_positive() {
            speeds.push(v);
            speeds.sort();
        }
    }
    let mut resetting_rows = Vec::new();
    for s in speeds {
        resetting_rows.push((s, resetting_time(&set, s, limits)?.bound()));
    }
    let sized_speed = {
        let max_period = set
            .iter()
            .filter_map(|t| t.params(rbs_model::Mode::Hi))
            .map(|p| p.period())
            .max();
        match max_period {
            Some(p) => minimal_speed_within_budget(
                &set,
                p * Rational::integer(10),
                Rational::integer(4),
                Rational::new(1, 64),
                limits,
            )?,
            None => None,
        }
    };
    Ok(AnalyzeReport {
        set,
        lo_schedulable,
        lo_requirement,
        s_min,
        witness,
        resetting_rows,
        sized_speed,
    })
}

impl fmt::Display for AnalyzeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.set)?;
        writeln!(
            f,
            "LO mode at nominal speed: {} (requires speed {:.3})",
            if self.lo_schedulable { "schedulable" } else { "NOT schedulable" },
            self.lo_requirement.to_f64()
        )?;
        match self.s_min {
            SpeedupBound::Finite(v) => {
                writeln!(
                    f,
                    "minimum HI-mode speedup s_min = {v} (~{:.4})",
                    v.to_f64()
                )?;
                if let Some(w) = self.witness {
                    writeln!(f, "  critical interval after the switch: Delta = {w}")?;
                }
            }
            SpeedupBound::Unbounded => {
                writeln!(
                    f,
                    "minimum HI-mode speedup: UNBOUNDED — shorten LO-mode deadlines of HI tasks"
                )?;
            }
        }
        writeln!(f, "service resetting times:")?;
        for (s, dr) in &self.resetting_rows {
            writeln!(f, "  s = {:<8} Delta_R = {}", s.to_string(), dr)?;
        }
        if let Some(s) = self.sized_speed {
            writeln!(
                f,
                "suggested platform speed (reset within 10 max periods, <= 4x): {:.3}",
                s.to_f64()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::table1;

    #[test]
    fn analyzes_the_running_example() {
        let report = run(table1(), &AnalysisLimits::default()).expect("completes");
        assert!(report.lo_schedulable);
        assert_eq!(report.lo_requirement, Rational::new(1, 2));
        assert_eq!(report.s_min, SpeedupBound::Finite(Rational::new(4, 3)));
        assert_eq!(report.witness, Some(Rational::integer(3)));
        assert!(report.sized_speed.is_some());
        let text = report.to_string();
        assert!(text.contains("s_min = 4/3"));
        assert!(text.contains("Delta_R"));
    }

    #[test]
    fn json_round_trip_feeds_the_analyzer() {
        let json = serde_json::to_string(&table1()).expect("serialize");
        let set: TaskSet = serde_json::from_str(&json).expect("deserialize");
        let report = run(set, &AnalysisLimits::default()).expect("completes");
        assert_eq!(report.s_min, SpeedupBound::Finite(Rational::new(4, 3)));
    }

    #[test]
    fn shipped_sample_workloads_parse() {
        let json = include_str!("../../../examples/workloads/table1.json");
        let set: TaskSet = serde_json::from_str(json).expect("sample parses");
        let report = run(set, &AnalysisLimits::default()).expect("completes");
        assert_eq!(report.s_min, SpeedupBound::Finite(Rational::new(4, 3)));

        let json = include_str!("../../../examples/workloads/table1_degraded.json");
        let set: TaskSet = serde_json::from_str(json).expect("sample parses");
        let report = run(set, &AnalysisLimits::default()).expect("completes");
        let s = report.s_min.as_finite().expect("finite");
        assert!(s < Rational::ONE, "degraded sample should slow down: {s}");

        let json = include_str!("../../../examples/workloads/terminated.json");
        let set: TaskSet = serde_json::from_str(json).expect("sample parses");
        assert!(set.by_name("telemetry").expect("present").is_terminated_in_hi());
        let report = run(set, &AnalysisLimits::default()).expect("completes");
        assert!(report.lo_schedulable);
        assert!(report.s_min.as_finite().is_some());
    }

    #[test]
    fn unbounded_sets_are_reported_readably() {
        use rbs_model::{Criticality, Task};
        let set = TaskSet::new(vec![Task::builder("naive", Criticality::Hi)
            .period(Rational::integer(5))
            .deadline(Rational::integer(5))
            .wcet_lo(Rational::ONE)
            .wcet_hi(Rational::TWO)
            .build()
            .expect("valid")]);
        let report = run(set, &AnalysisLimits::default()).expect("completes");
        assert_eq!(report.s_min, SpeedupBound::Unbounded);
        assert!(report.to_string().contains("UNBOUNDED"));
    }
}
