//! Multicore extension experiment: partitioned deployment with per-core
//! temporary speedup.
//!
//! For each platform size and per-core speedup cap, generate task sets
//! at 90% of the platform's aggregate utilization (WCET uncertainty up
//! to 4x, no service degradation) and measure the
//! fraction each packing heuristic can place — quantifying how much the
//! paper's speedup lever enlarges the *multicore* design space (cores
//! with 2× boost accept markedly more than capped-at-nominal ones).

use std::fmt;

use rbs_core::AnalysisLimits;
use rbs_gen::synth::SynthConfig;
use rbs_model::{scaled_task_set, Criticality, ImplicitTaskSpec, ScalingFactors, TaskSet};
use rbs_partition::{partition, Heuristic, PlatformCap};
use rbs_timebase::Rational;

/// Campaign scale knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MulticoreConfig {
    /// Task sets per (cores, cap) cell.
    pub sets_per_cell: usize,
    /// RNG master seed.
    pub seed: u64,
}

impl Default for MulticoreConfig {
    fn default() -> MulticoreConfig {
        MulticoreConfig {
            sets_per_cell: 40,
            seed: 4242,
        }
    }
}

/// One cell of the campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MulticoreCell {
    /// Platform cores.
    pub cores: usize,
    /// Per-core speedup cap.
    pub cap: Rational,
    /// Acceptance fraction per heuristic: (first-fit, best-fit,
    /// worst-fit).
    pub acceptance: (f64, f64, f64),
    /// Sets evaluated.
    pub evaluated: usize,
}

/// The campaign result.
#[derive(Debug, Clone, PartialEq)]
pub struct MulticoreResults {
    /// All cells.
    pub cells: Vec<MulticoreCell>,
}

/// Runs the multicore campaign.
#[must_use]
pub fn run(config: &MulticoreConfig) -> MulticoreResults {
    let limits = AnalysisLimits::default();
    let mut cells = Vec::new();
    for cores in [2usize, 4] {
        for cap_tenths in [10i128, 15, 20] {
            let cap = Rational::new(cap_tenths, 10);
            let target = Rational::new(9 * cores as i128, 10); // 0.9 per core
            let generator = SynthConfig::new(target)
                .period_range_ms(5, 100)
                .gamma_range(Rational::ONE, Rational::integer(4));
            let sets = generator.generate_many(
                config.sets_per_cell,
                config.seed ^ (cores as u64) << 8 ^ cap_tenths as u64,
            );
            let mut accepted = [0usize; 3];
            let mut evaluated = 0usize;
            for specs in &sets {
                let Some(set) = prepare_multicore(specs, cores, Rational::ONE) else {
                    continue;
                };
                evaluated += 1;
                let platform = PlatformCap::new(cores, cap);
                for (slot, heuristic) in
                    [Heuristic::FirstFit, Heuristic::BestFit, Heuristic::WorstFit]
                        .into_iter()
                        .enumerate()
                {
                    if let Ok(Some(_)) = partition(&set, platform, heuristic, &limits) {
                        accepted[slot] += 1;
                    }
                }
            }
            let denom = evaluated.max(1) as f64;
            cells.push(MulticoreCell {
                cores,
                cap,
                acceptance: (
                    accepted[0] as f64 / denom,
                    accepted[1] as f64 / denom,
                    accepted[2] as f64 / denom,
                ),
                evaluated,
            });
        }
    }
    MulticoreResults { cells }
}

/// The platform-aware analogue of the uniprocessor minimal-`x`: spread
/// the LO-task utilization across `m` cores' aggregate capacity,
/// `x = U_HI(LO) / (m − U_LO(LO))`, clamped to the per-task feasibility
/// floor `max_i u_i(LO)` and into `(0, 1]`. Each core's exact tests
/// re-validate during partitioning, so this only has to be a sensible
/// starting preparation.
fn prepare_multicore(specs: &[ImplicitTaskSpec], cores: usize, y: Rational) -> Option<TaskSet> {
    let u_hi_lo: Rational = specs
        .iter()
        .filter(|s| s.criticality() == Criticality::Hi)
        .map(ImplicitTaskSpec::utilization_lo)
        .sum();
    let u_lo_lo: Rational = specs
        .iter()
        .filter(|s| s.criticality() == Criticality::Lo)
        .map(ImplicitTaskSpec::utilization_lo)
        .sum();
    let capacity = Rational::integer(cores as i128) - u_lo_lo;
    if !capacity.is_positive() {
        return None;
    }
    let floor = specs
        .iter()
        .filter(|s| s.criticality() == Criticality::Hi)
        .map(ImplicitTaskSpec::utilization_lo)
        .max()
        .unwrap_or(Rational::new(1, 1000));
    let x = (u_hi_lo / capacity)
        .max(floor)
        .max(Rational::new(1, 1000))
        .min(Rational::ONE);
    let factors = ScalingFactors::new(x, y).expect("validated ranges");
    Some(scaled_task_set(specs, factors).expect("specs validated by the model crate"))
}

impl fmt::Display for MulticoreResults {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== multicore extension: partitioned acceptance at 90% aggregate utilization =="
        )?;
        writeln!(
            f,
            "{:>6} {:>6} {:>6} {:>10} {:>10} {:>10}",
            "cores", "cap", "sets", "first-fit%", "best-fit%", "worst-fit%"
        )?;
        for cell in &self.cells {
            writeln!(
                f,
                "{:>6} {:>6} {:>6} {:>10.1} {:>10.1} {:>10.1}",
                cell.cores,
                format!("{:.1}", cell.cap.to_f64()),
                cell.evaluated,
                cell.acceptance.0 * 100.0,
                cell.acceptance.1 * 100.0,
                cell.acceptance.2 * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> MulticoreResults {
        run(&MulticoreConfig {
            sets_per_cell: 8,
            seed: 7,
        })
    }

    #[test]
    fn campaign_covers_the_grid() {
        let results = quick();
        assert_eq!(results.cells.len(), 6);
        assert!(results.cells.iter().all(|c| c.evaluated > 0));
    }

    #[test]
    fn speedup_cap_never_hurts_acceptance() {
        // For fixed cores and heuristic, a larger cap accepts a superset
        // (the HI-mode test is monotone in the cap; placement order is
        // identical).
        let results = quick();
        for cores in [2usize, 4] {
            let caps: Vec<&MulticoreCell> =
                results.cells.iter().filter(|c| c.cores == cores).collect();
            for pair in caps.windows(2) {
                assert!(
                    pair[1].acceptance.0 >= pair[0].acceptance.0,
                    "first-fit acceptance dropped with a larger cap at {cores} cores"
                );
            }
        }
    }

    #[test]
    fn display_renders_cells() {
        let text = quick().to_string();
        assert!(text.contains("first-fit%"));
        assert!(text.contains("worst-fit%"));
    }
}
