//! Simulator-vs-analysis validation: the executable counterpart of
//! Fig. 1's claim ("the computed minimum speedup factors do guarantee HI
//! mode schedulability") and of Section VI-A's recovery headline.

use std::fmt;

use rbs_core::resetting::{resetting_time, ResettingBound};
use rbs_core::speedup::{minimum_speedup, SpeedupBound};
use rbs_core::AnalysisLimits;
use rbs_gen::fms;
use rbs_model::TaskSet;
use rbs_sim::{ArrivalScenario, ExecutionScenario, Simulation};
use rbs_timebase::Rational;

use crate::workloads::{prepare, table1, table1_degraded};

/// One validation row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationRow {
    /// Scenario label.
    pub label: String,
    /// The simulated HI-mode speedup.
    pub speed: Rational,
    /// Deadline misses observed (must be 0 when `speed ≥ s_min`).
    pub misses: usize,
    /// HI-mode episodes observed.
    pub episodes: usize,
    /// Longest measured recovery.
    pub max_recovery: Option<Rational>,
    /// Corollary 5's bound at this speed.
    pub analytic_recovery: ResettingBound,
}

/// The validation battery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationResults {
    /// All rows.
    pub rows: Vec<ValidationRow>,
}

fn validate(label: &str, set: &TaskSet, horizon: Rational, seed: u64) -> Vec<ValidationRow> {
    let limits = AnalysisLimits::default();
    let s_min = minimum_speedup(set, &limits)
        .expect("analysis completes")
        .bound();
    let SpeedupBound::Finite(s_min) = s_min else {
        return Vec::new();
    };
    let mut rows = Vec::new();
    for (suffix, speed) in [
        ("s_min", s_min.max(Rational::ONE)),
        ("2x", Rational::TWO.max(s_min)),
    ] {
        let analytic_recovery = resetting_time(set, speed, &limits)
            .expect("analysis completes")
            .bound();
        for (scenario_name, scenario) in [
            ("sustained", ExecutionScenario::HiWcet),
            (
                "random",
                ExecutionScenario::RandomOverrun {
                    probability: 0.2,
                    seed,
                },
            ),
        ] {
            let report = Simulation::new(set.clone())
                .speedup(speed)
                .horizon(horizon)
                .arrivals(ArrivalScenario::Saturated)
                .execution(scenario)
                .run()
                .expect("simulation runs");
            rows.push(ValidationRow {
                label: format!("{label}/{suffix}/{scenario_name}"),
                speed,
                misses: report.misses().len(),
                episodes: report.hi_episodes().len(),
                max_recovery: report.max_recovery(),
                analytic_recovery,
            });
        }
    }
    rows
}

/// Runs the validation battery (Table I variants and the FMS).
#[must_use]
pub fn run() -> ValidationResults {
    let mut rows = Vec::new();
    rows.extend(validate("table1", &table1(), Rational::integer(500), 1));
    rows.extend(validate(
        "table1-degraded",
        &table1_degraded(),
        Rational::integer(500),
        2,
    ));
    if let Some(fms_set) = prepare(&fms::specs(Rational::TWO), Rational::TWO) {
        rows.extend(validate(
            "fms",
            &fms_set,
            Rational::integer(60_000), // one minute of milliseconds
            3,
        ));
    }
    ValidationResults { rows }
}

impl fmt::Display for ValidationResults {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== simulator vs analysis validation ==")?;
        writeln!(
            f,
            "{:<32} {:>8} {:>7} {:>9} {:>14} {:>14}",
            "scenario", "speed", "misses", "episodes", "max recovery", "bound"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<32} {:>8} {:>7} {:>9} {:>14} {:>14}",
                row.label,
                format!("{:.3}", row.speed.to_f64()),
                row.misses,
                row.episodes,
                row.max_recovery
                    .map_or_else(|| "-".to_owned(), |r| format!("{:.2}", r.to_f64())),
                row.analytic_recovery.to_string()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analysis_guarantees_hold_in_simulation() {
        let results = run();
        assert!(!results.rows.is_empty());
        for row in &results.rows {
            assert_eq!(row.misses, 0, "{} missed deadlines", row.label);
            if let (Some(measured), ResettingBound::Finite(bound)) =
                (row.max_recovery, row.analytic_recovery)
            {
                assert!(
                    measured <= bound,
                    "{}: measured {measured} > bound {bound}",
                    row.label
                );
            }
        }
    }

    #[test]
    fn sustained_scenarios_produce_episodes() {
        let results = run();
        let sustained: Vec<_> = results
            .rows
            .iter()
            .filter(|r| r.label.contains("sustained"))
            .collect();
        assert!(!sustained.is_empty());
        assert!(sustained.iter().any(|r| r.episodes > 0));
    }

    #[test]
    fn display_renders_rows() {
        let text = run().to_string();
        assert!(text.contains("table1/s_min/sustained"));
        assert!(text.contains("bound"));
    }
}
