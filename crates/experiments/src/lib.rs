//! Experiment harness regenerating every table and figure of
//! *"Run and Be Safe"* (DATE 2015).
//!
//! Each module computes one paper artifact and renders it as plain-text
//! rows/series matching what the paper plots; the binary
//! (`cargo run -p rbs-experiments --release -- <id>`) dispatches on the
//! experiment id. See DESIGN.md for the experiment index and
//! EXPERIMENTS.md for recorded paper-vs-measured results.
//!
//! | id | artifact |
//! |----|----------|
//! | `table1` | Table I & Examples 1–2 (minimum speedup, resetting time) |
//! | `fig1` | HI-mode demand bound functions vs supplied service |
//! | `fig3` | service resetting time vs speedup |
//! | `fig4` | closed-form trade-offs `s_min(x, y)` and `Δ_R(s; s_min)` |
//! | `fig5` | FMS contours: `s_min` over `(x, y)`, `Δ_R` over `(s, γ)` |
//! | `fig6` | synthetic campaign: distributions of `s_min` and `Δ_R` |
//! | `fig7` | schedulability regions at `s = 2`, `Δ_R ≤ 5 s` |
//! | `sim-validate` | simulator-vs-analysis validation runs |
//! | `analyze FILE` | full report for a user-supplied JSON task set |
//! | `energy` | energy-vs-service cost of speedup / degradation / termination |
//! | `multicore` | partitioned multicore acceptance with per-core speedup caps |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod energy_tradeoff;
pub mod fig1;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod multicore;
pub mod sim_validate;
pub mod stats;
pub mod table1;
pub mod workloads;
