//! Fig. 1: HI-mode demand bound functions vs the service supplied at the
//! minimum speedup, for the Table I set with and without service
//! degradation.

use std::fmt;

use rbs_core::dbf::total_dbf_hi;
use rbs_core::speedup::{minimum_speedup, SpeedupBound};
use rbs_core::AnalysisLimits;
use rbs_model::TaskSet;
use rbs_timebase::Rational;

use crate::workloads::{table1, table1_degraded};

/// One demand/supply curve pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DemandSeries {
    /// Which variant (for display).
    pub label: &'static str,
    /// The minimum speedup whose supply line is plotted.
    pub s_min: SpeedupBound,
    /// `(Δ, Σ DBF_HI(Δ), s_min·Δ)` samples.
    pub points: Vec<(Rational, Rational, Rational)>,
}

/// The two panels of Fig. 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig1Results {
    /// Panel (a): no service degradation.
    pub plain: DemandSeries,
    /// Panel (b): degraded τ2 service.
    pub degraded: DemandSeries,
}

fn series(label: &'static str, set: &TaskSet, horizon: i128, step_den: i128) -> DemandSeries {
    let limits = AnalysisLimits::default();
    let s_min = minimum_speedup(set, &limits)
        .expect("analysis completes")
        .bound();
    let supply_rate = s_min.as_finite().unwrap_or(Rational::ZERO);
    let points = (0..=horizon * step_den)
        .map(|i| {
            let delta = Rational::new(i, step_den);
            (delta, total_dbf_hi(set, delta), supply_rate * delta)
        })
        .collect();
    DemandSeries {
        label,
        s_min,
        points,
    }
}

/// Runs the Fig. 1 experiment (`Δ ∈ [0, 20]`, quarter-unit sampling).
#[must_use]
pub fn run() -> Fig1Results {
    Fig1Results {
        plain: series("no degradation", &table1(), 20, 4),
        degraded: series("with degradation", &table1_degraded(), 20, 4),
    }
}

impl fmt::Display for Fig1Results {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== Fig. 1: minimum speedup and demand bound functions =="
        )?;
        for panel in [&self.plain, &self.degraded] {
            writeln!(f, "-- {} (s_min = {}) --", panel.label, panel.s_min)?;
            writeln!(f, "{:>8} {:>12} {:>12}", "Delta", "DBF_HI", "s_min*Delta")?;
            for (delta, demand, supply) in &panel.points {
                if delta.is_integer() {
                    writeln!(
                        f,
                        "{:>8} {:>12} {:>12}",
                        delta.to_string(),
                        demand.to_string(),
                        supply.to_string()
                    )?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supply_dominates_demand_everywhere() {
        // Fig. 1's visual claim: "the computed minimum speedup factors do
        // guarantee HI mode schedulability" — the supply line never dips
        // below the demand curve.
        let results = run();
        for panel in [&results.plain, &results.degraded] {
            for (delta, demand, supply) in &panel.points {
                assert!(
                    supply >= demand,
                    "{}: demand beats supply at {delta}",
                    panel.label
                );
            }
        }
    }

    #[test]
    fn supply_touches_demand_at_the_witness() {
        // The bound is tight: equality holds somewhere.
        let results = run();
        assert!(results
            .plain
            .points
            .iter()
            .any(|(d, demand, supply)| d.is_positive() && demand == supply));
    }

    #[test]
    fn degraded_panel_has_lower_supply_rate() {
        let results = run();
        assert!(
            results.degraded.s_min.as_finite().expect("finite")
                < results.plain.s_min.as_finite().expect("finite")
        );
    }

    #[test]
    fn display_renders_both_panels() {
        let text = run().to_string();
        assert!(text.contains("no degradation"));
        assert!(text.contains("with degradation"));
        assert!(text.contains("DBF_HI"));
    }
}
