//! Energy vs. service: the cost side of the paper's argument, measured.
//!
//! The paper motivates speedup as the alternative to degrading or
//! terminating LO tasks — protecting *service* at the price of
//! *energy* (Section I cites Intel turbo's power-limited 2× boost; the
//! authors' companion paper \[11\] studies the energy side). This
//! experiment runs the three mitigation strategies on the same workload
//! under identical overrun patterns and reports what each one pays:
//!
//! * `speedup` — full LO service, processor overclocked to the set's
//!   `s_min` during episodes;
//! * `degrade` — LO service halved in HI mode (`y = 2`), no
//!   overclocking (these sets can even slow down; we keep `s = 1`);
//! * `terminate` — LO tasks dropped in HI mode, no overclocking.
//!
//! Metrics: deadline misses (must be 0 for all), completed LO jobs
//! (service), dynamic energy under the cubic DVFS model, and the mean
//! measured recovery.

use std::fmt;

use rbs_core::speedup::{minimum_speedup, SpeedupBound};
use rbs_core::AnalysisLimits;
use rbs_model::{Criticality, TaskSet};
use rbs_sim::{ExecutionScenario, SimReport, Simulation, TraceEvent};
use rbs_timebase::Rational;

use crate::workloads::{table1, table1_degraded};

/// One strategy's measured outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrategyRow {
    /// Strategy label.
    pub label: &'static str,
    /// HI-mode speed used.
    pub speed: Rational,
    /// Deadline misses (must be zero).
    pub misses: usize,
    /// Completed jobs of LO-criticality tasks (the service metric).
    pub lo_completions: u64,
    /// Jobs dropped or suppressed by termination.
    pub dropped: u64,
    /// Dynamic energy (cubic model), normalized time units.
    pub energy: Rational,
    /// Mean measured recovery across completed episodes.
    pub mean_recovery: Option<Rational>,
}

/// The experiment result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnergyTradeoffResults {
    /// One row per strategy.
    pub rows: Vec<StrategyRow>,
}

/// Snap a speed up to quarters (keeps simulated denominators small).
fn snap_up(s: Rational) -> Rational {
    let q = Rational::new(1, 4);
    let steps = s / q;
    if steps.is_integer() {
        s
    } else {
        Rational::integer(steps.floor() + 1) * q
    }
}

fn lo_completions(set: &TaskSet, report: &SimReport) -> u64 {
    let lo_tasks: Vec<usize> = set
        .iter()
        .enumerate()
        .filter(|(_, t)| t.criticality() == Criticality::Lo)
        .map(|(i, _)| i)
        .collect();
    // Count completions attributable to LO tasks via release events
    // (completion events carry only the job id, so map ids to tasks).
    let mut lo_jobs = std::collections::BTreeSet::new();
    for event in report.trace() {
        if let TraceEvent::Release { job, task, .. } = event {
            if lo_tasks.contains(task) {
                lo_jobs.insert(*job);
            }
        }
    }
    report
        .trace()
        .iter()
        .filter(|e| matches!(e, TraceEvent::Completion { job, .. } if lo_jobs.contains(job)))
        .count() as u64
}

fn mean_recovery(report: &SimReport) -> Option<Rational> {
    let recoveries: Vec<Rational> = report
        .hi_episodes()
        .iter()
        .filter_map(rbs_sim::HiEpisode::recovery)
        .collect();
    if recoveries.is_empty() {
        return None;
    }
    Some(recoveries.iter().copied().sum::<Rational>() / Rational::integer(recoveries.len() as i128))
}

fn strategy(
    label: &'static str,
    set: TaskSet,
    speed: Rational,
    horizon: Rational,
    seed: u64,
) -> StrategyRow {
    let report = Simulation::new(set.clone())
        .speedup(speed)
        .horizon(horizon)
        .execution(ExecutionScenario::RandomOverrun {
            probability: 0.3,
            seed,
        })
        .run()
        .expect("simulation runs");
    StrategyRow {
        label,
        speed,
        misses: report.misses().len(),
        lo_completions: lo_completions(&set, &report),
        dropped: report.dropped(),
        energy: report.energy(),
        mean_recovery: mean_recovery(&report),
    }
}

/// Runs the trade-off on the Table I workload.
///
/// # Panics
///
/// Panics if any strategy misses a deadline (all three are analytically
/// safe by construction).
#[must_use]
pub fn run() -> EnergyTradeoffResults {
    let limits = AnalysisLimits::default();
    let horizon = Rational::integer(2_000);
    let seed = 2015;

    // Strategy 1: speedup with full service.
    let full = table1();
    let SpeedupBound::Finite(s_min) = minimum_speedup(&full, &limits).expect("completes").bound()
    else {
        unreachable!("Table I has a finite requirement")
    };
    let speedup_row = strategy("speedup", full, snap_up(s_min), horizon, seed);

    // Strategy 2: degradation at nominal speed.
    let degrade_row = strategy("degrade", table1_degraded(), Rational::ONE, horizon, seed);

    // Strategy 3: termination at nominal speed.
    let terminated = table1().with_lo_terminated().expect("valid");
    let terminate_row = strategy("terminate", terminated, Rational::ONE, horizon, seed);

    let rows = vec![speedup_row, degrade_row, terminate_row];
    for row in &rows {
        assert_eq!(row.misses, 0, "{} missed deadlines", row.label);
    }
    EnergyTradeoffResults { rows }
}

impl fmt::Display for EnergyTradeoffResults {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== energy vs service: the cost of each mitigation (Table I, 2000 time units) =="
        )?;
        writeln!(
            f,
            "{:<10} {:>7} {:>7} {:>9} {:>8} {:>10} {:>14}",
            "strategy", "speed", "misses", "LO compl", "dropped", "energy", "mean recovery"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<10} {:>7} {:>7} {:>9} {:>8} {:>10.1} {:>14}",
                row.label,
                format!("{:.2}", row.speed.to_f64()),
                row.misses,
                row.lo_completions,
                row.dropped,
                row.energy.to_f64(),
                row.mean_recovery
                    .map_or_else(|| "-".to_owned(), |r| format!("{:.2}", r.to_f64())),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_strategies_are_safe() {
        let results = run();
        assert_eq!(results.rows.len(), 3);
        assert!(results.rows.iter().all(|r| r.misses == 0));
    }

    #[test]
    fn speedup_preserves_the_most_service() {
        let results = run();
        let by_label = |l: &str| {
            results
                .rows
                .iter()
                .find(|r| r.label == l)
                .expect("row present")
        };
        let speedup = by_label("speedup");
        let degrade = by_label("degrade");
        let terminate = by_label("terminate");
        // Service ordering: full service ≥ degraded ≥ terminated.
        assert!(speedup.lo_completions >= degrade.lo_completions);
        assert!(degrade.lo_completions >= terminate.lo_completions);
        // Termination visibly drops jobs; speedup drops none.
        assert_eq!(speedup.dropped, 0);
        assert!(terminate.dropped > 0);
    }

    #[test]
    fn speedup_pays_in_energy() {
        let results = run();
        let speedup = results
            .rows
            .iter()
            .find(|r| r.label == "speedup")
            .expect("row");
        let terminate = results
            .rows
            .iter()
            .find(|r| r.label == "terminate")
            .expect("row");
        // Per completed job, the overclocked strategy burns more energy
        // than the terminating one (which sheds work instead).
        let speedup_per_job = speedup.energy / Rational::integer(speedup.lo_completions as i128);
        let terminate_per_job =
            terminate.energy / Rational::integer(terminate.lo_completions.max(1) as i128);
        assert!(
            speedup.energy > terminate.energy || speedup_per_job > terminate_per_job,
            "speedup energy {} should exceed terminate {}",
            speedup.energy,
            terminate.energy
        );
    }

    #[test]
    fn display_renders_all_strategies() {
        let text = run().to_string();
        for label in ["speedup", "degrade", "terminate"] {
            assert!(text.contains(label), "missing {label}");
        }
    }
}
