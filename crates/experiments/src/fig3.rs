//! Fig. 3: service resetting time under dynamic processor speedup.
//!
//! Panel (a) demonstrates the resetting instant for two concrete speeds;
//! panel (b) sweeps `s` and plots the parametric trend of `Δ_R` — the
//! clear gain from speeding up more.

use std::fmt;

use rbs_core::adb::total_adb_hi;
use rbs_core::resetting::{resetting_time, ResettingBound};
use rbs_core::AnalysisLimits;
use rbs_timebase::Rational;

use crate::workloads::{table1, table1_degraded};

/// The Fig. 3 data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig3Results {
    /// Panel (a): `(Δ, ADB(Δ), s_a·Δ, s_b·Δ)` with `s_a = 4/3`,
    /// `s_b = 2` for the undegraded set.
    pub arrived_demand: Vec<(Rational, Rational, Rational, Rational)>,
    /// Resetting instants for the two panel-(a) speeds.
    pub anchors: [(Rational, ResettingBound); 2],
    /// Panel (b): `(s, Δ_R plain, Δ_R degraded)` sweep.
    pub trend: Vec<(Rational, ResettingBound, ResettingBound)>,
}

/// Runs the Fig. 3 experiment.
#[must_use]
pub fn run() -> Fig3Results {
    let limits = AnalysisLimits::default();
    let plain = table1();
    let degraded = table1_degraded();
    let s_a = Rational::new(4, 3);
    let s_b = Rational::TWO;

    let arrived_demand = (0..=15 * 4)
        .map(|i| {
            let delta = Rational::new(i, 4);
            (delta, total_adb_hi(&plain, delta), s_a * delta, s_b * delta)
        })
        .collect();
    let anchors = [
        (
            s_a,
            resetting_time(&plain, s_a, &limits)
                .expect("analysis completes")
                .bound(),
        ),
        (
            s_b,
            resetting_time(&plain, s_b, &limits)
                .expect("analysis completes")
                .bound(),
        ),
    ];
    // Sweep s from 0.8 to 4.0 in steps of 1/10.
    let trend = (8..=40)
        .map(|i| {
            let s = Rational::new(i, 10);
            let plain_dr = resetting_time(&plain, s, &limits)
                .expect("analysis completes")
                .bound();
            let degraded_dr = resetting_time(&degraded, s, &limits)
                .expect("analysis completes")
                .bound();
            (s, plain_dr, degraded_dr)
        })
        .collect();
    Fig3Results {
        arrived_demand,
        anchors,
        trend,
    }
}

impl fmt::Display for Fig3Results {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== Fig. 3: service resetting time under speedup ==")?;
        writeln!(f, "-- (a) arrived demand vs supply (no degradation) --")?;
        writeln!(
            f,
            "{:>8} {:>10} {:>12} {:>10}",
            "Delta", "ADB", "(4/3)*Delta", "2*Delta"
        )?;
        for (delta, adb, supply_a, supply_b) in &self.arrived_demand {
            if delta.is_integer() {
                writeln!(
                    f,
                    "{:>8} {:>10} {:>12} {:>10}",
                    delta.to_string(),
                    adb.to_string(),
                    supply_a.to_string(),
                    supply_b.to_string()
                )?;
            }
        }
        for (s, bound) in &self.anchors {
            writeln!(f, "reset at s={s}: Delta_R = {bound}")?;
        }
        writeln!(f, "-- (b) parametric trend --")?;
        writeln!(f, "{:>8} {:>16} {:>16}", "s", "plain", "degraded")?;
        for (s, plain, degraded) in &self.trend {
            writeln!(
                f,
                "{:>8} {:>16} {:>16}",
                s.to_string(),
                plain.to_string(),
                degraded.to_string()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faster_is_never_slower() {
        let results = run();
        let mut last_plain: Option<Rational> = None;
        for (_, plain, _) in &results.trend {
            if let ResettingBound::Finite(v) = plain {
                if let Some(prev) = last_plain {
                    assert!(*v <= prev);
                }
                last_plain = Some(*v);
            }
        }
    }

    #[test]
    fn anchor_at_two_matches_corollary_5() {
        let results = run();
        let (s, bound) = results.anchors[1];
        assert_eq!(s, Rational::TWO);
        assert_eq!(bound, ResettingBound::Finite(Rational::integer(5)));
    }

    #[test]
    fn degradation_shrinks_resetting_time() {
        // "if service degradation is enabled in parallel to processor
        // speedup, the service resetting time can be further reduced".
        let results = run();
        for (_, plain, degraded) in &results.trend {
            if let (ResettingBound::Finite(p), ResettingBound::Finite(d)) = (plain, degraded) {
                assert!(d <= p, "degraded {d} > plain {p}");
            }
        }
    }

    #[test]
    fn slow_speeds_never_reset() {
        // Below the HI-mode utilization (7/10) the bound is unbounded.
        let results = run();
        let (_, plain, _) = results.trend[0]; // s = 0.8 > 0.7: finite
        assert!(matches!(plain, ResettingBound::Finite(_)));
    }

    #[test]
    fn display_contains_both_panels() {
        let text = run().to_string();
        assert!(text.contains("(a) arrived demand"));
        assert!(text.contains("(b) parametric trend"));
    }
}
