//! Shared workloads: the reconstructed Table I set and helpers that
//! prepare synthetic specs the way the paper's experiments do.

use rbs_core::lo_mode::minimal_feasible_x;
use rbs_model::{scaled_task_set, Criticality, ImplicitTaskSpec, ScalingFactors, Task, TaskSet};
use rbs_timebase::Rational;

fn int(v: i128) -> Rational {
    Rational::integer(v)
}

/// The reconstructed Table I task set (see DESIGN.md *Substitutions*):
/// `τ1 = HI (C_LO=1, C_HI=2, D_LO=2, D_HI=T=5)`,
/// `τ2 = LO (C=3, D=T=10)`. Reproduces Example 1's exact
/// `s_min = 4/3` with no service degradation.
///
/// # Examples
///
/// ```
/// use rbs_experiments::workloads::table1;
///
/// assert_eq!(table1().len(), 2);
/// ```
#[must_use]
pub fn table1() -> TaskSet {
    TaskSet::new(vec![
        Task::builder("tau1", Criticality::Hi)
            .period(int(5))
            .deadline_lo(int(2))
            .deadline_hi(int(5))
            .wcet_lo(int(1))
            .wcet_hi(int(2))
            .build()
            .expect("Table I τ1 is valid"),
        Task::builder("tau2", Criticality::Lo)
            .period(int(10))
            .deadline(int(10))
            .wcet(int(3))
            .build()
            .expect("Table I τ2 is valid"),
    ])
}

/// Table I with Example 1's degraded τ2 service:
/// `D_2(HI) = 15, T_2(HI) = 20`.
#[must_use]
pub fn table1_degraded() -> TaskSet {
    TaskSet::new(vec![
        table1()[0].clone(),
        Task::builder("tau2", Criticality::Lo)
            .period(int(10))
            .deadline(int(10))
            .period_hi(int(20))
            .deadline_hi(int(15))
            .wcet(int(3))
            .build()
            .expect("degraded τ2 is valid"),
    ])
}

/// Prepares a synthetic spec list the way the paper's campaigns do:
/// `x` is set to the minimum guaranteeing LO-mode schedulability (the
/// density bound of \[6\], clamped into `(0, 1]`) and LO service is
/// degraded by `y`. Returns `None` when no feasible `x` exists.
///
/// # Panics
///
/// Panics if `y < 1`.
#[must_use]
pub fn prepare(specs: &[ImplicitTaskSpec], y: Rational) -> Option<TaskSet> {
    let x = minimal_feasible_x(specs)?;
    let factors = ScalingFactors::new(x, y).expect("validated ranges");
    Some(scaled_task_set(specs, factors).expect("specs validated by the model crate"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbs_core::lo_mode::is_lo_schedulable;
    use rbs_core::AnalysisLimits;

    #[test]
    fn table1_matches_design_doc() {
        let set = table1();
        assert_eq!(set[0].lo().deadline(), int(2));
        assert_eq!(set[1].lo().wcet(), int(3));
        let degraded = table1_degraded();
        let hi = degraded[1].params(rbs_model::Mode::Hi).expect("continues");
        assert_eq!(hi.period(), int(20));
        assert_eq!(hi.deadline(), int(15));
    }

    #[test]
    fn prepared_sets_are_lo_schedulable() {
        let specs = vec![
            ImplicitTaskSpec::hi("h", int(10), int(2), int(4)),
            ImplicitTaskSpec::lo("l", int(8), int(2)),
        ];
        let set = prepare(&specs, Rational::TWO).expect("feasible");
        assert!(is_lo_schedulable(&set, &AnalysisLimits::default()).expect("completes"));
    }

    #[test]
    fn infeasible_specs_return_none() {
        let specs = vec![ImplicitTaskSpec::lo("l", int(4), int(4))];
        assert_eq!(prepare(&specs, Rational::ONE), None);
    }
}
