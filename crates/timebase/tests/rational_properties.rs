//! Property-based tests for `Rational` arithmetic and ordering, driven by a
//! seeded deterministic RNG (no external property-testing framework).

use rbs_rng::Rng;
use rbs_timebase::Rational;

const CASES: usize = 512;

fn small_rational(rng: &mut Rng) -> Rational {
    Rational::new(
        rng.gen_range_i128(-1_000_000, 1_000_000),
        rng.gen_range_i128(1, 1_000_000),
    )
}

fn positive_rational(rng: &mut Rng) -> Rational {
    Rational::new(rng.gen_range_i128(1, 100_000), rng.gen_range_i128(1, 1_000))
}

#[test]
fn add_is_commutative() {
    let mut rng = Rng::seed_from_u64(0x5eed_0001);
    for _ in 0..CASES {
        let (a, b) = (small_rational(&mut rng), small_rational(&mut rng));
        assert_eq!(a + b, b + a, "a={a} b={b}");
    }
}

#[test]
fn add_is_associative() {
    let mut rng = Rng::seed_from_u64(0x5eed_0002);
    for _ in 0..CASES {
        let a = small_rational(&mut rng);
        let b = small_rational(&mut rng);
        let c = small_rational(&mut rng);
        assert_eq!((a + b) + c, a + (b + c), "a={a} b={b} c={c}");
    }
}

#[test]
fn mul_distributes_over_add() {
    let mut rng = Rng::seed_from_u64(0x5eed_0003);
    for _ in 0..CASES {
        let a = small_rational(&mut rng);
        let b = small_rational(&mut rng);
        let c = small_rational(&mut rng);
        assert_eq!(a * (b + c), a * b + a * c, "a={a} b={b} c={c}");
    }
}

#[test]
fn sub_is_inverse_of_add() {
    let mut rng = Rng::seed_from_u64(0x5eed_0004);
    for _ in 0..CASES {
        let (a, b) = (small_rational(&mut rng), small_rational(&mut rng));
        assert_eq!(a + b - b, a, "a={a} b={b}");
    }
}

#[test]
fn div_is_inverse_of_mul() {
    let mut rng = Rng::seed_from_u64(0x5eed_0005);
    for _ in 0..CASES {
        let (a, b) = (small_rational(&mut rng), positive_rational(&mut rng));
        assert_eq!(a * b / b, a, "a={a} b={b}");
    }
}

#[test]
fn result_is_always_reduced() {
    let mut rng = Rng::seed_from_u64(0x5eed_0006);
    for _ in 0..CASES {
        let (a, b) = (small_rational(&mut rng), small_rational(&mut rng));
        let c = a + b;
        assert!(c.denom() > 0);
        // Reduced: gcd(|num|, den) == 1 unless zero (0/1 has gcd 1 too).
        let g = rbs_timebase::gcd_i128(c.numer().abs().max(1), c.denom());
        assert_eq!(g, if c.is_zero() { c.denom() } else { 1 }, "c={c}");
    }
}

#[test]
fn ordering_agrees_with_f64_when_far_apart() {
    let mut rng = Rng::seed_from_u64(0x5eed_0007);
    for _ in 0..CASES {
        let (a, b) = (small_rational(&mut rng), small_rational(&mut rng));
        let (fa, fb) = (a.to_f64(), b.to_f64());
        if (fa - fb).abs() > 1e-6 {
            assert_eq!(a < b, fa < fb, "a={a} b={b}");
        }
    }
}

#[test]
fn ordering_is_total_and_antisymmetric() {
    use std::cmp::Ordering;
    let mut rng = Rng::seed_from_u64(0x5eed_0008);
    for _ in 0..CASES {
        let (a, b) = (small_rational(&mut rng), small_rational(&mut rng));
        match a.cmp(&b) {
            Ordering::Less => assert_eq!(b.cmp(&a), Ordering::Greater, "a={a} b={b}"),
            Ordering::Greater => assert_eq!(b.cmp(&a), Ordering::Less, "a={a} b={b}"),
            Ordering::Equal => assert_eq!(a, b),
        }
    }
}

#[test]
fn mod_floor_is_in_range() {
    let mut rng = Rng::seed_from_u64(0x5eed_0009);
    for _ in 0..CASES {
        let (a, b) = (small_rational(&mut rng), positive_rational(&mut rng));
        let m = a.mod_floor(b);
        assert!(m >= Rational::ZERO, "a={a} b={b}");
        assert!(m < b, "a={a} b={b}");
        // a = floor(a/b)*b + m exactly.
        assert_eq!(Rational::integer(a.floor_div(b)) * b + m, a, "a={a} b={b}");
    }
}

#[test]
fn floor_ceil_bracket_value() {
    let mut rng = Rng::seed_from_u64(0x5eed_000a);
    for _ in 0..CASES {
        let a = small_rational(&mut rng);
        let f = Rational::integer(a.floor());
        let c = Rational::integer(a.ceil());
        assert!(f <= a && a <= c, "a={a}");
        assert!(c - f <= Rational::ONE, "a={a}");
        if a.is_integer() {
            assert_eq!(f, c, "a={a}");
        }
    }
}

#[test]
fn lcm_is_common_multiple() {
    let mut rng = Rng::seed_from_u64(0x5eed_000b);
    for _ in 0..CASES {
        let (a, b) = (positive_rational(&mut rng), positive_rational(&mut rng));
        if let Some(l) = a.lcm(b) {
            assert!((l / a).is_integer(), "a={a} b={b}");
            assert!((l / b).is_integer(), "a={a} b={b}");
        }
    }
}

#[test]
fn display_parse_round_trip() {
    let mut rng = Rng::seed_from_u64(0x5eed_000c);
    for _ in 0..CASES {
        let a = small_rational(&mut rng);
        let text = a.to_string();
        let back: Rational = text.parse().expect("display output parses");
        assert_eq!(back, a);
    }
}

#[test]
fn json_round_trip() {
    let mut rng = Rng::seed_from_u64(0x5eed_000d);
    for _ in 0..CASES {
        let a = small_rational(&mut rng);
        let json = rbs_json::to_string(&a);
        let back: Rational = rbs_json::from_str(&json).expect("deserialize");
        assert_eq!(back, a);
    }
}
