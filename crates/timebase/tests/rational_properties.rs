//! Property-based tests for `Rational` arithmetic and ordering.

use proptest::prelude::*;
use rbs_timebase::Rational;

fn small_rational() -> impl Strategy<Value = Rational> {
    (-1_000_000i128..=1_000_000, 1i128..=1_000_000).prop_map(|(n, d)| Rational::new(n, d))
}

fn positive_rational() -> impl Strategy<Value = Rational> {
    (1i128..=100_000, 1i128..=1_000).prop_map(|(n, d)| Rational::new(n, d))
}

proptest! {
    #[test]
    fn add_is_commutative(a in small_rational(), b in small_rational()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn add_is_associative(a in small_rational(), b in small_rational(), c in small_rational()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn mul_distributes_over_add(
        a in small_rational(),
        b in small_rational(),
        c in small_rational(),
    ) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn sub_is_inverse_of_add(a in small_rational(), b in small_rational()) {
        prop_assert_eq!(a + b - b, a);
    }

    #[test]
    fn div_is_inverse_of_mul(a in small_rational(), b in positive_rational()) {
        prop_assert_eq!(a * b / b, a);
    }

    #[test]
    fn result_is_always_reduced(a in small_rational(), b in small_rational()) {
        let c = a + b;
        prop_assert!(c.denom() > 0);
        prop_assert_eq!(rbs_timebase::gcd_i128(c.numer(), c.denom()), if c.is_zero() { 1 } else { rbs_timebase::gcd_i128(c.numer(), c.denom()) });
        // Reduced: gcd(|num|, den) == 1 unless zero (0/1 has gcd 1 too).
        let g = rbs_timebase::gcd_i128(c.numer().abs().max(1), c.denom());
        prop_assert_eq!(g, if c.is_zero() { c.denom() } else { 1 });
    }

    #[test]
    fn ordering_agrees_with_f64_when_far_apart(a in small_rational(), b in small_rational()) {
        let (fa, fb) = (a.to_f64(), b.to_f64());
        if (fa - fb).abs() > 1e-6 {
            prop_assert_eq!(a < b, fa < fb);
        }
    }

    #[test]
    fn ordering_is_total_and_antisymmetric(a in small_rational(), b in small_rational()) {
        use std::cmp::Ordering;
        match a.cmp(&b) {
            Ordering::Less => prop_assert_eq!(b.cmp(&a), Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(b.cmp(&a), Ordering::Less),
            Ordering::Equal => prop_assert_eq!(a, b),
        }
    }

    #[test]
    fn mod_floor_is_in_range(a in small_rational(), b in positive_rational()) {
        let m = a.mod_floor(b);
        prop_assert!(m >= Rational::ZERO);
        prop_assert!(m < b);
        // a = floor(a/b)*b + m exactly.
        prop_assert_eq!(Rational::integer(a.floor_div(b)) * b + m, a);
    }

    #[test]
    fn floor_ceil_bracket_value(a in small_rational()) {
        let f = Rational::integer(a.floor());
        let c = Rational::integer(a.ceil());
        prop_assert!(f <= a && a <= c);
        prop_assert!(c - f <= Rational::ONE);
        if a.is_integer() {
            prop_assert_eq!(f, c);
        }
    }

    #[test]
    fn lcm_is_common_multiple(a in positive_rational(), b in positive_rational()) {
        if let Some(l) = a.lcm(b) {
            prop_assert!((l / a).is_integer());
            prop_assert!((l / b).is_integer());
        }
    }

    #[test]
    fn display_parse_round_trip(a in small_rational()) {
        let text = a.to_string();
        let back: Rational = text.parse().expect("display output parses");
        prop_assert_eq!(back, a);
    }

    #[test]
    fn serde_round_trip(a in small_rational()) {
        let json = serde_json::to_string(&a).expect("serialize");
        let back: Rational = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(back, a);
    }
}
