//! Exact rational time arithmetic for mixed-criticality schedulability
//! analysis.
//!
//! Demand-bound analysis with processor speedup produces values such as
//! `s_min = 4/3` that are meaningful *exactly*: a floating-point
//! approximation can flip a schedulability verdict right at the boundary.
//! This crate provides [`Rational`], an arbitrary-sign rational number over
//! checked `i128` arithmetic, together with the handful of numeric
//! operations the analysis needs:
//!
//! * exact field arithmetic with operator overloads,
//! * total ordering that never overflows (continued-fraction fallback),
//! * the paper's extended `mod` operator
//!   (`a mod b = a - floor(a/b)*b`, for real `a`, `b`) as
//!   [`Rational::mod_floor`],
//! * `floor`/`ceil`/[`Rational::floor_div`] used by demand-bound functions,
//! * rational `lcm` for hyperperiod computations.
//!
//! # Examples
//!
//! ```
//! use rbs_timebase::Rational;
//!
//! let demand = Rational::new(4, 1);
//! let interval = Rational::new(3, 1);
//! let speedup = demand / interval;
//! assert_eq!(speedup, Rational::new(4, 3));
//! assert_eq!(speedup.to_string(), "4/3");
//! assert!(speedup > Rational::ONE);
//! ```
//!
//! All types are `Send + Sync`, implement the common std traits, and
//! (de)serialize via `rbs-json` as a `{ "num": .., "den": .. }` pair.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod euclid;
mod rational;

pub use error::{ParseRationalError, RationalOverflowError};
pub use euclid::{gcd_i128, lcm_i128};
pub use rational::Rational;

#[cfg(test)]
mod send_sync_tests {
    use super::*;

    #[test]
    fn rational_is_send_and_sync() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<Rational>();
        assert_sync::<Rational>();
    }
}
