//! The [`Rational`] number type.

use std::cmp::Ordering;
use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

use rbs_json::{FromJson, Json, JsonError, ToJson};

use crate::error::{ParseErrorReason, ParseRationalError, RationalOverflowError};
use crate::euclid::{gcd_i128, lcm_i128};

/// An exact rational number `num/den` over `i128`.
///
/// Invariants maintained by every constructor and operation:
///
/// * `den > 0`,
/// * `gcd(|num|, den) == 1` (fully reduced),
/// * zero is represented uniquely as `0/1`.
///
/// Arithmetic is exact. The operator overloads (`+`, `-`, `*`, `/`) panic
/// on `i128` overflow; the `checked_*` methods return
/// [`RationalOverflowError`] instead. Comparison never overflows — it falls
/// back to a continued-fraction expansion when the cross products do not
/// fit in `i128`.
///
/// # Examples
///
/// ```
/// use rbs_timebase::Rational;
///
/// let third = Rational::new(1, 3);
/// let total = third + Rational::new(1, 6);
/// assert_eq!(total, Rational::new(1, 2));
/// assert_eq!(total.floor(), 0);
/// assert_eq!((total * Rational::from(4)).ceil(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

/// Wire format: `{"num": i128, "den": i128}`. Unreduced input is normalized,
/// a zero denominator is rejected.
impl ToJson for Rational {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("num".to_owned(), Json::Int(self.num)),
            ("den".to_owned(), Json::Int(self.den)),
        ])
    }
}

impl FromJson for Rational {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let num = value
            .field("num")?
            .as_i128()
            .ok_or_else(|| JsonError::new("rational `num` must be an integer"))?;
        let den = value
            .field("den")?
            .as_i128()
            .ok_or_else(|| JsonError::new("rational `den` must be an integer"))?;
        if den == 0 {
            return Err(JsonError::new("rational denominator must be non-zero"));
        }
        if num == i128::MIN || den == i128::MIN {
            return Err(JsonError::new(
                "rational component magnitude exceeds i128::MAX",
            ));
        }
        Ok(Rational::new(num, den))
    }
}

impl Rational {
    /// The value `0`.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The value `1`.
    pub const ONE: Rational = Rational { num: 1, den: 1 };
    /// The value `2`.
    pub const TWO: Rational = Rational { num: 2, den: 1 };

    /// Creates the reduced rational `num/den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`, or if `num`/`den` is `i128::MIN` (whose
    /// absolute value is unrepresentable).
    ///
    /// # Examples
    ///
    /// ```
    /// use rbs_timebase::Rational;
    ///
    /// assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
    /// assert_eq!(Rational::new(3, -6), Rational::new(-1, 2));
    /// ```
    #[must_use]
    pub fn new(num: i128, den: i128) -> Rational {
        assert!(den != 0, "rational denominator must be non-zero");
        assert!(
            num != i128::MIN && den != i128::MIN,
            "rational component magnitude exceeds i128::MAX"
        );
        let sign = if (num < 0) ^ (den < 0) { -1 } else { 1 };
        let (num, den) = (num.abs(), den.abs());
        let g = gcd_i128(num, den);
        if num == 0 {
            return Rational::ZERO;
        }
        Rational {
            num: sign * (num / g),
            den: den / g,
        }
    }

    /// Creates an integer-valued rational.
    ///
    /// Equivalent to `Rational::new(value, 1)` but `const`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rbs_timebase::Rational;
    ///
    /// const HORIZON: Rational = Rational::integer(100);
    /// assert!(HORIZON.is_integer());
    /// ```
    #[must_use]
    pub const fn integer(value: i128) -> Rational {
        Rational { num: value, den: 1 }
    }

    /// The (signed) numerator of the reduced fraction.
    #[must_use]
    pub const fn numer(&self) -> i128 {
        self.num
    }

    /// The (strictly positive) denominator of the reduced fraction.
    #[must_use]
    pub const fn denom(&self) -> i128 {
        self.den
    }

    /// Returns `true` if the value is zero.
    #[must_use]
    pub const fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Returns `true` if the value is an integer.
    #[must_use]
    pub const fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Returns `true` if the value is strictly negative.
    #[must_use]
    pub const fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// Returns `true` if the value is strictly positive.
    #[must_use]
    pub const fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// Returns the absolute value.
    ///
    /// # Examples
    ///
    /// ```
    /// use rbs_timebase::Rational;
    ///
    /// assert_eq!(Rational::new(-3, 4).abs(), Rational::new(3, 4));
    /// ```
    #[must_use]
    pub fn abs(self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Returns the multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use rbs_timebase::Rational;
    ///
    /// assert_eq!(Rational::new(4, 3).recip(), Rational::new(3, 4));
    /// ```
    #[must_use]
    pub fn recip(self) -> Rational {
        assert!(!self.is_zero(), "cannot invert zero");
        Rational::new(self.den * self.num.signum(), self.num.abs())
    }

    /// Checked addition, returning an error on `i128` overflow.
    ///
    /// # Errors
    ///
    /// Returns [`RationalOverflowError`] when the exact result does not fit.
    pub fn checked_add(self, rhs: Rational) -> Result<Rational, RationalOverflowError> {
        let err = RationalOverflowError { op: "add" };
        // a/b + c/d = (a*(d/g) + c*(b/g)) / (b*(d/g)) with g = gcd(b, d).
        let g = gcd_i128(self.den, rhs.den);
        let rd = rhs.den / g;
        let ld = self.den / g;
        let lhs_term = self.num.checked_mul(rd).ok_or(err)?;
        let rhs_term = rhs.num.checked_mul(ld).ok_or(err)?;
        let num = lhs_term.checked_add(rhs_term).ok_or(err)?;
        let den = self.den.checked_mul(rd).ok_or(err)?;
        if num == i128::MIN || den == i128::MIN {
            return Err(err);
        }
        Ok(Rational::new(num, den))
    }

    /// Checked subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`RationalOverflowError`] when the exact result does not fit.
    pub fn checked_sub(self, rhs: Rational) -> Result<Rational, RationalOverflowError> {
        self.checked_add(Rational {
            num: -rhs.num,
            den: rhs.den,
        })
    }

    /// Checked multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`RationalOverflowError`] when the exact result does not fit.
    pub fn checked_mul(self, rhs: Rational) -> Result<Rational, RationalOverflowError> {
        let err = RationalOverflowError { op: "mul" };
        // Reduce crosswise before multiplying to keep intermediates small.
        let g1 = gcd_i128(self.num, rhs.den);
        let g2 = gcd_i128(rhs.num, self.den);
        let num = (self.num / g1).checked_mul(rhs.num / g2).ok_or(err)?;
        let den = (self.den / g2).checked_mul(rhs.den / g1).ok_or(err)?;
        if num == i128::MIN || den == i128::MIN {
            return Err(err);
        }
        Ok(Rational::new(num, den))
    }

    /// Checked division.
    ///
    /// # Errors
    ///
    /// Returns [`RationalOverflowError`] on overflow.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub fn checked_div(self, rhs: Rational) -> Result<Rational, RationalOverflowError> {
        self.checked_mul(rhs.recip())
    }

    /// Returns the largest integer `<= self`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rbs_timebase::Rational;
    ///
    /// assert_eq!(Rational::new(7, 2).floor(), 3);
    /// assert_eq!(Rational::new(-7, 2).floor(), -4);
    /// assert_eq!(Rational::integer(5).floor(), 5);
    /// ```
    #[must_use]
    pub fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Returns the smallest integer `>= self`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rbs_timebase::Rational;
    ///
    /// assert_eq!(Rational::new(7, 2).ceil(), 4);
    /// assert_eq!(Rational::new(-7, 2).ceil(), -3);
    /// ```
    #[must_use]
    pub fn ceil(self) -> i128 {
        -(-self).floor()
    }

    /// Returns `floor(self / rhs)` as an integer.
    ///
    /// This is the `⌊Δ/T⌋` primitive of demand-bound functions.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero, or on `i128` overflow.
    ///
    /// # Examples
    ///
    /// ```
    /// use rbs_timebase::Rational;
    ///
    /// let delta = Rational::new(13, 1);
    /// let period = Rational::new(5, 1);
    /// assert_eq!(delta.floor_div(period), 2);
    /// ```
    #[must_use]
    pub fn floor_div(self, rhs: Rational) -> i128 {
        (self / rhs).floor()
    }

    /// The paper's extended `mod` operator over the reals:
    /// `a mod b = a - floor(a/b) * b`.
    ///
    /// For positive `b` the result lies in `[0, b)`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero, or on `i128` overflow.
    ///
    /// # Examples
    ///
    /// ```
    /// use rbs_timebase::Rational;
    ///
    /// let a = Rational::new(13, 2); // 6.5
    /// let b = Rational::new(5, 1);
    /// assert_eq!(a.mod_floor(b), Rational::new(3, 2)); // 6.5 mod 5 = 1.5
    /// ```
    #[must_use]
    pub fn mod_floor(self, rhs: Rational) -> Rational {
        self - Rational::integer(self.floor_div(rhs)) * rhs
    }

    /// Returns the smaller of two values.
    #[must_use]
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two values.
    #[must_use]
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Least common multiple of two strictly positive rationals: the
    /// smallest positive value that is an integer multiple of both.
    ///
    /// Used to compute the hyperperiod of a set of rational task periods.
    /// Returns `None` on overflow.
    ///
    /// # Panics
    ///
    /// Panics if either value is not strictly positive.
    ///
    /// # Examples
    ///
    /// ```
    /// use rbs_timebase::Rational;
    ///
    /// let a = Rational::new(3, 2);
    /// let b = Rational::new(5, 4);
    /// assert_eq!(a.lcm(b), Some(Rational::new(15, 2)));
    /// ```
    #[must_use]
    pub fn lcm(self, other: Rational) -> Option<Rational> {
        assert!(
            self.is_positive() && other.is_positive(),
            "lcm is defined for strictly positive rationals"
        );
        // lcm(a/b, c/d) = lcm(a, c) / gcd(b, d) for reduced fractions.
        let num = lcm_i128(self.num, other.num)?;
        let den = gcd_i128(self.den, other.den);
        Some(Rational::new(num, den))
    }

    /// Converts to the nearest `f64` (for reporting; never use for
    /// schedulability decisions).
    ///
    /// # Examples
    ///
    /// ```
    /// use rbs_timebase::Rational;
    ///
    /// assert!((Rational::new(4, 3).to_f64() - 1.333_333).abs() < 1e-5);
    /// ```
    #[must_use]
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Overflow-free comparison via continued-fraction expansion.
    fn cmp_slow(self, other: Rational) -> Ordering {
        match (self.num.signum(), other.num.signum()) {
            (a, b) if a != b => return a.cmp(&b),
            (0, 0) => return Ordering::Equal,
            (-1, -1) => return (-other).cmp_slow(-self),
            _ => {}
        }
        // Both strictly positive from here on.
        let (mut a, mut b) = (self.num, self.den);
        let (mut c, mut d) = (other.num, other.den);
        let mut flipped = false;
        loop {
            let (q1, r1) = (a / b, a % b);
            let (q2, r2) = (c / d, c % d);
            let q_cmp = q1.cmp(&q2);
            if q_cmp != Ordering::Equal {
                return if flipped { q_cmp.reverse() } else { q_cmp };
            }
            match (r1 == 0, r2 == 0) {
                (true, true) => return Ordering::Equal,
                // a/b has the smaller fractional part; smaller unless flipped.
                (true, false) => {
                    return if flipped {
                        Ordering::Greater
                    } else {
                        Ordering::Less
                    }
                }
                (false, true) => {
                    return if flipped {
                        Ordering::Less
                    } else {
                        Ordering::Greater
                    }
                }
                (false, false) => {
                    // Compare b/r1 vs d/r2, with the order flipped.
                    let (na, nb) = (b, r1);
                    let (nc, nd) = (d, r2);
                    a = na;
                    b = nb;
                    c = nc;
                    d = nd;
                    flipped = !flipped;
                }
            }
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // Fast path: cross multiplication in i128 when it cannot overflow.
        match (
            self.num.checked_mul(other.den),
            other.num.checked_mul(self.den),
        ) {
            (Some(lhs), Some(rhs)) => lhs.cmp(&rhs),
            _ => self.cmp_slow(*other),
        }
    }
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {
        $(
            impl From<$t> for Rational {
                fn from(value: $t) -> Self {
                    Rational::integer(i128::from(value))
                }
            }
        )*
    };
}

impl_from_int!(i8, i16, i32, i64, u8, u16, u32, u64);

impl Add for Rational {
    type Output = Rational;

    fn add(self, rhs: Rational) -> Rational {
        self.checked_add(rhs).expect("rational add overflowed")
    }
}

impl Sub for Rational {
    type Output = Rational;

    fn sub(self, rhs: Rational) -> Rational {
        self.checked_sub(rhs).expect("rational sub overflowed")
    }
}

impl Mul for Rational {
    type Output = Rational;

    fn mul(self, rhs: Rational) -> Rational {
        self.checked_mul(rhs).expect("rational mul overflowed")
    }
}

impl Div for Rational {
    type Output = Rational;

    fn div(self, rhs: Rational) -> Rational {
        self.checked_div(rhs).expect("rational div overflowed")
    }
}

impl Neg for Rational {
    type Output = Rational;

    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}

impl MulAssign for Rational {
    fn mul_assign(&mut self, rhs: Rational) {
        *self = *self * rhs;
    }
}

impl DivAssign for Rational {
    fn div_assign(&mut self, rhs: Rational) {
        *self = *self / rhs;
    }
}

impl Sum for Rational {
    fn sum<I: Iterator<Item = Rational>>(iter: I) -> Rational {
        iter.fold(Rational::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a Rational> for Rational {
    fn sum<I: Iterator<Item = &'a Rational>>(iter: I) -> Rational {
        iter.copied().sum()
    }
}

impl Product for Rational {
    fn product<I: Iterator<Item = Rational>>(iter: I) -> Rational {
        iter.fold(Rational::ONE, Mul::mul)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl FromStr for Rational {
    type Err = ParseRationalError;

    /// Parses `"n"`, `"n/d"`, or a decimal literal like `"-1.25"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |reason| ParseRationalError {
            input: s.to_owned(),
            reason,
        };
        let s_trim = s.trim();
        if s_trim.is_empty() {
            return Err(err(ParseErrorReason::Empty));
        }
        if let Some((num_str, den_str)) = s_trim.split_once('/') {
            let num: i128 = num_str
                .trim()
                .parse()
                .map_err(|_| err(ParseErrorReason::InvalidDigit))?;
            let den: i128 = den_str
                .trim()
                .parse()
                .map_err(|_| err(ParseErrorReason::InvalidDigit))?;
            if den == 0 {
                return Err(err(ParseErrorReason::ZeroDenominator));
            }
            return Ok(Rational::new(num, den));
        }
        if let Some((int_str, frac_str)) = s_trim.split_once('.') {
            if frac_str.is_empty() || !frac_str.bytes().all(|b| b.is_ascii_digit()) {
                return Err(err(ParseErrorReason::InvalidDigit));
            }
            let negative = int_str.trim_start().starts_with('-');
            let int_part: i128 = if int_str == "-" || int_str.is_empty() {
                0
            } else {
                int_str
                    .parse()
                    .map_err(|_| err(ParseErrorReason::InvalidDigit))?
            };
            let frac_digits: u32 = frac_str
                .len()
                .try_into()
                .map_err(|_| err(ParseErrorReason::Overflow))?;
            let frac_part: i128 = frac_str
                .parse()
                .map_err(|_| err(ParseErrorReason::Overflow))?;
            let scale = 10i128
                .checked_pow(frac_digits)
                .ok_or_else(|| err(ParseErrorReason::Overflow))?;
            let magnitude = int_part
                .checked_abs()
                .and_then(|i| i.checked_mul(scale))
                .and_then(|i| i.checked_add(frac_part))
                .ok_or_else(|| err(ParseErrorReason::Overflow))?;
            let num = if negative { -magnitude } else { magnitude };
            return Ok(Rational::new(num, scale));
        }
        let num: i128 = s_trim
            .parse()
            .map_err(|_| err(ParseErrorReason::InvalidDigit))?;
        Ok(Rational::integer(num))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(num: i128, den: i128) -> Rational {
        Rational::new(num, den)
    }

    #[test]
    fn construction_reduces_and_normalizes_sign() {
        assert_eq!(r(6, 8), r(3, 4));
        assert_eq!(r(-6, 8), r(3, -4));
        assert_eq!(r(-6, -8), r(3, 4));
        assert_eq!(r(0, -5), Rational::ZERO);
        assert_eq!(r(0, 5).denom(), 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_denominator_panics() {
        let _ = r(1, 0);
    }

    #[test]
    fn arithmetic_identities() {
        let a = r(3, 4);
        let b = r(5, 6);
        assert_eq!(a + b, r(19, 12));
        assert_eq!(a - b, r(-1, 12));
        assert_eq!(a * b, r(5, 8));
        assert_eq!(a / b, r(9, 10));
        assert_eq!(-a, r(-3, 4));
        assert_eq!(a + Rational::ZERO, a);
        assert_eq!(a * Rational::ONE, a);
    }

    #[test]
    fn assign_operators_match_binary_operators() {
        let mut x = r(1, 2);
        x += r(1, 3);
        assert_eq!(x, r(5, 6));
        x -= r(1, 6);
        assert_eq!(x, r(2, 3));
        x *= r(3, 4);
        assert_eq!(x, r(1, 2));
        x /= r(1, 4);
        assert_eq!(x, Rational::TWO);
    }

    #[test]
    fn sum_and_product() {
        let values = [r(1, 2), r(1, 3), r(1, 6)];
        assert_eq!(values.iter().sum::<Rational>(), Rational::ONE);
        assert_eq!(values.iter().copied().product::<Rational>(), r(1, 36));
    }

    #[test]
    fn ordering_small_values() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(4, 3) > Rational::ONE);
        assert_eq!(r(2, 4).cmp(&r(1, 2)), Ordering::Equal);
    }

    #[test]
    fn ordering_near_overflow_uses_slow_path() {
        let big = i128::MAX / 2;
        let a = r(big, big - 1);
        let b = r(big - 1, big - 2);
        // a = 1 + 1/(big-1), b = 1 + 1/(big-2) => a < b.
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
        // Negative counterparts flip.
        assert!(-a > -b);
    }

    #[test]
    fn slow_path_agrees_with_fast_path_on_small_values() {
        let samples: Vec<Rational> = (-6..=6)
            .flat_map(|n| (1..=6).map(move |d| r(n, d)))
            .collect();
        for &a in &samples {
            for &b in &samples {
                assert_eq!(a.cmp(&b), a.cmp_slow(b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn floor_ceil_and_floor_div() {
        assert_eq!(r(7, 3).floor(), 2);
        assert_eq!(r(-7, 3).floor(), -3);
        assert_eq!(r(7, 3).ceil(), 3);
        assert_eq!(r(-7, 3).ceil(), -2);
        assert_eq!(r(6, 3).floor(), 2);
        assert_eq!(r(6, 3).ceil(), 2);
        assert_eq!(r(13, 1).floor_div(r(5, 1)), 2);
        assert_eq!(r(-1, 2).floor_div(r(5, 1)), -1);
    }

    #[test]
    fn mod_floor_matches_paper_definition() {
        // a mod b = a - floor(a/b) * b
        let cases = [
            (r(13, 1), r(5, 1), r(3, 1)),
            (r(13, 2), r(5, 1), r(3, 2)),
            (r(10, 1), r(5, 1), Rational::ZERO),
            (r(-1, 1), r(5, 1), r(4, 1)),
            (r(7, 4), r(1, 2), r(1, 4)),
        ];
        for (a, b, want) in cases {
            assert_eq!(a.mod_floor(b), want, "{a} mod {b}");
            // In range [0, b).
            let m = a.mod_floor(b);
            assert!(m >= Rational::ZERO && m < b);
        }
    }

    #[test]
    fn recip_and_abs() {
        assert_eq!(r(-4, 3).recip(), r(-3, 4));
        assert_eq!(r(-4, 3).abs(), r(4, 3));
        assert_eq!(r(4, 3).recip() * r(4, 3), Rational::ONE);
    }

    #[test]
    #[should_panic(expected = "invert zero")]
    fn recip_of_zero_panics() {
        let _ = Rational::ZERO.recip();
    }

    #[test]
    fn lcm_of_rationals() {
        assert_eq!(r(5, 1).lcm(r(10, 1)), Some(r(10, 1)));
        assert_eq!(r(3, 2).lcm(r(5, 4)), Some(r(15, 2)));
        let a = r(1, 2).lcm(r(1, 3)).expect("fits");
        // lcm(1/2, 1/3) = 1: 1 = 2*(1/2) = 3*(1/3).
        assert_eq!(a, Rational::ONE);
    }

    #[test]
    fn checked_ops_report_overflow() {
        let huge = r(i128::MAX - 1, 1);
        assert!(huge.checked_mul(huge).is_err());
        assert!(huge.checked_add(huge).is_err());
        assert!(huge.checked_sub(-huge).is_err());
        assert!(huge.checked_add(Rational::ONE).is_ok());
        assert!(huge.checked_add(Rational::TWO).is_err());
        assert!(huge.checked_sub(Rational::ONE).is_ok());
    }

    #[test]
    fn display_formats() {
        assert_eq!(r(4, 3).to_string(), "4/3");
        assert_eq!(r(-4, 3).to_string(), "-4/3");
        assert_eq!(r(8, 4).to_string(), "2");
        assert_eq!(Rational::ZERO.to_string(), "0");
    }

    #[test]
    fn parse_round_trips() {
        for text in ["4/3", "-4/3", "2", "0", "-17"] {
            let value: Rational = text.parse().expect("valid");
            assert_eq!(value.to_string(), text);
        }
    }

    #[test]
    fn parse_decimals() {
        assert_eq!("1.25".parse::<Rational>().expect("valid"), r(5, 4));
        assert_eq!("-0.5".parse::<Rational>().expect("valid"), r(-1, 2));
        assert_eq!("0.01".parse::<Rational>().expect("valid"), r(1, 100));
        assert_eq!("10.".parse::<Rational>().ok(), None);
    }

    #[test]
    fn parse_rejects_garbage() {
        for text in ["", "  ", "a/b", "1/0", "1/ ", "1.2.3", "--3"] {
            assert!(text.parse::<Rational>().is_err(), "{text:?}");
        }
    }

    #[test]
    fn json_round_trip() {
        let value = r(-7, 12);
        let json = rbs_json::to_string(&value);
        assert_eq!(json, r#"{"num":-7,"den":12}"#);
        let back: Rational = rbs_json::from_str(&json).expect("deserialize");
        assert_eq!(back, value);
    }

    #[test]
    fn json_rejects_zero_denominator() {
        let result: Result<Rational, _> = rbs_json::from_str(r#"{"num":1,"den":0}"#);
        assert!(result.is_err());
    }

    #[test]
    fn json_normalizes_unreduced_input() {
        let value: Rational = rbs_json::from_str(r#"{"num":2,"den":4}"#).expect("deserialize");
        assert_eq!(value, r(1, 2));
    }

    #[test]
    fn to_f64_is_close() {
        assert!((r(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-15);
        assert_eq!(r(5, 1).to_f64(), 5.0);
    }

    #[test]
    fn min_max() {
        assert_eq!(r(1, 3).min(r(1, 2)), r(1, 3));
        assert_eq!(r(1, 3).max(r(1, 2)), r(1, 2));
        assert_eq!(Rational::default(), Rational::ZERO);
    }
}
