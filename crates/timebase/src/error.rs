//! Error types for rational arithmetic.

use std::error::Error;
use std::fmt;

/// Returned when an exact rational operation does not fit in `i128`
/// numerator/denominator representation.
///
/// The checked entry points ([`crate::Rational::checked_add`] and friends)
/// surface this error; the operator overloads panic instead, mirroring the
/// behaviour of Rust's built-in integers in debug builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RationalOverflowError {
    pub(crate) op: &'static str,
}

impl fmt::Display for RationalOverflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rational {} overflowed i128", self.op)
    }
}

impl Error for RationalOverflowError {}

/// Returned when a string cannot be parsed as a [`crate::Rational`].
///
/// Accepted forms are `"n"`, `"n/d"` and decimal literals such as
/// `"1.25"`; see [`crate::Rational::from_str`](std::str::FromStr).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ParseRationalError {
    pub(crate) input: String,
    pub(crate) reason: ParseErrorReason,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum ParseErrorReason {
    Empty,
    InvalidDigit,
    ZeroDenominator,
    Overflow,
}

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let why = match self.reason {
            ParseErrorReason::Empty => "input is empty",
            ParseErrorReason::InvalidDigit => "invalid digit",
            ParseErrorReason::ZeroDenominator => "denominator is zero",
            ParseErrorReason::Overflow => "value does not fit in i128",
        };
        write!(f, "cannot parse {:?} as a rational: {why}", self.input)
    }
}

impl Error for ParseRationalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_error_display_is_nonempty() {
        let err = RationalOverflowError { op: "mul" };
        assert_eq!(err.to_string(), "rational mul overflowed i128");
    }

    #[test]
    fn parse_error_display_mentions_input_and_reason() {
        let err = ParseRationalError {
            input: "x/y".to_owned(),
            reason: ParseErrorReason::InvalidDigit,
        };
        let msg = err.to_string();
        assert!(msg.contains("x/y"));
        assert!(msg.contains("invalid digit"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<RationalOverflowError>();
        assert_error::<ParseRationalError>();
    }
}
