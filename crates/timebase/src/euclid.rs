//! Euclidean helpers on `i128`.

/// Returns the greatest common divisor of the absolute values of `a` and
/// `b`.
///
/// `gcd_i128(0, 0)` is defined as `0`.
///
/// # Examples
///
/// ```
/// use rbs_timebase::gcd_i128;
///
/// assert_eq!(gcd_i128(12, 18), 6);
/// assert_eq!(gcd_i128(-4, 6), 2);
/// assert_eq!(gcd_i128(0, 5), 5);
/// ```
#[must_use]
pub fn gcd_i128(a: i128, b: i128) -> i128 {
    // `%` on 128-bit operands lowers to a library division call, so the
    // wide Euclid loop runs only until both operands fit in a machine
    // word — at most a couple of steps, since each remainder is smaller
    // than the divisor — and the rest uses hardware 64-bit division.
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        if let (Ok(a64), Ok(b64)) = (u64::try_from(a), u64::try_from(b)) {
            return i128::from(gcd_u64(a64, b64));
        }
        let r = a % b;
        a = b;
        b = r;
    }
    // `unsigned_abs` of i128::MIN does not fit back into i128, but a gcd of
    // that magnitude can only arise from inputs that were already out of the
    // range this crate produces (denominators are kept positive and reduced).
    i128::try_from(a).expect("gcd magnitude exceeds i128::MAX")
}

fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// Returns the least common multiple of the absolute values of `a` and `b`,
/// or `None` if it overflows `i128`.
///
/// `lcm_i128(0, x)` is `Some(0)`.
///
/// # Examples
///
/// ```
/// use rbs_timebase::lcm_i128;
///
/// assert_eq!(lcm_i128(4, 6), Some(12));
/// assert_eq!(lcm_i128(0, 7), Some(0));
/// assert_eq!(lcm_i128(i128::MAX, 2), None);
/// ```
#[must_use]
pub fn lcm_i128(a: i128, b: i128) -> Option<i128> {
    if a == 0 || b == 0 {
        return Some(0);
    }
    let g = gcd_i128(a, b);
    (a / g).checked_mul(b).map(i128::abs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basic_identities() {
        assert_eq!(gcd_i128(0, 0), 0);
        assert_eq!(gcd_i128(7, 0), 7);
        assert_eq!(gcd_i128(0, -7), 7);
        assert_eq!(gcd_i128(21, 14), 7);
        assert_eq!(gcd_i128(14, 21), 7);
        assert_eq!(gcd_i128(-21, -14), 7);
        assert_eq!(gcd_i128(1, i128::MAX), 1);
    }

    #[test]
    fn gcd_divides_both_arguments() {
        for a in [-30i128, -7, 0, 1, 6, 45, 1024] {
            for b in [-12i128, -1, 0, 9, 27, 100] {
                let g = gcd_i128(a, b);
                if g != 0 {
                    assert_eq!(a % g, 0, "gcd({a},{b})={g}");
                    assert_eq!(b % g, 0, "gcd({a},{b})={g}");
                }
            }
        }
    }

    #[test]
    fn lcm_basic_identities() {
        assert_eq!(lcm_i128(3, 5), Some(15));
        assert_eq!(lcm_i128(-3, 5), Some(15));
        assert_eq!(lcm_i128(12, 18), Some(36));
        assert_eq!(lcm_i128(1, 1), Some(1));
    }

    #[test]
    fn lcm_overflow_is_reported() {
        assert_eq!(lcm_i128(i128::MAX, i128::MAX - 1), None);
    }

    #[test]
    fn lcm_is_multiple_of_both() {
        for a in [1i128, 2, 3, 4, 6, 10, 37] {
            for b in [1i128, 5, 6, 14, 37] {
                let l = lcm_i128(a, b).expect("small lcm fits");
                assert_eq!(l % a, 0);
                assert_eq!(l % b, 0);
            }
        }
    }
}
