//! Property tests tying the simulated protocol to the offline analysis:
//! whenever the analysis declares a speed sufficient, the simulator must
//! observe zero deadline misses, and measured recoveries must stay within
//! the analytical resetting-time bound.
//!
//! Random cases are driven by a seeded deterministic RNG; the two formerly
//! checked-in proptest regression cases are preserved as explicit unit
//! tests at the bottom.

use rbs_core::lo_mode::is_lo_schedulable;
use rbs_core::resetting::{resetting_time, ResettingBound};
use rbs_core::speedup::{minimum_speedup, SpeedupBound};
use rbs_core::AnalysisLimits;
use rbs_model::{scaled_task_set, Criticality, ImplicitTaskSpec, ScalingFactors, Task, TaskSet};
use rbs_rng::Rng;
use rbs_sim::{ArrivalScenario, ExecutionScenario, Simulation};
use rbs_timebase::Rational;

const CASES: usize = 48;

fn int(v: i128) -> Rational {
    Rational::integer(v)
}

/// One attempt at an implicit-deadline set with bounded parameters, with
/// factors chosen so the scaled set is LO-schedulable by construction
/// (x from the density bound, clamped into (0, 1]). `None` when the draw
/// fails the feasibility filter.
fn try_scaled_set(rng: &mut Rng) -> Option<TaskSet> {
    let rows = rng.gen_range_usize(1, 4);
    let specs: Vec<ImplicitTaskSpec> = (0..rows)
        .map(|i| {
            let period = rng.gen_range_i128(3, 12);
            let c_lo = rng.gen_range_i128(1, 3).min(period - 1).max(1);
            let extra = rng.gen_range_i128(0, 2);
            let is_hi = rng.gen_bool(0.5);
            if is_hi {
                ImplicitTaskSpec::hi(
                    format!("h{i}"),
                    int(period),
                    int(c_lo),
                    int((c_lo + extra).min(period)),
                )
            } else {
                ImplicitTaskSpec::lo(format!("l{i}"), int(period), int(c_lo))
            }
        })
        .collect();
    let y = rng.gen_range_i128(1, 3);
    let x = rbs_core::lo_mode::minimal_x_density(&specs)?;
    let x = x.max(Rational::new(1, 100)).min(Rational::ONE);
    let factors = ScalingFactors::new(x, int(y)).ok()?;
    let set = scaled_task_set(&specs, factors).ok()?;
    let limits = AnalysisLimits::default();
    is_lo_schedulable(&set, &limits).ok()?.then_some(set)
}

/// Draws until the feasibility filter accepts.
fn gen_scaled_set(rng: &mut Rng) -> TaskSet {
    loop {
        if let Some(set) = try_scaled_set(rng) {
            return set;
        }
    }
}

fn check_sufficient_speed_means_no_misses(set: &TaskSet, seed: u64) {
    let limits = AnalysisLimits::default();
    let SpeedupBound::Finite(s_min) = minimum_speedup(set, &limits).expect("completes").bound()
    else {
        return; // x = 1 corner: nothing to simulate safely
    };
    let speed = s_min.max(Rational::ONE);
    for (arrivals, scenario) in [
        (ArrivalScenario::Saturated, ExecutionScenario::HiWcet),
        (
            ArrivalScenario::Saturated,
            ExecutionScenario::RandomOverrun {
                probability: 0.3,
                seed,
            },
        ),
        (
            ArrivalScenario::SaturatedWithJitter {
                max_jitter: Rational::ONE,
                seed,
            },
            ExecutionScenario::RandomOverrun {
                probability: 0.3,
                seed,
            },
        ),
    ] {
        let report = Simulation::new(set.clone())
            .speedup(speed)
            .horizon(int(300))
            .arrivals(arrivals)
            .execution(scenario)
            .run()
            .expect("simulation runs");
        assert!(
            report.misses().is_empty(),
            "misses at analytically sufficient speed {speed}: {:?}",
            report.misses()
        );
        assert!(report.completed() <= report.released());
        assert!(report.busy_time() <= report.horizon());
    }
}

fn check_measured_recovery_within_analytic_bound(set: &TaskSet, seed: u64) {
    let limits = AnalysisLimits::default();
    let SpeedupBound::Finite(s_min) = minimum_speedup(set, &limits).expect("completes").bound()
    else {
        return;
    };
    // Give the system real headroom so Δ_R is finite.
    let speed = s_min.max(Rational::ONE) + Rational::ONE;
    let ResettingBound::Finite(delta_r) = resetting_time(set, speed, &limits)
        .expect("completes")
        .bound()
    else {
        return;
    };
    let report = Simulation::new(set.clone())
        .speedup(speed)
        .horizon(int(400))
        .execution(ExecutionScenario::RandomOverrun {
            probability: 0.5,
            seed,
        })
        .run()
        .expect("simulation runs");
    for episode in report.hi_episodes() {
        if let Some(recovery) = episode.recovery() {
            assert!(
                recovery <= delta_r,
                "measured recovery {recovery} exceeds analytic bound {delta_r}"
            );
        }
    }
}

fn check_no_overrun_means_no_hi_mode(set: &TaskSet) {
    let report = Simulation::new(set.clone())
        .horizon(int(200))
        .execution(ExecutionScenario::LoWcet)
        .run()
        .expect("simulation runs");
    assert!(report.hi_episodes().is_empty());
    assert!(report.misses().is_empty());
    assert_eq!(report.dropped(), 0);
}

fn check_termination_never_increases_recovery(set: &TaskSet, seed: u64) {
    let limits = AnalysisLimits::default();
    let SpeedupBound::Finite(s_min) = minimum_speedup(set, &limits).expect("completes").bound()
    else {
        return;
    };
    let speed = s_min.max(Rational::ONE) + Rational::ONE;
    let scenario = ExecutionScenario::RandomOverrun {
        probability: 0.5,
        seed,
    };
    let full = Simulation::new(set.clone())
        .speedup(speed)
        .horizon(int(300))
        .execution(scenario.clone())
        .run()
        .expect("runs");
    let terminated_set = set.with_lo_terminated().expect("valid");
    let term = Simulation::new(terminated_set)
        .speedup(speed)
        .horizon(int(300))
        .execution(scenario)
        .run()
        .expect("runs");
    assert!(term.misses().is_empty());
    // Termination frees resources: the *analytic* bound shrinks; the
    // measured max recovery may vary episode-by-episode, so compare the
    // analysis, not the noise.
    let ResettingBound::Finite(full_bound) =
        resetting_time(set, speed, &limits).expect("ok").bound()
    else {
        return;
    };
    let ResettingBound::Finite(term_bound) =
        resetting_time(&set.with_lo_terminated().expect("valid"), speed, &limits)
            .expect("ok")
            .bound()
    else {
        return;
    };
    assert!(term_bound <= full_bound);
    assert!(full.misses().is_empty());
}

#[test]
fn sufficient_speed_means_no_misses() {
    let mut rng = Rng::seed_from_u64(0x51e0_0001);
    for _ in 0..CASES {
        let set = gen_scaled_set(&mut rng);
        let seed = rng.gen_range_u64(0, 999);
        check_sufficient_speed_means_no_misses(&set, seed);
    }
}

#[test]
fn measured_recovery_within_analytic_bound() {
    let mut rng = Rng::seed_from_u64(0x51e0_0002);
    for _ in 0..CASES {
        let set = gen_scaled_set(&mut rng);
        let seed = rng.gen_range_u64(0, 999);
        check_measured_recovery_within_analytic_bound(&set, seed);
    }
}

#[test]
fn no_overrun_means_no_hi_mode() {
    let mut rng = Rng::seed_from_u64(0x51e0_0003);
    for _ in 0..CASES {
        let set = gen_scaled_set(&mut rng);
        check_no_overrun_means_no_hi_mode(&set);
    }
}

#[test]
fn termination_never_increases_recovery() {
    let mut rng = Rng::seed_from_u64(0x51e0_0004);
    for _ in 0..CASES {
        let set = gen_scaled_set(&mut rng);
        let seed = rng.gen_range_u64(0, 999);
        check_termination_never_increases_recovery(&set, seed);
    }
}

// --- preserved proptest regression cases ---------------------------------

/// First checked-in regression: a single HI task with a tightly prepared
/// LO deadline (T=3, D(LO)=1, C(LO)=1, C(HI)=2), seed 0.
fn regression_set_single_hi() -> TaskSet {
    TaskSet::new(vec![Task::builder("h0", Criticality::Hi)
        .period(int(3))
        .deadline_lo(int(1))
        .deadline_hi(int(3))
        .wcet_lo(int(1))
        .wcet_hi(int(2))
        .build()
        .expect("valid")])
}

/// Second checked-in regression: three tasks with a non-integer prepared
/// deadline (24/11) on the HI task and degraded LO tasks, seed 0.
fn regression_set_three_tasks() -> TaskSet {
    TaskSet::new(vec![
        Task::builder("l0", Criticality::Lo)
            .period(int(8))
            .period_hi(int(16))
            .deadline_lo(int(8))
            .deadline_hi(int(16))
            .wcet(int(3))
            .build()
            .expect("valid"),
        Task::builder("h1", Criticality::Hi)
            .period(int(3))
            .deadline_lo(Rational::new(24, 11))
            .deadline_hi(int(3))
            .wcet_lo(int(1))
            .wcet_hi(int(2))
            .build()
            .expect("valid"),
        Task::builder("l2", Criticality::Lo)
            .period(int(6))
            .period_hi(int(12))
            .deadline_lo(int(6))
            .deadline_hi(int(12))
            .wcet(int(1))
            .build()
            .expect("valid"),
    ])
}

#[test]
fn regression_single_hi_task_with_tight_lo_deadline() {
    let set = regression_set_single_hi();
    check_sufficient_speed_means_no_misses(&set, 0);
    check_measured_recovery_within_analytic_bound(&set, 0);
    check_no_overrun_means_no_hi_mode(&set);
    check_termination_never_increases_recovery(&set, 0);
}

#[test]
fn regression_three_task_set_with_fractional_deadline() {
    let set = regression_set_three_tasks();
    check_sufficient_speed_means_no_misses(&set, 0);
    check_measured_recovery_within_analytic_bound(&set, 0);
    check_no_overrun_means_no_hi_mode(&set);
    check_termination_never_increases_recovery(&set, 0);
}
