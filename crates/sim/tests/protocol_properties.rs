//! Property tests tying the simulated protocol to the offline analysis:
//! whenever the analysis declares a speed sufficient, the simulator must
//! observe zero deadline misses, and measured recoveries must stay within
//! the analytical resetting-time bound.

use proptest::prelude::*;
use rbs_core::lo_mode::is_lo_schedulable;
use rbs_core::resetting::{resetting_time, ResettingBound};
use rbs_core::speedup::{minimum_speedup, SpeedupBound};
use rbs_core::AnalysisLimits;
use rbs_model::{scaled_task_set, ImplicitTaskSpec, ScalingFactors, TaskSet};
use rbs_sim::{ArrivalScenario, ExecutionScenario, Simulation};
use rbs_timebase::Rational;

fn int(v: i128) -> Rational {
    Rational::integer(v)
}

/// Implicit-deadline specs with bounded parameters, plus factors chosen
/// so the scaled set is LO-schedulable by construction (x from the
/// density bound, clamped into (0, 1]).
fn arb_scaled_set() -> impl Strategy<Value = TaskSet> {
    (
        prop::collection::vec((3i128..=12, 1i128..=3, 0i128..=2, any::<bool>()), 1..=4),
        1i128..=3,
    )
        .prop_filter_map("need a LO-feasible set", |(rows, y)| {
            let specs: Vec<ImplicitTaskSpec> = rows
                .into_iter()
                .enumerate()
                .map(|(i, (period, c_lo, extra, is_hi))| {
                    let c_lo = c_lo.min(period - 1).max(1);
                    if is_hi {
                        ImplicitTaskSpec::hi(
                            format!("h{i}"),
                            int(period),
                            int(c_lo),
                            int((c_lo + extra).min(period)),
                        )
                    } else {
                        ImplicitTaskSpec::lo(format!("l{i}"), int(period), int(c_lo))
                    }
                })
                .collect();
            let x = rbs_core::lo_mode::minimal_x_density(&specs)?;
            let x = x.max(Rational::new(1, 100)).min(Rational::ONE);
            let factors = ScalingFactors::new(x, int(y)).ok()?;
            let set = scaled_task_set(&specs, factors).ok()?;
            let limits = AnalysisLimits::default();
            is_lo_schedulable(&set, &limits).ok()?.then_some(set)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sufficient_speed_means_no_misses(set in arb_scaled_set(), seed in 0u64..1000) {
        let limits = AnalysisLimits::default();
        let SpeedupBound::Finite(s_min) =
            minimum_speedup(&set, &limits).expect("completes").bound()
        else {
            return Ok(()); // x = 1 corner: nothing to simulate safely
        };
        let speed = s_min.max(Rational::ONE);
        for (arrivals, scenario) in [
            (ArrivalScenario::Saturated, ExecutionScenario::HiWcet),
            (
                ArrivalScenario::Saturated,
                ExecutionScenario::RandomOverrun { probability: 0.3, seed },
            ),
            (
                ArrivalScenario::SaturatedWithJitter {
                    max_jitter: Rational::ONE,
                    seed,
                },
                ExecutionScenario::RandomOverrun { probability: 0.3, seed },
            ),
        ] {
            let report = Simulation::new(set.clone())
                .speedup(speed)
                .horizon(int(300))
                .arrivals(arrivals)
                .execution(scenario)
                .run()
                .expect("simulation runs");
            prop_assert!(
                report.misses().is_empty(),
                "misses at analytically sufficient speed {speed}: {:?}",
                report.misses()
            );
            prop_assert!(report.completed() <= report.released());
            prop_assert!(report.busy_time() <= report.horizon());
        }
    }

    #[test]
    fn measured_recovery_within_analytic_bound(set in arb_scaled_set(), seed in 0u64..1000) {
        let limits = AnalysisLimits::default();
        let SpeedupBound::Finite(s_min) =
            minimum_speedup(&set, &limits).expect("completes").bound()
        else {
            return Ok(());
        };
        // Give the system real headroom so Δ_R is finite.
        let speed = s_min.max(Rational::ONE) + Rational::ONE;
        let ResettingBound::Finite(delta_r) = resetting_time(&set, speed, &limits)
            .expect("completes")
            .bound()
        else {
            return Ok(());
        };
        let report = Simulation::new(set)
            .speedup(speed)
            .horizon(int(400))
            .execution(ExecutionScenario::RandomOverrun { probability: 0.5, seed })
            .run()
            .expect("simulation runs");
        for episode in report.hi_episodes() {
            if let Some(recovery) = episode.recovery() {
                prop_assert!(
                    recovery <= delta_r,
                    "measured recovery {recovery} exceeds analytic bound {delta_r}"
                );
            }
        }
    }

    #[test]
    fn no_overrun_means_no_hi_mode(set in arb_scaled_set()) {
        let report = Simulation::new(set)
            .horizon(int(200))
            .execution(ExecutionScenario::LoWcet)
            .run()
            .expect("simulation runs");
        prop_assert!(report.hi_episodes().is_empty());
        prop_assert!(report.misses().is_empty());
        prop_assert_eq!(report.dropped(), 0);
    }

    #[test]
    fn termination_never_increases_recovery(set in arb_scaled_set(), seed in 0u64..1000) {
        let limits = AnalysisLimits::default();
        let SpeedupBound::Finite(s_min) =
            minimum_speedup(&set, &limits).expect("completes").bound()
        else {
            return Ok(());
        };
        let speed = s_min.max(Rational::ONE) + Rational::ONE;
        let scenario = ExecutionScenario::RandomOverrun { probability: 0.5, seed };
        let full = Simulation::new(set.clone())
            .speedup(speed)
            .horizon(int(300))
            .execution(scenario.clone())
            .run()
            .expect("runs");
        let terminated_set = set.with_lo_terminated().expect("valid");
        let term = Simulation::new(terminated_set)
            .speedup(speed)
            .horizon(int(300))
            .execution(scenario)
            .run()
            .expect("runs");
        prop_assert!(term.misses().is_empty());
        // Termination frees resources: the *analytic* bound shrinks; the
        // measured max recovery may vary episode-by-episode, so compare
        // the analysis, not the noise.
        let ResettingBound::Finite(full_bound) =
            resetting_time(&set, speed, &limits).expect("ok").bound()
        else {
            return Ok(());
        };
        let ResettingBound::Finite(term_bound) = resetting_time(
            &set.with_lo_terminated().expect("valid"),
            speed,
            &limits,
        )
        .expect("ok")
        .bound()
        else {
            return Ok(());
        };
        prop_assert!(term_bound <= full_bound);
        prop_assert!(full.misses().is_empty());
    }
}
