//! Regression: long simulations at awkward fractional speedups must not
//! overflow the exact rational timestamps. The saturated adversary's
//! release re-planning quantum keeps denominators on a bounded lattice
//! across hundreds of mode switches (this exact configuration overflowed
//! `i128` before the quantum existed).

use rbs_core::speedup::{minimum_speedup, SpeedupBound};
use rbs_core::AnalysisLimits;
use rbs_model::{Criticality, Task, TaskSet};
use rbs_sim::{ArrivalScenario, ExecutionScenario, Simulation};
use rbs_timebase::Rational;

fn int(v: i128) -> Rational {
    Rational::integer(v)
}

fn rat(n: i128, d: i128) -> Rational {
    Rational::new(n, d)
}

fn awkward_set() -> TaskSet {
    TaskSet::new(vec![
        Task::builder("l0", Criticality::Lo)
            .period(int(8))
            .deadline(int(8))
            .period_hi(int(16))
            .deadline_hi(int(16))
            .wcet(int(3))
            .build()
            .expect("valid"),
        Task::builder("h1", Criticality::Hi)
            .period(int(3))
            .deadline_lo(rat(24, 11))
            .deadline_hi(int(3))
            .wcet_lo(int(1))
            .wcet_hi(int(2))
            .build()
            .expect("valid"),
        Task::builder("l2", Criticality::Lo)
            .period(int(6))
            .deadline(int(6))
            .period_hi(int(12))
            .deadline_hi(int(12))
            .wcet(int(1))
            .build()
            .expect("valid"),
    ])
}

#[test]
fn fractional_speedup_survives_many_mode_switches() {
    let set = awkward_set();
    let analysis = minimum_speedup(&set, &AnalysisLimits::default()).expect("completes");
    let SpeedupBound::Finite(s_min) = analysis.bound() else {
        panic!("finite expected");
    };
    assert_eq!(s_min, rat(11, 9));
    let speed = s_min.max(Rational::ONE);
    let report = Simulation::new(set)
        .speedup(speed)
        .horizon(int(2000))
        .arrivals(ArrivalScenario::Saturated)
        .execution(ExecutionScenario::HiWcet)
        .run()
        .expect("no timestamp overflow");
    assert!(report.misses().is_empty(), "misses: {:?}", report.misses());
    assert!(report.hi_episodes().len() > 50, "expected many episodes");
}

#[test]
fn custom_release_quantum_is_respected() {
    let set = awkward_set();
    let report = Simulation::new(set)
        .speedup(rat(11, 9))
        .horizon(int(500))
        .release_quantum(rat(1, 4))
        .execution(ExecutionScenario::HiWcet)
        .run()
        .expect("runs");
    assert!(report.misses().is_empty());
}

#[test]
#[should_panic(expected = "release quantum must be positive")]
fn zero_quantum_is_rejected() {
    let _ = Simulation::new(awkward_set()).release_quantum(Rational::ZERO);
}
