//! ASCII Gantt rendering of simulation runs.
//!
//! Turns a [`SimReport`] into a terminal chart: one
//! row per task showing when it executed, plus a mode row showing the
//! HI-mode episodes — the visual counterpart of the paper's Fig. 1/3
//! demonstrations.
//!
//! ```text
//! time  0.......10........20
//! ctrl  ##.#..#..##.#..#..#.
//! log   ..##.##...###.......
//! mode  .HH........HHH......
//! ```
//!
//! Legend: `#` — the task executed during (part of) the column's time
//! window; `!` — a deadline miss fell in the window; `.` — idle for this
//! row. In the mode row, `H` marks HI-mode (overclocked) operation.

use rbs_model::TaskSet;
use rbs_timebase::Rational;

use crate::report::SimReport;

/// Renders the run as an ASCII chart with `width` time columns.
///
/// Task rows are labeled with (possibly truncated) task names from
/// `set`, which must be the simulated set.
///
/// # Panics
///
/// Panics if `width == 0` or if `set` has a different task count than
/// the report tracked.
#[must_use]
pub fn render(report: &SimReport, set: &TaskSet, width: usize) -> String {
    assert!(width > 0, "need at least one column");
    assert_eq!(
        set.len(),
        report.max_response_times().len(),
        "task set does not match the report"
    );
    let horizon = report.horizon();
    let columns = Rational::integer(width as i128);
    let col_window = |c: usize| -> (Rational, Rational) {
        let from = horizon * Rational::integer(c as i128) / columns;
        let to = horizon * Rational::integer(c as i128 + 1) / columns;
        (from, to)
    };

    let label_width = set
        .iter()
        .map(|t| t.name().len().min(12))
        .max()
        .unwrap_or(4)
        .max(4);
    let mut out = String::new();

    // Header with coarse tick marks every 10 columns.
    out.push_str(&format!("{:<label_width$}  ", "time"));
    for c in 0..width {
        if c % 10 == 0 {
            // Each tick plus its dot padding spans the next 10 columns.
            let (from, _) = col_window(c);
            let tick = format!("{:.0}", from.to_f64());
            let padding = 10_usize.saturating_sub(tick.len());
            out.push_str(&tick);
            out.push_str(&".".repeat(padding));
        }
    }
    out.push('\n');

    for (i, task) in set.iter().enumerate() {
        let mut name = task.name().to_owned();
        name.truncate(12);
        out.push_str(&format!("{name:<label_width$}  "));
        for c in 0..width {
            let (from, to) = col_window(c);
            let missed = report
                .misses()
                .iter()
                .any(|m| m.task == i && m.deadline >= from && m.deadline < to);
            let ran = report
                .execution_segments()
                .iter()
                .any(|s| s.task == i && s.from < to && s.to > from);
            out.push(if missed {
                '!'
            } else if ran {
                '#'
            } else {
                '.'
            });
        }
        out.push('\n');
    }

    out.push_str(&format!("{:<label_width$}  ", "mode"));
    for c in 0..width {
        let (from, to) = col_window(c);
        let hi = report.hi_episodes().iter().any(|e| {
            let end = e.exited.unwrap_or(horizon);
            e.entered < to && end > from
        });
        out.push(if hi { 'H' } else { '.' });
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExecutionScenario, Simulation};
    use rbs_model::{Criticality, Task};

    fn int(v: i128) -> Rational {
        Rational::integer(v)
    }

    fn table1() -> TaskSet {
        TaskSet::new(vec![
            Task::builder("ctrl", Criticality::Hi)
                .period(int(5))
                .deadline_lo(int(2))
                .deadline_hi(int(5))
                .wcet_lo(int(1))
                .wcet_hi(int(2))
                .build()
                .expect("valid"),
            Task::builder("log", Criticality::Lo)
                .period(int(10))
                .deadline(int(10))
                .wcet(int(3))
                .build()
                .expect("valid"),
        ])
    }

    #[test]
    fn renders_rows_for_every_task_plus_mode() {
        let set = table1();
        let report = Simulation::new(set.clone())
            .speedup(Rational::TWO)
            .horizon(int(40))
            .execution(ExecutionScenario::scripted([(0, 0)]))
            .run()
            .expect("runs");
        let chart = render(&report, &set, 40);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 4); // header + 2 tasks + mode
        assert!(lines[1].starts_with("ctrl"));
        assert!(lines[2].starts_with("log"));
        assert!(lines[3].starts_with("mode"));
        // Both tasks executed; the single overrun shows as an episode.
        assert!(lines[1].contains('#'));
        assert!(lines[2].contains('#'));
        assert!(lines[3].contains('H'));
        // No misses anywhere.
        assert!(!chart.contains('!'));
    }

    #[test]
    fn misses_are_marked() {
        // Overloaded single task at unit speed: the miss shows as '!'.
        let set = TaskSet::new(vec![Task::builder("t", Criticality::Hi)
            .period(int(5))
            .deadline_lo(int(2))
            .deadline_hi(int(4))
            .wcet_lo(int(1))
            .wcet_hi(int(5))
            .build()
            .expect("valid")]);
        let report = Simulation::new(set.clone())
            .horizon(int(20))
            .execution(ExecutionScenario::HiWcet)
            .run()
            .expect("runs");
        assert!(!report.misses().is_empty());
        let chart = render(&report, &set, 40);
        assert!(chart.contains('!'));
    }

    #[test]
    fn idle_stays_blank() {
        let set = table1();
        let report = Simulation::new(set.clone())
            .horizon(int(40))
            .run()
            .expect("runs");
        let chart = render(&report, &set, 40);
        // LO-only run: no H in the mode row, but it exists.
        let mode_row = chart.lines().last().expect("mode row");
        assert!(mode_row.starts_with("mode"));
        assert!(!mode_row.contains('H'));
        assert!(mode_row.contains('.'));
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn zero_width_panics() {
        let set = table1();
        let report = Simulation::new(set.clone())
            .horizon(int(10))
            .run()
            .expect("runs");
        let _ = render(&report, &set, 0);
    }

    #[test]
    fn segments_are_merged_and_ordered() {
        let set = table1();
        let report = Simulation::new(set).horizon(int(40)).run().expect("runs");
        let segments = report.execution_segments();
        assert!(!segments.is_empty());
        for pair in segments.windows(2) {
            assert!(pair[0].to <= pair[1].from, "segments overlap");
            // Merged: no two adjacent segments of the same task touching.
            if pair[0].task == pair[1].task {
                assert!(pair[0].to < pair[1].from, "unmerged adjacency");
            }
        }
        for s in segments {
            assert!(s.from < s.to);
        }
    }
}
