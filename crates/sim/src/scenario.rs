//! Arrival and execution-demand scenarios.

use std::collections::BTreeMap;

use rbs_model::{Criticality, Mode, Task};
use rbs_timebase::Rational;

use crate::SimError;

/// How jobs arrive.
///
/// Sporadic tasks give the adversary freedom in arrival times; the
/// scenarios below cover the interesting corners.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArrivalScenario {
    /// Every task releases as early as legally possible: at time 0 and
    /// then exactly at its minimum inter-arrival time of the mode current
    /// at the (re)planning instant. This is the classic synchronous
    /// worst case for EDF demand.
    Saturated,
    /// Like [`ArrivalScenario::Saturated`] but with per-task initial
    /// offsets.
    SaturatedWithOffsets(Vec<Rational>),
    /// Explicit per-task release times (sorted, respecting the LO-mode
    /// minimum inter-arrival time). Tasks with exhausted scripts release
    /// no further jobs.
    Scripted(Vec<Vec<Rational>>),
    /// Like [`ArrivalScenario::Saturated`] but each release is delayed by
    /// a deterministic pseudo-random jitter in `[0, max_jitter]` (drawn
    /// on a `max_jitter/64` grid from the seed) — sporadic tasks that are
    /// *almost* periodic, as real sensor-driven workloads are.
    SaturatedWithJitter {
        /// The largest extra delay past the minimum separation.
        max_jitter: Rational,
        /// Derivation seed (runs are reproducible).
        seed: u64,
    },
}

fn jitter(seed: u64, task_index: usize, sequence: u64, max_jitter: Rational) -> Rational {
    // SplitMix64 as a stateless hash: one step keyed by (seed, task, seq).
    let mut state = seed ^ ((task_index as u64) << 32) ^ sequence;
    let h = rbs_rng::splitmix64(&mut state);
    Rational::new((h % 65) as i128, 64) * max_jitter
}

impl ArrivalScenario {
    /// Validates the scenario against a task set of `n` tasks.
    pub(crate) fn validate(&self, tasks: &[Task]) -> Result<(), SimError> {
        match self {
            ArrivalScenario::Saturated => Ok(()),
            ArrivalScenario::SaturatedWithOffsets(offsets) => {
                if offsets.len() != tasks.len() {
                    return Err(SimError::ArrivalScriptMismatch {
                        tasks: tasks.len(),
                        rows: offsets.len(),
                    });
                }
                Ok(())
            }
            ArrivalScenario::SaturatedWithJitter { max_jitter, .. } => {
                if max_jitter.is_negative() {
                    return Err(SimError::ArrivalScriptInvalid { task: 0 });
                }
                Ok(())
            }
            ArrivalScenario::Scripted(rows) => {
                if rows.len() != tasks.len() {
                    return Err(SimError::ArrivalScriptMismatch {
                        tasks: tasks.len(),
                        rows: rows.len(),
                    });
                }
                for (i, (row, task)) in rows.iter().zip(tasks).enumerate() {
                    let min_gap = task.lo().period();
                    for pair in row.windows(2) {
                        if pair[1] - pair[0] < min_gap {
                            return Err(SimError::ArrivalScriptInvalid { task: i });
                        }
                    }
                    if row.iter().any(Rational::is_negative) {
                        return Err(SimError::ArrivalScriptInvalid { task: i });
                    }
                }
                Ok(())
            }
        }
    }

    /// The first release time of task `i`, if any.
    pub(crate) fn first_release(&self, task_index: usize) -> Option<Rational> {
        match self {
            ArrivalScenario::Saturated => Some(Rational::ZERO),
            ArrivalScenario::SaturatedWithOffsets(offsets) => Some(offsets[task_index]),
            ArrivalScenario::Scripted(rows) => rows[task_index].first().copied(),
            ArrivalScenario::SaturatedWithJitter { max_jitter, seed } => {
                Some(jitter(*seed, task_index, 0, *max_jitter))
            }
        }
    }

    /// The release following a job of task `i` released at `last` as its
    /// `sequence`-th job, under mode `mode`.
    pub(crate) fn next_release(
        &self,
        task: &Task,
        task_index: usize,
        sequence: u64,
        last: Rational,
        mode: Mode,
    ) -> Option<Rational> {
        match self {
            ArrivalScenario::Saturated | ArrivalScenario::SaturatedWithOffsets(_) => {
                let period = task.params(mode).map(|p| p.period())?;
                Some(last + period)
            }
            ArrivalScenario::SaturatedWithJitter { max_jitter, seed } => {
                let period = task.params(mode).map(|p| p.period())?;
                Some(last + period + jitter(*seed, task_index, sequence + 1, *max_jitter))
            }
            ArrivalScenario::Scripted(rows) => {
                let next_index = usize::try_from(sequence).ok()? + 1;
                rows[task_index].get(next_index).copied()
            }
        }
    }

    /// Whether the scenario re-plans pending releases at mode switches
    /// (saturated adversaries do; scripts are fixed).
    pub(crate) fn replans_on_mode_switch(&self) -> bool {
        !matches!(self, ArrivalScenario::Scripted(_))
    }
}

/// How much each job actually executes.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum ExecutionScenario {
    /// Every job takes exactly its LO-mode WCET: no overruns ever.
    LoWcet,
    /// Every HI job takes its HI-mode WCET (overrunning immediately when
    /// `C(HI) > C(LO)`); LO jobs take `C(LO)`. This is the sustained
    /// worst case the offline analysis guards against.
    HiWcet,
    /// Specific `(task_index, job_sequence)` instances take `C(HI)`;
    /// all others take `C(LO)`. Use to inject isolated overruns.
    Scripted {
        /// The overrunning instances.
        overruns: BTreeMap<(usize, u64), ()>,
    },
    /// Each HI job independently overruns to `C(HI)` with the given
    /// probability (as a ratio in `[0, 1]`), deterministically derived
    /// from the seed.
    RandomOverrun {
        /// Overrun probability in `[0, 1]`.
        probability: f64,
        /// RNG seed (simulations are reproducible).
        seed: u64,
    },
}

impl ExecutionScenario {
    /// A scripted scenario from a list of overrunning instances.
    #[must_use]
    pub fn scripted(overruns: impl IntoIterator<Item = (usize, u64)>) -> ExecutionScenario {
        ExecutionScenario::Scripted {
            overruns: overruns.into_iter().map(|k| (k, ())).collect(),
        }
    }
}

/// Stateful demand source built from an [`ExecutionScenario`].
#[derive(Debug)]
pub(crate) struct DemandSource {
    scenario: ExecutionScenario,
    rng: rbs_rng::Rng,
}

impl DemandSource {
    pub(crate) fn new(scenario: ExecutionScenario) -> DemandSource {
        let seed = match &scenario {
            ExecutionScenario::RandomOverrun { seed, .. } => *seed,
            _ => 0,
        };
        DemandSource {
            scenario,
            rng: rbs_rng::Rng::seed_from_u64(seed),
        }
    }

    /// The actual demand of the `sequence`-th job of `task`.
    pub(crate) fn demand(
        &mut self,
        task: &Task,
        task_index: usize,
        sequence: u64,
    ) -> Result<Rational, SimError> {
        let c_lo = task.lo().wcet();
        if task.criticality() == Criticality::Lo {
            // The model forbids LO tasks from exceeding C(LO).
            return Ok(c_lo);
        }
        let c_hi = task.params(Mode::Hi).map_or(c_lo, |p| p.wcet());
        let overruns = match &self.scenario {
            ExecutionScenario::LoWcet => false,
            ExecutionScenario::HiWcet => true,
            ExecutionScenario::Scripted { overruns } => {
                overruns.contains_key(&(task_index, sequence))
            }
            ExecutionScenario::RandomOverrun { probability, .. } => {
                if !(0.0..=1.0).contains(probability) {
                    return Err(SimError::DemandOutOfRange { task: task_index });
                }
                self.rng.gen_bool(*probability)
            }
        };
        Ok(if overruns { c_hi } else { c_lo })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbs_model::Task;

    fn int(v: i128) -> Rational {
        Rational::integer(v)
    }

    fn hi_task() -> Task {
        Task::builder("h", Criticality::Hi)
            .period(int(5))
            .deadline_lo(int(2))
            .deadline_hi(int(5))
            .wcet_lo(int(1))
            .wcet_hi(int(2))
            .build()
            .expect("valid")
    }

    fn lo_task() -> Task {
        Task::builder("l", Criticality::Lo)
            .period(int(10))
            .deadline(int(10))
            .period_hi(int(20))
            .deadline_hi(int(20))
            .wcet(int(3))
            .build()
            .expect("valid")
    }

    #[test]
    fn saturated_releases_back_to_back() {
        let s = ArrivalScenario::Saturated;
        let h = hi_task();
        assert_eq!(s.first_release(0), Some(int(0)));
        assert_eq!(s.next_release(&h, 0, 0, int(0), Mode::Lo), Some(int(5)));
        assert_eq!(s.next_release(&h, 0, 1, int(5), Mode::Hi), Some(int(10)));
        // Degraded LO task arrives slower in HI mode.
        let l = lo_task();
        assert_eq!(s.next_release(&l, 1, 0, int(0), Mode::Lo), Some(int(10)));
        assert_eq!(s.next_release(&l, 1, 0, int(0), Mode::Hi), Some(int(20)));
        assert!(s.replans_on_mode_switch());
    }

    #[test]
    fn terminated_tasks_have_no_hi_release() {
        let s = ArrivalScenario::Saturated;
        let t = lo_task().terminated().expect("LO task");
        assert_eq!(s.next_release(&t, 0, 0, int(0), Mode::Hi), None);
        assert_eq!(s.next_release(&t, 0, 0, int(0), Mode::Lo), Some(int(10)));
    }

    #[test]
    fn offsets_shift_first_release() {
        let s = ArrivalScenario::SaturatedWithOffsets(vec![int(3), int(7)]);
        assert_eq!(s.first_release(0), Some(int(3)));
        assert_eq!(s.first_release(1), Some(int(7)));
        assert!(s.validate(&[hi_task(), lo_task()]).is_ok());
        assert!(s.validate(&[hi_task()]).is_err());
    }

    #[test]
    fn scripts_are_validated() {
        let tasks = [hi_task(), lo_task()];
        let good = ArrivalScenario::Scripted(vec![vec![int(0), int(5), int(11)], vec![int(2)]]);
        assert!(good.validate(&tasks).is_ok());
        assert!(!good.replans_on_mode_switch());
        let too_close = ArrivalScenario::Scripted(vec![vec![int(0), int(4)], vec![]]);
        assert_eq!(
            too_close.validate(&tasks),
            Err(SimError::ArrivalScriptInvalid { task: 0 })
        );
        let wrong_rows = ArrivalScenario::Scripted(vec![vec![]]);
        assert!(matches!(
            wrong_rows.validate(&tasks),
            Err(SimError::ArrivalScriptMismatch { tasks: 2, rows: 1 })
        ));
        let negative = ArrivalScenario::Scripted(vec![vec![int(-1)], vec![]]);
        assert_eq!(
            negative.validate(&tasks),
            Err(SimError::ArrivalScriptInvalid { task: 0 })
        );
    }

    #[test]
    fn scripted_arrivals_follow_the_script() {
        let s = ArrivalScenario::Scripted(vec![vec![int(0), int(6), int(20)]]);
        let h = hi_task();
        assert_eq!(s.first_release(0), Some(int(0)));
        assert_eq!(s.next_release(&h, 0, 0, int(0), Mode::Lo), Some(int(6)));
        assert_eq!(s.next_release(&h, 0, 1, int(6), Mode::Hi), Some(int(20)));
        assert_eq!(s.next_release(&h, 0, 2, int(20), Mode::Lo), None);
    }

    #[test]
    fn jitter_delays_are_bounded_and_reproducible() {
        let s = ArrivalScenario::SaturatedWithJitter {
            max_jitter: int(2),
            seed: 99,
        };
        let h = hi_task(); // T = 5
        let first = s.first_release(0).expect("releases");
        assert!(first >= Rational::ZERO && first <= int(2));
        let mut last = first;
        for seq in 0..50 {
            let next = s
                .next_release(&h, 0, seq, last, Mode::Lo)
                .expect("releases");
            let gap = next - last;
            assert!(gap >= int(5), "separation violated: {gap}");
            assert!(gap <= int(7), "jitter exceeded: {gap}");
            // Denominators stay on the 1/64 lattice.
            assert!(64 % next.denom() == 0, "off-lattice release {next}");
            last = next;
        }
        // Same seed → same schedule; different seed → different.
        let again = ArrivalScenario::SaturatedWithJitter {
            max_jitter: int(2),
            seed: 99,
        };
        assert_eq!(again.first_release(0), Some(first));
        let other = ArrivalScenario::SaturatedWithJitter {
            max_jitter: int(2),
            seed: 100,
        };
        assert_ne!(
            (0..20)
                .scan(first, |l, seq| {
                    *l = s.next_release(&h, 0, seq, *l, Mode::Lo).expect("r");
                    Some(*l)
                })
                .collect::<Vec<_>>(),
            (0..20)
                .scan(other.first_release(0).expect("r"), |l, seq| {
                    *l = other.next_release(&h, 0, seq, *l, Mode::Lo).expect("r");
                    Some(*l)
                })
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn negative_jitter_is_rejected() {
        let s = ArrivalScenario::SaturatedWithJitter {
            max_jitter: Rational::new(-1, 2),
            seed: 0,
        };
        assert_eq!(
            s.validate(&[hi_task()]),
            Err(SimError::ArrivalScriptInvalid { task: 0 })
        );
    }

    #[test]
    fn demand_sources_respect_the_model() {
        let h = hi_task();
        let l = lo_task();

        let mut lo_only = DemandSource::new(ExecutionScenario::LoWcet);
        assert_eq!(lo_only.demand(&h, 0, 0).expect("ok"), int(1));
        assert_eq!(lo_only.demand(&l, 1, 0).expect("ok"), int(3));

        let mut hi = DemandSource::new(ExecutionScenario::HiWcet);
        assert_eq!(hi.demand(&h, 0, 0).expect("ok"), int(2));
        // LO tasks never exceed C(LO).
        assert_eq!(hi.demand(&l, 1, 0).expect("ok"), int(3));
    }

    #[test]
    fn scripted_overruns_hit_exact_instances() {
        let h = hi_task();
        let mut src = DemandSource::new(ExecutionScenario::scripted([(0, 2)]));
        assert_eq!(src.demand(&h, 0, 0).expect("ok"), int(1));
        assert_eq!(src.demand(&h, 0, 1).expect("ok"), int(1));
        assert_eq!(src.demand(&h, 0, 2).expect("ok"), int(2));
        assert_eq!(src.demand(&h, 0, 3).expect("ok"), int(1));
    }

    #[test]
    fn random_overruns_are_reproducible() {
        let h = hi_task();
        let draw = |seed: u64| -> Vec<Rational> {
            let mut src = DemandSource::new(ExecutionScenario::RandomOverrun {
                probability: 0.5,
                seed,
            });
            (0..32).map(|i| src.demand(&h, 0, i).expect("ok")).collect()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8)); // overwhelmingly likely
    }

    #[test]
    fn invalid_probability_is_reported() {
        let h = hi_task();
        let mut src = DemandSource::new(ExecutionScenario::RandomOverrun {
            probability: 1.5,
            seed: 0,
        });
        assert_eq!(
            src.demand(&h, 0, 0),
            Err(SimError::DemandOutOfRange { task: 0 })
        );
    }
}
