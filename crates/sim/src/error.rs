//! Simulation errors.

use std::error::Error;
use std::fmt;

/// Returned when a simulation cannot be run as configured.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The configured HI-mode speedup factor is zero or negative.
    NonPositiveSpeedup,
    /// The configured horizon is zero or negative.
    NonPositiveHorizon,
    /// A scripted arrival scenario does not match the task set (wrong
    /// number of task rows).
    ArrivalScriptMismatch {
        /// Tasks in the set.
        tasks: usize,
        /// Rows in the script.
        rows: usize,
    },
    /// A scripted arrival sequence violates a task's minimum
    /// inter-arrival time or is not sorted.
    ArrivalScriptInvalid {
        /// Index of the offending task.
        task: usize,
    },
    /// An execution scenario produced a demand outside
    /// `[0, C(HI)]` (or above `C(LO)` for a LO task).
    DemandOutOfRange {
        /// Index of the offending task.
        task: usize,
    },
    /// The event loop exceeded its safety bound without reaching the
    /// horizon (indicates degenerate parameters, e.g. zero-length
    /// periods slipping through validation).
    EventBudgetExhausted {
        /// Events processed before giving up.
        events: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NonPositiveSpeedup => {
                f.write_str("HI-mode speedup factor must be strictly positive")
            }
            SimError::NonPositiveHorizon => {
                f.write_str("simulation horizon must be strictly positive")
            }
            SimError::ArrivalScriptMismatch { tasks, rows } => write!(
                f,
                "arrival script has {rows} rows but the task set has {tasks} tasks"
            ),
            SimError::ArrivalScriptInvalid { task } => write!(
                f,
                "arrival script for task #{task} is unsorted or violates its minimum inter-arrival time"
            ),
            SimError::DemandOutOfRange { task } => write!(
                f,
                "execution scenario produced an out-of-range demand for task #{task}"
            ),
            SimError::EventBudgetExhausted { events } => write!(
                f,
                "simulation event budget exhausted after {events} events"
            ),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(SimError::NonPositiveSpeedup.to_string().contains("speedup"));
        assert!(SimError::ArrivalScriptMismatch { tasks: 3, rows: 2 }
            .to_string()
            .contains('3'));
        assert!(SimError::EventBudgetExhausted { events: 9 }
            .to_string()
            .contains('9'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<SimError>();
    }
}
