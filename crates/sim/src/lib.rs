//! Discrete-event simulation of mixed-criticality EDF with temporary
//! processor speedup.
//!
//! This crate implements the runtime side of *"Run and Be Safe"* (DATE
//! 2015): a preemptive EDF scheduler on a variable-speed uniprocessor
//! that follows the paper's mode-switch protocol:
//!
//! 1. the system starts in LO mode at nominal speed; HI-criticality jobs
//!    are scheduled against their shortened LO-mode deadlines
//!    (*preparation for overrun*);
//! 2. the instant any HI job executes beyond its LO-mode WCET the system
//!    switches to **HI mode**: the processor speeds up by the configured
//!    factor `s`, pending job deadlines revert to their HI-mode values,
//!    LO tasks degrade their service (or are terminated), and new
//!    arrivals respect the HI-mode parameters;
//! 3. at the first processor **idle instant** the system resets to LO
//!    mode and nominal speed (Section IV);
//! 4. optionally, a runtime monitor bounds how long overclocking may
//!    last (Section IV remark): when the budget expires, LO tasks are
//!    terminated and the speed is restored so the overload drains at
//!    nominal speed.
//!
//! The simulator is exact (rational time), deterministic for a given
//! seed, and records a full event trace plus deadline misses, HI-mode
//! episodes and measured recovery times — the quantities the paper's
//! evaluation compares against the offline bounds of `rbs-core`.
//!
//! # Examples
//!
//! Injecting an overrun and watching the system recover:
//!
//! ```
//! use rbs_sim::{ArrivalScenario, ExecutionScenario, Simulation};
//! use rbs_model::{Criticality, Task, TaskSet};
//! use rbs_timebase::Rational;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let set = TaskSet::new(vec![
//!     Task::builder("tau1", Criticality::Hi)
//!         .period(Rational::integer(5))
//!         .deadline_lo(Rational::integer(2))
//!         .deadline_hi(Rational::integer(5))
//!         .wcet_lo(Rational::integer(1))
//!         .wcet_hi(Rational::integer(2))
//!         .build()?,
//!     Task::builder("tau2", Criticality::Lo)
//!         .period(Rational::integer(10))
//!         .deadline(Rational::integer(10))
//!         .wcet(Rational::integer(3))
//!         .build()?,
//! ]);
//! let report = Simulation::new(set)
//!     .speedup(Rational::new(4, 3))
//!     .horizon(Rational::integer(100))
//!     .arrivals(ArrivalScenario::Saturated)
//!     .execution(ExecutionScenario::HiWcet)
//!     .run()?;
//! assert!(report.misses().is_empty());
//! assert!(!report.hi_episodes().is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod error;
mod job;
mod report;
mod scenario;
pub mod timeline;

pub use engine::Simulation;
pub use error::SimError;
pub use job::{Job, JobId};
pub use report::{DeadlineMiss, ExecSegment, HiEpisode, SimReport, TraceEvent};
pub use scenario::{ArrivalScenario, ExecutionScenario};
