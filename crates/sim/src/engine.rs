//! The discrete-event EDF engine.

use rbs_model::{Criticality, Mode, Task, TaskSet};
use rbs_timebase::Rational;

use crate::report::{DeadlineMiss, ExecSegment, HiEpisode, SimReport, TraceEvent};
use crate::scenario::DemandSource;
use crate::{ArrivalScenario, ExecutionScenario, Job, JobId, SimError};

/// A configurable simulation run (builder style).
///
/// Defaults: unit speedup, saturated arrivals, no overruns
/// ([`ExecutionScenario::LoWcet`]), no overclock budget. A horizon must
/// be set before [`Simulation::run`].
///
/// See the [crate docs](crate) for the protocol being simulated and a
/// complete example.
#[derive(Debug, Clone)]
pub struct Simulation {
    set: TaskSet,
    speedup: Rational,
    horizon: Option<Rational>,
    arrivals: ArrivalScenario,
    execution: ExecutionScenario,
    overclock_budget: Option<Rational>,
    release_quantum: Rational,
    max_events: u64,
}

impl Simulation {
    /// Starts configuring a simulation of the given task set.
    #[must_use]
    pub fn new(set: TaskSet) -> Simulation {
        Simulation {
            set,
            speedup: Rational::ONE,
            horizon: None,
            arrivals: ArrivalScenario::Saturated,
            execution: ExecutionScenario::LoWcet,
            overclock_budget: None,
            release_quantum: Rational::new(1, 64),
            max_events: 5_000_000,
        }
    }

    /// Sets the HI-mode speedup factor `s` (default 1).
    #[must_use]
    pub fn speedup(mut self, speedup: Rational) -> Simulation {
        self.speedup = speedup;
        self
    }

    /// Sets the simulated horizon (required).
    #[must_use]
    pub fn horizon(mut self, horizon: Rational) -> Simulation {
        self.horizon = Some(horizon);
        self
    }

    /// Sets the arrival scenario (default [`ArrivalScenario::Saturated`]).
    #[must_use]
    pub fn arrivals(mut self, arrivals: ArrivalScenario) -> Simulation {
        self.arrivals = arrivals;
        self
    }

    /// Sets the execution-demand scenario (default
    /// [`ExecutionScenario::LoWcet`]).
    #[must_use]
    pub fn execution(mut self, execution: ExecutionScenario) -> Simulation {
        self.execution = execution;
        self
    }

    /// Bounds how long each HI-mode episode may overclock (Section IV
    /// remark). When the budget expires, LO tasks are terminated and the
    /// speed returns to nominal until the idle reset.
    #[must_use]
    pub fn overclock_budget(mut self, budget: Rational) -> Simulation {
        self.overclock_budget = Some(budget);
        self
    }

    /// Sets the release-replanning quantum (default `1/64`).
    ///
    /// When the saturated adversary re-plans arrivals after an idle
    /// reset, the earliest legal release instant is rounded *up* to a
    /// multiple of this quantum. Releasing later than the minimum
    /// inter-arrival separation is always legal for sporadic tasks, so
    /// this does not change the model — it keeps the exact rational
    /// timestamps on a bounded-denominator lattice across arbitrarily
    /// many mode switches (otherwise fractional speedup factors compound
    /// denominators until `i128` overflows).
    ///
    /// # Panics
    ///
    /// Panics if the quantum is not strictly positive.
    #[must_use]
    pub fn release_quantum(mut self, quantum: Rational) -> Simulation {
        assert!(quantum.is_positive(), "release quantum must be positive");
        self.release_quantum = quantum;
        self
    }

    /// Overrides the event-loop safety bound (default 5,000,000).
    #[must_use]
    pub fn max_events(mut self, max_events: u64) -> Simulation {
        self.max_events = max_events;
        self
    }

    /// Runs the simulation to the horizon.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] on invalid configuration (non-positive
    /// speedup/horizon, malformed scripts) or if the event-loop safety
    /// bound is exceeded.
    pub fn run(self) -> Result<SimReport, SimError> {
        let horizon = self.horizon.ok_or(SimError::NonPositiveHorizon)?;
        if !horizon.is_positive() {
            return Err(SimError::NonPositiveHorizon);
        }
        if !self.speedup.is_positive() {
            return Err(SimError::NonPositiveSpeedup);
        }
        self.arrivals.validate(self.set.as_slice())?;
        Engine::new(self, horizon).run()
    }
}

/// Per-task runtime bookkeeping.
#[derive(Debug)]
struct TaskState {
    next_release: Option<Rational>,
    last_release: Option<Rational>,
    released: u64,
}

struct Engine {
    cfg: Simulation,
    horizon: Rational,
    demand: DemandSource,

    now: Rational,
    mode: Mode,
    speed: Rational,
    pending: Vec<Job>,
    tasks: Vec<TaskState>,
    /// Set while the overclock monitor has curtailed the current episode.
    forced_termination: bool,
    hi_entered: Option<Rational>,

    trace: Vec<TraceEvent>,
    misses: Vec<DeadlineMiss>,
    episodes: Vec<HiEpisode>,
    released: u64,
    completed: u64,
    dropped: u64,
    preemptions: u64,
    busy_time: Rational,
    max_response: Vec<Option<Rational>>,
    energy: Rational,
    segments: Vec<ExecSegment>,
    next_job_id: u64,
    prev_running: Option<JobId>,
    events: u64,
}

impl Engine {
    fn new(cfg: Simulation, horizon: Rational) -> Engine {
        let tasks = (0..cfg.set.len())
            .map(|i| TaskState {
                next_release: cfg.arrivals.first_release(i),
                last_release: None,
                released: 0,
            })
            .collect();
        let demand = DemandSource::new(cfg.execution.clone());
        Engine {
            horizon,
            demand,
            now: Rational::ZERO,
            mode: Mode::Lo,
            speed: Rational::ONE,
            pending: Vec::new(),
            tasks,
            forced_termination: false,
            hi_entered: None,
            trace: Vec::new(),
            misses: Vec::new(),
            episodes: Vec::new(),
            released: 0,
            completed: 0,
            dropped: 0,
            preemptions: 0,
            busy_time: Rational::ZERO,
            max_response: vec![None; cfg.set.len()],
            energy: Rational::ZERO,
            segments: Vec::new(),
            next_job_id: 0,
            prev_running: None,
            events: 0,
            cfg,
        }
    }

    fn task(&self, index: usize) -> &Task {
        &self.cfg.set[index]
    }

    /// Whether task `index` currently releases no jobs and keeps no
    /// pending jobs (terminated-by-model or by the overclock monitor).
    fn is_effectively_terminated(&self, index: usize) -> bool {
        if self.mode != Mode::Hi {
            return false;
        }
        let task = self.task(index);
        task.is_terminated_in_hi()
            || (self.forced_termination && task.criticality() == Criticality::Lo)
    }

    /// Index into `pending` of the EDF-highest-priority unfinished job.
    fn running_index(&self) -> Option<usize> {
        self.pending
            .iter()
            .enumerate()
            .filter(|(_, j)| !j.is_complete())
            .min_by_key(|(_, j)| (j.deadline(), j.task_index(), j.id()))
            .map(|(i, _)| i)
    }

    fn run(mut self) -> Result<SimReport, SimError> {
        loop {
            // Phase A: apply all state transitions due at `now` until a
            // fixpoint (each application consumes its trigger).
            loop {
                self.events += 1;
                if self.events > self.cfg.max_events {
                    return Err(SimError::EventBudgetExhausted {
                        events: self.events,
                    });
                }
                if !self.apply_due_events()? {
                    break;
                }
            }
            if self.now >= self.horizon {
                break;
            }

            // Preemption bookkeeping: a previously running, still
            // unfinished job displaced from the top slot was preempted.
            let running = self.running_index();
            let running_id = running.map(|i| self.pending[i].id());
            if let Some(prev) = self.prev_running {
                if running_id != Some(prev)
                    && self
                        .pending
                        .iter()
                        .any(|j| j.id() == prev && !j.is_complete())
                {
                    self.preemptions += 1;
                }
            }
            self.prev_running = running_id;

            // Phase B: find the next event time strictly after `now`.
            let mut t_next = self.horizon;
            for state in &self.tasks {
                if let Some(r) = state.next_release {
                    if r > self.now {
                        t_next = t_next.min(r);
                    }
                }
            }
            if let Some(idx) = running {
                let job = &self.pending[idx];
                let finish = self.now + job.remaining() / self.speed;
                t_next = t_next.min(finish);
                if self.mode == Mode::Lo {
                    let task = self.task(job.task_index());
                    let c_lo = task.lo().wcet();
                    if task.criticality() == Criticality::Hi
                        && job.demand() > c_lo
                        && job.executed() < c_lo
                    {
                        let boundary = self.now + (c_lo - job.executed()) / self.speed;
                        t_next = t_next.min(boundary);
                    }
                }
            }
            for job in self.pending.iter().filter(|j| !j.is_complete()) {
                if !job.miss_recorded && job.deadline() > self.now {
                    t_next = t_next.min(job.deadline());
                }
            }
            if let (Mode::Hi, Some(budget), Some(entered), false) = (
                self.mode,
                self.cfg.overclock_budget,
                self.hi_entered,
                self.forced_termination,
            ) {
                let expiry = entered + budget;
                if expiry > self.now {
                    t_next = t_next.min(expiry);
                }
            }

            // Advance time, executing the running job.
            debug_assert!(t_next > self.now, "time must advance");
            let dt = t_next - self.now;
            if let Some(idx) = running {
                let task = self.pending[idx].task_index();
                self.pending[idx].add_executed(self.speed * dt);
                self.busy_time += dt;
                // Cubic DVFS power model: P(s) = s³ (normalized).
                self.energy += self.speed * self.speed * self.speed * dt;
                match self.segments.last_mut() {
                    Some(last) if last.task == task && last.to == self.now => {
                        last.to = t_next;
                    }
                    _ => self.segments.push(ExecSegment {
                        task,
                        from: self.now,
                        to: t_next,
                    }),
                }
            }
            self.now = t_next;
        }

        Ok(SimReport {
            horizon: self.horizon,
            trace: self.trace,
            misses: self.misses,
            episodes: self.episodes,
            released: self.released,
            completed: self.completed,
            dropped: self.dropped,
            preemptions: self.preemptions,
            busy_time: self.busy_time,
            max_response: self.max_response,
            energy: self.energy,
            segments: self.segments,
        })
    }

    /// Applies at most one batch of due transitions; returns whether
    /// anything happened.
    fn apply_due_events(&mut self) -> Result<bool, SimError> {
        // 1. Completions.
        if let Some(idx) = self.pending.iter().position(Job::is_complete) {
            let job = self.pending.remove(idx);
            self.completed += 1;
            self.record_response(job.task_index(), self.now - job.release());
            self.trace.push(TraceEvent::Completion {
                at: self.now,
                job: job.id(),
            });
            return Ok(true);
        }

        // 2. Overrun boundary: LO→HI mode switch. Checked *before* the
        //    miss check: an overrun detected exactly at a job's LO-mode
        //    deadline extends that deadline to its HI-mode value — this
        //    boundary alignment is exactly the carry-over worst case the
        //    demand analysis (Lemma 1) accounts for.
        if self.mode == Mode::Lo {
            let overran = self.pending.iter().any(|j| {
                let task = self.task(j.task_index());
                task.criticality() == Criticality::Hi
                    && j.demand() > task.lo().wcet()
                    && j.executed() >= task.lo().wcet()
            });
            if overran {
                self.switch_to_hi();
                return Ok(true);
            }
        }

        // 3. Overclock-budget expiry.
        if let (Mode::Hi, Some(budget), Some(entered), false) = (
            self.mode,
            self.cfg.overclock_budget,
            self.hi_entered,
            self.forced_termination,
        ) {
            if self.now >= entered + budget {
                self.curtail_overclock();
                return Ok(true);
            }
        }

        // 4. Deadline misses (against the current-mode deadline).
        if let Some(job) = self
            .pending
            .iter_mut()
            .find(|j| !j.miss_recorded && j.deadline() <= self.now)
        {
            job.miss_recorded = true;
            let record = DeadlineMiss {
                job: job.id(),
                task: job.task_index(),
                deadline: job.deadline(),
                mode: self.mode,
            };
            let id = job.id();
            self.misses.push(record);
            self.trace.push(TraceEvent::Miss {
                at: self.now,
                job: id,
            });
            return Ok(true);
        }

        // 5. Idle reset: first idle instant in HI mode returns to LO.
        //    Checked *before* releases due at the same instant — a job
        //    arriving exactly at the idle instant is served in LO mode,
        //    matching the closed-interval arrived-demand semantics of
        //    Corollary 5 (the reset happens at the idle instant itself).
        if self.mode == Mode::Hi && self.pending.iter().all(Job::is_complete) {
            self.reset_to_lo();
            return Ok(true);
        }

        // 6. Releases due now (events exactly at the horizon are not
        //    processed).
        if self.now < self.horizon {
            for i in 0..self.tasks.len() {
                let Some(r) = self.tasks[i].next_release else {
                    continue;
                };
                if r > self.now {
                    continue;
                }
                self.release(i, r)?;
                return Ok(true);
            }
        }

        Ok(false)
    }

    fn release(&mut self, task_index: usize, due: Rational) -> Result<(), SimError> {
        let sequence = self.tasks[task_index].released;
        // Advance the per-task arrival plan first.
        let task = self.task(task_index).clone();
        self.tasks[task_index].released += 1;
        self.tasks[task_index].last_release = Some(due);
        self.tasks[task_index].next_release = self
            .cfg
            .arrivals
            .next_release(&task, task_index, sequence, due, self.mode);

        if self.is_effectively_terminated(task_index) {
            // Scripted arrivals during a terminated window are suppressed.
            self.dropped += 1;
            return Ok(());
        }
        let demand = self.demand.demand(&task, task_index, sequence)?;
        let params = task
            .params(self.mode)
            .expect("non-terminated task has params in the current mode");
        let deadline = due + params.deadline();
        let id = JobId::new(self.next_job_id);
        self.next_job_id += 1;
        self.released += 1;
        self.trace.push(TraceEvent::Release {
            at: self.now,
            job: id,
            task: task_index,
            deadline,
        });
        let job = Job::new(id, task_index, sequence, due, deadline, demand);
        if job.is_complete() {
            // Zero-demand instance: completes instantly.
            self.completed += 1;
            self.record_response(task_index, Rational::ZERO);
            self.trace.push(TraceEvent::Completion {
                at: self.now,
                job: id,
            });
        } else {
            self.pending.push(job);
        }
        Ok(())
    }

    fn record_response(&mut self, task_index: usize, response: Rational) {
        let slot = &mut self.max_response[task_index];
        match slot {
            Some(current) if *current >= response => {}
            _ => *slot = Some(response),
        }
    }

    fn switch_to_hi(&mut self) {
        self.mode = Mode::Hi;
        self.speed = self.cfg.speedup;
        self.hi_entered = Some(self.now);
        self.episodes.push(HiEpisode {
            entered: self.now,
            exited: None,
            curtailed: false,
        });
        self.trace.push(TraceEvent::ModeSwitch {
            at: self.now,
            to: Mode::Hi,
            speed: self.speed,
        });
        self.apply_termination_and_redeadline();
        // Saturated adversaries re-plan pending arrivals to respect the
        // HI-mode minimum inter-arrival times.
        if self.cfg.arrivals.replans_on_mode_switch() {
            for i in 0..self.tasks.len() {
                if self.is_effectively_terminated(i) {
                    self.tasks[i].next_release = None;
                    continue;
                }
                let Some(hi) = self.task(i).params(Mode::Hi) else {
                    continue;
                };
                let hi_period = hi.period();
                let state = &mut self.tasks[i];
                if let (Some(next), Some(last)) = (state.next_release, state.last_release) {
                    state.next_release = Some(next.max(last + hi_period));
                }
            }
        }
    }

    /// Drops pending jobs of terminated tasks and extends the deadlines
    /// of surviving jobs to their HI-mode values.
    fn apply_termination_and_redeadline(&mut self) {
        let now = self.now;
        let mut dropped_events = Vec::new();
        let set = self.cfg.set.clone();
        let forced = self.forced_termination;
        self.pending.retain_mut(|job| {
            let task = &set[job.task_index()];
            let terminated =
                task.is_terminated_in_hi() || (forced && task.criticality() == Criticality::Lo);
            if terminated {
                dropped_events.push(job.id());
                return false;
            }
            let hi = task
                .params(Mode::Hi)
                .expect("non-terminated task has HI params");
            job.set_deadline(job.release() + hi.deadline());
            true
        });
        for id in dropped_events {
            self.dropped += 1;
            self.trace.push(TraceEvent::Dropped { at: now, job: id });
        }
    }

    fn curtail_overclock(&mut self) {
        self.forced_termination = true;
        self.speed = Rational::ONE;
        if let Some(episode) = self.episodes.last_mut() {
            episode.curtailed = true;
        }
        self.trace
            .push(TraceEvent::OverclockCurtailed { at: self.now });
        // Terminate LO tasks (drop pending, stop arrivals).
        self.apply_termination_and_redeadline();
        for i in 0..self.tasks.len() {
            if self.is_effectively_terminated(i) {
                self.tasks[i].next_release = None;
            }
        }
    }

    fn reset_to_lo(&mut self) {
        self.mode = Mode::Lo;
        self.speed = Rational::ONE;
        self.forced_termination = false;
        self.hi_entered = None;
        if let Some(episode) = self.episodes.last_mut() {
            episode.exited = Some(self.now);
        }
        self.trace.push(TraceEvent::ModeSwitch {
            at: self.now,
            to: Mode::Lo,
            speed: Rational::ONE,
        });
        // Resume/replan arrivals under LO-mode parameters: the saturated
        // adversary releases as early as LO-mode separation now allows.
        // Scripted plans are fixed (suppressed entries were consumed).
        if self.cfg.arrivals.replans_on_mode_switch() {
            for i in 0..self.tasks.len() {
                let lo_period = self.task(i).lo().period();
                let state = &mut self.tasks[i];
                let earliest = match state.last_release {
                    Some(last) => (last + lo_period).max(self.now),
                    None => self.now,
                };
                state.next_release = Some(quantize_up(earliest, self.cfg.release_quantum));
            }
        }
    }
}

/// Rounds `t` up to the next multiple of `quantum`.
fn quantize_up(t: Rational, quantum: Rational) -> Rational {
    let steps = t / quantum;
    if steps.is_integer() {
        t
    } else {
        Rational::integer(steps.floor() + 1) * quantum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::TraceEvent;

    fn int(v: i128) -> Rational {
        Rational::integer(v)
    }

    fn rat(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    fn table1() -> TaskSet {
        TaskSet::new(vec![
            Task::builder("tau1", Criticality::Hi)
                .period(int(5))
                .deadline_lo(int(2))
                .deadline_hi(int(5))
                .wcet_lo(int(1))
                .wcet_hi(int(2))
                .build()
                .expect("valid"),
            Task::builder("tau2", Criticality::Lo)
                .period(int(10))
                .deadline(int(10))
                .wcet(int(3))
                .build()
                .expect("valid"),
        ])
    }

    #[test]
    fn no_overrun_stays_in_lo_mode() {
        let report = Simulation::new(table1())
            .horizon(int(100))
            .run()
            .expect("runs");
        assert!(report.misses().is_empty());
        assert!(report.hi_episodes().is_empty());
        // τ1 releases at 0,5,...,95 (20 jobs), τ2 at 0,10,...,90 (10 jobs).
        assert_eq!(report.released(), 30);
        assert_eq!(report.completed(), 30);
        // Busy: 20·1 + 10·3 = 50.
        assert_eq!(report.busy_time(), int(50));
        assert_eq!(report.utilization(), rat(1, 2));
    }

    #[test]
    fn sustained_overrun_at_s_min_meets_all_deadlines() {
        let report = Simulation::new(table1())
            .speedup(rat(4, 3))
            .horizon(int(200))
            .execution(ExecutionScenario::HiWcet)
            .run()
            .expect("runs");
        assert!(report.misses().is_empty(), "misses: {:?}", report.misses());
        assert!(!report.hi_episodes().is_empty());
    }

    #[test]
    fn overloaded_overrun_misses_without_speedup_but_not_with() {
        // C(HI)=5 due within D(HI)=4 of release: after the switch at t=1
        // the remaining 4 units cannot finish by the deadline at unit
        // speed, but can at s=2 (s_min = 2 for this task).
        let set = TaskSet::new(vec![Task::builder("t", Criticality::Hi)
            .period(int(5))
            .deadline_lo(int(2))
            .deadline_hi(int(4))
            .wcet_lo(int(1))
            .wcet_hi(int(5))
            .build()
            .expect("valid")]);
        let slow = Simulation::new(set.clone())
            .speedup(int(1))
            .horizon(int(50))
            .execution(ExecutionScenario::HiWcet)
            .run()
            .expect("runs");
        assert!(!slow.misses().is_empty(), "unit speed must miss");
        let fast = Simulation::new(set)
            .speedup(int(2))
            .horizon(int(50))
            .execution(ExecutionScenario::HiWcet)
            .run()
            .expect("runs");
        assert!(fast.misses().is_empty(), "misses: {:?}", fast.misses());
    }

    #[test]
    fn single_overrun_recovers_and_resets() {
        let report = Simulation::new(table1())
            .speedup(int(2))
            .horizon(int(100))
            .execution(ExecutionScenario::scripted([(0, 0)]))
            .run()
            .expect("runs");
        assert!(report.misses().is_empty());
        assert_eq!(report.hi_episodes().len(), 1);
        let episode = report.hi_episodes()[0];
        assert!(episode.exited.is_some(), "system should reset");
        // Corollary 5 for this set at s=2 gives Δ_R = 5; the measured
        // recovery must not exceed the analytical bound.
        let recovery = episode.recovery().expect("completed episode");
        assert!(recovery <= int(5), "recovery {recovery} > 5");
        assert!(!episode.curtailed);
    }

    #[test]
    fn termination_drops_pending_lo_jobs() {
        let set = table1().with_lo_terminated().expect("valid");
        let report = Simulation::new(set)
            .speedup(int(2))
            .horizon(int(60))
            .execution(ExecutionScenario::HiWcet)
            .run()
            .expect("runs");
        assert!(report.misses().is_empty());
        assert!(report.dropped() > 0, "termination should drop jobs");
        assert!(report
            .trace()
            .iter()
            .any(|e| matches!(e, TraceEvent::Dropped { .. })));
    }

    #[test]
    fn overclock_budget_curtails_long_episodes() {
        // Episodes at s=2 under sustained overrun last about 2 time
        // units; a budget of 1 must trigger curtailment (LO terminated,
        // speed restored) before the idle reset.
        let report = Simulation::new(table1())
            .speedup(int(2))
            .horizon(int(100))
            .execution(ExecutionScenario::HiWcet)
            .overclock_budget(int(1))
            .run()
            .expect("runs");
        assert!(report
            .trace()
            .iter()
            .any(|e| matches!(e, TraceEvent::OverclockCurtailed { .. })));
        assert!(report.hi_episodes().iter().any(|e| e.curtailed));
    }

    #[test]
    fn edf_preempts_longer_jobs() {
        // A long LO job is preempted by a short-deadline HI job arriving
        // mid-execution.
        let set = TaskSet::new(vec![
            Task::builder("long", Criticality::Lo)
                .period(int(100))
                .deadline(int(50))
                .wcet(int(10))
                .build()
                .expect("valid"),
            Task::builder("short", Criticality::Hi)
                .period(int(20))
                .deadline_lo(int(3))
                .deadline_hi(int(20))
                .wcet(int(1))
                .build()
                .expect("valid"),
        ]);
        let arrivals = ArrivalScenario::SaturatedWithOffsets(vec![int(0), int(2)]);
        let report = Simulation::new(set)
            .horizon(int(60))
            .arrivals(arrivals)
            .run()
            .expect("runs");
        assert!(report.preemptions() >= 1);
        assert!(report.misses().is_empty());
    }

    #[test]
    fn scripted_arrivals_are_respected() {
        let set = table1();
        let arrivals = ArrivalScenario::Scripted(vec![vec![int(0), int(7)], vec![int(1)]]);
        let report = Simulation::new(set)
            .horizon(int(40))
            .arrivals(arrivals)
            .run()
            .expect("runs");
        assert_eq!(report.released(), 3);
        assert_eq!(report.completed(), 3);
        let releases: Vec<Rational> = report
            .trace()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Release { at, .. } => Some(*at),
                _ => None,
            })
            .collect();
        assert_eq!(releases, vec![int(0), int(1), int(7)]);
    }

    #[test]
    fn degraded_lo_service_slows_arrivals_in_hi_mode() {
        let set = TaskSet::new(vec![
            Task::builder("tau1", Criticality::Hi)
                .period(int(5))
                .deadline_lo(int(2))
                .deadline_hi(int(5))
                .wcet_lo(int(1))
                .wcet_hi(int(2))
                .build()
                .expect("valid"),
            Task::builder("tau2", Criticality::Lo)
                .period(int(10))
                .deadline(int(10))
                .period_hi(int(20))
                .deadline_hi(int(15))
                .wcet(int(3))
                .build()
                .expect("valid"),
        ]);
        // Sustained overrun at the degraded set's (sub-1) requirement:
        // even slowing down to s_min keeps deadlines.
        let report = Simulation::new(set)
            .speedup(int(1))
            .horizon(int(300))
            .execution(ExecutionScenario::HiWcet)
            .run()
            .expect("runs");
        assert!(report.misses().is_empty(), "misses: {:?}", report.misses());
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert_eq!(
            Simulation::new(table1()).run().expect_err("no horizon"),
            SimError::NonPositiveHorizon
        );
        assert_eq!(
            Simulation::new(table1())
                .horizon(int(0))
                .run()
                .expect_err("zero horizon"),
            SimError::NonPositiveHorizon
        );
        assert_eq!(
            Simulation::new(table1())
                .horizon(int(10))
                .speedup(int(0))
                .run()
                .expect_err("zero speedup"),
            SimError::NonPositiveSpeedup
        );
        assert!(matches!(
            Simulation::new(table1())
                .horizon(int(10))
                .arrivals(ArrivalScenario::Scripted(vec![vec![]]))
                .run(),
            Err(SimError::ArrivalScriptMismatch { .. })
        ));
    }

    #[test]
    fn event_budget_is_enforced() {
        let result = Simulation::new(table1())
            .horizon(int(1_000))
            .max_events(10)
            .run();
        assert!(matches!(result, Err(SimError::EventBudgetExhausted { .. })));
    }

    #[test]
    fn energy_equals_busy_time_without_overclocking() {
        let report = Simulation::new(table1())
            .horizon(int(100))
            .run()
            .expect("runs");
        assert_eq!(report.energy(), report.busy_time());
        assert_eq!(report.energy_overhead(), Some(Rational::ONE));
    }

    #[test]
    fn overclocking_costs_quadratically_per_work_unit() {
        // Single overrun handled at s = 2: HI-mode work W costs 4W
        // energy but only W/2 time, so energy = busy_lo + 8·busy_hi.
        let report = Simulation::new(table1())
            .speedup(int(2))
            .horizon(int(40))
            .execution(ExecutionScenario::scripted([(0, 0)]))
            .run()
            .expect("runs");
        assert!(report.energy() > report.busy_time());
        let overhead = report.energy_overhead().expect("ran");
        assert!(overhead > Rational::ONE);
        assert!(
            overhead < int(8),
            "overhead {overhead} exceeds the HI-mode power"
        );
        // Exact accounting: recompute from the trace-facing quantities.
        // Episode [1, 3): 2 time units at power 8; the rest at power 1.
        let hi_time = report
            .hi_episodes()
            .iter()
            .filter_map(HiEpisode::recovery)
            .sum::<Rational>();
        let lo_busy = report.busy_time() - hi_time;
        assert_eq!(report.energy(), lo_busy + int(8) * hi_time);
    }

    #[test]
    fn slowdown_saves_energy() {
        // The degraded set runs HI mode at s = 7/9 < 1: energy overhead
        // below 1 during episodes.
        let set = TaskSet::new(vec![
            table1()[0].clone(),
            Task::builder("tau2", Criticality::Lo)
                .period(int(10))
                .deadline(int(10))
                .period_hi(int(20))
                .deadline_hi(int(15))
                .wcet(int(3))
                .build()
                .expect("valid"),
        ]);
        let report = Simulation::new(set)
            .speedup(rat(7, 9))
            .horizon(int(200))
            .execution(ExecutionScenario::HiWcet)
            .run()
            .expect("runs");
        assert!(report.misses().is_empty());
        let overhead = report.energy_overhead().expect("ran");
        assert!(overhead < Rational::ONE, "overhead {overhead}");
    }

    #[test]
    fn response_times_are_tracked_and_bounded_by_deadlines() {
        let report = Simulation::new(table1())
            .speedup(int(2))
            .horizon(int(200))
            .execution(ExecutionScenario::scripted([(0, 2), (0, 7)]))
            .run()
            .expect("runs");
        assert!(report.misses().is_empty());
        let responses = report.max_response_times();
        assert_eq!(responses.len(), 2);
        // τ1's worst response stays within its HI deadline (5), τ2's
        // within its deadline (10); both tasks completed jobs.
        let r1 = responses[0].expect("tau1 completed jobs");
        let r2 = responses[1].expect("tau2 completed jobs");
        assert!(r1 <= int(5), "tau1 response {r1}");
        assert!(r2 <= int(10), "tau2 response {r2}");
        // τ1 actually overran twice, so its worst response exceeds C(LO).
        assert!(r1 > int(1));
    }

    #[test]
    fn idle_tasks_report_no_response_time() {
        // A script that never releases τ2.
        let report = Simulation::new(table1())
            .horizon(int(30))
            .arrivals(ArrivalScenario::Scripted(vec![vec![int(0)], vec![]]))
            .run()
            .expect("runs");
        let responses = report.max_response_times();
        assert!(responses[0].is_some());
        assert_eq!(responses[1], None);
    }

    #[test]
    fn trace_is_chronological() {
        let report = Simulation::new(table1())
            .speedup(int(2))
            .horizon(int(120))
            .execution(ExecutionScenario::scripted([(0, 3), (0, 9)]))
            .run()
            .expect("runs");
        let times: Vec<Rational> = report.trace().iter().map(TraceEvent::at).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        // Two separate overruns → two episodes.
        assert_eq!(report.hi_episodes().len(), 2);
        assert!(report.hi_episodes().iter().all(|e| e.exited.is_some()));
    }
}
