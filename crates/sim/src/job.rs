//! Jobs — task instances tracked by the simulator.

use std::fmt;

use rbs_timebase::Rational;

/// A unique job identifier (global release order).
///
/// # Examples
///
/// ```
/// use rbs_sim::JobId;
///
/// let id = JobId::new(3);
/// assert_eq!(id.index(), 3);
/// assert_eq!(id.to_string(), "J3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(u64);

impl JobId {
    /// Creates an id from a global release index.
    #[must_use]
    pub const fn new(index: u64) -> JobId {
        JobId(index)
    }

    /// The global release index.
    #[must_use]
    pub const fn index(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "J{}", self.0)
    }
}

/// One released job instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Job {
    id: JobId,
    task_index: usize,
    /// Per-task job sequence number (0-based).
    sequence: u64,
    release: Rational,
    /// Absolute deadline under the *current* mode (updated at mode
    /// switches).
    deadline: Rational,
    /// The actual execution demand of this instance.
    demand: Rational,
    /// Work executed so far.
    executed: Rational,
    /// Whether a deadline miss has already been recorded for this job.
    pub(crate) miss_recorded: bool,
}

impl Job {
    pub(crate) fn new(
        id: JobId,
        task_index: usize,
        sequence: u64,
        release: Rational,
        deadline: Rational,
        demand: Rational,
    ) -> Job {
        Job {
            id,
            task_index,
            sequence,
            release,
            deadline,
            demand,
            executed: Rational::ZERO,
            miss_recorded: false,
        }
    }

    /// The job's id.
    #[must_use]
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Index of the owning task in the task set.
    #[must_use]
    pub fn task_index(&self) -> usize {
        self.task_index
    }

    /// Per-task 0-based job sequence number.
    #[must_use]
    pub fn sequence(&self) -> u64 {
        self.sequence
    }

    /// Absolute release time.
    #[must_use]
    pub fn release(&self) -> Rational {
        self.release
    }

    /// Absolute deadline under the current mode.
    #[must_use]
    pub fn deadline(&self) -> Rational {
        self.deadline
    }

    pub(crate) fn set_deadline(&mut self, deadline: Rational) {
        self.deadline = deadline;
    }

    /// The actual execution demand of this instance.
    #[must_use]
    pub fn demand(&self) -> Rational {
        self.demand
    }

    /// Work executed so far.
    #[must_use]
    pub fn executed(&self) -> Rational {
        self.executed
    }

    pub(crate) fn add_executed(&mut self, amount: Rational) {
        self.executed += amount;
    }

    /// Remaining execution demand.
    #[must_use]
    pub fn remaining(&self) -> Rational {
        self.demand - self.executed
    }

    /// Whether the job has finished.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.executed >= self.demand
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i128) -> Rational {
        Rational::integer(v)
    }

    #[test]
    fn job_accounting() {
        let mut job = Job::new(JobId::new(0), 2, 5, int(10), int(14), int(3));
        assert_eq!(job.task_index(), 2);
        assert_eq!(job.sequence(), 5);
        assert_eq!(job.release(), int(10));
        assert_eq!(job.deadline(), int(14));
        assert_eq!(job.remaining(), int(3));
        assert!(!job.is_complete());
        job.add_executed(Rational::new(3, 2));
        assert_eq!(job.executed(), Rational::new(3, 2));
        assert_eq!(job.remaining(), Rational::new(3, 2));
        job.add_executed(Rational::new(3, 2));
        assert!(job.is_complete());
        assert_eq!(job.remaining(), Rational::ZERO);
    }

    #[test]
    fn deadline_can_be_extended_at_mode_switch() {
        let mut job = Job::new(JobId::new(1), 0, 0, int(0), int(2), int(1));
        job.set_deadline(int(5));
        assert_eq!(job.deadline(), int(5));
    }

    #[test]
    fn zero_demand_job_is_immediately_complete() {
        let job = Job::new(JobId::new(2), 0, 0, int(0), int(2), Rational::ZERO);
        assert!(job.is_complete());
    }

    #[test]
    fn job_id_display_and_order() {
        assert!(JobId::new(1) < JobId::new(2));
        assert_eq!(JobId::new(7).to_string(), "J7");
    }
}
