//! Simulation outputs: trace, misses, episodes, statistics.

use rbs_model::Mode;
use rbs_timebase::Rational;

use crate::JobId;

/// One entry of the simulation event trace.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceEvent {
    /// A job was released.
    Release {
        /// Time of the event.
        at: Rational,
        /// The released job.
        job: JobId,
        /// Owning task index.
        task: usize,
        /// Absolute deadline assigned at release.
        deadline: Rational,
    },
    /// A job finished all its execution demand.
    Completion {
        /// Time of the event.
        at: Rational,
        /// The finished job.
        job: JobId,
    },
    /// A HI job exceeded its LO-mode WCET: the system switched to HI
    /// mode.
    ModeSwitch {
        /// Time of the event.
        at: Rational,
        /// The new mode.
        to: Mode,
        /// Processor speed from this instant on.
        speed: Rational,
    },
    /// A pending job was discarded (its task is terminated in HI mode).
    Dropped {
        /// Time of the event.
        at: Rational,
        /// The dropped job.
        job: JobId,
    },
    /// A job was still unfinished at its (current-mode) deadline.
    Miss {
        /// Time of the event (the deadline).
        at: Rational,
        /// The tardy job.
        job: JobId,
    },
    /// The overclocking budget expired: LO tasks were terminated and the
    /// speed restored to nominal while remaining in HI mode.
    OverclockCurtailed {
        /// Time of the event.
        at: Rational,
    },
}

impl TraceEvent {
    /// The time at which the event occurred.
    #[must_use]
    pub fn at(&self) -> Rational {
        match self {
            TraceEvent::Release { at, .. }
            | TraceEvent::Completion { at, .. }
            | TraceEvent::ModeSwitch { at, .. }
            | TraceEvent::Dropped { at, .. }
            | TraceEvent::Miss { at, .. }
            | TraceEvent::OverclockCurtailed { at } => *at,
        }
    }
}

/// A maximal interval during which one job of one task executed
/// continuously (used by [`crate::timeline`] to render Gantt charts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecSegment {
    /// Owning task index.
    pub task: usize,
    /// Segment start.
    pub from: Rational,
    /// Segment end (exclusive).
    pub to: Rational,
}

/// A recorded deadline miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineMiss {
    /// The tardy job.
    pub job: JobId,
    /// Owning task index.
    pub task: usize,
    /// The absolute deadline that passed.
    pub deadline: Rational,
    /// The mode the system was in when the deadline passed.
    pub mode: Mode,
}

/// One HI-mode episode: from overrun-triggered switch to idle reset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HiEpisode {
    /// When the system entered HI mode.
    pub entered: Rational,
    /// When it reset to LO mode (`None` if still in HI mode at the
    /// horizon).
    pub exited: Option<Rational>,
    /// Whether the overclock-budget monitor curtailed the speedup during
    /// this episode.
    pub curtailed: bool,
}

impl HiEpisode {
    /// The measured recovery (service resetting) time, if the episode
    /// completed.
    #[must_use]
    pub fn recovery(&self) -> Option<Rational> {
        self.exited.map(|t| t - self.entered)
    }
}

/// The full outcome of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReport {
    pub(crate) horizon: Rational,
    pub(crate) trace: Vec<TraceEvent>,
    pub(crate) misses: Vec<DeadlineMiss>,
    pub(crate) episodes: Vec<HiEpisode>,
    pub(crate) released: u64,
    pub(crate) completed: u64,
    pub(crate) dropped: u64,
    pub(crate) preemptions: u64,
    pub(crate) busy_time: Rational,
    pub(crate) max_response: Vec<Option<Rational>>,
    pub(crate) energy: Rational,
    pub(crate) segments: Vec<ExecSegment>,
}

impl SimReport {
    /// The simulated horizon.
    #[must_use]
    pub fn horizon(&self) -> Rational {
        self.horizon
    }

    /// The chronological event trace.
    #[must_use]
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// All recorded deadline misses (empty means every job met its
    /// current-mode deadline).
    #[must_use]
    pub fn misses(&self) -> &[DeadlineMiss] {
        &self.misses
    }

    /// HI-mode episodes in chronological order.
    #[must_use]
    pub fn hi_episodes(&self) -> &[HiEpisode] {
        &self.episodes
    }

    /// The longest measured recovery among completed episodes.
    #[must_use]
    pub fn max_recovery(&self) -> Option<Rational> {
        self.episodes.iter().filter_map(HiEpisode::recovery).max()
    }

    /// Number of released jobs.
    #[must_use]
    pub fn released(&self) -> u64 {
        self.released
    }

    /// Number of completed jobs.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Number of jobs dropped by termination.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of preemptions (a running job displaced while unfinished).
    #[must_use]
    pub fn preemptions(&self) -> u64 {
        self.preemptions
    }

    /// Total processor busy time (in time units, not work units).
    #[must_use]
    pub fn busy_time(&self) -> Rational {
        self.busy_time
    }

    /// Fraction of the horizon the processor was busy.
    #[must_use]
    pub fn utilization(&self) -> Rational {
        self.busy_time / self.horizon
    }

    /// The worst observed response time (completion − release) of each
    /// task, indexed like the task set; `None` for tasks that completed
    /// no job within the horizon.
    #[must_use]
    pub fn max_response_times(&self) -> &[Option<Rational>] {
        &self.max_response
    }

    /// Dynamic energy dissipated, in the classic cubic DVFS model: a
    /// processor at speed `s` draws power `s³` (normalized so one unit
    /// of busy time at nominal speed costs one unit of energy). Executing
    /// the same work at speed `s` therefore costs `s²` per work unit —
    /// the cost side of the paper's speedup lever (cf. its reference
    /// \[11\], the authors' energy-focused companion paper).
    #[must_use]
    pub fn energy(&self) -> Rational {
        self.energy
    }

    /// The processor's execution segments in chronological order
    /// (contiguous same-task stretches are merged).
    #[must_use]
    pub fn execution_segments(&self) -> &[ExecSegment] {
        &self.segments
    }

    /// The energy overhead of speedup: dissipated energy relative to
    /// executing the same busy time at nominal speed. 1 means no
    /// overclocking happened (or only slowdowns that balanced out).
    ///
    /// Returns `None` when the processor never ran.
    #[must_use]
    pub fn energy_overhead(&self) -> Option<Rational> {
        if self.busy_time.is_zero() {
            return None;
        }
        Some(self.energy / self.busy_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i128) -> Rational {
        Rational::integer(v)
    }

    #[test]
    fn episode_recovery() {
        let done = HiEpisode {
            entered: int(10),
            exited: Some(int(16)),
            curtailed: false,
        };
        assert_eq!(done.recovery(), Some(int(6)));
        let open = HiEpisode {
            entered: int(50),
            exited: None,
            curtailed: true,
        };
        assert_eq!(open.recovery(), None);
    }

    #[test]
    fn report_aggregates() {
        let report = SimReport {
            horizon: int(100),
            trace: vec![TraceEvent::OverclockCurtailed { at: int(4) }],
            misses: vec![],
            episodes: vec![
                HiEpisode {
                    entered: int(0),
                    exited: Some(int(5)),
                    curtailed: false,
                },
                HiEpisode {
                    entered: int(20),
                    exited: Some(int(28)),
                    curtailed: false,
                },
            ],
            released: 10,
            completed: 9,
            dropped: 1,
            preemptions: 3,
            busy_time: int(60),
            max_response: vec![Some(int(4)), None],
            energy: int(90),
            segments: vec![ExecSegment {
                task: 0,
                from: int(0),
                to: int(4),
            }],
        };
        assert_eq!(report.max_recovery(), Some(int(8)));
        assert_eq!(report.utilization(), Rational::new(3, 5));
        assert_eq!(report.trace()[0].at(), int(4));
        assert_eq!(report.released(), 10);
        assert_eq!(report.completed(), 9);
        assert_eq!(report.dropped(), 1);
        assert_eq!(report.preemptions(), 3);
        assert_eq!(report.horizon(), int(100));
        assert!(report.misses().is_empty());
        assert_eq!(report.max_response_times(), &[Some(int(4)), None]);
        assert_eq!(report.energy(), int(90));
        assert_eq!(report.energy_overhead(), Some(Rational::new(3, 2)));
        assert_eq!(report.execution_segments().len(), 1);
    }
}
