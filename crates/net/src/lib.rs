//! `rbs-net`: a dependency-free TCP admission front-end for the
//! `rbs-svc` service.
//!
//! The crate puts the existing [`rbs_svc::Service`] — canonical-form
//! caching, deterministic worker pool, panic containment, deadlines,
//! negative caching — behind a TCP listener without adding a single
//! external dependency:
//!
//! * [`poller`] is a hand-rolled readiness layer: nonblocking
//!   `std::net` sockets plus a thin `poll(2)` shim (the one audited
//!   `unsafe` block in the workspace), with a portable timed-tick
//!   fallback off unix.
//! * [`server`] is the event loop and dispatcher: one thread owns every
//!   socket and frames lines through the same
//!   [`rbs_svc::LineFramer`] as the stdin paths; a second thread
//!   micro-batches requests into [`rbs_svc::Service::process_batch`],
//!   so N concurrent clients saturate the whole pool and responses stay
//!   bit-identical to the batch and `--follow` paths.
//! * Load is shed, never queued unboundedly: per-connection in-flight
//!   requests beyond [`NetConfig::queue_depth`] are answered in-band
//!   with an `overload` error, response bytes beyond
//!   [`NetConfig::max_output_bytes`] pause that connection's reads
//!   (letting TCP push back), and connections beyond
//!   [`NetConfig::max_connections`] get one `overload` line and a
//!   close.
//!
//! The `rbs-netd` binary wraps [`Server`] with the same flag set as
//! `rbs-svc` plus the network tunables, drains gracefully when its
//! stdin closes, and doubles as a line-oriented test client
//! (`--connect`).

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod conn;
pub mod poller;
pub mod server;

pub use server::{NetConfig, NetStats, Server};
