//! Per-connection state: nonblocking reads through the shared
//! [`LineFramer`], a bounded output queue, and the counters the event
//! loop uses for backpressure decisions.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;

use rbs_svc::LineFramer;

/// One accepted client connection.
#[derive(Debug)]
pub(crate) struct Conn {
    pub(crate) stream: TcpStream,
    /// Shared byte-capped newline framing — identical to the stdin
    /// paths, which is what makes socket responses diffable against
    /// them.
    pub(crate) framer: LineFramer,
    /// Physical wire lines seen (blank lines included) — the response
    /// label counter, mirroring `stdin:N`.
    pub(crate) line_no: u64,
    /// Next per-connection sequence number (blank lines don't consume
    /// one, mirroring the stream path).
    pub(crate) next_seq: u64,
    /// Requests submitted to the dispatcher and not yet answered.
    pub(crate) in_flight: usize,
    /// Whether the peer half-closed its sending side.
    pub(crate) read_closed: bool,
    /// Whether the framer's final unterminated line (if any) has been
    /// flushed after end-of-stream — a partial last line still counts as
    /// a request, mirroring the stream path.
    pub(crate) eof_flushed: bool,
    out: VecDeque<Vec<u8>>,
    out_bytes: usize,
    front_written: usize,
}

impl Conn {
    /// Wraps an accepted stream: nonblocking, Nagle off (responses are
    /// latency-sensitive single lines), fresh framer at `cap`.
    pub(crate) fn new(stream: TcpStream, cap: Option<usize>) -> io::Result<Conn> {
        stream.set_nonblocking(true)?;
        // Best-effort: some platforms refuse NODELAY on edge states.
        let _ = stream.set_nodelay(true);
        Ok(Conn {
            stream,
            framer: LineFramer::new(cap),
            line_no: 0,
            next_seq: 0,
            in_flight: 0,
            read_closed: false,
            eof_flushed: false,
            out: VecDeque::new(),
            out_bytes: 0,
            front_written: 0,
        })
    }

    /// Reads until `WouldBlock` or end-of-stream, feeding the framer.
    /// Returns whether the peer closed its sending side.
    pub(crate) fn pump_read(&mut self, scratch: &mut [u8]) -> io::Result<bool> {
        loop {
            match self.stream.read(scratch) {
                Ok(0) => {
                    self.read_closed = true;
                    return Ok(true);
                }
                Ok(n) => self.framer.push(&scratch[..n]),
                Err(error) if error.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(error) if error.kind() == io::ErrorKind::Interrupted => {}
                Err(error) => return Err(error),
            }
        }
    }

    /// Queues one response line (newline appended) for writing.
    pub(crate) fn enqueue(&mut self, mut line: String) {
        line.push('\n');
        let bytes = line.into_bytes();
        self.out_bytes += bytes.len();
        self.out.push_back(bytes);
    }

    /// Writes queued bytes until `WouldBlock` or the queue empties.
    pub(crate) fn pump_write(&mut self) -> io::Result<()> {
        while let Some(front) = self.out.front() {
            match self.stream.write(&front[self.front_written..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.front_written += n;
                    self.out_bytes -= n;
                    if self.front_written == front.len() {
                        self.front_written = 0;
                        self.out.pop_front();
                    }
                }
                Err(error) if error.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(error) if error.kind() == io::ErrorKind::Interrupted => {}
                Err(error) => return Err(error),
            }
        }
        Ok(())
    }

    /// Whether queued output remains to flush.
    pub(crate) fn wants_write(&self) -> bool {
        !self.out.is_empty()
    }

    /// Unflushed response bytes — the output-pressure gauge.
    pub(crate) fn queued_bytes(&self) -> usize {
        self.out_bytes
    }

    /// Whether nothing remains for this connection: peer done sending
    /// (final partial line flushed), no analysis in flight, all framed
    /// lines consumed, all responses flushed.
    pub(crate) fn finished(&self) -> bool {
        self.read_closed
            && self.eof_flushed
            && self.in_flight == 0
            && self.out.is_empty()
            && !self.framer.has_line()
    }
}
