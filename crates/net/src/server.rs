//! The TCP admission front-end: one event-loop thread owning all
//! sockets, one dispatcher thread fanning micro-batches into the
//! existing [`Service`] worker pool.
//!
//! Division of labor:
//!
//! * The **event loop** accepts connections, pumps nonblocking reads
//!   through the shared [`rbs_svc::LineFramer`], assigns monotonic
//!   per-connection sequence numbers, enforces both per-connection
//!   bounds (in-flight requests shed in-band as `overload`; queued
//!   output bytes pause further reads — TCP backpressure), flushes
//!   responses, and reaps finished connections. It never parses or
//!   analyzes anything, so no request — however poisonous — can stall
//!   I/O for the other clients.
//! * The **dispatcher** drains the job channel into micro-batches and
//!   runs them through [`Service::process_batch`] — the same triage /
//!   pooled-analysis / cache-fill pipeline as the batch and stream
//!   paths, with the same shared positive and negative caches, panic
//!   containment, deadlines, and duplicate coalescing. One batch
//!   saturates every worker core regardless of how many sockets the
//!   requests arrived on, and because the service leases its
//!   [`rbs_svc` analysis scratches](Service) from a pool shared across
//!   batches, the walk-kernel arenas stay warm from one micro-batch to
//!   the next: a long-lived daemon analyzes in zero-allocation steady
//!   state even though each batch spawns fresh scoped workers.
//!
//! Responses are rendered [`rbs_svc::Response`] lines with `seq`
//! rewritten to the connection's own counter; within a connection they
//! are generated in submission order (single FIFO dispatcher), while
//! shed `overload` verdicts may overtake them — clients sort by `seq`.
//! Shutdown is a graceful drain: stop accepting and reading, finish
//! every in-flight analysis, flush every queued response, then report
//! the cumulative [`BatchStats`] footer.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use rbs_svc::{BatchStats, Request, Response, Service, SvcError, SvcErrorKind};

use crate::conn::Conn;
use crate::poller::{Event, Interest, Poller, WakeHandle, WakeSource, Watch};

/// Tunables of the network front-end beyond the wrapped service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Maximum in-flight analyses per connection; further complete lines
    /// are shed in-band as `overload` errors instead of queueing.
    pub queue_depth: usize,
    /// Maximum unflushed response bytes per connection; beyond it the
    /// connection's reads pause until the client drains its socket.
    pub max_output_bytes: usize,
    /// Maximum simultaneous connections; excess accepts are answered
    /// with a single `overload` line and closed.
    pub max_connections: usize,
    /// Maximum requests per dispatcher micro-batch.
    pub batch_max: usize,
    /// Emit the cumulative footer every N served requests (0 = only at
    /// drain).
    pub stats_every: usize,
    /// Hard cap on the graceful drain: connections whose clients stop
    /// reading are dropped once it elapses.
    pub drain_timeout: Duration,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            queue_depth: 64,
            max_output_bytes: 1 << 20,
            max_connections: 1024,
            batch_max: 256,
            stats_every: 0,
            drain_timeout: Duration::from_secs(10),
        }
    }
}

/// Cumulative front-end statistics: the wrapped service's batch
/// counters plus net-layer-only bookkeeping that has no [`BatchStats`]
/// slot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// The service pipeline's counters (same taxonomy as `rbs-svc`).
    pub batch: BatchStats,
    /// Dispatcher completions that arrived for a connection with no
    /// in-flight request. Exactly one completion must come back per
    /// dispatched job, so this is always `0` unless the accounting is
    /// broken; a saturating decrement used to swallow such a bug
    /// silently, which is precisely why it gets a footer counter (and a
    /// `debug_assert` under test builds) instead.
    pub double_done: u64,
}

impl NetStats {
    /// The cumulative footer line: [`BatchStats::footer`] plus the
    /// net-layer block.
    #[must_use]
    pub fn footer(&self, jobs: usize) -> String {
        format!(
            "{} net{{double_done={}}}",
            self.batch.footer(jobs),
            self.double_done
        )
    }
}

/// One framed request travelling to the dispatcher.
struct Job {
    conn: u64,
    seq: u64,
    request: Request,
}

/// What the dispatcher sends back.
enum Done {
    Response { conn: u64, line: String },
    Stats(BatchStats),
}

/// A running network front-end; dropping it without calling
/// [`Server::shutdown`] detaches the threads.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    wake: WakeHandle,
    thread: JoinHandle<io::Result<NetStats>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts the event loop and dispatcher. `footer` observes the
    /// cumulative stats every [`NetConfig::stats_every`] requests.
    ///
    /// # Errors
    ///
    /// Propagates bind/socketpair failures.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Service,
        config: NetConfig,
        footer: impl FnMut(&NetStats) + Send + 'static,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (wake, wake_source) = WakeSource::pair()?;
        let loop_shutdown = Arc::clone(&shutdown);
        let loop_wake = wake.clone();
        let thread = thread::Builder::new()
            .name("rbs-net-loop".to_owned())
            .spawn(move || {
                event_loop(
                    &listener,
                    &service,
                    config,
                    &loop_shutdown,
                    loop_wake,
                    wake_source,
                    footer,
                )
            })?;
        Ok(Server {
            addr,
            shutdown,
            wake,
            thread,
        })
    }

    /// The bound address (with the ephemeral port resolved).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates the graceful drain and waits for it: stop accepting
    /// and reading, finish in-flight analyses, flush queued responses,
    /// return the cumulative stats.
    ///
    /// # Errors
    ///
    /// Propagates event-loop I/O failures (a poll or accept error that
    /// ended the loop early).
    pub fn shutdown(self) -> io::Result<NetStats> {
        self.shutdown.store(true, Ordering::SeqCst);
        self.wake.wake();
        match self.thread.join() {
            Ok(result) => result,
            Err(_) => Err(io::Error::other("event loop panicked")),
        }
    }
}

const TOKEN_LISTENER: usize = 0;
const TOKEN_WAKER: usize = 1;
const TOKEN_BASE: usize = 2;

/// The poll tick: wakeups make completions event-driven, the tick is
/// only a safety net (and the fallback backend's clock).
const POLL_TICK: Duration = Duration::from_millis(25);

fn overload_response(seq: u64, label: String, detail: String) -> String {
    Response {
        seq: usize::try_from(seq).unwrap_or(usize::MAX),
        label,
        micros: 0,
        outcome: rbs_svc::Outcome::Error {
            error: SvcError::new(SvcErrorKind::Overload, detail),
            cached: false,
        },
    }
    .render()
}

/// The dispatcher: drain the job channel into micro-batches, run them
/// through the shared service, send rendered responses (with the
/// connection's own `seq`) and the batch counters back, wake the loop.
fn dispatcher(
    service: &Service,
    jobs: &mpsc::Receiver<Job>,
    done: &mpsc::Sender<Done>,
    wake: &WakeHandle,
    batch_max: usize,
) {
    while let Ok(first) = jobs.recv() {
        let mut batch = vec![first];
        while batch.len() < batch_max.max(1) {
            match jobs.try_recv() {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
        }
        let requests: Vec<Request> = batch.iter().map(|job| job.request.clone()).collect();
        let (responses, stats) = service.process_batch(&requests);
        for (job, mut response) in batch.into_iter().zip(responses) {
            response.seq = usize::try_from(job.seq).unwrap_or(usize::MAX);
            if done
                .send(Done::Response {
                    conn: job.conn,
                    line: response.render(),
                })
                .is_err()
            {
                return;
            }
        }
        if done.send(Done::Stats(stats)).is_err() {
            return;
        }
        wake.wake();
    }
}

/// Everything the event loop threads through its helpers.
struct Loop {
    config: NetConfig,
    conns: HashMap<u64, Conn>,
    cumulative: NetStats,
    job_tx: Option<mpsc::Sender<Job>>,
    draining: bool,
}

impl Loop {
    /// Consumes framed lines from `conn`: blank lines are skipped,
    /// excess lines beyond the in-flight bound are shed in-band as
    /// `overload`, the rest go to the dispatcher. Stops while the
    /// connection's output queue is over its byte bound (backpressure)
    /// and flushes the final partial line once the peer half-closes.
    fn process_lines(&mut self, id: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            if conn.queued_bytes() >= self.config.max_output_bytes {
                return; // paused: resume when the client drains output
            }
            let line = match conn.framer.pop() {
                Some(line) => line,
                None if conn.read_closed && !conn.eof_flushed => {
                    conn.eof_flushed = true;
                    match conn.framer.finish() {
                        Some(line) => line,
                        None => return,
                    }
                }
                None => return,
            };
            conn.line_no += 1;
            if line.trim().is_empty() {
                continue;
            }
            let seq = conn.next_seq;
            conn.next_seq += 1;
            let label = format!("net:{}", conn.line_no);
            if conn.in_flight >= self.config.queue_depth {
                let detail = format!(
                    "connection queue full ({} in flight, depth {})",
                    conn.in_flight, self.config.queue_depth
                );
                conn.enqueue(overload_response(seq, label, detail));
                self.shed();
                continue;
            }
            conn.in_flight += 1;
            let job = Job {
                conn: id,
                seq,
                request: Request { label, body: line },
            };
            if let Some(tx) = &self.job_tx {
                // The dispatcher outlives the loop body; a send failure
                // means it died, which surfaces as a stalled drain.
                let _ = tx.send(job);
            }
        }
    }

    /// Counts one shed request in the cumulative footer stats.
    fn shed(&mut self) {
        self.cumulative.batch.served += 1;
        self.cumulative.batch.errors.bump(SvcErrorKind::Overload);
        self.cumulative.batch.latencies_micros.push(0);
    }

    /// Routes one dispatcher completion to its connection (dropped if
    /// the connection died in the meantime). Exactly one completion
    /// comes back per dispatched job; one arriving with nothing in
    /// flight is a double completion, counted (never decremented
    /// through zero, which would let a later legitimate completion
    /// shed a live request) and asserted on under test builds.
    fn route(&mut self, conn: u64, line: String) {
        if let Some(c) = self.conns.get_mut(&conn) {
            if c.in_flight == 0 {
                debug_assert!(false, "double completion for connection {conn}");
                self.cumulative.double_done += 1;
            } else {
                c.in_flight -= 1;
            }
            c.enqueue(line);
        }
    }
}

#[allow(clippy::too_many_lines)]
fn event_loop(
    listener: &TcpListener,
    service: &Service,
    config: NetConfig,
    shutdown: &AtomicBool,
    wake: WakeHandle,
    mut wake_source: WakeSource,
    mut footer: impl FnMut(&NetStats),
) -> io::Result<NetStats> {
    listener.set_nonblocking(true)?;
    let cap = service.config().max_request_bytes;
    let (job_tx, job_rx) = mpsc::channel::<Job>();
    let (done_tx, done_rx) = mpsc::channel::<Done>();
    let dispatcher_service = service.clone();
    let dispatcher_wake = wake.clone();
    let batch_max = config.batch_max;
    let dispatcher = thread::Builder::new()
        .name("rbs-net-dispatch".to_owned())
        .spawn(move || {
            dispatcher(
                &dispatcher_service,
                &job_rx,
                &done_tx,
                &dispatcher_wake,
                batch_max,
            );
        })?;

    let mut state = Loop {
        config,
        conns: HashMap::new(),
        cumulative: NetStats::default(),
        job_tx: Some(job_tx),
        draining: false,
    };
    let mut next_id: u64 = 0;
    let mut poller = Poller::new();
    let mut watches: Vec<Watch> = Vec::new();
    let mut events: Vec<Event> = Vec::new();
    let mut scratch = vec![0u8; 64 * 1024];
    let mut last_footer = 0usize;
    let mut drain_started: Option<Instant> = None;

    let stats = loop {
        // 1. Absorb dispatcher completions.
        for done in done_rx.try_iter() {
            match done {
                Done::Response { conn, line } => state.route(conn, line),
                Done::Stats(stats) => state.cumulative.batch.absorb(&stats),
            }
        }
        if config.stats_every > 0
            && state.cumulative.batch.served >= last_footer + config.stats_every
        {
            footer(&state.cumulative);
            last_footer = state.cumulative.batch.served;
        }

        // 2. Enter drain mode on the shutdown flag.
        if shutdown.load(Ordering::SeqCst) && !state.draining {
            state.draining = true;
            drain_started = Some(Instant::now());
        }

        // 3. Resume paused connections: queued framer lines whose output
        //    budget freed up, and the final partial line after EOF.
        let ids: Vec<u64> = state.conns.keys().copied().collect();
        for id in &ids {
            state.process_lines(*id);
        }

        // 4. Flush output opportunistically and reap finished or broken
        //    connections.
        state.conns.retain(|_, conn| {
            if conn.wants_write() && conn.pump_write().is_err() {
                return false; // peer gone; in-flight results are dropped on arrival
            }
            !conn.finished()
        });
        if state.draining {
            // Stop reading: every connection drains once its in-flight
            // analyses come back and its output flushes.
            state.conns.retain(|_, conn| {
                conn.read_closed = true;
                let expired =
                    drain_started.is_some_and(|start| start.elapsed() >= config.drain_timeout);
                !(conn.finished() || (expired && conn.in_flight == 0))
            });
            if state.conns.is_empty() {
                // 5. All sockets done: retire the dispatcher and absorb
                //    its remaining counters.
                state.job_tx = None;
                for done in done_rx.iter() {
                    if let Done::Stats(stats) = done {
                        state.cumulative.batch.absorb(&stats);
                    }
                }
                let _ = dispatcher.join();
                break state.cumulative;
            }
        }

        // 6. Build this iteration's watch list. The listener stays
        //    watched even at the connection cap: excess connections must
        //    be accepted to be shed in-band (one overload line + close)
        //    rather than languishing unanswered in the backlog.
        watches.clear();
        if !state.draining {
            watches.push(Watch::new(TOKEN_LISTENER, listener, Interest::READ));
        }
        watches.push(wake_source.watch(TOKEN_WAKER));
        for (id, conn) in &state.conns {
            let token = TOKEN_BASE + usize::try_from(*id).unwrap_or(0);
            let readable = !state.draining
                && !conn.read_closed
                && conn.queued_bytes() < config.max_output_bytes;
            let interest = match (readable, conn.wants_write()) {
                (true, true) => Interest::BOTH,
                (true, false) => Interest::READ,
                (false, true) => Interest::WRITE,
                (false, false) => continue, // waiting on the dispatcher
            };
            watches.push(Watch::new(token, &conn.stream, interest));
        }

        // 7. Wait for readiness (or a wakeup, or the tick).
        poller.poll(&watches, POLL_TICK, &mut events)?;

        // 8. Handle socket events.
        for event in &events {
            match event.token {
                TOKEN_WAKER => wake_source.drain(),
                TOKEN_LISTENER => loop {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            let Ok(mut conn) = Conn::new(stream, cap) else {
                                continue;
                            };
                            if state.conns.len() >= config.max_connections {
                                // Shed the whole connection in-band: one
                                // overload line, then close after flush.
                                conn.read_closed = true;
                                conn.eof_flushed = true;
                                conn.enqueue(overload_response(
                                    0,
                                    "net:0".to_owned(),
                                    format!(
                                        "connection limit reached ({})",
                                        config.max_connections
                                    ),
                                ));
                                state.shed();
                            }
                            state.conns.insert(next_id, conn);
                            next_id += 1;
                        }
                        Err(error) if error.kind() == io::ErrorKind::WouldBlock => break,
                        Err(error) if error.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => break, // transient accept failure; retry next tick
                    }
                },
                token => {
                    let id = u64::try_from(token - TOKEN_BASE).unwrap_or(u64::MAX);
                    let Some(conn) = state.conns.get_mut(&id) else {
                        continue;
                    };
                    if event.error {
                        state.conns.remove(&id);
                        continue;
                    }
                    if event.readable && !conn.read_closed {
                        match conn.pump_read(&mut scratch) {
                            Ok(_eof) => state.process_lines(id),
                            Err(_) => {
                                state.conns.remove(&id);
                                continue;
                            }
                        }
                    }
                    if let Some(conn) = state.conns.get_mut(&id) {
                        if event.writable && conn.wants_write() && conn.pump_write().is_err() {
                            state.conns.remove(&id);
                        }
                    }
                }
            }
        }
    };
    footer(&stats);
    Ok(stats)
}
