//! `rbs-netd` binary: the TCP admission front-end (`--listen`) and a
//! line-oriented test client (`--connect`) in one executable.

use std::fs;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::process::ExitCode;
use std::thread;
use std::time::Duration;

use rbs_net::{NetConfig, Server};
use rbs_svc::{Service, ServiceConfig, WorkerPool};

const USAGE: &str = "\
usage: rbs-netd --listen ADDR [options]
       rbs-netd --connect ADDR [INPUT]

server mode (--listen):
  Serve the rbs-svc admission-control protocol over TCP: every
  newline-delimited request on a connection is answered with one JSON
  response line carrying a per-connection monotonic \"seq\" (responses
  to concurrent requests may interleave; sort by seq). Requests from
  all connections share one worker pool and one result cache, so
  responses are bit-identical to `rbs-svc` batch/--follow output.
  Listens until stdin reaches end-of-file, then drains gracefully:
  stops accepting and reading, answers everything in flight, flushes,
  and prints the cumulative footer to stderr. Bind port 0 for an
  ephemeral port; the resolved address is printed to stderr and, with
  --port-file, written to a file for scripts to discover.

  Overload is shed in-band, never queued unboundedly: requests beyond
  --queue-depth per connection (and connections beyond --max-conns)
  are answered with {\"error\":{\"kind\":\"overload\",...}}.

client mode (--connect):
  Send INPUT ('-' = stdin, default, or a file) to a server, print
  response lines to stdout, half-close after the last line, and exit
  non-zero if any response is an error line — mirroring `rbs-svc`
  batch mode.

options (client mode):
  --pool N               keep N persistent connections open and spread
                         request lines across them round-robin, reusing
                         each connection for its whole share instead of
                         reconnecting per batch (default: 1). Response
                         payloads and the exit code are those of the
                         single-connection form; lines may interleave
                         across connections (each carries its own seq).

options (server mode):
  --port-file PATH       write the resolved listen address to PATH
  --queue-depth N        per-connection in-flight bound before shedding
                         (default: 64)
  --max-conns N          connection bound before shedding (default: 1024)
  --batch-max N          dispatcher micro-batch bound (default: 256)
  --jobs N               worker threads (default: available parallelism)
  --cache-size N         cached reports across shards (default: 1024; 0 disables)
  --neg-cache-size N     cached failed outcomes (default: 256; 0 disables)
  --timeout-ms N         per-request analysis deadline (default: 0 = none)
  --max-request-bytes N  truncate longer request lines on the wire and
                         reject them as oversized (default: 0 = unlimited)
  --stats-every N        print the cumulative footer to stderr every N
                         requests (default: 0 = only at drain)
  --fault-injection      honor chaos-testing task-name markers
                         (__rbs_fault_panic__, __rbs_fault_sleep_ms_N__)
";

enum Mode {
    Listen(String),
    Connect { addr: String, input: String },
}

struct Args {
    mode: Mode,
    pool: usize,
    jobs: Option<usize>,
    stats_every: usize,
    port_file: Option<String>,
    net: NetConfig,
    config: ServiceConfig,
}

fn parse_args(args: &[String]) -> Result<Option<Args>, String> {
    let mut mode = None;
    let mut input = None;
    let mut parsed = Args {
        mode: Mode::Listen(String::new()), // replaced below
        pool: 1,
        jobs: None,
        stats_every: 0,
        port_file: None,
        net: NetConfig::default(),
        config: ServiceConfig::default(),
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => return Ok(None),
            "--fault-injection" => {
                parsed.config.fault_injection = true;
                i += 1;
            }
            flag @ ("--listen" | "--connect" | "--port-file") => {
                let Some(value) = args.get(i + 1) else {
                    return Err(format!("{flag} requires a value"));
                };
                match flag {
                    "--listen" => mode = Some(Mode::Listen(value.clone())),
                    "--connect" => {
                        mode = Some(Mode::Connect {
                            addr: value.clone(),
                            input: String::new(), // patched below
                        });
                    }
                    _ => parsed.port_file = Some(value.clone()),
                }
                i += 2;
            }
            flag @ ("--jobs"
            | "--pool"
            | "--queue-depth"
            | "--max-conns"
            | "--batch-max"
            | "--cache-size"
            | "--neg-cache-size"
            | "--timeout-ms"
            | "--max-request-bytes"
            | "--stats-every") => {
                let Some(value) = args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) else {
                    return Err(format!("{flag} requires a non-negative integer"));
                };
                match flag {
                    "--jobs" => parsed.jobs = Some(value),
                    "--pool" => parsed.pool = value.max(1),
                    "--queue-depth" => parsed.net.queue_depth = value.max(1),
                    "--max-conns" => parsed.net.max_connections = value.max(1),
                    "--batch-max" => parsed.net.batch_max = value.max(1),
                    "--cache-size" => parsed.config.cache_capacity = value,
                    "--neg-cache-size" => parsed.config.negative_cache_capacity = value,
                    "--timeout-ms" => {
                        parsed.config.timeout =
                            (value > 0).then(|| Duration::from_millis(value as u64));
                    }
                    "--max-request-bytes" => {
                        parsed.config.max_request_bytes = (value > 0).then_some(value);
                    }
                    "--stats-every" => parsed.stats_every = value,
                    _ => unreachable!("covered by the outer match"),
                }
                i += 2;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag: {other}"));
            }
            other => {
                input = Some(other.to_owned());
                i += 1;
            }
        }
    }
    match mode {
        Some(Mode::Listen(addr)) => {
            if input.is_some() {
                return Err("INPUT is only meaningful with --connect".to_owned());
            }
            parsed.mode = Mode::Listen(addr);
            Ok(Some(parsed))
        }
        Some(Mode::Connect { addr, .. }) => {
            parsed.mode = Mode::Connect {
                addr,
                input: input.unwrap_or_else(|| "-".to_owned()),
            };
            Ok(Some(parsed))
        }
        None => Err("one of --listen or --connect is required".to_owned()),
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(Some(args)) => args,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("{message}");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match args.mode {
        Mode::Listen(ref addr) => run_listen(addr, &args),
        Mode::Connect {
            ref addr,
            ref input,
        } => run_connect(addr, input, args.pool),
    }
}

/// Server mode: bind, serve until stdin closes, drain, footer, exit
/// zero. Per-request failures are in-band (mirroring `--follow`); only
/// setup failures don't.
fn run_listen(addr: &str, args: &Args) -> ExitCode {
    let mut net = args.net;
    net.stats_every = args.stats_every;
    let pool = match args.jobs {
        Some(n) => WorkerPool::new(n),
        None => WorkerPool::with_available_parallelism(),
    };
    let service = Service::with_config(pool, args.config);
    let jobs = service.jobs();
    let server = match Server::bind(addr, service, net, move |stats| {
        eprintln!("{}", stats.footer(jobs));
    }) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("rbs-netd: cannot listen on {addr}: {error}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("rbs-netd: listening on {}", server.addr());
    if let Some(path) = &args.port_file {
        if let Err(error) = fs::write(path, format!("{}\n", server.addr())) {
            eprintln!("rbs-netd: cannot write {path}: {error}");
            return ExitCode::FAILURE;
        }
    }
    // The shutdown signal is stdin end-of-file — the same graceful-drain
    // contract as `rbs-svc --follow`, with no signal handling needed.
    let drained = io::copy(&mut io::stdin().lock(), &mut io::sink());
    if let Err(error) = drained {
        eprintln!("rbs-netd: stdin read error: {error}");
    }
    match server.shutdown() {
        Ok(_stats) => ExitCode::SUCCESS, // the footer came via the callback
        Err(error) => {
            eprintln!("rbs-netd: event loop failed: {error}");
            ExitCode::FAILURE
        }
    }
}

/// Client mode: stream INPUT to the server while a reader thread prints
/// response lines, half-close after the last request, and exit like
/// `rbs-svc` batch mode (non-zero if any response is an error line).
///
/// With `--pool N` the request lines spread round-robin over N
/// persistent connections, each opened once and reused for its whole
/// share — the keep-alive shape of a re-validation sweep, where a
/// connect-per-batch client would pay a handshake per delta. Every
/// connection half-closes after its last line and drains its responses
/// concurrently; payloads and the exit-code contract are exactly the
/// single-connection form's.
fn run_connect(addr: &str, input: &str, pool: usize) -> ExitCode {
    if pool == 1 {
        // Streaming fast path: one connection needs no line splitting,
        // so stdin pipes through unbuffered-by-line exactly as before.
        let Some(stream) = open_connection(addr) else {
            return ExitCode::FAILURE;
        };
        let (mut stream, reader) = stream;
        let sent = match input {
            "-" => io::copy(&mut io::stdin().lock(), &mut stream),
            path => fs::File::open(path).and_then(|mut file| io::copy(&mut file, &mut stream)),
        };
        if let Err(error) = sent {
            eprintln!("rbs-netd: cannot send {input}: {error}");
            return ExitCode::FAILURE;
        }
        let _ = stream.shutdown(Shutdown::Write);
        return join_readers(vec![reader]);
    }
    let text = match input {
        "-" => {
            let mut text = String::new();
            io::stdin().lock().read_to_string(&mut text).map(|_| text)
        }
        path => fs::read_to_string(path),
    };
    let text = match text {
        Ok(text) => text,
        Err(error) => {
            eprintln!("rbs-netd: cannot read {input}: {error}");
            return ExitCode::FAILURE;
        }
    };
    let lines: Vec<&str> = text.lines().collect();
    let width = pool.min(lines.len().max(1));
    let mut connections = Vec::with_capacity(width);
    for _ in 0..width {
        let Some(connection) = open_connection(addr) else {
            return ExitCode::FAILURE;
        };
        connections.push(connection);
    }
    let mut readers = Vec::with_capacity(width);
    for (lane, (mut stream, reader)) in connections.into_iter().enumerate() {
        for line in lines.iter().skip(lane).step_by(width) {
            if let Err(error) = writeln!(stream, "{line}") {
                eprintln!("rbs-netd: cannot send {input}: {error}");
                return ExitCode::FAILURE;
            }
        }
        let _ = stream.shutdown(Shutdown::Write);
        readers.push(reader);
    }
    join_readers(readers)
}

/// Opens one keep-alive connection: the write half plus a spawned
/// reader that prints response lines to (locked) stdout and reports
/// whether any was an error line. Draining concurrently keeps a large
/// burst from deadlocking both sides on full socket buffers.
fn open_connection(addr: &str) -> Option<(TcpStream, thread::JoinHandle<bool>)> {
    let stream = match TcpStream::connect(addr) {
        Ok(stream) => stream,
        Err(error) => {
            eprintln!("rbs-netd: cannot connect to {addr}: {error}");
            return None;
        }
    };
    let receiving = match stream.try_clone() {
        Ok(stream) => stream,
        Err(error) => {
            eprintln!("rbs-netd: cannot clone socket: {error}");
            return None;
        }
    };
    let reader = thread::spawn(move || {
        let mut failed = false;
        let stdout = io::stdout();
        for line in BufReader::new(receiving).lines() {
            let Ok(line) = line else { break };
            failed |= line.contains("\"error\":{");
            if writeln!(stdout.lock(), "{line}").is_err() {
                return true; // stdout gone: report failure
            }
        }
        let _ = stdout.lock().flush();
        failed
    });
    Some((stream, reader))
}

/// Joins every connection's reader; the exit code is `rbs-svc` batch
/// mode's (non-zero if any response anywhere was an error line).
fn join_readers(readers: Vec<thread::JoinHandle<bool>>) -> ExitCode {
    let mut failed = false;
    for reader in readers {
        match reader.join() {
            Ok(f) => failed |= f,
            Err(_) => {
                eprintln!("rbs-netd: response reader panicked");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
