//! `rbs-netd` binary: the TCP admission front-end (`--listen`) and a
//! line-oriented test client (`--connect`) in one executable.

use std::fs;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::process::ExitCode;
use std::thread;
use std::time::Duration;

use rbs_net::{NetConfig, Server};
use rbs_svc::{Service, ServiceConfig, WorkerPool};

const USAGE: &str = "\
usage: rbs-netd --listen ADDR [options]
       rbs-netd --connect ADDR [INPUT]

server mode (--listen):
  Serve the rbs-svc admission-control protocol over TCP: every
  newline-delimited request on a connection is answered with one JSON
  response line carrying a per-connection monotonic \"seq\" (responses
  to concurrent requests may interleave; sort by seq). Requests from
  all connections share one worker pool and one result cache, so
  responses are bit-identical to `rbs-svc` batch/--follow output.
  Listens until stdin reaches end-of-file, then drains gracefully:
  stops accepting and reading, answers everything in flight, flushes,
  and prints the cumulative footer to stderr. Bind port 0 for an
  ephemeral port; the resolved address is printed to stderr and, with
  --port-file, written to a file for scripts to discover.

  Overload is shed in-band, never queued unboundedly: requests beyond
  --queue-depth per connection (and connections beyond --max-conns)
  are answered with {\"error\":{\"kind\":\"overload\",...}}.

client mode (--connect):
  Send INPUT ('-' = stdin, default, or a file) to a server, print
  response lines to stdout, half-close after the last line, and exit
  non-zero if any response is an error line — mirroring `rbs-svc`
  batch mode.

options (server mode):
  --port-file PATH       write the resolved listen address to PATH
  --queue-depth N        per-connection in-flight bound before shedding
                         (default: 64)
  --max-conns N          connection bound before shedding (default: 1024)
  --batch-max N          dispatcher micro-batch bound (default: 256)
  --jobs N               worker threads (default: available parallelism)
  --cache-size N         cached reports across shards (default: 1024; 0 disables)
  --neg-cache-size N     cached failed outcomes (default: 256; 0 disables)
  --timeout-ms N         per-request analysis deadline (default: 0 = none)
  --max-request-bytes N  truncate longer request lines on the wire and
                         reject them as oversized (default: 0 = unlimited)
  --stats-every N        print the cumulative footer to stderr every N
                         requests (default: 0 = only at drain)
  --fault-injection      honor chaos-testing task-name markers
                         (__rbs_fault_panic__, __rbs_fault_sleep_ms_N__)
";

enum Mode {
    Listen(String),
    Connect { addr: String, input: String },
}

struct Args {
    mode: Mode,
    jobs: Option<usize>,
    stats_every: usize,
    port_file: Option<String>,
    net: NetConfig,
    config: ServiceConfig,
}

fn parse_args(args: &[String]) -> Result<Option<Args>, String> {
    let mut mode = None;
    let mut input = None;
    let mut parsed = Args {
        mode: Mode::Listen(String::new()), // replaced below
        jobs: None,
        stats_every: 0,
        port_file: None,
        net: NetConfig::default(),
        config: ServiceConfig::default(),
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => return Ok(None),
            "--fault-injection" => {
                parsed.config.fault_injection = true;
                i += 1;
            }
            flag @ ("--listen" | "--connect" | "--port-file") => {
                let Some(value) = args.get(i + 1) else {
                    return Err(format!("{flag} requires a value"));
                };
                match flag {
                    "--listen" => mode = Some(Mode::Listen(value.clone())),
                    "--connect" => {
                        mode = Some(Mode::Connect {
                            addr: value.clone(),
                            input: String::new(), // patched below
                        });
                    }
                    _ => parsed.port_file = Some(value.clone()),
                }
                i += 2;
            }
            flag @ ("--jobs"
            | "--queue-depth"
            | "--max-conns"
            | "--batch-max"
            | "--cache-size"
            | "--neg-cache-size"
            | "--timeout-ms"
            | "--max-request-bytes"
            | "--stats-every") => {
                let Some(value) = args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) else {
                    return Err(format!("{flag} requires a non-negative integer"));
                };
                match flag {
                    "--jobs" => parsed.jobs = Some(value),
                    "--queue-depth" => parsed.net.queue_depth = value.max(1),
                    "--max-conns" => parsed.net.max_connections = value.max(1),
                    "--batch-max" => parsed.net.batch_max = value.max(1),
                    "--cache-size" => parsed.config.cache_capacity = value,
                    "--neg-cache-size" => parsed.config.negative_cache_capacity = value,
                    "--timeout-ms" => {
                        parsed.config.timeout =
                            (value > 0).then(|| Duration::from_millis(value as u64));
                    }
                    "--max-request-bytes" => {
                        parsed.config.max_request_bytes = (value > 0).then_some(value);
                    }
                    "--stats-every" => parsed.stats_every = value,
                    _ => unreachable!("covered by the outer match"),
                }
                i += 2;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag: {other}"));
            }
            other => {
                input = Some(other.to_owned());
                i += 1;
            }
        }
    }
    match mode {
        Some(Mode::Listen(addr)) => {
            if input.is_some() {
                return Err("INPUT is only meaningful with --connect".to_owned());
            }
            parsed.mode = Mode::Listen(addr);
            Ok(Some(parsed))
        }
        Some(Mode::Connect { addr, .. }) => {
            parsed.mode = Mode::Connect {
                addr,
                input: input.unwrap_or_else(|| "-".to_owned()),
            };
            Ok(Some(parsed))
        }
        None => Err("one of --listen or --connect is required".to_owned()),
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(Some(args)) => args,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("{message}");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match args.mode {
        Mode::Listen(ref addr) => run_listen(addr, &args),
        Mode::Connect {
            ref addr,
            ref input,
        } => run_connect(addr, input),
    }
}

/// Server mode: bind, serve until stdin closes, drain, footer, exit
/// zero. Per-request failures are in-band (mirroring `--follow`); only
/// setup failures don't.
fn run_listen(addr: &str, args: &Args) -> ExitCode {
    let mut net = args.net;
    net.stats_every = args.stats_every;
    let pool = match args.jobs {
        Some(n) => WorkerPool::new(n),
        None => WorkerPool::with_available_parallelism(),
    };
    let service = Service::with_config(pool, args.config);
    let jobs = service.jobs();
    let server = match Server::bind(addr, service, net, move |stats| {
        eprintln!("{}", stats.footer(jobs));
    }) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("rbs-netd: cannot listen on {addr}: {error}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("rbs-netd: listening on {}", server.addr());
    if let Some(path) = &args.port_file {
        if let Err(error) = fs::write(path, format!("{}\n", server.addr())) {
            eprintln!("rbs-netd: cannot write {path}: {error}");
            return ExitCode::FAILURE;
        }
    }
    // The shutdown signal is stdin end-of-file — the same graceful-drain
    // contract as `rbs-svc --follow`, with no signal handling needed.
    let drained = io::copy(&mut io::stdin().lock(), &mut io::sink());
    if let Err(error) = drained {
        eprintln!("rbs-netd: stdin read error: {error}");
    }
    match server.shutdown() {
        Ok(_stats) => ExitCode::SUCCESS, // the footer came via the callback
        Err(error) => {
            eprintln!("rbs-netd: event loop failed: {error}");
            ExitCode::FAILURE
        }
    }
}

/// Client mode: stream INPUT to the server while a reader thread prints
/// response lines, half-close after the last request, and exit like
/// `rbs-svc` batch mode (non-zero if any response is an error line).
fn run_connect(addr: &str, input: &str) -> ExitCode {
    let mut stream = match TcpStream::connect(addr) {
        Ok(stream) => stream,
        Err(error) => {
            eprintln!("rbs-netd: cannot connect to {addr}: {error}");
            return ExitCode::FAILURE;
        }
    };
    let receiving = match stream.try_clone() {
        Ok(stream) => stream,
        Err(error) => {
            eprintln!("rbs-netd: cannot clone socket: {error}");
            return ExitCode::FAILURE;
        }
    };
    // Drain responses concurrently so a large burst can't deadlock both
    // sides on full socket buffers.
    let reader = thread::spawn(move || {
        let mut failed = false;
        let stdout = io::stdout();
        let mut out = stdout.lock();
        for line in BufReader::new(receiving).lines() {
            let Ok(line) = line else { break };
            failed |= line.contains("\"error\":{");
            if writeln!(out, "{line}").is_err() {
                return true; // stdout gone: report failure
            }
        }
        let _ = out.flush();
        failed
    });
    let sent = match input {
        "-" => io::copy(&mut io::stdin().lock(), &mut stream),
        path => fs::File::open(path).and_then(|mut file| io::copy(&mut file, &mut stream)),
    };
    if let Err(error) = sent {
        eprintln!("rbs-netd: cannot send {input}: {error}");
        return ExitCode::FAILURE;
    }
    let _ = stream.shutdown(Shutdown::Write);
    match reader.join() {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => ExitCode::FAILURE,
        Err(_) => {
            eprintln!("rbs-netd: response reader panicked");
            ExitCode::FAILURE
        }
    }
}
