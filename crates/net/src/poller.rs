//! Socket readiness for the event loop: a thin, dependency-free
//! `poll(2)` shim behind a portable [`Poller`] abstraction.
//!
//! The loop re-submits its (small) watch list every iteration —
//! level-triggered `poll(2)` semantics, the right shape for a front-end
//! whose descriptor count is bounded by the connection cap. On unix the
//! syscall is declared directly against libc (which `std` already links)
//! so the workspace stays free of external crates; the single `unsafe`
//! call lives in the [`sys`] module with the safety argument spelled
//! out. Elsewhere the [`Poller`] degrades to a short timed tick that
//! reports every watch ready at its requested interest — correct (all
//! sockets are nonblocking, a spurious wakeup costs one `WouldBlock`)
//! but busier; the event loop's logic is identical either way.
//!
//! [`WakeHandle`]/[`WakeSource`] complete the picture: a nonblocking
//! socketpair whose read end sits in the watch list, so worker threads
//! can interrupt a blocked `poll` the moment a response is ready.

use std::io;
use std::time::Duration;

/// What to watch a descriptor for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor is readable (or closed by the peer).
    pub readable: bool,
    /// Wake when the descriptor accepts more output.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Readable and writable.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// Watch nothing (placeholder entry).
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// Readiness reported for one watched descriptor.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The caller-chosen token of the watch that fired.
    pub token: usize,
    /// Data (or end-of-stream) is available to read.
    pub readable: bool,
    /// The descriptor accepts more output.
    pub writable: bool,
    /// The descriptor is in an error state (`POLLERR`/`POLLNVAL`); the
    /// connection should be dropped.
    pub error: bool,
}

#[cfg(unix)]
type RawSource = std::os::fd::RawFd;
#[cfg(not(unix))]
type RawSource = ();

/// One descriptor to watch for one [`Poller::poll`] call.
#[derive(Debug, Clone, Copy)]
pub struct Watch {
    token: usize,
    raw: RawSource,
    interest: Interest,
}

impl Watch {
    /// Watches `source` for `interest`, reporting events under `token`.
    #[cfg(unix)]
    pub fn new(token: usize, source: &impl std::os::fd::AsRawFd, interest: Interest) -> Watch {
        Watch {
            token,
            raw: source.as_raw_fd(),
            interest,
        }
    }

    /// Watches `source` for `interest`, reporting events under `token`.
    #[cfg(not(unix))]
    pub fn new<T>(token: usize, _source: &T, interest: Interest) -> Watch {
        Watch {
            token,
            raw: (),
            interest,
        }
    }
}

/// A reusable readiness poller; [`Poller::poll`] is one `poll(2)` call
/// on unix and a timed tick elsewhere.
#[derive(Debug, Default)]
pub struct Poller {
    #[cfg(unix)]
    fds: Vec<sys::PollFd>,
}

impl Poller {
    /// A poller with no retained state beyond its scratch buffer.
    #[must_use]
    pub fn new() -> Poller {
        Poller::default()
    }

    /// Waits up to `timeout` for readiness on any watch, appending one
    /// [`Event`] per ready descriptor to `events` (cleared first).
    ///
    /// # Errors
    ///
    /// Propagates `poll(2)` failures; `EINTR` is treated as zero events.
    #[cfg(unix)]
    pub fn poll(
        &mut self,
        watches: &[Watch],
        timeout: Duration,
        events: &mut Vec<Event>,
    ) -> io::Result<()> {
        events.clear();
        self.fds.clear();
        for watch in watches {
            let mut mask: i16 = 0;
            if watch.interest.readable {
                mask |= sys::POLLIN;
            }
            if watch.interest.writable {
                mask |= sys::POLLOUT;
            }
            self.fds.push(sys::PollFd {
                fd: watch.raw,
                events: mask,
                revents: 0,
            });
        }
        let timeout_ms = i32::try_from(timeout.as_millis()).unwrap_or(i32::MAX);
        let ready = sys::poll_fds(&mut self.fds, timeout_ms)?;
        if ready == 0 {
            return Ok(());
        }
        for (watch, fd) in watches.iter().zip(&self.fds) {
            if fd.revents == 0 {
                continue;
            }
            events.push(Event {
                token: watch.token,
                // A hangup counts as readable: the pending bytes (and the
                // EOF behind them) are drained by the read path.
                readable: fd.revents & (sys::POLLIN | sys::POLLHUP) != 0,
                writable: fd.revents & sys::POLLOUT != 0,
                error: fd.revents & (sys::POLLERR | sys::POLLNVAL) != 0,
            });
        }
        Ok(())
    }

    /// Portable fallback: sleep one short tick, then report every watch
    /// ready at its requested interest. Nonblocking sockets make the
    /// spurious readiness harmless (`WouldBlock`), at the cost of a
    /// busier loop.
    #[cfg(not(unix))]
    pub fn poll(
        &mut self,
        watches: &[Watch],
        timeout: Duration,
        events: &mut Vec<Event>,
    ) -> io::Result<()> {
        events.clear();
        std::thread::sleep(timeout.min(Duration::from_millis(5)));
        for watch in watches {
            if watch.interest.readable || watch.interest.writable {
                events.push(Event {
                    token: watch.token,
                    readable: watch.interest.readable,
                    writable: watch.interest.writable,
                    error: false,
                });
            }
        }
        Ok(())
    }
}

/// The write side of the loop's wakeup channel; cloneable across the
/// worker threads that complete work while the loop sleeps in `poll`.
#[derive(Debug, Clone)]
pub struct WakeHandle {
    #[cfg(unix)]
    tx: std::sync::Arc<std::os::unix::net::UnixStream>,
}

impl WakeHandle {
    /// Interrupts the next (or current) [`Poller::poll`] call of the
    /// paired [`WakeSource`]. Never blocks: a full wake pipe already
    /// guarantees a pending wakeup.
    pub fn wake(&self) {
        #[cfg(unix)]
        {
            use std::io::Write;
            let _ = (&*self.tx).write(&[1]);
        }
    }
}

/// The read side of the wakeup channel; lives in the event loop's watch
/// list.
#[derive(Debug)]
pub struct WakeSource {
    #[cfg(unix)]
    rx: std::os::unix::net::UnixStream,
}

impl WakeSource {
    /// A connected wakeup pair.
    ///
    /// # Errors
    ///
    /// Propagates socketpair creation failures (unix only).
    pub fn pair() -> io::Result<(WakeHandle, WakeSource)> {
        #[cfg(unix)]
        {
            let (tx, rx) = std::os::unix::net::UnixStream::pair()?;
            tx.set_nonblocking(true)?;
            rx.set_nonblocking(true)?;
            Ok((
                WakeHandle {
                    tx: std::sync::Arc::new(tx),
                },
                WakeSource { rx },
            ))
        }
        #[cfg(not(unix))]
        {
            // The fallback poller ticks on a timer, so wakeups are
            // bounded by the tick instead of being event-driven.
            Ok((WakeHandle {}, WakeSource {}))
        }
    }

    /// The watch entry for this source. On the fallback backend the
    /// entry is inert (the tick itself bounds wake latency).
    #[must_use]
    pub fn watch(&self, token: usize) -> Watch {
        #[cfg(unix)]
        {
            Watch::new(token, &self.rx, Interest::READ)
        }
        #[cfg(not(unix))]
        {
            Watch::new(token, &(), Interest::NONE)
        }
    }

    /// Consumes every pending wakeup byte so the next `poll` sleeps.
    pub fn drain(&mut self) {
        #[cfg(unix)]
        {
            use std::io::Read;
            let mut sink = [0u8; 64];
            while matches!(self.rx.read(&mut sink), Ok(n) if n > 0) {}
        }
    }
}

/// The `poll(2)` FFI shim — the only `unsafe` in the workspace, kept to
/// one audited call.
#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    use std::ffi::c_int;
    use std::io;
    use std::os::fd::RawFd;

    #[cfg(target_os = "linux")]
    type Nfds = std::ffi::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type Nfds = std::ffi::c_uint;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    /// `struct pollfd` from `<poll.h>`.
    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct PollFd {
        pub fd: RawFd,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: Nfds, timeout: c_int) -> c_int;
    }

    /// Blocks up to `timeout_ms` (`-1` = forever) for readiness on
    /// `fds`, returning how many descriptors fired. `EINTR` is reported
    /// as zero events rather than an error.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: c_int) -> io::Result<usize> {
        // SAFETY: `fds` is an exclusively borrowed slice of `#[repr(C)]`
        // structs matching the layout of `struct pollfd`, valid for the
        // whole call, and its length is passed alongside the pointer;
        // poll(2) reads `fd`/`events` and writes only `revents`.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as Nfds, timeout_ms) };
        if rc < 0 {
            let error = io::Error::last_os_error();
            return if error.kind() == io::ErrorKind::Interrupted {
                Ok(0)
            } else {
                Err(error)
            };
        }
        Ok(usize::try_from(rc).unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn poll_reports_readable_after_data_arrives() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("binds");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connects");
        let (server, _) = listener.accept().expect("accepts");
        server.set_nonblocking(true).expect("nonblocking");

        let mut poller = Poller::new();
        let mut events = Vec::new();
        let watches = [Watch::new(7, &server, Interest::READ)];
        // Nothing pending yet: a short poll returns no read event (the
        // portable fallback may report spuriously; skip the assert there).
        #[cfg(unix)]
        {
            poller
                .poll(&watches, Duration::from_millis(1), &mut events)
                .expect("polls");
            assert!(events.is_empty(), "{events:?}");
        }
        client.write_all(b"x").expect("writes");
        client.flush().expect("flushes");
        // Now the byte must surface within a generous timeout.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        loop {
            poller
                .poll(&watches, Duration::from_millis(20), &mut events)
                .expect("polls");
            if events.iter().any(|e| e.token == 7 && e.readable) {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "data never became readable"
            );
        }
        let mut server = server;
        let mut byte = [0u8; 1];
        assert_eq!(server.read(&mut byte).expect("reads"), 1);
    }

    #[test]
    fn wakeups_interrupt_a_sleeping_poll() {
        let (handle, mut source) = WakeSource::pair().expect("pair");
        let mut poller = Poller::new();
        let mut events = Vec::new();
        let waker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            handle.wake();
        });
        let start = std::time::Instant::now();
        // Without the wake this would sleep the full 5 seconds (unix);
        // the fallback backend ticks early by design.
        loop {
            poller
                .poll(&[source.watch(0)], Duration::from_secs(5), &mut events)
                .expect("polls");
            if events.iter().any(|e| e.token == 0 && e.readable) || cfg!(not(unix)) {
                break;
            }
        }
        assert!(
            start.elapsed() < Duration::from_secs(4),
            "wakeup did not interrupt poll"
        );
        source.drain();
        waker.join().expect("waker thread");
    }
}
