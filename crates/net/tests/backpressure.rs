//! Load-shedding behavior of the TCP front-end: a full per-connection
//! queue sheds in-band with `overload` errors *without stalling the
//! event loop*, and the connection cap sheds whole connections the same
//! way.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

use rbs_net::{NetConfig, Server};
use rbs_svc::{Service, ServiceConfig, WorkerPool};

/// One LO task with the given name and unit parameters — a healthy,
/// analyzable set (the name may carry a fault-injection marker).
fn task_set(name: &str) -> String {
    format!(
        concat!(
            "[{{\"name\":\"{}\",\"criticality\":\"Lo\",",
            "\"lo\":{{\"period\":{{\"num\":5,\"den\":1}},",
            "\"deadline\":{{\"num\":5,\"den\":1}},",
            "\"wcet\":{{\"num\":1,\"den\":1}}}},",
            "\"hi\":{{\"Continue\":{{\"period\":{{\"num\":5,\"den\":1}},",
            "\"deadline\":{{\"num\":5,\"den\":1}},",
            "\"wcet\":{{\"num\":1,\"den\":1}}}}}}}}]"
        ),
        name
    )
}

fn service() -> Service {
    Service::with_config(
        WorkerPool::new(2),
        ServiceConfig {
            fault_injection: true,
            ..ServiceConfig::default()
        },
    )
}

#[test]
fn full_connection_queue_sheds_in_band_without_stalling_the_loop() {
    let config = NetConfig {
        queue_depth: 1,
        batch_max: 1,
        ..NetConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", service(), config, |_| {}).expect("binds");

    // One write delivers a slow request (holds the single-slot queue for
    // two seconds) plus four fast ones. The loop must shed the four
    // in-band while the analysis sleeps — their responses arriving
    // *before* the slow one proves the event loop never blocked on it.
    let mut client = TcpStream::connect(server.addr()).expect("connects");
    let mut burst = task_set("__rbs_fault_sleep_ms_2000__");
    burst.push('\n');
    for _ in 0..4 {
        burst.push_str("not json\n");
    }
    client.write_all(burst.as_bytes()).expect("sends burst");
    client.shutdown(Shutdown::Write).expect("half-closes");

    let lines: Vec<String> = BufReader::new(&client)
        .lines()
        .map(|line| line.expect("reads response"))
        .collect();
    assert_eq!(lines.len(), 5, "{lines:#?}");

    // Arrival order: the four shed responses first, the slow report last.
    for line in &lines[..4] {
        assert!(line.contains("\"kind\":\"overload\""), "{line}");
    }
    assert!(lines[4].contains("\"report\":"), "{}", lines[4]);
    assert!(lines[4].starts_with("{\"seq\":0,"), "{}", lines[4]);

    // Every seq 0..5 answered exactly once.
    let mut seqs: Vec<usize> = lines
        .iter()
        .map(|line| {
            let rest = line.strip_prefix("{\"seq\":").expect("seq-first line");
            rest[..rest.find(',').expect("comma")].parse().expect("seq")
        })
        .collect();
    seqs.sort_unstable();
    assert_eq!(seqs, vec![0, 1, 2, 3, 4]);

    let stats = server.shutdown().expect("drains");
    assert_eq!(stats.batch.served, 5);
    assert_eq!(stats.batch.ok, 1);
    assert_eq!(stats.batch.errors.overload, 4);
    assert_eq!(stats.batch.errors.total(), 4);
    // One completion per dispatched job, never a spurious extra.
    assert_eq!(stats.double_done, 0);
}

#[test]
fn connections_beyond_the_cap_get_one_overload_line_and_a_close() {
    let config = NetConfig {
        max_connections: 1,
        ..NetConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", service(), config, |_| {}).expect("binds");

    // The first connection occupies the only slot. A full round trip
    // before the second connects guarantees the occupant was accepted in
    // its own event-loop pass — the regression this test pins is the
    // listener dropping out of the watch list once the cap is reached,
    // which left later connections unanswered in the backlog.
    let mut occupant = TcpStream::connect(server.addr()).expect("first connects");
    occupant.write_all(b"warmup not json\n").expect("sends");
    let mut occupant_reader = BufReader::new(occupant.try_clone().expect("clones"));
    let mut warmup = String::new();
    occupant_reader
        .read_line(&mut warmup)
        .expect("warmup answer");
    assert!(warmup.contains("\"kind\":\"parse\""), "{warmup}");

    // The second is shed: exactly one in-band overload line, then EOF.
    let excess = TcpStream::connect(server.addr()).expect("second connects");
    excess
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("sets timeout");
    let lines: Vec<String> = BufReader::new(&excess)
        .lines()
        .map(|line| line.expect("reads response"))
        .collect();
    assert_eq!(lines.len(), 1, "{lines:#?}");
    assert!(lines[0].contains("\"kind\":\"overload\""), "{}", lines[0]);
    assert!(lines[0].contains("connection limit"), "{}", lines[0]);

    // The occupant still works after the shed.
    occupant
        .write_all(b"still not json\n")
        .expect("sends request");
    occupant.shutdown(Shutdown::Write).expect("half-closes");
    let answers: Vec<String> = occupant_reader
        .lines()
        .map(|line| line.expect("reads response"))
        .collect();
    assert_eq!(answers.len(), 1, "{answers:#?}");
    assert!(answers[0].contains("\"kind\":\"parse\""), "{}", answers[0]);

    let stats = server.shutdown().expect("drains");
    assert_eq!(stats.batch.served, 3);
    assert_eq!(stats.batch.errors.overload, 1);
    assert_eq!(stats.batch.errors.parse, 2);
    assert_eq!(stats.double_done, 0);
}
