//! The TCP path shares the stdin path's byte-capped framing — this
//! suite pins the cap's adversarial corner: an oversized line whose
//! kept prefix is a valid request must be rejected as oversized, never
//! served, and the connection stays synchronized for the next line.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};

use rbs_net::{NetConfig, Server};
use rbs_svc::{Service, ServiceConfig, WorkerPool};

/// One LO task with unit parameters — a healthy, analyzable set.
fn task_set() -> String {
    concat!(
        "[{\"name\":\"w\",\"criticality\":\"Lo\",",
        "\"lo\":{\"period\":{\"num\":5,\"den\":1},",
        "\"deadline\":{\"num\":5,\"den\":1},",
        "\"wcet\":{\"num\":1,\"den\":1}},",
        "\"hi\":{\"Continue\":{\"period\":{\"num\":5,\"den\":1},",
        "\"deadline\":{\"num\":5,\"den\":1},",
        "\"wcet\":{\"num\":1,\"den\":1}}}}]"
    )
    .to_owned()
}

#[test]
fn truncated_line_cut_at_a_cr_never_leaks_its_prefix() {
    // The cap equals the valid request's length, and the poison line is
    // that request plus `\r` plus junk: the framer keeps cap + 1 bytes
    // ending in the coincidental `\r`. Stripping it as a CRLF
    // terminator would hand the valid prefix to the service as a
    // request the client never finished sending.
    let valid = task_set();
    let service = Service::with_config(
        WorkerPool::new(2),
        ServiceConfig {
            max_request_bytes: Some(valid.len()),
            ..ServiceConfig::default()
        },
    );
    let server = Server::bind("127.0.0.1:0", service, NetConfig::default(), |_| {}).expect("binds");

    // Both lines arrive in one write so the framer sees the cut and the
    // healthy line in the same read.
    let mut client = TcpStream::connect(server.addr()).expect("connects");
    let payload = format!("{valid}\r{}\n{valid}\n", "x".repeat(1 << 16));
    client.write_all(payload.as_bytes()).expect("sends");
    client.shutdown(Shutdown::Write).expect("half-closes");

    let lines: Vec<String> = BufReader::new(&client)
        .lines()
        .map(|line| line.expect("reads response"))
        .collect();
    assert_eq!(lines.len(), 2, "{lines:#?}");
    assert!(lines[0].contains("\"kind\":\"oversized\""), "{}", lines[0]);
    assert!(lines[1].contains("\"report\":"), "{}", lines[1]);

    let stats = server.shutdown().expect("drains");
    assert_eq!(stats.batch.served, 2);
    assert_eq!(stats.batch.ok, 1);
    assert_eq!(stats.batch.errors.oversized, 1);
    assert_eq!(stats.double_done, 0);
}
