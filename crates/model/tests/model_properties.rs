//! Property-based tests for model validation, serde and scaling.

use proptest::prelude::*;
use rbs_model::{
    scaled_task_set, Criticality, ImplicitTaskSpec, Mode, ModelError, ScalingFactors, Task,
    TaskSet,
};
use rbs_timebase::Rational;

fn int(v: i128) -> Rational {
    Rational::integer(v)
}

fn rat(n: i128, d: i128) -> Rational {
    Rational::new(n, d)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn valid_hi_parameters_always_build(
        period in 2i128..=1000,
        c_lo_num in 1i128..=100,
        dl_frac in 1i128..=100,
        gamma_num in 100i128..=400,
    ) {
        let period = int(period);
        let c_lo = (rat(c_lo_num, 100) * period).min(period);
        let d_lo = (rat(dl_frac, 100) * period).max(c_lo).min(period);
        let c_hi = (rat(gamma_num, 100) * c_lo).min(period);
        let task = Task::builder("t", Criticality::Hi)
            .period(period)
            .deadline_lo(d_lo)
            .deadline_hi(period)
            .wcet_lo(c_lo)
            .wcet_hi(c_hi.max(c_lo))
            .build();
        prop_assert!(task.is_ok(), "{task:?}");
        let task = task.expect("checked");
        prop_assert!(task.lo().deadline() <= task.params(Mode::Hi).expect("hi").deadline());
        prop_assert!(task.utilization(Mode::Hi) >= task.utilization(Mode::Lo));
        if let Some(gamma) = task.gamma() {
            prop_assert!(gamma >= Rational::ONE);
        }
    }

    #[test]
    fn constraint_violations_yield_the_right_errors(
        period in 2i128..=50,
        excess in 1i128..=10,
    ) {
        let period = int(period);
        // D > T.
        let err = Task::builder("t", Criticality::Lo)
            .period(period)
            .deadline(period + int(excess))
            .wcet(Rational::ONE)
            .build()
            .expect_err("unconstrained deadline");
        let is_expected = matches!(err, ModelError::DeadlineExceedsPeriod { .. });
        prop_assert!(is_expected, "unexpected error: {err:?}");
        // HI task shrinking its WCET.
        let err = Task::builder("t", Criticality::Hi)
            .period(period)
            .deadline(period)
            .wcet_lo(int(excess) + Rational::ONE)
            .wcet_hi(Rational::ONE)
            .build()
            .expect_err("shrinking wcet");
        let is_expected = matches!(err, ModelError::HiWcetSmallerThanLo { .. });
        prop_assert!(is_expected, "unexpected error: {err:?}");
        // LO task improving its period in HI mode.
        let err = Task::builder("t", Criticality::Lo)
            .period(period + int(excess))
            .deadline(period)
            .period_hi(period)
            .wcet(Rational::ONE)
            .build()
            .expect_err("improved service");
        let is_expected = matches!(err, ModelError::LoServiceImproved { .. });
        prop_assert!(is_expected, "unexpected error: {err:?}");
    }

    #[test]
    fn task_sets_round_trip_through_json(
        periods in prop::collection::vec(2i128..=100, 1..=5),
    ) {
        let tasks: Vec<Task> = periods
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                if i % 2 == 0 {
                    Task::builder(format!("h{i}"), Criticality::Hi)
                        .period(int(p))
                        .deadline_lo(rat(p, 2).max(Rational::ONE))
                        .deadline_hi(int(p))
                        .wcet_lo(Rational::ONE.min(rat(p, 4)).max(rat(1, 4)))
                        .wcet_hi(rat(p, 4).max(rat(1, 2)).min(int(p)))
                        .build()
                        .expect("valid")
                } else {
                    Task::builder(format!("l{i}"), Criticality::Lo)
                        .period(int(p))
                        .deadline(int(p))
                        .wcet(rat(p, 8).max(rat(1, 8)))
                        .build()
                        .expect("valid")
                }
            })
            .collect();
        let set = TaskSet::new(tasks);
        let json = serde_json::to_string(&set).expect("serialize");
        let back: TaskSet = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(back, set);
    }

    #[test]
    fn scaling_follows_the_paper_equations(
        period in 2i128..=200,
        x_num in 1i128..=100,
        y_num in 100i128..=400,
    ) {
        let x = rat(x_num, 100);
        let y = rat(y_num, 100);
        let factors = ScalingFactors::new(x, y).expect("in range");
        let specs = vec![
            ImplicitTaskSpec::hi("h", int(period), rat(period, 10).max(rat(1, 10)), rat(period, 5).max(rat(1, 5))),
            ImplicitTaskSpec::lo("l", int(period), rat(period, 10).max(rat(1, 10))),
        ];
        let set = scaled_task_set(&specs, factors).expect("valid");
        // eq. (13): HI tasks.
        let h = &set[0];
        prop_assert_eq!(h.lo().deadline(), x * int(period));
        prop_assert_eq!(h.params(Mode::Hi).expect("hi").deadline(), int(period));
        prop_assert_eq!(h.params(Mode::Hi).expect("hi").period(), int(period));
        // eq. (14): LO tasks.
        let l = &set[1];
        prop_assert_eq!(l.lo().deadline(), int(period));
        prop_assert_eq!(l.params(Mode::Hi).expect("hi").period(), y * int(period));
        prop_assert_eq!(l.params(Mode::Hi).expect("hi").deadline(), y * int(period));
    }

    #[test]
    fn termination_zeroes_hi_contributions(
        periods in prop::collection::vec(2i128..=100, 1..=4),
    ) {
        let tasks: Vec<Task> = periods
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                Task::builder(format!("l{i}"), Criticality::Lo)
                    .period(int(p))
                    .deadline(int(p))
                    .wcet(rat(p, 4).max(rat(1, 4)))
                    .build()
                    .expect("valid")
            })
            .collect();
        let set = TaskSet::new(tasks);
        let terminated = set.with_lo_terminated().expect("all LO");
        prop_assert_eq!(terminated.utilization(Mode::Hi), Rational::ZERO);
        prop_assert_eq!(terminated.total_wcet(Mode::Hi), Rational::ZERO);
        prop_assert_eq!(terminated.hyperperiod(Mode::Hi), None);
        // LO mode untouched.
        prop_assert_eq!(terminated.utilization(Mode::Lo), set.utilization(Mode::Lo));
    }
}
