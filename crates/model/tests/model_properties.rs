//! Property-based tests for model validation, JSON round-trips and scaling,
//! driven by a seeded deterministic RNG.

use rbs_model::{
    scaled_task_set, CanonicalTaskSet, Criticality, ImplicitTaskSpec, Mode, ModelError,
    ScalingFactors, Task, TaskSet,
};
use rbs_rng::Rng;
use rbs_timebase::Rational;

const CASES: usize = 128;

fn int(v: i128) -> Rational {
    Rational::integer(v)
}

fn rat(n: i128, d: i128) -> Rational {
    Rational::new(n, d)
}

#[test]
fn valid_hi_parameters_always_build() {
    let mut rng = Rng::seed_from_u64(0x40de_1001);
    for _ in 0..CASES {
        let period = int(rng.gen_range_i128(2, 1000));
        let c_lo_num = rng.gen_range_i128(1, 100);
        let dl_frac = rng.gen_range_i128(1, 100);
        let gamma_num = rng.gen_range_i128(100, 400);

        let c_lo = (rat(c_lo_num, 100) * period).min(period);
        let d_lo = (rat(dl_frac, 100) * period).max(c_lo).min(period);
        let c_hi = (rat(gamma_num, 100) * c_lo).min(period);
        let task = Task::builder("t", Criticality::Hi)
            .period(period)
            .deadline_lo(d_lo)
            .deadline_hi(period)
            .wcet_lo(c_lo)
            .wcet_hi(c_hi.max(c_lo))
            .build();
        assert!(task.is_ok(), "{task:?}");
        let task = task.expect("checked");
        assert!(task.lo().deadline() <= task.params(Mode::Hi).expect("hi").deadline());
        assert!(task.utilization(Mode::Hi) >= task.utilization(Mode::Lo));
        if let Some(gamma) = task.gamma() {
            assert!(gamma >= Rational::ONE);
        }
    }
}

#[test]
fn constraint_violations_yield_the_right_errors() {
    let mut rng = Rng::seed_from_u64(0x40de_1002);
    for _ in 0..CASES {
        let period = int(rng.gen_range_i128(2, 50));
        let excess = rng.gen_range_i128(1, 10);
        // D > T.
        let err = Task::builder("t", Criticality::Lo)
            .period(period)
            .deadline(period + int(excess))
            .wcet(Rational::ONE)
            .build()
            .expect_err("unconstrained deadline");
        assert!(
            matches!(err, ModelError::DeadlineExceedsPeriod { .. }),
            "unexpected error: {err:?}"
        );
        // HI task shrinking its WCET.
        let err = Task::builder("t", Criticality::Hi)
            .period(period)
            .deadline(period)
            .wcet_lo(int(excess) + Rational::ONE)
            .wcet_hi(Rational::ONE)
            .build()
            .expect_err("shrinking wcet");
        assert!(
            matches!(err, ModelError::HiWcetSmallerThanLo { .. }),
            "unexpected error: {err:?}"
        );
        // LO task improving its period in HI mode.
        let err = Task::builder("t", Criticality::Lo)
            .period(period + int(excess))
            .deadline(period)
            .period_hi(period)
            .wcet(Rational::ONE)
            .build()
            .expect_err("improved service");
        assert!(
            matches!(err, ModelError::LoServiceImproved { .. }),
            "unexpected error: {err:?}"
        );
    }
}

fn random_mixed_set(rng: &mut Rng) -> TaskSet {
    let len = rng.gen_range_usize(1, 5);
    let tasks: Vec<Task> = (0..len)
        .map(|i| {
            let p = rng.gen_range_i128(2, 100);
            if i % 2 == 0 {
                Task::builder(format!("h{i}"), Criticality::Hi)
                    .period(int(p))
                    .deadline_lo(rat(p, 2).max(Rational::ONE))
                    .deadline_hi(int(p))
                    .wcet_lo(Rational::ONE.min(rat(p, 4)).max(rat(1, 4)))
                    .wcet_hi(rat(p, 4).max(rat(1, 2)).min(int(p)))
                    .build()
                    .expect("valid")
            } else {
                Task::builder(format!("l{i}"), Criticality::Lo)
                    .period(int(p))
                    .deadline(int(p))
                    .wcet(rat(p, 8).max(rat(1, 8)))
                    .build()
                    .expect("valid")
            }
        })
        .collect();
    TaskSet::new(tasks)
}

#[test]
fn task_sets_round_trip_through_json() {
    let mut rng = Rng::seed_from_u64(0x40de_1003);
    for _ in 0..CASES {
        let set = random_mixed_set(&mut rng);
        let json = rbs_json::to_string(&set);
        let back: TaskSet = rbs_json::from_str(&json).expect("deserialize");
        assert_eq!(back, set);
    }
}

#[test]
fn canonical_form_is_order_independent() {
    let mut rng = Rng::seed_from_u64(0x40de_1006);
    for _ in 0..CASES {
        let set = random_mixed_set(&mut rng);
        let mut tasks: Vec<Task> = set.iter().cloned().collect();
        rng.shuffle(&mut tasks);
        let shuffled = TaskSet::new(tasks);
        let a = CanonicalTaskSet::of(&set);
        let b = CanonicalTaskSet::of(&shuffled);
        assert_eq!(a, b, "canonical form depends on declaration order");
        assert_eq!(a.content_hash(), b.content_hash());
    }
}

#[test]
fn scaling_follows_the_paper_equations() {
    let mut rng = Rng::seed_from_u64(0x40de_1004);
    for _ in 0..CASES {
        let period = rng.gen_range_i128(2, 200);
        let x = rat(rng.gen_range_i128(1, 100), 100);
        let y = rat(rng.gen_range_i128(100, 400), 100);
        let factors = ScalingFactors::new(x, y).expect("in range");
        let specs = vec![
            ImplicitTaskSpec::hi(
                "h",
                int(period),
                rat(period, 10).max(rat(1, 10)),
                rat(period, 5).max(rat(1, 5)),
            ),
            ImplicitTaskSpec::lo("l", int(period), rat(period, 10).max(rat(1, 10))),
        ];
        let set = scaled_task_set(&specs, factors).expect("valid");
        // eq. (13): HI tasks.
        let h = &set[0];
        assert_eq!(h.lo().deadline(), x * int(period));
        assert_eq!(h.params(Mode::Hi).expect("hi").deadline(), int(period));
        assert_eq!(h.params(Mode::Hi).expect("hi").period(), int(period));
        // eq. (14): LO tasks.
        let l = &set[1];
        assert_eq!(l.lo().deadline(), int(period));
        assert_eq!(l.params(Mode::Hi).expect("hi").period(), y * int(period));
        assert_eq!(l.params(Mode::Hi).expect("hi").deadline(), y * int(period));
    }
}

#[test]
fn termination_zeroes_hi_contributions() {
    let mut rng = Rng::seed_from_u64(0x40de_1005);
    for _ in 0..CASES {
        let len = rng.gen_range_usize(1, 4);
        let tasks: Vec<Task> = (0..len)
            .map(|i| {
                let p = rng.gen_range_i128(2, 100);
                Task::builder(format!("l{i}"), Criticality::Lo)
                    .period(int(p))
                    .deadline(int(p))
                    .wcet(rat(p, 4).max(rat(1, 4)))
                    .build()
                    .expect("valid")
            })
            .collect();
        let set = TaskSet::new(tasks);
        let terminated = set.with_lo_terminated().expect("all LO");
        assert_eq!(terminated.utilization(Mode::Hi), Rational::ZERO);
        assert_eq!(terminated.total_wcet(Mode::Hi), Rational::ZERO);
        assert_eq!(terminated.hyperperiod(Mode::Hi), None);
        // LO mode untouched.
        assert_eq!(terminated.utilization(Mode::Lo), set.utilization(Mode::Lo));
    }
}
