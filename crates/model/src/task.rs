//! Tasks and the task builder.

use std::fmt;

use rbs_json::{FromJson, Json, JsonError, ToJson};
use rbs_timebase::Rational;

use crate::{Criticality, Mode, ModeParams, ModelError};

/// What a task does after the system switches to HI mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HiBehavior {
    /// The task keeps running with the given (possibly degraded)
    /// parameters. HI tasks always continue; LO tasks continue with
    /// `T(HI) ≥ T(LO)`, `D(HI) ≥ D(LO)` per eq. (2).
    Continue(ModeParams),
    /// The task is terminated at the mode switch (LO tasks only): its
    /// pending jobs are discarded and no further jobs are released until
    /// the system resets to LO mode. This is eq. (3)'s
    /// `T(HI) = D(HI) = +∞` special case.
    Terminated,
}

impl HiBehavior {
    /// The HI-mode parameters, or `None` if the task is terminated.
    #[must_use]
    pub fn params(&self) -> Option<&ModeParams> {
        match self {
            HiBehavior::Continue(p) => Some(p),
            HiBehavior::Terminated => None,
        }
    }
}

/// A dual-criticality sporadic task with per-mode parameters.
///
/// Construct via [`Task::builder`]; the builder validates the paper's
/// model constraints (eqs. (1)–(3)) and returns a [`ModelError`] when they
/// are violated.
///
/// # Examples
///
/// A HI task that prepares for overrun by shortening its LO-mode deadline:
///
/// ```
/// use rbs_model::{Criticality, Mode, Task};
/// use rbs_timebase::Rational;
///
/// # fn main() -> Result<(), rbs_model::ModelError> {
/// let task = Task::builder("ctrl", Criticality::Hi)
///     .period(Rational::integer(5))
///     .deadline_lo(Rational::integer(2))
///     .deadline_hi(Rational::integer(5))
///     .wcet_lo(Rational::integer(1))
///     .wcet_hi(Rational::integer(2))
///     .build()?;
/// assert_eq!(task.utilization(Mode::Hi), Rational::new(2, 5));
/// assert_eq!(task.gamma(), Some(Rational::integer(2)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Task {
    name: String,
    criticality: Criticality,
    lo: ModeParams,
    hi: HiBehavior,
}

impl Task {
    /// Starts building a task with the given name and criticality.
    #[must_use]
    pub fn builder(name: impl Into<String>, criticality: Criticality) -> TaskBuilder {
        TaskBuilder::new(name, criticality)
    }

    /// The task name (unique names are recommended but not enforced).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The task's criticality level.
    #[must_use]
    pub const fn criticality(&self) -> Criticality {
        self.criticality
    }

    /// LO-mode parameters `{T(LO), D(LO), C(LO)}`.
    #[must_use]
    pub const fn lo(&self) -> &ModeParams {
        &self.lo
    }

    /// The task's behaviour in HI mode.
    #[must_use]
    pub const fn hi_behavior(&self) -> &HiBehavior {
        &self.hi
    }

    /// Parameters in the given mode; `None` when the task is terminated in
    /// HI mode.
    #[must_use]
    pub fn params(&self, mode: Mode) -> Option<&ModeParams> {
        match mode {
            Mode::Lo => Some(&self.lo),
            Mode::Hi => self.hi.params(),
        }
    }

    /// Whether the task is terminated at the LO→HI mode switch.
    #[must_use]
    pub fn is_terminated_in_hi(&self) -> bool {
        matches!(self.hi, HiBehavior::Terminated)
    }

    /// Utilization `C(mode)/T(mode)`; zero for a task terminated in HI
    /// mode when `mode` is HI.
    #[must_use]
    pub fn utilization(&self, mode: Mode) -> Rational {
        self.params(mode)
            .map_or(Rational::ZERO, ModeParams::utilization)
    }

    /// The WCET inflation factor `γ = C(HI)/C(LO)` of a HI task
    /// (Section VI), or `None` for LO tasks and tasks with `C(LO) = 0`.
    #[must_use]
    pub fn gamma(&self) -> Option<Rational> {
        if self.criticality != Criticality::Hi || self.lo.wcet().is_zero() {
            return None;
        }
        self.hi.params().map(|hi| hi.wcet() / self.lo.wcet())
    }

    /// Returns a copy of this task with the LO task terminated in HI mode.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::HiTaskTerminated`] for HI-criticality tasks.
    pub fn terminated(&self) -> Result<Task, ModelError> {
        if self.criticality == Criticality::Hi {
            return Err(ModelError::HiTaskTerminated {
                task: self.name.clone(),
            });
        }
        Ok(Task {
            hi: HiBehavior::Terminated,
            ..self.clone()
        })
    }
}

/// Wire format: `{"Continue": ModeParams}` or the string `"Terminated"`
/// (externally-tagged enum encoding).
impl ToJson for HiBehavior {
    fn to_json(&self) -> Json {
        match self {
            HiBehavior::Continue(p) => Json::Object(vec![("Continue".to_owned(), p.to_json())]),
            HiBehavior::Terminated => Json::Str("Terminated".to_owned()),
        }
    }
}

impl FromJson for HiBehavior {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Str(s) if s == "Terminated" => Ok(HiBehavior::Terminated),
            Json::Object(_) => {
                let params = value.field("Continue")?;
                Ok(HiBehavior::Continue(ModeParams::from_json(params)?))
            }
            _ => Err(JsonError::new(
                "expected `{\"Continue\": ...}` or `\"Terminated\"`",
            )),
        }
    }
}

/// Wire format: `{"name", "criticality", "lo", "hi"}`.
///
/// Deserialization goes through [`TaskBuilder`], so a decoded task always
/// satisfies the model constraints (eqs. (1)–(3)); invalid parameter
/// combinations are reported as [`JsonError`]s.
impl ToJson for Task {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("name".to_owned(), Json::Str(self.name.clone())),
            ("criticality".to_owned(), self.criticality.to_json()),
            ("lo".to_owned(), self.lo.to_json()),
            ("hi".to_owned(), self.hi.to_json()),
        ])
    }
}

impl FromJson for Task {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let name = value
            .field("name")?
            .as_str()
            .ok_or_else(|| JsonError::new("task `name` must be a string"))?;
        let criticality = Criticality::from_json(value.field("criticality")?)?;
        let lo = ModeParams::from_json(value.field("lo")?)?;
        let hi = HiBehavior::from_json(value.field("hi")?)?;

        let mut builder = Task::builder(name, criticality)
            .period(lo.period())
            .deadline_lo(lo.deadline())
            .wcet_lo(lo.wcet());
        match hi {
            HiBehavior::Continue(p) => {
                builder = builder
                    .period_hi(p.period())
                    .deadline_hi(p.deadline())
                    .wcet_hi(p.wcet());
            }
            HiBehavior::Terminated => builder = builder.terminated(),
        }
        builder
            .build()
            .map_err(|e| JsonError::new(format!("invalid task: {e}")))
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] LO{}", self.name, self.criticality, self.lo)?;
        match &self.hi {
            HiBehavior::Continue(p) => write!(f, " HI{p}"),
            HiBehavior::Terminated => write!(f, " HI(terminated)"),
        }
    }
}

/// Builder for [`Task`] (see [`Task::builder`]).
///
/// Field conventions:
///
/// * `period`, `deadline`, `wcet` set the value for **both** modes;
/// * `_lo`/`_hi` suffixed setters override a single mode;
/// * unset HI values default to the LO values (no degradation / no WCET
///   inflation);
/// * [`TaskBuilder::terminated`] marks a LO task as terminated in HI mode.
#[derive(Debug, Clone)]
pub struct TaskBuilder {
    name: String,
    criticality: Criticality,
    period_lo: Option<Rational>,
    period_hi: Option<Rational>,
    deadline_lo: Option<Rational>,
    deadline_hi: Option<Rational>,
    wcet_lo: Option<Rational>,
    wcet_hi: Option<Rational>,
    terminated: bool,
}

impl TaskBuilder {
    fn new(name: impl Into<String>, criticality: Criticality) -> TaskBuilder {
        TaskBuilder {
            name: name.into(),
            criticality,
            period_lo: None,
            period_hi: None,
            deadline_lo: None,
            deadline_hi: None,
            wcet_lo: None,
            wcet_hi: None,
            terminated: false,
        }
    }

    /// Sets the minimum inter-arrival time for both modes.
    #[must_use]
    pub fn period(mut self, period: Rational) -> Self {
        self.period_lo = Some(period);
        self
    }

    /// Sets the degraded HI-mode inter-arrival time (LO tasks, eq. (2)).
    #[must_use]
    pub fn period_hi(mut self, period: Rational) -> Self {
        self.period_hi = Some(period);
        self
    }

    /// Sets the relative deadline for both modes.
    #[must_use]
    pub fn deadline(mut self, deadline: Rational) -> Self {
        self.deadline_lo = Some(deadline);
        self.deadline_hi = Some(deadline);
        self
    }

    /// Sets the LO-mode deadline (shortened for HI tasks, eq. (1)).
    #[must_use]
    pub fn deadline_lo(mut self, deadline: Rational) -> Self {
        self.deadline_lo = Some(deadline);
        self
    }

    /// Sets the HI-mode deadline.
    #[must_use]
    pub fn deadline_hi(mut self, deadline: Rational) -> Self {
        self.deadline_hi = Some(deadline);
        self
    }

    /// Sets the WCET for both modes.
    #[must_use]
    pub fn wcet(mut self, wcet: Rational) -> Self {
        self.wcet_lo = Some(wcet);
        self.wcet_hi = Some(wcet);
        self
    }

    /// Sets the LO-mode (optimistic) WCET.
    #[must_use]
    pub fn wcet_lo(mut self, wcet: Rational) -> Self {
        self.wcet_lo = Some(wcet);
        self
    }

    /// Sets the HI-mode (pessimistic) WCET.
    #[must_use]
    pub fn wcet_hi(mut self, wcet: Rational) -> Self {
        self.wcet_hi = Some(wcet);
        self
    }

    /// Marks the task as terminated at the LO→HI switch (LO tasks only).
    #[must_use]
    pub fn terminated(mut self) -> Self {
        self.terminated = true;
        self
    }

    /// Validates the model constraints and builds the task.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] describing the first violated constraint
    /// of Section II / eqs. (1)–(3); see the `ModelError` variants.
    pub fn build(self) -> Result<Task, ModelError> {
        let task_name = || self.name.clone();
        let missing = |field| ModelError::MissingField {
            task: task_name(),
            field,
        };
        let period_lo = self.period_lo.ok_or_else(|| missing("period"))?;
        let deadline_lo = self
            .deadline_lo
            .or(self.deadline_hi)
            .ok_or_else(|| missing("deadline"))?;
        let wcet_lo = self.wcet_lo.ok_or_else(|| missing("wcet"))?;
        let lo = ModeParams::new(period_lo, deadline_lo, wcet_lo);

        if self.terminated {
            if self.criticality == Criticality::Hi {
                return Err(ModelError::HiTaskTerminated { task: task_name() });
            }
            let task = Task {
                name: self.name,
                criticality: self.criticality,
                lo,
                hi: HiBehavior::Terminated,
            };
            validate_mode(&task, &task.lo)?;
            return Ok(task);
        }

        let period_hi = self.period_hi.unwrap_or(period_lo);
        let deadline_hi = self.deadline_hi.unwrap_or(deadline_lo);
        let wcet_hi = self.wcet_hi.unwrap_or(wcet_lo);
        let hi = ModeParams::new(period_hi, deadline_hi, wcet_hi);

        let task = Task {
            name: self.name,
            criticality: self.criticality,
            lo,
            hi: HiBehavior::Continue(hi),
        };
        validate_mode(&task, &task.lo)?;
        validate_mode(&task, &hi)?;
        match task.criticality {
            Criticality::Hi => {
                // eq. (1): T(HI) = T(LO), D(LO) <= D(HI), C(HI) >= C(LO).
                if hi.period() != lo.period() {
                    return Err(ModelError::HiTaskPeriodChanged { task: task.name });
                }
                if lo.deadline() > hi.deadline() {
                    return Err(ModelError::HiDeadlineNotPrepared { task: task.name });
                }
                if hi.wcet() < lo.wcet() {
                    return Err(ModelError::HiWcetSmallerThanLo { task: task.name });
                }
            }
            Criticality::Lo => {
                // eq. (2): C(HI) = C(LO), T(HI) >= T(LO), D(HI) >= D(LO).
                if hi.wcet() != lo.wcet() {
                    return Err(ModelError::LoWcetChanged { task: task.name });
                }
                if hi.period() < lo.period() || hi.deadline() < lo.deadline() {
                    return Err(ModelError::LoServiceImproved { task: task.name });
                }
            }
        }
        Ok(task)
    }
}

fn validate_mode(task: &Task, params: &ModeParams) -> Result<(), ModelError> {
    let name = || task.name().to_owned();
    if !params.period().is_positive() {
        return Err(ModelError::NonPositivePeriod { task: name() });
    }
    if !params.deadline().is_positive() {
        return Err(ModelError::NonPositiveDeadline { task: name() });
    }
    if params.wcet().is_negative() {
        return Err(ModelError::NegativeWcet { task: name() });
    }
    if params.deadline() > params.period() {
        return Err(ModelError::DeadlineExceedsPeriod { task: name() });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i128) -> Rational {
        Rational::integer(v)
    }

    fn hi_task() -> Task {
        Task::builder("tau1", Criticality::Hi)
            .period(int(5))
            .deadline_lo(int(2))
            .deadline_hi(int(5))
            .wcet_lo(int(1))
            .wcet_hi(int(2))
            .build()
            .expect("valid HI task")
    }

    fn lo_task() -> Task {
        Task::builder("tau2", Criticality::Lo)
            .period(int(10))
            .deadline(int(10))
            .wcet(int(3))
            .build()
            .expect("valid LO task")
    }

    #[test]
    fn hi_task_accessors() {
        let t = hi_task();
        assert_eq!(t.name(), "tau1");
        assert_eq!(t.criticality(), Criticality::Hi);
        assert_eq!(t.lo().deadline(), int(2));
        assert_eq!(t.params(Mode::Hi).expect("continues").deadline(), int(5));
        assert_eq!(t.utilization(Mode::Lo), Rational::new(1, 5));
        assert_eq!(t.utilization(Mode::Hi), Rational::new(2, 5));
        assert_eq!(t.gamma(), Some(int(2)));
        assert!(!t.is_terminated_in_hi());
    }

    #[test]
    fn lo_task_defaults_to_undegraded_hi_params() {
        let t = lo_task();
        let hi = t.params(Mode::Hi).expect("continues");
        assert_eq!(hi, t.lo());
        assert_eq!(t.gamma(), None);
    }

    #[test]
    fn degraded_lo_task() {
        let t = Task::builder("tau2", Criticality::Lo)
            .period(int(10))
            .period_hi(int(20))
            .deadline_lo(int(10))
            .deadline_hi(int(15))
            .wcet(int(3))
            .build()
            .expect("valid degraded LO task");
        let hi = t.params(Mode::Hi).expect("continues");
        assert_eq!(hi.period(), int(20));
        assert_eq!(hi.deadline(), int(15));
        assert_eq!(hi.wcet(), int(3));
    }

    #[test]
    fn terminated_lo_task_has_no_hi_params() {
        let t = lo_task().terminated().expect("LO task can terminate");
        assert!(t.is_terminated_in_hi());
        assert_eq!(t.params(Mode::Hi), None);
        assert_eq!(t.utilization(Mode::Hi), Rational::ZERO);
        assert!(t.to_string().contains("terminated"));
    }

    #[test]
    fn builder_terminated_flag() {
        let t = Task::builder("bg", Criticality::Lo)
            .period(int(4))
            .deadline(int(4))
            .wcet(int(1))
            .terminated()
            .build()
            .expect("valid");
        assert!(t.is_terminated_in_hi());
    }

    #[test]
    fn hi_task_cannot_be_terminated() {
        let err = hi_task().terminated().expect_err("HI task");
        assert_eq!(
            err,
            ModelError::HiTaskTerminated {
                task: "tau1".to_owned()
            }
        );
        let err = Task::builder("h", Criticality::Hi)
            .period(int(5))
            .deadline(int(5))
            .wcet(int(1))
            .terminated()
            .build()
            .expect_err("HI task");
        assert!(matches!(err, ModelError::HiTaskTerminated { .. }));
    }

    #[test]
    fn missing_fields_are_reported() {
        let err = Task::builder("t", Criticality::Lo)
            .build()
            .expect_err("no fields");
        assert!(matches!(
            err,
            ModelError::MissingField {
                field: "period",
                ..
            }
        ));
        let err = Task::builder("t", Criticality::Lo)
            .period(int(5))
            .build()
            .expect_err("no deadline");
        assert!(matches!(
            err,
            ModelError::MissingField {
                field: "deadline",
                ..
            }
        ));
        let err = Task::builder("t", Criticality::Lo)
            .period(int(5))
            .deadline(int(5))
            .build()
            .expect_err("no wcet");
        assert!(matches!(
            err,
            ModelError::MissingField { field: "wcet", .. }
        ));
    }

    #[test]
    fn constraint_violations_are_rejected() {
        // Non-positive period.
        let err = Task::builder("t", Criticality::Lo)
            .period(int(0))
            .deadline(int(1))
            .wcet(int(1))
            .build()
            .expect_err("zero period");
        assert!(matches!(err, ModelError::NonPositivePeriod { .. }));

        // D > T.
        let err = Task::builder("t", Criticality::Lo)
            .period(int(5))
            .deadline(int(6))
            .wcet(int(1))
            .build()
            .expect_err("unconstrained deadline");
        assert!(matches!(err, ModelError::DeadlineExceedsPeriod { .. }));

        // Negative WCET.
        let err = Task::builder("t", Criticality::Lo)
            .period(int(5))
            .deadline(int(5))
            .wcet(int(-1))
            .build()
            .expect_err("negative wcet");
        assert!(matches!(err, ModelError::NegativeWcet { .. }));

        // HI task with period change.
        let err = Task::builder("t", Criticality::Hi)
            .period(int(5))
            .period_hi(int(6))
            .deadline(int(5))
            .wcet(int(1))
            .build()
            .expect_err("period change");
        assert!(matches!(err, ModelError::HiTaskPeriodChanged { .. }));

        // HI task with D(LO) > D(HI).
        let err = Task::builder("t", Criticality::Hi)
            .period(int(5))
            .deadline_lo(int(5))
            .deadline_hi(int(4))
            .wcet(int(1))
            .build()
            .expect_err("deadline not prepared");
        assert!(matches!(err, ModelError::HiDeadlineNotPrepared { .. }));

        // HI task with C(HI) < C(LO).
        let err = Task::builder("t", Criticality::Hi)
            .period(int(5))
            .deadline(int(5))
            .wcet_lo(int(2))
            .wcet_hi(int(1))
            .build()
            .expect_err("shrinking wcet");
        assert!(matches!(err, ModelError::HiWcetSmallerThanLo { .. }));

        // LO task changing WCET.
        let err = Task::builder("t", Criticality::Lo)
            .period(int(5))
            .deadline(int(5))
            .wcet_lo(int(1))
            .wcet_hi(int(2))
            .build()
            .expect_err("lo wcet change");
        assert!(matches!(err, ModelError::LoWcetChanged { .. }));

        // LO task improving service.
        let err = Task::builder("t", Criticality::Lo)
            .period(int(10))
            .period_hi(int(5))
            .deadline_lo(int(5))
            .wcet(int(1))
            .build()
            .expect_err("improved service");
        assert!(matches!(err, ModelError::LoServiceImproved { .. }));
    }

    #[test]
    fn hi_task_with_equal_deadlines_is_allowed() {
        // Allowed by the model; the analysis then reports unbounded
        // speedup (see the discussion after eq. (8)).
        let t = Task::builder("t", Criticality::Hi)
            .period(int(5))
            .deadline(int(5))
            .wcet_lo(int(1))
            .wcet_hi(int(2))
            .build()
            .expect("valid, if hopeless");
        assert_eq!(
            t.lo().deadline(),
            t.params(Mode::Hi).expect("continues").deadline()
        );
    }

    #[test]
    fn display_lists_both_modes() {
        let t = hi_task();
        let text = t.to_string();
        assert!(text.contains("tau1"));
        assert!(text.contains("[HI]"));
        assert!(text.contains("LO(T=5, D=2, C=1)"));
        assert!(text.contains("HI(T=5, D=5, C=2)"));
    }

    #[test]
    fn json_round_trip() {
        for t in [hi_task(), lo_task(), lo_task().terminated().expect("lo")] {
            let json = rbs_json::to_string(&t);
            let back: Task = rbs_json::from_str(&json).expect("deserialize");
            assert_eq!(back, t);
        }
    }

    #[test]
    fn json_rejects_constraint_violations() {
        // A HI task whose HI-mode period differs from LO violates eq. (1)
        // and must be rejected at decode time.
        let text = r#"{
            "name": "bad", "criticality": "Hi",
            "lo": {"period": {"num":5,"den":1}, "deadline": {"num":5,"den":1},
                   "wcet": {"num":1,"den":1}},
            "hi": {"Continue": {"period": {"num":6,"den":1},
                   "deadline": {"num":6,"den":1}, "wcet": {"num":1,"den":1}}}
        }"#;
        let result: Result<Task, _> = rbs_json::from_str(text);
        assert!(result.is_err());
    }
}
