//! Dual-criticality sporadic task model with per-mode parameters.
//!
//! This crate implements the system model of *"Run and Be Safe:
//! Mixed-Criticality Scheduling with Temporary Processor Speedup"*
//! (Huang, Kumar, Giannopoulou, Thiele — DATE 2015), Section II:
//!
//! * every task `τ_i` is sporadic with constrained deadlines and carries a
//!   [`Criticality`] level (`LO` or `HI`);
//! * task parameters `{T_i(χ), D_i(χ), C_i(χ)}` exist **per operating
//!   mode** `χ ∈ {LO, HI}` ([`ModeParams`]);
//! * HI-criticality tasks keep their period across modes, may have their
//!   LO-mode deadline shortened (*preparation for overrun*, eq. (1)) and a
//!   larger HI-mode WCET;
//! * LO-criticality tasks keep their WCET but may have their service
//!   *degraded* in HI mode (longer period and/or deadline, eq. (2)) or be
//!   *terminated* outright (eq. (3), modeled as
//!   [`HiBehavior::Terminated`]).
//!
//! Validation of the paper's constraints happens at construction time so
//! that analysis code can rely on a well-formed [`TaskSet`].
//!
//! # Examples
//!
//! Building the reconstructed Table I task set:
//!
//! ```
//! use rbs_model::{Criticality, Task, TaskSet};
//! use rbs_timebase::Rational;
//!
//! # fn main() -> Result<(), rbs_model::ModelError> {
//! let tau1 = Task::builder("tau1", Criticality::Hi)
//!     .period(Rational::integer(5))
//!     .deadline_lo(Rational::integer(2))
//!     .deadline_hi(Rational::integer(5))
//!     .wcet_lo(Rational::integer(1))
//!     .wcet_hi(Rational::integer(2))
//!     .build()?;
//! let tau2 = Task::builder("tau2", Criticality::Lo)
//!     .period(Rational::integer(10))
//!     .deadline(Rational::integer(10))
//!     .wcet(Rational::integer(3))
//!     .build()?;
//! let set = TaskSet::new(vec![tau1, tau2]);
//! assert_eq!(set.len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canonical;
mod criticality;
mod error;
mod params;
mod scaling;
mod task;
mod taskset;

pub use canonical::CanonicalTaskSet;
pub use criticality::{Criticality, Mode};
pub use error::ModelError;
pub use params::ModeParams;
pub use scaling::{scaled_task_set, ImplicitTaskSpec, ScalingFactors};
pub use task::{HiBehavior, Task, TaskBuilder};
pub use taskset::TaskSet;
