//! Canonical forms and content hashing for task sets.
//!
//! The admission-control service (`rbs-svc`) memoizes analysis results, so
//! it needs a *stable identity* for a task set: two submissions that
//! describe the same workload must map to the same cache key even when
//! their JSON spells rationals unreduced, lists tasks in a different order,
//! or names them differently in the same order.
//!
//! [`CanonicalTaskSet`] provides that identity:
//!
//! * rationals are already normalized by construction (`rbs-timebase`
//!   reduces and fixes the sign of every value);
//! * tasks are sorted by a total order over their *parameters* (criticality,
//!   LO triple, HI behavior, then name as the final tie-breaker), so
//!   declaration order does not matter;
//! * the canonical byte string enumerates every parameter exactly
//!   (`num/den` in decimal), so equal bytes ⇔ equal canonical sets;
//! * [`CanonicalTaskSet::content_hash`] is a 64-bit FNV-1a over those bytes
//!   for cheap shard selection and map lookup. The cache stores the full
//!   byte string alongside the hash — a hash collision can never return the
//!   wrong report.

use std::fmt;

use rbs_timebase::Rational;

use crate::{HiBehavior, Task, TaskSet};

/// A task set reduced to canonical form: parameter-sorted tasks rendered to
/// a stable byte string, plus the FNV-1a hash of those bytes.
///
/// # Examples
///
/// ```
/// use rbs_model::{canonical::CanonicalTaskSet, Criticality, Task, TaskSet};
/// use rbs_timebase::Rational;
///
/// # fn main() -> Result<(), rbs_model::ModelError> {
/// let a = Task::builder("a", Criticality::Lo)
///     .period(Rational::integer(4))
///     .deadline(Rational::integer(4))
///     .wcet(Rational::integer(1))
///     .build()?;
/// let b = Task::builder("b", Criticality::Hi)
///     .period(Rational::integer(6))
///     .deadline_lo(Rational::integer(3))
///     .deadline_hi(Rational::integer(6))
///     .wcet_lo(Rational::integer(1))
///     .wcet_hi(Rational::integer(2))
///     .build()?;
/// let forward = TaskSet::new(vec![a.clone(), b.clone()]);
/// let reversed = TaskSet::new(vec![b, a]);
/// let ca = CanonicalTaskSet::of(&forward);
/// let cb = CanonicalTaskSet::of(&reversed);
/// assert_eq!(ca, cb);
/// assert_eq!(ca.content_hash(), cb.content_hash());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CanonicalTaskSet {
    bytes: Vec<u8>,
    hash: u64,
}

impl CanonicalTaskSet {
    /// Computes the canonical form of `set`.
    #[must_use]
    pub fn of(set: &TaskSet) -> CanonicalTaskSet {
        let mut tasks: Vec<&Task> = set.iter().collect();
        tasks.sort_by(|a, b| task_order(a, b));
        let mut bytes = Vec::with_capacity(tasks.len() * 64);
        for task in tasks {
            encode_task(task, &mut bytes);
        }
        let hash = fnv1a64(&bytes);
        CanonicalTaskSet { bytes, hash }
    }

    /// The canonical form of a sweep request: the parameter-sorted spec
    /// list plus the grid (`x`, `ys`, `speeds`). The byte string is
    /// domain-prefixed so it can never collide with a plain task-set
    /// form, and the grid lists keep request order (a reordered `ys`
    /// produces a differently-ordered response, so it is a different
    /// cache entry). Spec order, by contrast, never affects a sweep
    /// result, so permuted spec lists canonicalize identically.
    #[must_use]
    pub fn of_sweep(
        specs: &[crate::ImplicitTaskSpec],
        x: Option<Rational>,
        ys: &[Rational],
        speeds: &[Rational],
    ) -> CanonicalTaskSet {
        let mut sorted: Vec<&crate::ImplicitTaskSpec> = specs.iter().collect();
        sorted.sort_by_key(|s| {
            (
                s.criticality(),
                s.period(),
                s.wcet_lo(),
                s.wcet_hi(),
                s.name().to_owned(),
            )
        });
        let mut bytes = Vec::with_capacity(sorted.len() * 48 + 64);
        bytes.extend_from_slice(b"sweep");
        match x {
            Some(x) => encode_rational(x, &mut bytes),
            None => bytes.push(b'*'),
        }
        bytes.push(b'|');
        for &y in ys {
            encode_rational(y, &mut bytes);
        }
        bytes.push(b'|');
        for &s in speeds {
            encode_rational(s, &mut bytes);
        }
        bytes.push(b'|');
        for spec in sorted {
            bytes.push(b'S');
            bytes.extend_from_slice(spec.name().as_bytes());
            bytes.push(0);
            bytes.push(match spec.criticality() {
                crate::Criticality::Lo => b'L',
                crate::Criticality::Hi => b'H',
            });
            encode_rational(spec.period(), &mut bytes);
            encode_rational(spec.wcet_lo(), &mut bytes);
            encode_rational(spec.wcet_hi(), &mut bytes);
            bytes.push(b';');
        }
        let hash = fnv1a64(&bytes);
        CanonicalTaskSet { bytes, hash }
    }

    /// The canonical form of a partition request: the parameter-sorted
    /// task set plus an opaque `detail` blob encoding the placement spec
    /// (cores, speedup cap, heuristic, objective — rendered by the
    /// partitioning crate, which owns those types). Domain-prefixed so
    /// it can never collide with a plain task-set or sweep form; task
    /// order never affects a placement result (the partitioner sorts by
    /// utilization internally), so permuted sets canonicalize
    /// identically.
    #[must_use]
    pub fn of_partition(set: &TaskSet, detail: &[u8]) -> CanonicalTaskSet {
        let mut tasks: Vec<&Task> = set.iter().collect();
        tasks.sort_by(|a, b| task_order(a, b));
        let mut bytes = Vec::with_capacity(tasks.len() * 64 + detail.len() + 16);
        bytes.extend_from_slice(b"partition");
        bytes.extend_from_slice(detail);
        bytes.push(b'|');
        for task in tasks {
            encode_task(task, &mut bytes);
        }
        let hash = fnv1a64(&bytes);
        CanonicalTaskSet { bytes, hash }
    }

    /// The canonical byte string. Equal bytes ⇔ same canonical set.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// 64-bit FNV-1a hash of [`Self::bytes`]; suitable for shard selection
    /// and hash-map keys, but always confirm equality on the bytes.
    #[must_use]
    pub const fn content_hash(&self) -> u64 {
        self.hash
    }
}

impl fmt::Display for CanonicalTaskSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.hash)
    }
}

/// Total order over tasks by parameters first, name last, so that sets
/// that differ only in declaration order canonicalize identically.
fn task_order(a: &Task, b: &Task) -> std::cmp::Ordering {
    let key = |t: &Task| {
        (
            t.criticality(),
            t.lo().period(),
            t.lo().deadline(),
            t.lo().wcet(),
        )
    };
    key(a)
        .cmp(&key(b))
        .then_with(|| hi_key(a).cmp(&hi_key(b)))
        .then_with(|| a.name().cmp(b.name()))
}

/// HI behavior as an orderable key; `None` (terminated) sorts first.
fn hi_key(t: &Task) -> Option<(Rational, Rational, Rational)> {
    t.hi_behavior()
        .params()
        .map(|p| (p.period(), p.deadline(), p.wcet()))
}

fn encode_task(task: &Task, out: &mut Vec<u8>) {
    out.push(b'T');
    out.extend_from_slice(task.name().as_bytes());
    // NUL separates the (arbitrary) name from the structured fields; task
    // names come from JSON strings and cannot contain NUL... but even if one
    // did, the length-free encoding stays unambiguous because every field
    // below has a fixed arity.
    out.push(0);
    out.push(match task.criticality() {
        crate::Criticality::Lo => b'L',
        crate::Criticality::Hi => b'H',
    });
    encode_rational(task.lo().period(), out);
    encode_rational(task.lo().deadline(), out);
    encode_rational(task.lo().wcet(), out);
    match task.hi_behavior() {
        HiBehavior::Terminated => out.push(b'X'),
        HiBehavior::Continue(p) => {
            out.push(b'C');
            encode_rational(p.period(), out);
            encode_rational(p.deadline(), out);
            encode_rational(p.wcet(), out);
        }
    }
    out.push(b';');
}

fn encode_rational(r: Rational, out: &mut Vec<u8>) {
    // Rational is reduced with den > 0 by construction, so the decimal
    // num/den rendering is unique per value.
    out.push(b' ');
    out.extend_from_slice(r.numer().to_string().as_bytes());
    out.push(b'/');
    out.extend_from_slice(r.denom().to_string().as_bytes());
}

/// 64-bit FNV-1a.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Criticality;

    fn int(v: i128) -> Rational {
        Rational::integer(v)
    }

    fn lo_task(name: &str, t: i128, c: i128) -> Task {
        Task::builder(name, Criticality::Lo)
            .period(int(t))
            .deadline(int(t))
            .wcet(int(c))
            .build()
            .expect("valid")
    }

    fn hi_task(name: &str, t: i128, d_lo: i128, c_lo: i128, c_hi: i128) -> Task {
        Task::builder(name, Criticality::Hi)
            .period(int(t))
            .deadline_lo(int(d_lo))
            .deadline_hi(int(t))
            .wcet_lo(int(c_lo))
            .wcet_hi(int(c_hi))
            .build()
            .expect("valid")
    }

    #[test]
    fn order_independent() {
        let a = lo_task("a", 10, 2);
        let b = hi_task("b", 6, 3, 1, 2);
        let c = lo_task("c", 4, 1);
        let forward = TaskSet::new(vec![a.clone(), b.clone(), c.clone()]);
        let shuffled = TaskSet::new(vec![c, a, b]);
        assert_eq!(
            CanonicalTaskSet::of(&forward),
            CanonicalTaskSet::of(&shuffled)
        );
    }

    #[test]
    fn parameters_matter() {
        let base = TaskSet::new(vec![lo_task("a", 10, 2)]);
        let changed = TaskSet::new(vec![lo_task("a", 10, 3)]);
        assert_ne!(CanonicalTaskSet::of(&base), CanonicalTaskSet::of(&changed));
        assert_ne!(
            CanonicalTaskSet::of(&base).content_hash(),
            CanonicalTaskSet::of(&changed).content_hash()
        );
    }

    #[test]
    fn names_matter_but_do_not_break_sorting() {
        // Same parameters, different names: distinct canonical sets, but
        // stable regardless of order.
        let s1 = TaskSet::new(vec![lo_task("x", 10, 2), lo_task("y", 10, 2)]);
        let s2 = TaskSet::new(vec![lo_task("y", 10, 2), lo_task("x", 10, 2)]);
        let s3 = TaskSet::new(vec![lo_task("x", 10, 2), lo_task("z", 10, 2)]);
        assert_eq!(CanonicalTaskSet::of(&s1), CanonicalTaskSet::of(&s2));
        assert_ne!(CanonicalTaskSet::of(&s1), CanonicalTaskSet::of(&s3));
    }

    #[test]
    fn termination_is_part_of_identity() {
        let keep = TaskSet::new(vec![lo_task("a", 10, 2)]);
        let term = TaskSet::new(vec![lo_task("a", 10, 2)
            .terminated()
            .expect("LO task terminates")]);
        assert_ne!(CanonicalTaskSet::of(&keep), CanonicalTaskSet::of(&term));
    }

    #[test]
    fn partition_domain_is_disjoint_and_order_independent() {
        let a = lo_task("a", 10, 2);
        let b = hi_task("b", 6, 3, 1, 2);
        let forward = TaskSet::new(vec![a.clone(), b.clone()]);
        let reversed = TaskSet::new(vec![b, a]);
        let detail = b"cores 4|cap 2/1|h ff|obj cap";
        assert_eq!(
            CanonicalTaskSet::of_partition(&forward, detail),
            CanonicalTaskSet::of_partition(&reversed, detail)
        );
        assert_ne!(
            CanonicalTaskSet::of_partition(&forward, detail),
            CanonicalTaskSet::of(&forward)
        );
        assert_ne!(
            CanonicalTaskSet::of_partition(&forward, detail),
            CanonicalTaskSet::of_partition(&forward, b"cores 5|cap 2/1|h ff|obj cap")
        );
    }

    #[test]
    fn display_is_the_hex_hash() {
        let set = TaskSet::new(vec![lo_task("a", 10, 2)]);
        let canon = CanonicalTaskSet::of(&set);
        assert_eq!(canon.to_string(), format!("{:016x}", canon.content_hash()));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
