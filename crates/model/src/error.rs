//! Validation errors for the task model.

use std::error::Error;
use std::fmt;

use crate::Criticality;

/// Returned when task parameters violate the paper's model constraints
/// (Section II, eqs. (1)–(3)).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A period `T_i(χ)` is zero or negative.
    NonPositivePeriod {
        /// Task name.
        task: String,
    },
    /// A relative deadline `D_i(χ)` is zero or negative.
    NonPositiveDeadline {
        /// Task name.
        task: String,
    },
    /// A WCET `C_i(χ)` is negative.
    NegativeWcet {
        /// Task name.
        task: String,
    },
    /// A deadline exceeds the corresponding period (the model assumes
    /// constrained deadlines, `D_i ≤ T_i`).
    DeadlineExceedsPeriod {
        /// Task name.
        task: String,
    },
    /// A HI-criticality task changed its period across modes
    /// (eq. (1) requires `T_i(HI) = T_i(LO)`).
    HiTaskPeriodChanged {
        /// Task name.
        task: String,
    },
    /// A HI-criticality task has `D_i(LO) > D_i(HI)`; preparation for
    /// overrun requires the LO-mode deadline to be at most the real one.
    HiDeadlineNotPrepared {
        /// Task name.
        task: String,
    },
    /// A HI-criticality task has `C_i(HI) < C_i(LO)`; the HI-mode WCET is
    /// the more pessimistic bound (eq. (1)).
    HiWcetSmallerThanLo {
        /// Task name.
        task: String,
    },
    /// A LO-criticality task changed its WCET across modes
    /// (eq. (2) requires `C_i(HI) = C_i(LO)`).
    LoWcetChanged {
        /// Task name.
        task: String,
    },
    /// A LO-criticality task has its service *improved* in HI mode
    /// (eq. (2) requires `T_i(HI) ≥ T_i(LO)` and `D_i(HI) ≥ D_i(LO)`).
    LoServiceImproved {
        /// Task name.
        task: String,
    },
    /// A HI-criticality task was declared [`crate::HiBehavior::Terminated`];
    /// only LO tasks may be terminated.
    HiTaskTerminated {
        /// Task name.
        task: String,
    },
    /// A required builder field was not supplied.
    MissingField {
        /// Task name.
        task: String,
        /// The field that is missing (e.g. `"period"`).
        field: &'static str,
    },
    /// A scaling factor is outside its valid range (Section V requires
    /// `0 < x ≤ 1` and `y ≥ 1`).
    InvalidScalingFactor {
        /// Which factor (`"x"` or `"y"`).
        which: &'static str,
    },
    /// A task has an unexpected criticality for the requested operation.
    WrongCriticality {
        /// Task name.
        task: String,
        /// The criticality the operation expected.
        expected: Criticality,
    },
}

impl ModelError {
    /// The name of the offending task, when the error concerns one.
    #[must_use]
    pub fn task(&self) -> Option<&str> {
        match self {
            ModelError::NonPositivePeriod { task }
            | ModelError::NonPositiveDeadline { task }
            | ModelError::NegativeWcet { task }
            | ModelError::DeadlineExceedsPeriod { task }
            | ModelError::HiTaskPeriodChanged { task }
            | ModelError::HiDeadlineNotPrepared { task }
            | ModelError::HiWcetSmallerThanLo { task }
            | ModelError::LoWcetChanged { task }
            | ModelError::LoServiceImproved { task }
            | ModelError::HiTaskTerminated { task }
            | ModelError::MissingField { task, .. }
            | ModelError::WrongCriticality { task, .. } => Some(task),
            ModelError::InvalidScalingFactor { .. } => None,
        }
    }
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NonPositivePeriod { task } => {
                write!(f, "task {task:?}: period must be strictly positive")
            }
            ModelError::NonPositiveDeadline { task } => {
                write!(f, "task {task:?}: deadline must be strictly positive")
            }
            ModelError::NegativeWcet { task } => {
                write!(f, "task {task:?}: WCET must be non-negative")
            }
            ModelError::DeadlineExceedsPeriod { task } => {
                write!(
                    f,
                    "task {task:?}: constrained deadlines require D <= T in every mode"
                )
            }
            ModelError::HiTaskPeriodChanged { task } => {
                write!(f, "task {task:?}: HI tasks must keep T(HI) = T(LO)")
            }
            ModelError::HiDeadlineNotPrepared { task } => {
                write!(f, "task {task:?}: HI tasks require D(LO) <= D(HI)")
            }
            ModelError::HiWcetSmallerThanLo { task } => {
                write!(f, "task {task:?}: HI tasks require C(HI) >= C(LO)")
            }
            ModelError::LoWcetChanged { task } => {
                write!(f, "task {task:?}: LO tasks must keep C(HI) = C(LO)")
            }
            ModelError::LoServiceImproved { task } => {
                write!(
                    f,
                    "task {task:?}: LO tasks may only degrade service in HI mode (T, D may not shrink)"
                )
            }
            ModelError::HiTaskTerminated { task } => {
                write!(
                    f,
                    "task {task:?}: only LO-criticality tasks may be terminated"
                )
            }
            ModelError::MissingField { task, field } => {
                write!(f, "task {task:?}: missing required field `{field}`")
            }
            ModelError::InvalidScalingFactor { which } => match *which {
                "x" => write!(f, "scaling factor x must satisfy 0 < x <= 1"),
                _ => write!(f, "scaling factor y must satisfy y >= 1"),
            },
            ModelError::WrongCriticality { task, expected } => {
                write!(f, "task {task:?}: expected a {expected}-criticality task")
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = ModelError::HiDeadlineNotPrepared {
            task: "nav".to_owned(),
        };
        let msg = err.to_string();
        assert!(msg.contains("nav"));
        assert!(msg.contains("D(LO) <= D(HI)"));
        assert_eq!(err.task(), Some("nav"));
    }

    #[test]
    fn scaling_factor_error_has_no_task() {
        let err = ModelError::InvalidScalingFactor { which: "x" };
        assert_eq!(err.task(), None);
        assert!(err.to_string().contains('x'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<ModelError>();
    }
}
