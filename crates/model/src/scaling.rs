//! The implicit-deadline `(x, y)` special case of Section V.
//!
//! Much of the paper's design-space exploration (Figs. 4–6) uses
//! implicit-deadline tasks where
//!
//! * HI tasks prepare for overrun by shortening LO-mode deadlines by a
//!   common factor `0 < x ≤ 1` — eq. (13):
//!   `D_i(LO) = x·D_i(HI)`, `T_i(HI) = T_i(LO) = D_i(HI)`;
//! * LO tasks degrade in HI mode by a common factor `y ≥ 1` — eq. (14):
//!   `D_i(HI) = y·D_i(LO)`, `T_i(χ) = D_i(χ)`.
//!
//! [`ImplicitTaskSpec`] captures the mode-independent part of such a task
//! (period and WCETs); [`scaled_task_set`] instantiates a full
//! [`TaskSet`] for chosen [`ScalingFactors`].

use rbs_json::{FromJson, Json, JsonError, ToJson};
use rbs_timebase::Rational;

use crate::{Criticality, ModelError, Task, TaskSet};

/// The mode-independent description of an implicit-deadline task used by
/// the `(x, y)` parameterization.
///
/// # Examples
///
/// ```
/// use rbs_model::ImplicitTaskSpec;
/// use rbs_timebase::Rational;
///
/// let hi = ImplicitTaskSpec::hi("nav", Rational::integer(100),
///                               Rational::integer(10), Rational::integer(20));
/// assert_eq!(hi.utilization_hi(), Rational::new(1, 5));
/// let lo = ImplicitTaskSpec::lo("log", Rational::integer(50), Rational::integer(5));
/// assert_eq!(lo.utilization_lo(), Rational::new(1, 10));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ImplicitTaskSpec {
    name: String,
    criticality: Criticality,
    period: Rational,
    wcet_lo: Rational,
    wcet_hi: Rational,
}

impl ImplicitTaskSpec {
    /// A HI-criticality implicit-deadline task with optimistic and
    /// pessimistic WCETs.
    #[must_use]
    pub fn hi(
        name: impl Into<String>,
        period: Rational,
        wcet_lo: Rational,
        wcet_hi: Rational,
    ) -> ImplicitTaskSpec {
        ImplicitTaskSpec {
            name: name.into(),
            criticality: Criticality::Hi,
            period,
            wcet_lo,
            wcet_hi,
        }
    }

    /// A LO-criticality implicit-deadline task (single WCET by eq. (2)).
    #[must_use]
    pub fn lo(name: impl Into<String>, period: Rational, wcet: Rational) -> ImplicitTaskSpec {
        ImplicitTaskSpec {
            name: name.into(),
            criticality: Criticality::Lo,
            period,
            wcet_lo: wcet,
            wcet_hi: wcet,
        }
    }

    /// Task name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Criticality level.
    #[must_use]
    pub const fn criticality(&self) -> Criticality {
        self.criticality
    }

    /// Implicit period/deadline.
    #[must_use]
    pub const fn period(&self) -> Rational {
        self.period
    }

    /// LO-mode WCET.
    #[must_use]
    pub const fn wcet_lo(&self) -> Rational {
        self.wcet_lo
    }

    /// HI-mode WCET (equal to [`Self::wcet_lo`] for LO tasks).
    #[must_use]
    pub const fn wcet_hi(&self) -> Rational {
        self.wcet_hi
    }

    /// LO-mode utilization `C(LO)/T`.
    #[must_use]
    pub fn utilization_lo(&self) -> Rational {
        self.wcet_lo / self.period
    }

    /// HI-mode utilization `C(HI)/T` (ignoring HI-mode degradation of the
    /// period, i.e. with respect to the nominal period).
    #[must_use]
    pub fn utilization_hi(&self) -> Rational {
        self.wcet_hi / self.period
    }
}

/// Wire format: `{"name", "criticality", "period", "wcet_lo", "wcet_hi"}`.
impl ToJson for ImplicitTaskSpec {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("name".to_owned(), Json::Str(self.name.clone())),
            ("criticality".to_owned(), self.criticality.to_json()),
            ("period".to_owned(), self.period.to_json()),
            ("wcet_lo".to_owned(), self.wcet_lo.to_json()),
            ("wcet_hi".to_owned(), self.wcet_hi.to_json()),
        ])
    }
}

impl FromJson for ImplicitTaskSpec {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(ImplicitTaskSpec {
            name: value
                .field("name")?
                .as_str()
                .ok_or_else(|| JsonError::new("spec `name` must be a string"))?
                .to_owned(),
            criticality: Criticality::from_json(value.field("criticality")?)?,
            period: Rational::from_json(value.field("period")?)?,
            wcet_lo: Rational::from_json(value.field("wcet_lo")?)?,
            wcet_hi: Rational::from_json(value.field("wcet_hi")?)?,
        })
    }
}

/// The common deadline-shortening factor `x` and service-degradation
/// factor `y` of Section V.
///
/// # Examples
///
/// ```
/// use rbs_model::ScalingFactors;
/// use rbs_timebase::Rational;
///
/// # fn main() -> Result<(), rbs_model::ModelError> {
/// let f = ScalingFactors::new(Rational::new(1, 2), Rational::integer(2))?;
/// assert_eq!(f.x(), Rational::new(1, 2));
/// assert_eq!(f.y(), Rational::integer(2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScalingFactors {
    x: Rational,
    y: Rational,
}

impl ScalingFactors {
    /// Validates `0 < x ≤ 1` and `y ≥ 1`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidScalingFactor`] when a factor is out
    /// of range.
    pub fn new(x: Rational, y: Rational) -> Result<ScalingFactors, ModelError> {
        if !x.is_positive() || x > Rational::ONE {
            return Err(ModelError::InvalidScalingFactor { which: "x" });
        }
        if y < Rational::ONE {
            return Err(ModelError::InvalidScalingFactor { which: "y" });
        }
        Ok(ScalingFactors { x, y })
    }

    /// The identity factors `x = 1, y = 1` (no preparation, no
    /// degradation).
    #[must_use]
    pub fn identity() -> ScalingFactors {
        ScalingFactors {
            x: Rational::ONE,
            y: Rational::ONE,
        }
    }

    /// Overrun-preparation factor `x` (eq. (13)).
    #[must_use]
    pub const fn x(&self) -> Rational {
        self.x
    }

    /// Service-degradation factor `y` (eq. (14)).
    #[must_use]
    pub const fn y(&self) -> Rational {
        self.y
    }
}

/// Wire format: `{"x": R, "y": R}`; the range constraints are re-validated
/// on decode.
impl ToJson for ScalingFactors {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("x".to_owned(), self.x.to_json()),
            ("y".to_owned(), self.y.to_json()),
        ])
    }
}

impl FromJson for ScalingFactors {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let x = Rational::from_json(value.field("x")?)?;
        let y = Rational::from_json(value.field("y")?)?;
        ScalingFactors::new(x, y)
            .map_err(|e| JsonError::new(format!("invalid scaling factors: {e}")))
    }
}

/// Instantiates a [`TaskSet`] from implicit-deadline specs per eqs. (13)
/// and (14).
///
/// HI tasks get `D(LO) = x·T`, `D(HI) = T(HI) = T(LO) = T`; LO tasks get
/// `T(LO) = D(LO) = T` and `T(HI) = D(HI) = y·T`.
///
/// # Errors
///
/// Propagates [`ModelError`]s from task validation (e.g. non-positive
/// periods in the specs).
///
/// # Examples
///
/// ```
/// use rbs_model::{scaled_task_set, ImplicitTaskSpec, Mode, ScalingFactors};
/// use rbs_timebase::Rational;
///
/// # fn main() -> Result<(), rbs_model::ModelError> {
/// let specs = [
///     ImplicitTaskSpec::hi("h", Rational::integer(10), Rational::integer(2), Rational::integer(4)),
///     ImplicitTaskSpec::lo("l", Rational::integer(20), Rational::integer(4)),
/// ];
/// let factors = ScalingFactors::new(Rational::new(1, 2), Rational::integer(2))?;
/// let set = scaled_task_set(&specs, factors)?;
/// assert_eq!(set[0].lo().deadline(), Rational::integer(5));      // x·T
/// let lo_hi = set[1].params(Mode::Hi).expect("continues");
/// assert_eq!(lo_hi.period(), Rational::integer(40));             // y·T
/// # Ok(())
/// # }
/// ```
pub fn scaled_task_set(
    specs: &[ImplicitTaskSpec],
    factors: ScalingFactors,
) -> Result<TaskSet, ModelError> {
    let mut tasks = Vec::with_capacity(specs.len());
    for spec in specs {
        let task = match spec.criticality {
            Criticality::Hi => Task::builder(spec.name.clone(), Criticality::Hi)
                .period(spec.period)
                .deadline_lo(factors.x * spec.period)
                .deadline_hi(spec.period)
                .wcet_lo(spec.wcet_lo)
                .wcet_hi(spec.wcet_hi)
                .build()?,
            Criticality::Lo => Task::builder(spec.name.clone(), Criticality::Lo)
                .period(spec.period)
                .deadline_lo(spec.period)
                .period_hi(factors.y * spec.period)
                .deadline_hi(factors.y * spec.period)
                .wcet(spec.wcet_lo)
                .build()?,
        };
        tasks.push(task);
    }
    Ok(TaskSet::new(tasks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;

    fn int(v: i128) -> Rational {
        Rational::integer(v)
    }

    fn specs() -> Vec<ImplicitTaskSpec> {
        vec![
            ImplicitTaskSpec::hi("h1", int(10), int(2), int(4)),
            ImplicitTaskSpec::hi("h2", int(20), int(2), int(6)),
            ImplicitTaskSpec::lo("l1", int(8), int(2)),
        ]
    }

    #[test]
    fn factors_validate_ranges() {
        assert!(ScalingFactors::new(Rational::new(1, 2), int(1)).is_ok());
        assert!(ScalingFactors::new(int(1), int(5)).is_ok());
        assert!(matches!(
            ScalingFactors::new(Rational::ZERO, int(1)),
            Err(ModelError::InvalidScalingFactor { which: "x" })
        ));
        assert!(matches!(
            ScalingFactors::new(Rational::new(3, 2), int(1)),
            Err(ModelError::InvalidScalingFactor { which: "x" })
        ));
        assert!(matches!(
            ScalingFactors::new(int(1), Rational::new(1, 2)),
            Err(ModelError::InvalidScalingFactor { which: "y" })
        ));
        let id = ScalingFactors::identity();
        assert_eq!(id.x(), Rational::ONE);
        assert_eq!(id.y(), Rational::ONE);
    }

    #[test]
    fn hi_tasks_follow_eq_13() {
        let factors = ScalingFactors::new(Rational::new(2, 5), int(2)).expect("valid");
        let set = scaled_task_set(&specs(), factors).expect("valid");
        let h1 = &set[0];
        assert_eq!(h1.lo().period(), int(10));
        assert_eq!(h1.lo().deadline(), int(4)); // x·T = 2/5·10
        let hi = h1.params(Mode::Hi).expect("continues");
        assert_eq!(hi.period(), int(10));
        assert_eq!(hi.deadline(), int(10));
        assert_eq!(hi.wcet(), int(4));
    }

    #[test]
    fn lo_tasks_follow_eq_14() {
        let factors = ScalingFactors::new(Rational::new(2, 5), int(3)).expect("valid");
        let set = scaled_task_set(&specs(), factors).expect("valid");
        let l1 = &set[2];
        assert_eq!(l1.lo().period(), int(8));
        assert_eq!(l1.lo().deadline(), int(8));
        let hi = l1.params(Mode::Hi).expect("continues");
        assert_eq!(hi.period(), int(24)); // y·T
        assert_eq!(hi.deadline(), int(24)); // y·D
        assert_eq!(hi.wcet(), int(2));
    }

    #[test]
    fn identity_factors_change_nothing_for_lo_tasks() {
        let set = scaled_task_set(&specs(), ScalingFactors::identity()).expect("valid");
        let l1 = &set[2];
        assert_eq!(l1.params(Mode::Hi).expect("continues"), l1.lo());
        // HI task with x = 1 has equal deadlines in both modes.
        assert_eq!(set[0].lo().deadline(), int(10));
    }

    #[test]
    fn spec_utilizations() {
        let s = &specs()[0];
        assert_eq!(s.utilization_lo(), Rational::new(1, 5));
        assert_eq!(s.utilization_hi(), Rational::new(2, 5));
        assert_eq!(s.name(), "h1");
        assert_eq!(s.criticality(), Criticality::Hi);
        assert_eq!(s.period(), int(10));
        assert_eq!(s.wcet_lo(), int(2));
        assert_eq!(s.wcet_hi(), int(4));
    }

    #[test]
    fn json_round_trip() {
        let spec = ImplicitTaskSpec::hi("h", int(10), int(2), int(4));
        let json = rbs_json::to_string(&spec);
        let back: ImplicitTaskSpec = rbs_json::from_str(&json).expect("deserialize");
        assert_eq!(back, spec);
        let f = ScalingFactors::new(Rational::new(1, 2), int(2)).expect("valid");
        let json = rbs_json::to_string(&f);
        let back: ScalingFactors = rbs_json::from_str(&json).expect("deserialize");
        assert_eq!(back, f);
    }
}
