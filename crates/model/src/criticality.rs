//! Criticality levels and operating modes.

use std::fmt;

use rbs_json::{FromJson, Json, JsonError, ToJson};

/// The safety-criticality level of a task.
///
/// The model is dual-criticality: `LO < HI`. The ordering is meaningful
/// (`Criticality::Lo < Criticality::Hi`) and used e.g. when sorting tasks
/// for display.
///
/// # Examples
///
/// ```
/// use rbs_model::Criticality;
///
/// assert!(Criticality::Lo < Criticality::Hi);
/// assert_eq!(Criticality::Hi.to_string(), "HI");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Criticality {
    /// Low criticality (e.g. DO-178B level C).
    #[default]
    Lo,
    /// High criticality (e.g. DO-178B level B).
    Hi,
}

impl Criticality {
    /// Both criticality levels, lowest first.
    pub const ALL: [Criticality; 2] = [Criticality::Lo, Criticality::Hi];
}

impl fmt::Display for Criticality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Criticality::Lo => f.write_str("LO"),
            Criticality::Hi => f.write_str("HI"),
        }
    }
}

/// The operating mode of the system.
///
/// The system starts in [`Mode::Lo`]; it transitions to [`Mode::Hi`] when
/// any HI-criticality job executes beyond its LO-mode WCET, and returns to
/// [`Mode::Lo`] at the first processor idle instant.
///
/// # Examples
///
/// ```
/// use rbs_model::Mode;
///
/// assert_eq!(Mode::Lo.to_string(), "LO");
/// assert_ne!(Mode::Lo, Mode::Hi);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Mode {
    /// Normal operation: no job has overrun its LO-mode WCET.
    #[default]
    Lo,
    /// Critical operation: some HI job overran; the processor may be sped
    /// up and LO-task service may be degraded or terminated.
    Hi,
}

impl Mode {
    /// Both modes, normal mode first.
    pub const ALL: [Mode; 2] = [Mode::Lo, Mode::Hi];
}

/// Wire format: the variant name as a string (`"Lo"` / `"Hi"`).
impl ToJson for Criticality {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Criticality::Lo => "Lo",
                Criticality::Hi => "Hi",
            }
            .to_owned(),
        )
    }
}

impl FromJson for Criticality {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.as_str() {
            Some("Lo") => Ok(Criticality::Lo),
            Some("Hi") => Ok(Criticality::Hi),
            _ => Err(JsonError::new("expected criticality `\"Lo\"` or `\"Hi\"`")),
        }
    }
}

/// Wire format: the variant name as a string (`"Lo"` / `"Hi"`).
impl ToJson for Mode {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Mode::Lo => "Lo",
                Mode::Hi => "Hi",
            }
            .to_owned(),
        )
    }
}

impl FromJson for Mode {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.as_str() {
            Some("Lo") => Ok(Mode::Lo),
            Some("Hi") => Ok(Mode::Hi),
            _ => Err(JsonError::new("expected mode `\"Lo\"` or `\"Hi\"`")),
        }
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mode::Lo => f.write_str("LO"),
            Mode::Hi => f.write_str("HI"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn criticality_orders_lo_below_hi() {
        assert!(Criticality::Lo < Criticality::Hi);
        assert_eq!(Criticality::ALL, [Criticality::Lo, Criticality::Hi]);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Criticality::Lo.to_string(), "LO");
        assert_eq!(Criticality::Hi.to_string(), "HI");
        assert_eq!(Mode::Lo.to_string(), "LO");
        assert_eq!(Mode::Hi.to_string(), "HI");
    }

    #[test]
    fn defaults_are_the_normal_levels() {
        assert_eq!(Criticality::default(), Criticality::Lo);
        assert_eq!(Mode::default(), Mode::Lo);
    }

    #[test]
    fn json_round_trip() {
        for c in Criticality::ALL {
            let json = rbs_json::to_string(&c);
            let back: Criticality = rbs_json::from_str(&json).expect("deserialize");
            assert_eq!(back, c);
        }
        assert_eq!(rbs_json::to_string(&Criticality::Hi), "\"Hi\"");
        for m in Mode::ALL {
            let json = rbs_json::to_string(&m);
            let back: Mode = rbs_json::from_str(&json).expect("deserialize");
            assert_eq!(back, m);
        }
    }
}
