//! Task sets.

use std::collections::VecDeque;
use std::fmt;
use std::ops::Index;
use std::slice;

use rbs_json::{FromJson, Json, JsonError, ToJson};
use rbs_timebase::Rational;

use crate::{Criticality, Mode, ModelError, Task};

/// An ordered collection of dual-criticality tasks scheduled together on
/// one (variable-speed) processor.
///
/// # Examples
///
/// ```
/// use rbs_model::{Criticality, Mode, Task, TaskSet};
/// use rbs_timebase::Rational;
///
/// # fn main() -> Result<(), rbs_model::ModelError> {
/// let set: TaskSet = [
///     Task::builder("hi", Criticality::Hi)
///         .period(Rational::integer(4))
///         .deadline_lo(Rational::integer(2))
///         .deadline_hi(Rational::integer(4))
///         .wcet_lo(Rational::integer(1))
///         .wcet_hi(Rational::integer(2))
///         .build()?,
///     Task::builder("lo", Criticality::Lo)
///         .period(Rational::integer(8))
///         .deadline(Rational::integer(8))
///         .wcet(Rational::integer(2))
///         .build()?,
/// ]
/// .into_iter()
/// .collect();
/// assert_eq!(set.utilization(Mode::Lo), Rational::new(1, 2));
/// assert_eq!(set.utilization_of(Criticality::Hi, Mode::Hi), Rational::new(1, 2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct TaskSet {
    /// Kept contiguous at all times (see [`TaskSet::fixup`]): a deque
    /// makes removals shift only the shorter side — a churn loop evicts
    /// its oldest admissions first, turning the former whole-set
    /// memmove into an O(1) head adjustment — while every read path
    /// still sees one plain slice in declaration order.
    tasks: VecDeque<Task>,
}

impl PartialEq for TaskSet {
    fn eq(&self, other: &TaskSet) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for TaskSet {}

/// Wire format: a bare JSON array of tasks (transparent wrapper).
impl ToJson for TaskSet {
    fn to_json(&self) -> Json {
        Json::Array(self.tasks.iter().map(ToJson::to_json).collect())
    }
}

impl FromJson for TaskSet {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let tasks = value
            .as_array()
            .ok_or_else(|| JsonError::new("expected a task array"))?
            .iter()
            .map(Task::from_json)
            .collect::<Result<VecDeque<_>, _>>()?;
        Ok(TaskSet { tasks })
    }
}

impl TaskSet {
    /// Creates a task set from already-validated tasks.
    #[must_use]
    pub fn new(tasks: Vec<Task>) -> TaskSet {
        TaskSet {
            tasks: tasks.into(),
        }
    }

    /// An empty task set.
    #[must_use]
    pub fn empty() -> TaskSet {
        TaskSet::default()
    }

    /// Number of tasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the set contains no tasks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Iterates over the tasks in declaration order.
    pub fn iter(&self) -> slice::Iter<'_, Task> {
        self.as_slice().iter()
    }

    /// The tasks as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[Task] {
        let (head, tail) = self.tasks.as_slices();
        debug_assert!(tail.is_empty(), "task deque contiguity invariant broken");
        head
    }

    /// Restores the contiguity invariant after a mutation: a wrapped
    /// ring is rotated straight, which happens at most once per O(len)
    /// front-biased removals and so amortizes to O(1) per mutation.
    fn fixup(&mut self) {
        if !self.tasks.as_slices().1.is_empty() {
            // Linear slack first, so the next wrap is Ω(len) mutations
            // away and this rotation amortizes to O(1).
            self.tasks.reserve(self.tasks.len() + 1);
            self.tasks.make_contiguous();
        }
    }

    /// The task at `index`, if any.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<&Task> {
        self.tasks.get(index)
    }

    /// Looks a task up by name.
    #[must_use]
    pub fn by_name(&self, name: &str) -> Option<&Task> {
        self.tasks.iter().find(|t| t.name() == name)
    }

    /// The declaration-order index of the task with the given name.
    #[must_use]
    pub fn position(&self, name: &str) -> Option<usize> {
        self.tasks.iter().position(|t| t.name() == name)
    }

    /// Adds a task to the set.
    pub fn push(&mut self, task: Task) {
        self.tasks.push_back(task);
        self.fixup();
    }

    /// Removes and returns the task at `index`, shifting later tasks left
    /// (declaration order of the remaining tasks is preserved).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn remove(&mut self, index: usize) -> Task {
        let removed = self.tasks.remove(index).expect("index in bounds");
        self.fixup();
        removed
    }

    /// Replaces the task at `index` in place, returning the old task.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn replace(&mut self, index: usize, task: Task) -> Task {
        std::mem::replace(&mut self.tasks[index], task)
    }

    /// Iterates over the tasks of one criticality level (the paper's
    /// `τ_χ`).
    pub fn of_criticality(&self, criticality: Criticality) -> impl Iterator<Item = &Task> {
        self.tasks
            .iter()
            .filter(move |t| t.criticality() == criticality)
    }

    /// Total utilization `Σ C_i(mode)/T_i(mode)` over all tasks (tasks
    /// terminated in HI mode contribute zero there).
    #[must_use]
    pub fn utilization(&self, mode: Mode) -> Rational {
        self.tasks.iter().map(|t| t.utilization(mode)).sum()
    }

    /// Total utilization of one criticality level in one mode — the
    /// paper's `U_χ` quantities, e.g. `U_HI(LO) = Σ_{τ_i ∈ τ_HI}
    /// C_i(LO)/T_i(LO)`.
    #[must_use]
    pub fn utilization_of(&self, criticality: Criticality, mode: Mode) -> Rational {
        self.of_criticality(criticality)
            .map(|t| t.utilization(mode))
            .sum()
    }

    /// Sum of WCETs in the given mode, `Σ C_i(mode)` (tasks terminated in
    /// HI mode contribute zero there). This is the numerator of the
    /// closed-form resetting-time bound (eq. (16)).
    #[must_use]
    pub fn total_wcet(&self, mode: Mode) -> Rational {
        self.tasks
            .iter()
            .filter_map(|t| t.params(mode))
            .map(|p| p.wcet())
            .sum()
    }

    /// Hyperperiod in the given mode: the lcm of the periods of all tasks
    /// active in that mode. Returns `None` on `i128` overflow or when no
    /// task is active.
    #[must_use]
    pub fn hyperperiod(&self, mode: Mode) -> Option<Rational> {
        let mut acc: Option<Rational> = None;
        for task in &self.tasks {
            let Some(params) = task.params(mode) else {
                continue;
            };
            acc = Some(match acc {
                None => params.period(),
                Some(a) => a.lcm(params.period())?,
            });
        }
        acc
    }

    /// Returns a copy of the set with every LO-criticality task terminated
    /// in HI mode — the paper's eq. (3) special case, used in Fig. 7.
    ///
    /// # Errors
    ///
    /// Never fails on a well-formed set; the `Result` mirrors
    /// [`Task::terminated`].
    pub fn with_lo_terminated(&self) -> Result<TaskSet, ModelError> {
        let mut tasks = Vec::with_capacity(self.tasks.len());
        for task in &self.tasks {
            if task.criticality() == Criticality::Lo {
                tasks.push(task.terminated()?);
            } else {
                tasks.push(task.clone());
            }
        }
        Ok(TaskSet {
            tasks: tasks.into(),
        })
    }
}

impl Index<usize> for TaskSet {
    type Output = Task;

    fn index(&self, index: usize) -> &Task {
        &self.tasks[index]
    }
}

impl FromIterator<Task> for TaskSet {
    fn from_iter<I: IntoIterator<Item = Task>>(iter: I) -> TaskSet {
        TaskSet {
            tasks: iter.into_iter().collect(),
        }
    }
}

impl Extend<Task> for TaskSet {
    fn extend<I: IntoIterator<Item = Task>>(&mut self, iter: I) {
        self.tasks.extend(iter);
    }
}

impl IntoIterator for TaskSet {
    type Item = Task;
    type IntoIter = std::collections::vec_deque::IntoIter<Task>;

    fn into_iter(self) -> Self::IntoIter {
        self.tasks.into_iter()
    }
}

impl<'a> IntoIterator for &'a TaskSet {
    type Item = &'a Task;
    type IntoIter = slice::Iter<'a, Task>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl fmt::Display for TaskSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "task set ({} tasks):", self.tasks.len())?;
        for task in &self.tasks {
            writeln!(f, "  {task}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Task;

    fn int(v: i128) -> Rational {
        Rational::integer(v)
    }

    fn example_set() -> TaskSet {
        let tau1 = Task::builder("tau1", Criticality::Hi)
            .period(int(5))
            .deadline_lo(int(2))
            .deadline_hi(int(5))
            .wcet_lo(int(1))
            .wcet_hi(int(2))
            .build()
            .expect("valid");
        let tau2 = Task::builder("tau2", Criticality::Lo)
            .period(int(10))
            .deadline(int(10))
            .wcet(int(3))
            .build()
            .expect("valid");
        TaskSet::new(vec![tau1, tau2])
    }

    #[test]
    fn len_get_index_by_name() {
        let set = example_set();
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        assert_eq!(set[0].name(), "tau1");
        assert_eq!(set.get(1).map(Task::name), Some("tau2"));
        assert_eq!(set.get(2), None);
        assert_eq!(set.by_name("tau2").map(Task::name), Some("tau2"));
        assert_eq!(set.by_name("nope"), None);
        assert!(TaskSet::empty().is_empty());
    }

    #[test]
    fn position_remove_replace() {
        let mut set = example_set();
        assert_eq!(set.position("tau2"), Some(1));
        assert_eq!(set.position("nope"), None);
        let swapped = Task::builder("tau3", Criticality::Lo)
            .period(int(20))
            .deadline(int(20))
            .wcet(int(5))
            .build()
            .expect("valid");
        let old = set.replace(1, swapped);
        assert_eq!(old.name(), "tau2");
        assert_eq!(set[1].name(), "tau3");
        assert_eq!(set.len(), 2);
        let removed = set.remove(0);
        assert_eq!(removed.name(), "tau1");
        assert_eq!(set.len(), 1);
        assert_eq!(set[0].name(), "tau3");
        assert_eq!(set.position("tau3"), Some(0));
    }

    #[test]
    fn utilizations_match_hand_computation() {
        let set = example_set();
        // LO mode: 1/5 + 3/10 = 1/2.
        assert_eq!(set.utilization(Mode::Lo), Rational::new(1, 2));
        // HI mode: 2/5 + 3/10 = 7/10.
        assert_eq!(set.utilization(Mode::Hi), Rational::new(7, 10));
        assert_eq!(
            set.utilization_of(Criticality::Hi, Mode::Lo),
            Rational::new(1, 5)
        );
        assert_eq!(
            set.utilization_of(Criticality::Hi, Mode::Hi),
            Rational::new(2, 5)
        );
        assert_eq!(
            set.utilization_of(Criticality::Lo, Mode::Hi),
            Rational::new(3, 10)
        );
    }

    #[test]
    fn total_wcet_sums_active_tasks() {
        let set = example_set();
        assert_eq!(set.total_wcet(Mode::Lo), int(4));
        assert_eq!(set.total_wcet(Mode::Hi), int(5));
        let terminated = set.with_lo_terminated().expect("valid");
        assert_eq!(terminated.total_wcet(Mode::Hi), int(2));
    }

    #[test]
    fn hyperperiod_is_lcm_of_periods() {
        let set = example_set();
        assert_eq!(set.hyperperiod(Mode::Lo), Some(int(10)));
        assert_eq!(set.hyperperiod(Mode::Hi), Some(int(10)));
        assert_eq!(TaskSet::empty().hyperperiod(Mode::Lo), None);
        let terminated = set.with_lo_terminated().expect("valid");
        assert_eq!(terminated.hyperperiod(Mode::Hi), Some(int(5)));
    }

    #[test]
    fn with_lo_terminated_only_touches_lo_tasks() {
        let set = example_set().with_lo_terminated().expect("valid");
        assert!(!set[0].is_terminated_in_hi());
        assert!(set[1].is_terminated_in_hi());
        assert_eq!(
            set.utilization_of(Criticality::Lo, Mode::Hi),
            Rational::ZERO
        );
    }

    #[test]
    fn of_criticality_filters() {
        let set = example_set();
        let hi: Vec<&str> = set
            .of_criticality(Criticality::Hi)
            .map(Task::name)
            .collect();
        assert_eq!(hi, vec!["tau1"]);
        let lo: Vec<&str> = set
            .of_criticality(Criticality::Lo)
            .map(Task::name)
            .collect();
        assert_eq!(lo, vec!["tau2"]);
    }

    #[test]
    fn collect_extend_iterate() {
        let set = example_set();
        let rebuilt: TaskSet = set.iter().cloned().collect();
        assert_eq!(rebuilt, set);
        let mut grown = TaskSet::empty();
        grown.extend(set.clone());
        assert_eq!(grown, set);
        let names: Vec<&str> = (&set).into_iter().map(Task::name).collect();
        assert_eq!(names, vec!["tau1", "tau2"]);
    }

    #[test]
    fn display_lists_every_task() {
        let text = example_set().to_string();
        assert!(text.contains("2 tasks"));
        assert!(text.contains("tau1"));
        assert!(text.contains("tau2"));
    }

    #[test]
    fn json_round_trip() {
        let set = example_set();
        let json = rbs_json::to_string(&set);
        assert!(json.starts_with('['), "transparent array encoding: {json}");
        let back: TaskSet = rbs_json::from_str(&json).expect("deserialize");
        assert_eq!(back, set);
    }
}
