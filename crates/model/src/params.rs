//! Per-mode task parameters.

use std::fmt;

use rbs_json::{FromJson, Json, JsonError, ToJson};
use rbs_timebase::Rational;

/// The sporadic-task parameters of one task in one operating mode:
/// minimum inter-arrival time `T`, relative deadline `D` and worst-case
/// execution time `C`.
///
/// # Examples
///
/// ```
/// use rbs_model::ModeParams;
/// use rbs_timebase::Rational;
///
/// let p = ModeParams::new(
///     Rational::integer(10), // T
///     Rational::integer(10), // D
///     Rational::integer(3),  // C
/// );
/// assert_eq!(p.utilization(), Rational::new(3, 10));
/// assert_eq!(p.density(), Rational::new(3, 10));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModeParams {
    period: Rational,
    deadline: Rational,
    wcet: Rational,
}

impl ModeParams {
    /// Creates a parameter triple. Range validation happens when the
    /// containing [`crate::Task`] is built.
    #[must_use]
    pub const fn new(period: Rational, deadline: Rational, wcet: Rational) -> ModeParams {
        ModeParams {
            period,
            deadline,
            wcet,
        }
    }

    /// Minimum inter-arrival time `T`.
    #[must_use]
    pub const fn period(&self) -> Rational {
        self.period
    }

    /// Relative deadline `D`.
    #[must_use]
    pub const fn deadline(&self) -> Rational {
        self.deadline
    }

    /// Worst-case execution time `C`.
    #[must_use]
    pub const fn wcet(&self) -> Rational {
        self.wcet
    }

    /// Utilization `C / T`.
    #[must_use]
    pub fn utilization(&self) -> Rational {
        self.wcet / self.period
    }

    /// Density `C / min(D, T)`.
    #[must_use]
    pub fn density(&self) -> Rational {
        self.wcet / self.deadline.min(self.period)
    }

    /// Returns a copy with the deadline replaced.
    #[must_use]
    pub fn with_deadline(self, deadline: Rational) -> ModeParams {
        ModeParams { deadline, ..self }
    }

    /// Returns a copy with the period replaced.
    #[must_use]
    pub fn with_period(self, period: Rational) -> ModeParams {
        ModeParams { period, ..self }
    }

    /// Returns a copy with the WCET replaced.
    #[must_use]
    pub fn with_wcet(self, wcet: Rational) -> ModeParams {
        ModeParams { wcet, ..self }
    }
}

/// Wire format: `{"period": R, "deadline": R, "wcet": R}` with rationals as
/// `{"num", "den"}` pairs.
impl ToJson for ModeParams {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("period".to_owned(), self.period.to_json()),
            ("deadline".to_owned(), self.deadline.to_json()),
            ("wcet".to_owned(), self.wcet.to_json()),
        ])
    }
}

impl FromJson for ModeParams {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(ModeParams {
            period: Rational::from_json(value.field("period")?)?,
            deadline: Rational::from_json(value.field("deadline")?)?,
            wcet: Rational::from_json(value.field("wcet")?)?,
        })
    }
}

impl fmt::Display for ModeParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(T={}, D={}, C={})",
            self.period, self.deadline, self.wcet
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(t: i128, d: i128, c: i128) -> ModeParams {
        ModeParams::new(
            Rational::integer(t),
            Rational::integer(d),
            Rational::integer(c),
        )
    }

    #[test]
    fn accessors_return_constructor_values() {
        let p = params(20, 15, 3);
        assert_eq!(p.period(), Rational::integer(20));
        assert_eq!(p.deadline(), Rational::integer(15));
        assert_eq!(p.wcet(), Rational::integer(3));
    }

    #[test]
    fn utilization_and_density() {
        let p = params(20, 15, 3);
        assert_eq!(p.utilization(), Rational::new(3, 20));
        assert_eq!(p.density(), Rational::new(3, 15));
        // Density uses min(D, T).
        let q = params(10, 15, 3);
        assert_eq!(q.density(), Rational::new(3, 10));
    }

    #[test]
    fn with_methods_replace_one_field() {
        let p = params(20, 15, 3);
        assert_eq!(
            p.with_deadline(Rational::integer(10)).deadline(),
            Rational::integer(10)
        );
        assert_eq!(
            p.with_period(Rational::integer(40)).period(),
            Rational::integer(40)
        );
        assert_eq!(
            p.with_wcet(Rational::integer(5)).wcet(),
            Rational::integer(5)
        );
        // Other fields untouched.
        assert_eq!(
            p.with_wcet(Rational::integer(5)).period(),
            Rational::integer(20)
        );
    }

    #[test]
    fn display_shows_all_fields() {
        assert_eq!(params(20, 15, 3).to_string(), "(T=20, D=15, C=3)");
    }

    #[test]
    fn json_round_trip() {
        let p = params(20, 15, 3);
        let json = rbs_json::to_string(&p);
        let back: ModeParams = rbs_json::from_str(&json).expect("deserialize");
        assert_eq!(back, p);
    }
}
