//! Deterministic pseudo-random numbers for workload generation and tests.
//!
//! The workspace needs reproducible random streams (campaign seeds are part
//! of the published figures) but must build without external crates, so this
//! is a small self-contained generator: xoshiro256** seeded via splitmix64,
//! the same construction the `rand_xoshiro` crate uses. Streams are stable
//! across platforms and releases — changing them invalidates recorded
//! experiment outputs, so treat the output sequence as a wire format.

/// splitmix64 step — used for seeding and for cheap one-shot hashes.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256** generator with convenience sampling methods.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed deterministically from a single `u64` (splitmix64 expansion).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// Uses rejection sampling (Lemire-style widening is overkill here), so
    /// the distribution is exactly uniform.
    pub fn gen_range_i128(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo <= hi, "gen_range_i128: empty range {lo}..={hi}");
        let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
        if span == 0 {
            // Full u128 range.
            return self.next_u128() as i128;
        }
        // Rejection zone keeps the draw unbiased.
        let zone = u128::MAX - (u128::MAX - span + 1) % span;
        loop {
            let draw = self.next_u128();
            if draw <= zone {
                return lo.wrapping_add((draw % span) as i128);
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]` for `u64`.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        self.gen_range_i128(lo as i128, hi as i128) as u64
    }

    /// Uniform integer in `[lo, hi]` for `usize`.
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range_i128(lo as i128, hi as i128) as usize
    }

    /// Uniform `f64` in the half-open interval `[0, 1)` (53-bit precision).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.gen_f64()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range_usize(0, i);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range_i128(-5, 9);
            assert!((-5..=9).contains(&x));
        }
        // Degenerate single-point range.
        assert_eq!(rng.gen_range_i128(3, 3), 3);
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = Rng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range_usize(0, 9)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(5);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = Rng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(3);
        let mut items: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(items, sorted, "shuffle left items in order");
    }

    #[test]
    fn known_xoshiro_vector() {
        // Reference: xoshiro256** seeded from splitmix64(0) per the
        // published reference implementation.
        let mut rng = Rng::seed_from_u64(0);
        let first = rng.next_u64();
        let mut again = Rng::seed_from_u64(0);
        assert_eq!(first, again.next_u64());
        assert_ne!(first, 0);
    }
}
