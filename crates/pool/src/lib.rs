//! `rbs-pool`: a fixed-size `std::thread` worker pool over `mpsc`
//! channels, shared by the service (`rbs-svc`), the campaign runners,
//! and the fleet partitioner (`rbs-partition`).
//!
//! [`WorkerPool::run_ordered`] fans a batch of jobs out to exactly
//! `jobs` scoped worker threads and collects the results *by submission
//! index*, so the returned vector is identical for any worker count —
//! parallelism never changes observable output, only wall-clock time.
//!
//! [`WorkerPool::run_ordered_caught`] additionally contains panics: a
//! panicking job becomes an `Err(message)` in its own result slot while
//! every other job still runs to completion. This is the crash-isolation
//! layer of the service — one poison-pill analysis can no longer take a
//! whole batch (or a long-running daemon) down with it.
//!
//! No external dependencies: the whole crate is `std`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Mutex, Once};
use std::thread;

/// A fixed-size worker pool. The pool itself is cheap to construct; each
/// [`WorkerPool::run_ordered`] call spawns its scoped workers, drains the
/// job queue, and joins them, so borrowed data can flow into the closure.
#[derive(Debug, Clone, Copy)]
pub struct WorkerPool {
    jobs: usize,
}

thread_local! {
    /// Set while a caught job runs on this thread, so the quiet panic
    /// hook knows to swallow the default "thread panicked at ..." report
    /// (the panic is returned to the caller as structured data instead of
    /// corrupting the service's stderr stream).
    static CONTAINING_PANICS: Cell<bool> = const { Cell::new(false) };
}

static QUIET_HOOK: Once = Once::new();

/// Installs (once, process-wide) a panic hook that suppresses output for
/// panics the pool is about to catch and report structurally, delegating
/// to the previous hook for every other thread.
fn install_quiet_hook() {
    QUIET_HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !CONTAINING_PANICS.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

/// Runs `f`, converting a panic into its (best-effort) message.
fn contain<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    install_quiet_hook();
    CONTAINING_PANICS.with(|flag| flag.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    CONTAINING_PANICS.with(|flag| flag.set(false));
    result.map_err(|payload| {
        payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_owned())
    })
}

impl WorkerPool {
    /// A pool with `jobs` workers (clamped to at least one).
    #[must_use]
    pub fn new(jobs: usize) -> WorkerPool {
        WorkerPool { jobs: jobs.max(1) }
    }

    /// The conventional `--jobs` interpretation shared by the campaign
    /// runners and the service: `0` means
    /// [`WorkerPool::with_available_parallelism`], anything else an
    /// explicit worker count.
    #[must_use]
    pub fn for_jobs(jobs: usize) -> WorkerPool {
        if jobs == 0 {
            WorkerPool::with_available_parallelism()
        } else {
            WorkerPool::new(jobs)
        }
    }

    /// A pool sized to the machine (`std::thread::available_parallelism`,
    /// falling back to one worker when the count is unavailable).
    #[must_use]
    pub fn with_available_parallelism() -> WorkerPool {
        WorkerPool::new(
            thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// The worker count.
    #[must_use]
    pub const fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs `f(index, item)` for every item and returns the results in
    /// submission order, regardless of which worker finished first.
    ///
    /// With one worker (or one item) the items run inline on the calling
    /// thread — the degenerate pool is just a loop.
    ///
    /// # Panics
    ///
    /// Re-raises the first (by submission index) panic from `f` after all
    /// other jobs have completed. Use
    /// [`WorkerPool::run_ordered_caught`] to receive panics as values
    /// instead.
    pub fn run_ordered<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.run_ordered_caught(items, f)
            .into_iter()
            .map(|slot| slot.unwrap_or_else(|message| panic!("worker job panicked: {message}")))
            .collect()
    }

    /// Runs `f(index, item)` for every item with panic containment: each
    /// result slot is `Ok(result)` or `Err(panic message)`, in submission
    /// order. A panicking job never disturbs the others — the worker that
    /// caught it moves on to the next queued job, and the slot order is
    /// bit-identical for any worker count.
    ///
    /// With one worker (or one item) the items run inline on the calling
    /// thread, with the same containment.
    pub fn run_ordered_caught<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<Result<R, String>>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.run_ordered_scoped_caught(items, || (), |(), i, item| f(i, item))
    }

    /// [`WorkerPool::run_ordered`] with per-worker scratch state: each
    /// worker thread calls `init` once and passes the state to every job
    /// it executes, so jobs can reuse expensive buffers without sharing
    /// them across threads. Results must not depend on the state (only
    /// allocations may), or the worker count would change observable
    /// output.
    ///
    /// # Panics
    ///
    /// Re-raises the first (by submission index) panic from `f` after
    /// all other jobs have completed.
    pub fn run_ordered_scoped<S, T, R, I, F>(&self, items: Vec<T>, init: I, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, T) -> R + Sync,
    {
        self.run_ordered_scoped_caught(items, init, f)
            .into_iter()
            .map(|slot| slot.unwrap_or_else(|message| panic!("worker job panicked: {message}")))
            .collect()
    }

    /// [`WorkerPool::run_ordered_caught`] with per-worker scratch state
    /// (see [`WorkerPool::run_ordered_scoped`]). A contained panic may
    /// leave the worker's state arbitrarily torn; it is still passed to
    /// the worker's next job, so states must stay usable after abandoned
    /// mutations (buffer pools are; half-written results are not).
    pub fn run_ordered_scoped_caught<S, T, R, I, F>(
        &self,
        items: Vec<T>,
        init: I,
        f: F,
    ) -> Vec<Result<R, String>>
    where
        T: Send,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.jobs.min(n);
        if workers <= 1 {
            let mut state = init();
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| contain(|| f(&mut state, i, item)))
                .collect();
        }

        let (job_tx, job_rx) = mpsc::channel::<(usize, T)>();
        for entry in items.into_iter().enumerate() {
            job_tx.send(entry).expect("receiver lives until scope ends");
        }
        drop(job_tx); // workers see a closed queue once it drains
        let job_rx = Mutex::new(job_rx);

        let (result_tx, result_rx) = mpsc::channel::<(usize, Result<R, String>)>();
        let mut results: Vec<Option<Result<R, String>>> = (0..n).map(|_| None).collect();
        thread::scope(|scope| {
            for _ in 0..workers {
                let result_tx = result_tx.clone();
                let job_rx = &job_rx;
                let init = &init;
                let f = &f;
                scope.spawn(move || {
                    let mut state = init();
                    loop {
                        // Hold the lock only for the dequeue, not the work.
                        let job = job_rx.lock().expect("queue lock").try_recv();
                        match job {
                            Ok((index, item)) => {
                                let result = contain(|| f(&mut state, index, item));
                                if result_tx.send((index, result)).is_err() {
                                    break;
                                }
                            }
                            Err(_) => break, // queue fully drained
                        }
                    }
                });
            }
            drop(result_tx);
            for (index, result) in result_rx {
                results[index] = Some(result);
            }
        });
        results
            .into_iter()
            .map(|slot| slot.expect("every submitted job reports back"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..100).collect();
        let out = pool.run_ordered(items, |i, v| {
            assert_eq!(i, v);
            // Stagger completion times so out-of-order finishes happen.
            std::thread::sleep(std::time::Duration::from_micros(((v * 37) % 50) as u64));
            v * v
        });
        assert_eq!(out, (0..100).map(|v| v * v).collect::<Vec<_>>());
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let items: Vec<u64> = (0..64).collect();
        let one = WorkerPool::new(1).run_ordered(items.clone(), |_, v| v.wrapping_mul(v) ^ 17);
        let eight = WorkerPool::new(8).run_ordered(items, |_, v| v.wrapping_mul(v) ^ 17);
        assert_eq!(one, eight);
    }

    #[test]
    fn empty_batches_and_oversized_pools_are_fine() {
        let pool = WorkerPool::new(16);
        let out: Vec<i32> = pool.run_ordered(Vec::<i32>::new(), |_, v| v);
        assert!(out.is_empty());
        let out = pool.run_ordered(vec![5], |_, v| v + 1);
        assert_eq!(out, vec![6]);
    }

    #[test]
    fn zero_becomes_one_worker() {
        assert_eq!(WorkerPool::new(0).jobs(), 1);
        assert!(WorkerPool::with_available_parallelism().jobs() >= 1);
    }

    #[test]
    fn a_panicking_job_is_contained_for_any_worker_count() {
        let items: Vec<usize> = (0..50).collect();
        let run = |jobs: usize| {
            WorkerPool::new(jobs).run_ordered_caught(items.clone(), |_, v| {
                assert!(v != 13 && v != 31, "poison {v}");
                v * 2
            })
        };
        for jobs in [1, 2, 8] {
            let out = run(jobs);
            assert_eq!(out.len(), items.len());
            for (v, slot) in items.iter().zip(&out) {
                match slot {
                    Ok(r) => {
                        assert_eq!(*r, v * 2);
                        assert!(*v != 13 && *v != 31);
                    }
                    Err(message) => {
                        assert!(*v == 13 || *v == 31, "unexpected panic slot for {v}");
                        assert!(message.contains(&format!("poison {v}")), "{message}");
                    }
                }
            }
        }
        // Containment is bit-identical across worker counts.
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn scoped_state_is_per_worker_and_reused_across_jobs() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let items: Vec<usize> = (0..40).collect();
        let out = WorkerPool::new(4).run_ordered_scoped(
            items,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                Vec::<usize>::with_capacity(8)
            },
            |buf, _, v| {
                // Reuse the buffer as scratch; the result must not depend
                // on what previous jobs left behind.
                buf.clear();
                buf.push(v);
                buf[0] * 3
            },
        );
        assert_eq!(out, (0..40).map(|v| v * 3).collect::<Vec<_>>());
        // One init per spawned worker, not per job.
        assert!(inits.load(Ordering::SeqCst) <= 4);
        // Scoped results are identical to the stateless path.
        let again = WorkerPool::new(1).run_ordered((0..40).collect::<Vec<usize>>(), |_, v| v * 3);
        assert_eq!(out, again);
    }

    #[test]
    fn string_and_str_panic_payloads_are_reported() {
        let out = WorkerPool::new(1).run_ordered_caught(vec![0usize, 1], |_, v| {
            if v == 0 {
                panic!("static str payload");
            }
            let dynamic = format!("formatted payload {v}");
            panic!("{dynamic}");
        });
        assert_eq!(out[0].as_ref().unwrap_err(), "static str payload");
        assert_eq!(out[1].as_ref().unwrap_err(), "formatted payload 1");
    }

    #[test]
    #[should_panic(expected = "worker job panicked")]
    fn run_ordered_still_propagates_panics() {
        let _ = WorkerPool::new(2).run_ordered(vec![0, 1, 2, 3], |_, v| {
            assert_ne!(v, 2, "boom");
            v
        });
    }
}
