//! The random task-set generator of Section VI-B.
//!
//! Following Baruah et al. \[4\]: "The task generator starts with an
//! empty task set and continuously adds new random tasks to this set
//! until certain system utilization `U_bound` is met." The distributions
//! are those of the Fig. 6 caption. We interpret *system utilization* as
//! the HI-mode utilization with undegraded LO service,
//! `U = Σ_LO u_i(LO) + Σ_HI u_i(HI)` — the dominant of the two per-mode
//! utilizations — and include the task whose addition first reaches the
//! bound.

use rbs_model::{Criticality, ImplicitTaskSpec};
use rbs_rng::Rng;
use rbs_timebase::Rational;

/// Configuration of the synthetic generator.
///
/// Defaults match the Fig. 6 caption: periods log-uniform in
/// `[2 ms, 2000 ms]`, LO-mode utilizations uniform in `[0.01, 0.2]`,
/// WCET inflation `γ` uniform in `[1, 3]`, fair coin for the criticality
/// level.
///
/// # Examples
///
/// ```
/// use rbs_gen::synth::SynthConfig;
/// use rbs_timebase::Rational;
///
/// let config = SynthConfig::new(Rational::new(7, 10)); // U_bound = 0.7
/// let specs = config.generate(42);
/// assert!(!specs.is_empty());
/// let total = SynthConfig::system_utilization(&specs);
/// assert!(total >= Rational::new(7, 10));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    target_utilization: Rational,
    period_range_ms: (i128, i128),
    u_lo_range: (Rational, Rational),
    gamma_range: (Rational, Rational),
    hi_probability: f64,
}

impl SynthConfig {
    /// A generator targeting the given `U_bound`, with the paper's
    /// default distributions.
    ///
    /// # Panics
    ///
    /// Panics if the target utilization is not strictly positive.
    #[must_use]
    pub fn new(target_utilization: Rational) -> SynthConfig {
        assert!(
            target_utilization.is_positive(),
            "target utilization must be positive"
        );
        SynthConfig {
            target_utilization,
            period_range_ms: (2, 2000),
            u_lo_range: (Rational::new(1, 100), Rational::new(1, 5)),
            gamma_range: (Rational::ONE, Rational::integer(3)),
            hi_probability: 0.5,
        }
    }

    /// Overrides the period range (milliseconds).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min ≤ max`.
    #[must_use]
    pub fn period_range_ms(mut self, min: i128, max: i128) -> SynthConfig {
        assert!(0 < min && min <= max, "need 0 < min <= max");
        self.period_range_ms = (min, max);
        self
    }

    /// Overrides the LO-mode utilization range.
    #[must_use]
    pub fn u_lo_range(mut self, min: Rational, max: Rational) -> SynthConfig {
        assert!(min.is_positive() && min <= max, "need 0 < min <= max");
        self.u_lo_range = (min, max);
        self
    }

    /// Overrides the WCET inflation (`γ = C(HI)/C(LO)`) range.
    #[must_use]
    pub fn gamma_range(mut self, min: Rational, max: Rational) -> SynthConfig {
        assert!(min >= Rational::ONE && min <= max, "need 1 <= min <= max");
        self.gamma_range = (min, max);
        self
    }

    /// Overrides the probability that a generated task is HI-criticality.
    #[must_use]
    pub fn hi_probability(mut self, p: f64) -> SynthConfig {
        assert!((0.0..=1.0).contains(&p), "probability in [0, 1]");
        self.hi_probability = p;
        self
    }

    /// The paper's system-utilization measure of a spec list:
    /// `Σ_LO u_i(LO) + Σ_HI u_i(HI)`.
    #[must_use]
    pub fn system_utilization(specs: &[ImplicitTaskSpec]) -> Rational {
        specs
            .iter()
            .map(|s| match s.criticality() {
                Criticality::Hi => s.utilization_hi(),
                Criticality::Lo => s.utilization_lo(),
            })
            .sum()
    }

    /// Generates one task set (deterministic in the seed).
    #[must_use]
    pub fn generate(&self, seed: u64) -> Vec<ImplicitTaskSpec> {
        let mut rng = Rng::seed_from_u64(seed);
        self.generate_with(&mut rng)
    }

    /// Generates `count` independent task sets from one master seed.
    #[must_use]
    pub fn generate_many(&self, count: usize, seed: u64) -> Vec<Vec<ImplicitTaskSpec>> {
        let mut rng = Rng::seed_from_u64(seed);
        (0..count).map(|_| self.generate_with(&mut rng)).collect()
    }

    fn generate_with(&self, rng: &mut Rng) -> Vec<ImplicitTaskSpec> {
        let mut specs: Vec<ImplicitTaskSpec> = Vec::new();
        let mut total = Rational::ZERO;
        let mut index = 0usize;
        while total < self.target_utilization {
            let spec = self.random_task(rng, index);
            total += match spec.criticality() {
                Criticality::Hi => spec.utilization_hi(),
                Criticality::Lo => spec.utilization_lo(),
            };
            specs.push(spec);
            index += 1;
        }
        specs
    }

    fn random_task(&self, rng: &mut Rng, index: usize) -> ImplicitTaskSpec {
        // Period: log-uniform over [min, max] ms, kept integer.
        let (t_min, t_max) = self.period_range_ms;
        let log_min = (t_min as f64).ln();
        let log_max = (t_max as f64).ln();
        let period_ms = rng.gen_range_f64(log_min, log_max).exp().round() as i128;
        let period_ms = period_ms.clamp(t_min, t_max);
        let period = Rational::integer(period_ms);

        // u(LO): uniform over the configured range with granularity 1/1000.
        let u_lo = sample_rational(rng, self.u_lo_range.0, self.u_lo_range.1, 1000);
        // Keep WCETs exact: C(LO) = u_lo · T.
        let wcet_lo = u_lo * period;

        if rng.gen_bool(self.hi_probability) {
            // γ: uniform with granularity 1/100.
            let gamma = sample_rational(rng, self.gamma_range.0, self.gamma_range.1, 100);
            ImplicitTaskSpec::hi(format!("hi{index}"), period, wcet_lo, gamma * wcet_lo)
        } else {
            ImplicitTaskSpec::lo(format!("lo{index}"), period, wcet_lo)
        }
    }
}

/// The classic UUniFast utilization generator (Bini & Buttazzo 2005):
/// draws `n` task utilizations uniformly from the simplex summing to
/// `total`, snapped onto a `1/granularity` grid (so the exact-rational
/// sum may differ from `total` by at most `n/granularity`).
///
/// Where the Section VI-B generator controls *per-task* utilization and
/// lets the task count float, UUniFast fixes the count — useful for
/// experiments that sweep `n` at constant load.
///
/// # Panics
///
/// Panics unless `n ≥ 1`, `total > 0` and `granularity ≥ 1`.
///
/// # Examples
///
/// ```
/// use rbs_gen::synth::uunifast;
/// use rbs_timebase::Rational;
///
/// let us = uunifast(8, Rational::new(3, 4), 1000, 42);
/// assert_eq!(us.len(), 8);
/// let sum: Rational = us.iter().copied().sum();
/// // Grid snapping keeps the sum within n/granularity of the target.
/// assert!((sum - Rational::new(3, 4)).abs() <= Rational::new(8, 1000));
/// ```
#[must_use]
pub fn uunifast(n: usize, total: Rational, granularity: i128, seed: u64) -> Vec<Rational> {
    assert!(n >= 1, "need at least one task");
    assert!(total.is_positive(), "total utilization must be positive");
    assert!(granularity >= 1, "granularity must be at least 1");
    let mut rng = Rng::seed_from_u64(seed);
    let mut remaining = total.to_f64();
    let mut out = Vec::with_capacity(n);
    for i in 1..n {
        let exponent = 1.0 / (n - i) as f64;
        let next = remaining * rng.gen_f64().powf(exponent);
        out.push(snap(remaining - next, granularity));
        remaining = next;
    }
    out.push(snap(remaining, granularity));
    out
}

/// Snaps a non-negative float to the `1/granularity` grid, keeping a
/// one-grid-cell floor so no task degenerates to zero utilization.
fn snap(value: f64, granularity: i128) -> Rational {
    let ticks = ((value * granularity as f64).round() as i128).max(1);
    Rational::new(ticks, granularity)
}

/// Samples a rational uniformly from `[min, max]` on a `1/granularity`
/// grid.
pub(crate) fn sample_rational(
    rng: &mut Rng,
    min: Rational,
    max: Rational,
    granularity: i128,
) -> Rational {
    let g = Rational::integer(granularity);
    let lo = (min * g).ceil();
    let hi = (max * g).floor();
    if lo >= hi {
        return min;
    }
    let pick = rng.gen_range_i128(lo, hi);
    Rational::new(pick, granularity)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SynthConfig {
        SynthConfig::new(Rational::new(1, 2))
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = config().generate(7);
        let b = config().generate(7);
        assert_eq!(a, b);
        let c = config().generate(8);
        assert_ne!(a, c);
    }

    #[test]
    fn utilization_reaches_the_bound() {
        for seed in 0..20 {
            let specs = config().generate(seed);
            let total = SynthConfig::system_utilization(&specs);
            assert!(total >= Rational::new(1, 2), "seed {seed}: {total}");
            // Without the last task the bound was not yet met.
            let without_last = &specs[..specs.len() - 1];
            assert!(
                SynthConfig::system_utilization(without_last) < Rational::new(1, 2),
                "seed {seed} overshot by more than one task"
            );
        }
    }

    #[test]
    fn parameters_respect_the_distributions() {
        let specs = SynthConfig::new(Rational::integer(3)).generate(123);
        assert!(specs.len() >= 15); // 3.0 / 0.2 max utilization per task
        for s in &specs {
            let t = s.period();
            assert!(t >= Rational::TWO && t <= Rational::integer(2000), "{t}");
            assert!(t.is_integer());
            let u = s.utilization_lo();
            assert!(
                u >= Rational::new(1, 100) && u <= Rational::new(1, 5),
                "{u}"
            );
            if s.criticality() == Criticality::Hi {
                let gamma = s.wcet_hi() / s.wcet_lo();
                assert!(
                    gamma >= Rational::ONE && gamma <= Rational::integer(3),
                    "{gamma}"
                );
            } else {
                assert_eq!(s.wcet_hi(), s.wcet_lo());
            }
        }
    }

    #[test]
    fn both_criticalities_appear() {
        let specs = SynthConfig::new(Rational::integer(4)).generate(99);
        assert!(specs.iter().any(|s| s.criticality() == Criticality::Hi));
        assert!(specs.iter().any(|s| s.criticality() == Criticality::Lo));
    }

    #[test]
    fn hi_probability_extremes() {
        let all_hi = config().hi_probability(1.0).generate(5);
        assert!(all_hi.iter().all(|s| s.criticality() == Criticality::Hi));
        let all_lo = config().hi_probability(0.0).generate(5);
        assert!(all_lo.iter().all(|s| s.criticality() == Criticality::Lo));
    }

    #[test]
    fn generate_many_yields_distinct_sets() {
        let sets = config().generate_many(5, 1);
        assert_eq!(sets.len(), 5);
        assert_ne!(sets[0], sets[1]);
    }

    #[test]
    fn custom_ranges_are_respected() {
        let specs = SynthConfig::new(Rational::ONE)
            .period_range_ms(10, 20)
            .u_lo_range(Rational::new(1, 10), Rational::new(1, 10))
            .gamma_range(Rational::TWO, Rational::TWO)
            .generate(3);
        for s in &specs {
            assert!(s.period() >= Rational::integer(10));
            assert!(s.period() <= Rational::integer(20));
            assert_eq!(s.utilization_lo(), Rational::new(1, 10));
            if s.criticality() == Criticality::Hi {
                assert_eq!(s.wcet_hi(), Rational::TWO * s.wcet_lo());
            }
        }
    }

    #[test]
    #[should_panic(expected = "target utilization must be positive")]
    fn zero_target_is_rejected() {
        let _ = SynthConfig::new(Rational::ZERO);
    }

    #[test]
    fn uunifast_properties() {
        for seed in 0..10u64 {
            let total = Rational::new(3, 4);
            let us = uunifast(6, total, 1000, seed);
            assert_eq!(us.len(), 6);
            for u in &us {
                assert!(u.is_positive());
                assert!(*u <= Rational::ONE);
            }
            let sum: Rational = us.iter().copied().sum();
            assert!(
                (sum - total).abs() <= Rational::new(6, 1000),
                "seed {seed}: sum {sum}"
            );
        }
        // Deterministic per seed.
        assert_eq!(
            uunifast(5, Rational::ONE, 100, 3),
            uunifast(5, Rational::ONE, 100, 3)
        );
        assert_ne!(
            uunifast(5, Rational::ONE, 100, 3),
            uunifast(5, Rational::ONE, 100, 4)
        );
        // Degenerate single task takes (almost) everything.
        let one = uunifast(1, Rational::new(1, 2), 1000, 0);
        assert_eq!(one, vec![Rational::new(1, 2)]);
    }

    #[test]
    fn sample_rational_stays_in_range() {
        let mut rng = Rng::seed_from_u64(0);
        for _ in 0..200 {
            let v = sample_rational(&mut rng, Rational::new(1, 100), Rational::new(1, 5), 1000);
            assert!(v >= Rational::new(1, 100) && v <= Rational::new(1, 5));
        }
        // Degenerate range returns min.
        let v = sample_rational(&mut rng, Rational::new(1, 3), Rational::new(1, 3), 10);
        assert_eq!(v, Rational::new(1, 3));
    }
}
