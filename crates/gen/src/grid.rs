//! Task-set generation on a `(U_HI, U_LO)` utilization grid (Fig. 7).
//!
//! The schedulability-region experiment needs task sets whose HI-task
//! HI-mode utilization `U_HI = Σ_{τ_HI} C_i(HI)/T_i` and LO-task
//! utilization `U_LO = Σ_{τ_LO} C_i(LO)/T_i` land inside a small
//! neighborhood (`± 0.025` in the paper) of each grid point. We generate
//! tasks of each class until its target is entered, drawing per-task
//! HI-mode utilizations directly so large `γ` values (the paper uses
//! `γ = 10` here) cannot overshoot a single task past the target.

use rbs_model::ImplicitTaskSpec;
use rbs_rng::Rng;
use rbs_timebase::Rational;

/// Configuration for grid-point generation.
///
/// # Examples
///
/// ```
/// use rbs_gen::grid::GridConfig;
/// use rbs_timebase::Rational;
///
/// let config = GridConfig::new(Rational::new(1, 2), Rational::new(3, 10));
/// let specs = config.generate(7).expect("grid point is reachable");
/// let (u_hi, u_lo) = GridConfig::class_utilizations(&specs);
/// assert!((u_hi - Rational::new(1, 2)).abs() <= config.tolerance());
/// assert!((u_lo - Rational::new(3, 10)).abs() <= config.tolerance());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridConfig {
    target_u_hi: Rational,
    target_u_lo: Rational,
    tolerance: Rational,
    gamma: Rational,
    period_range_ms: (i128, i128),
    max_attempts: usize,
}

impl GridConfig {
    /// Targets the grid point `(U_HI, U_LO)` with the paper's `± 0.025`
    /// tolerance and `γ = 10`.
    ///
    /// # Panics
    ///
    /// Panics if a target is negative.
    #[must_use]
    pub fn new(target_u_hi: Rational, target_u_lo: Rational) -> GridConfig {
        assert!(
            !target_u_hi.is_negative() && !target_u_lo.is_negative(),
            "targets must be non-negative"
        );
        GridConfig {
            target_u_hi,
            target_u_lo,
            tolerance: Rational::new(1, 40), // 0.025
            gamma: Rational::integer(10),
            period_range_ms: (2, 2000),
            max_attempts: 64,
        }
    }

    /// The neighborhood tolerance.
    #[must_use]
    pub fn tolerance(&self) -> Rational {
        self.tolerance
    }

    /// Overrides the tolerance.
    #[must_use]
    pub fn with_tolerance(mut self, tolerance: Rational) -> GridConfig {
        assert!(tolerance.is_positive(), "tolerance must be positive");
        self.tolerance = tolerance;
        self
    }

    /// Overrides the WCET inflation factor `γ` of HI tasks.
    #[must_use]
    pub fn with_gamma(mut self, gamma: Rational) -> GridConfig {
        assert!(gamma >= Rational::ONE, "γ must be at least 1");
        self.gamma = gamma;
        self
    }

    /// The pair `(Σ_HI C(HI)/T, Σ_LO C(LO)/T)` of a spec list.
    #[must_use]
    pub fn class_utilizations(specs: &[ImplicitTaskSpec]) -> (Rational, Rational) {
        let mut u_hi = Rational::ZERO;
        let mut u_lo = Rational::ZERO;
        for s in specs {
            match s.criticality() {
                rbs_model::Criticality::Hi => u_hi += s.utilization_hi(),
                rbs_model::Criticality::Lo => u_lo += s.utilization_lo(),
            }
        }
        (u_hi, u_lo)
    }

    /// Generates a task set inside the neighborhood, retrying up to an
    /// internal attempt budget. Returns `None` only if every attempt
    /// overshot (possible for tolerances far below the per-task
    /// utilization floor).
    #[must_use]
    pub fn generate(&self, seed: u64) -> Option<Vec<ImplicitTaskSpec>> {
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..self.max_attempts {
            if let Some(specs) = self.attempt(&mut rng) {
                return Some(specs);
            }
        }
        None
    }

    fn attempt(&self, rng: &mut Rng) -> Option<Vec<ImplicitTaskSpec>> {
        let mut specs = Vec::new();
        self.fill_class(rng, true, &mut specs)?;
        self.fill_class(rng, false, &mut specs)?;
        Some(specs)
    }

    /// Adds tasks of one class until its utilization enters the target
    /// neighborhood; `None` on overshoot.
    fn fill_class(&self, rng: &mut Rng, hi: bool, specs: &mut Vec<ImplicitTaskSpec>) -> Option<()> {
        let target = if hi {
            self.target_u_hi
        } else {
            self.target_u_lo
        };
        let mut total = Rational::ZERO;
        let (t_min, t_max) = self.period_range_ms;
        let (log_min, log_max) = ((t_min as f64).ln(), (t_max as f64).ln());
        while total < target - self.tolerance {
            // Draw the class-relevant utilization directly, on a 1/1000
            // grid, capped so one task cannot jump past the window.
            let headroom = target + self.tolerance - total;
            let max_u = Rational::new(1, 5).min(headroom);
            let min_u = Rational::new(1, 100).min(max_u);
            let u = crate::synth::sample_rational(rng, min_u, max_u, 1000);
            let period_ms =
                (rng.gen_range_f64(log_min, log_max).exp().round() as i128).clamp(t_min, t_max);
            let period = Rational::integer(period_ms);
            let index = specs.len();
            if hi {
                let wcet_hi = u * period;
                let wcet_lo = wcet_hi / self.gamma;
                specs.push(ImplicitTaskSpec::hi(
                    format!("hi{index}"),
                    period,
                    wcet_lo,
                    wcet_hi,
                ));
            } else {
                specs.push(ImplicitTaskSpec::lo(
                    format!("lo{index}"),
                    period,
                    u * period,
                ));
            }
            total += u;
        }
        ((total - target).abs() <= self.tolerance).then_some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rat(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn hits_the_neighborhood() {
        for (uh, ul) in [
            (rat(1, 4), rat(1, 4)),
            (rat(3, 4), rat(1, 2)),
            (rat(17, 20), rat(17, 20)),
        ] {
            let config = GridConfig::new(uh, ul);
            let specs = config.generate(11).expect("reachable");
            let (got_hi, got_lo) = GridConfig::class_utilizations(&specs);
            assert!(
                (got_hi - uh).abs() <= config.tolerance(),
                "{got_hi} vs {uh}"
            );
            assert!(
                (got_lo - ul).abs() <= config.tolerance(),
                "{got_lo} vs {ul}"
            );
        }
    }

    #[test]
    fn gamma_is_applied_to_hi_tasks() {
        let config = GridConfig::new(rat(1, 2), rat(1, 4)).with_gamma(Rational::integer(10));
        let specs = config.generate(3).expect("reachable");
        for s in specs
            .iter()
            .filter(|s| s.criticality() == rbs_model::Criticality::Hi)
        {
            assert_eq!(s.wcet_hi(), Rational::integer(10) * s.wcet_lo());
        }
    }

    #[test]
    fn zero_targets_yield_empty_class() {
        let config = GridConfig::new(Rational::ZERO, rat(1, 4));
        let specs = config.generate(5).expect("reachable");
        assert!(specs
            .iter()
            .all(|s| s.criticality() == rbs_model::Criticality::Lo));
    }

    #[test]
    fn deterministic_per_seed() {
        let config = GridConfig::new(rat(1, 2), rat(1, 2));
        assert_eq!(config.generate(9), config.generate(9));
    }

    #[test]
    fn tolerance_accessor_round_trip() {
        let config = GridConfig::new(rat(1, 2), rat(1, 2)).with_tolerance(rat(1, 20));
        assert_eq!(config.tolerance(), rat(1, 20));
    }
}
