//! Workload generators for the paper's evaluation (Section VI).
//!
//! Three workload sources feed the experiments:
//!
//! * [`synth`] — the random task-set generator of Baruah et al. \[4\] as
//!   described in Section VI-B: start from an empty set and keep adding
//!   random implicit-deadline tasks until a target system utilization is
//!   reached, with the parameter distributions of the Fig. 6 caption
//!   (`T ∈ [2 ms, 2 s]`, `u(LO) ∈ [0.01, 0.2]`, `γ ∈ [1, 3]`);
//! * [`grid`] — the `(U_HI, U_LO)` grid generator behind the
//!   schedulability-region experiment (Fig. 7);
//! * [`fms`] — a synthetic stand-in for the industrial flight management
//!   system of Section VI-A (7 DO-178B level-B/HI tasks and 4 level-C/LO
//!   tasks, implicit deadlines, periods between 100 ms and 5 s). The
//!   original parameters live in reference \[6\] and are not public; see
//!   DESIGN.md for the substitution rationale.
//!
//! All times are in **milliseconds** represented exactly as
//! [`rbs_timebase::Rational`]; all generators are deterministic for a
//! given seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fms;
pub mod grid;
pub mod synth;
