//! A synthetic flight management system (FMS) workload (Section VI-A).
//!
//! The paper evaluates on a subset of an industrial FMS with 7 DO-178B
//! level-B (HI) and 4 level-C (LO) implicit-deadline sporadic tasks,
//! minimum inter-arrival times between 100 ms and 5 s. The exact
//! parameters live in reference \[6\] and are not publicly available;
//! this module provides a stand-in with the same structure (task count,
//! criticality split, period range, implicit deadlines) calibrated so
//! the headline behaviours reproduce: LO-mode schedulable at nominal
//! speed and worst-case recovery below 3 s at a 2× speedup for moderate
//! WCET uncertainty `γ` (see EXPERIMENTS.md).
//!
//! All times are in milliseconds.

use rbs_model::ImplicitTaskSpec;
use rbs_timebase::Rational;

/// The number of HI-criticality (DO-178B level B) tasks.
pub const HI_TASKS: usize = 7;

/// The number of LO-criticality (DO-178B level C) tasks.
pub const LO_TASKS: usize = 4;

/// The FMS task list with WCET uncertainty `γ = C(HI)/C(LO)` applied
/// uniformly to the HI tasks (the paper's Fig. 5b sweeps `γ` from 1 to
/// 3).
///
/// # Panics
///
/// Panics if `γ < 1`.
///
/// # Examples
///
/// ```
/// use rbs_gen::fms::{specs, HI_TASKS, LO_TASKS};
/// use rbs_timebase::Rational;
///
/// let fms = specs(Rational::TWO);
/// assert_eq!(fms.len(), HI_TASKS + LO_TASKS);
/// // γ scales every HI task's pessimistic WCET.
/// assert!(fms.iter().all(|s| s.wcet_hi() <= Rational::TWO * s.wcet_lo()));
/// ```
#[must_use]
pub fn specs(gamma: Rational) -> Vec<ImplicitTaskSpec> {
    assert!(gamma >= Rational::ONE, "γ must be at least 1");
    let int = Rational::integer;
    // (name, period ms, C(LO) ms) — periods span the stated 100 ms–5 s
    // range; LO-mode utilizations total 0.30 (HI) + 0.20 (LO) = 0.50.
    let hi_rows: [(&str, i128, i128); HI_TASKS] = [
        ("guidance", 200, 10),
        ("flight_plan_ctrl", 250, 10),
        ("loc_consolidation", 500, 25),
        ("trajectory_pred", 1000, 40),
        ("nav_radio_tuning", 1600, 64),
        ("fuel_estimation", 2000, 80),
        ("nearest_airport", 5000, 200),
    ];
    let lo_rows: [(&str, i128, i128); LO_TASKS] = [
        ("display_update", 100, 5),
        ("crew_interface", 500, 25),
        ("datalink_report", 1000, 50),
        ("maintenance_log", 2000, 100),
    ];
    let mut out = Vec::with_capacity(HI_TASKS + LO_TASKS);
    for (name, period, wcet_lo) in hi_rows {
        out.push(ImplicitTaskSpec::hi(
            name,
            int(period),
            int(wcet_lo),
            gamma * int(wcet_lo),
        ));
    }
    for (name, period, wcet) in lo_rows {
        out.push(ImplicitTaskSpec::lo(name, int(period), int(wcet)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbs_model::Criticality;

    #[test]
    fn structure_matches_the_paper() {
        let fms = specs(Rational::TWO);
        assert_eq!(
            fms.iter()
                .filter(|s| s.criticality() == Criticality::Hi)
                .count(),
            HI_TASKS
        );
        assert_eq!(
            fms.iter()
                .filter(|s| s.criticality() == Criticality::Lo)
                .count(),
            LO_TASKS
        );
        for s in &fms {
            assert!(s.period() >= Rational::integer(100));
            assert!(s.period() <= Rational::integer(5000));
        }
    }

    #[test]
    fn lo_mode_utilization_is_half() {
        let fms = specs(Rational::ONE);
        let total: Rational = fms.iter().map(ImplicitTaskSpec::utilization_lo).sum();
        assert_eq!(total, Rational::new(1, 2));
    }

    #[test]
    fn gamma_scales_hi_wcets() {
        let base = specs(Rational::ONE);
        let doubled = specs(Rational::TWO);
        for (a, b) in base.iter().zip(&doubled) {
            match a.criticality() {
                Criticality::Hi => assert_eq!(b.wcet_hi(), Rational::TWO * a.wcet_hi()),
                Criticality::Lo => assert_eq!(b.wcet_hi(), a.wcet_hi()),
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let fms = specs(Rational::ONE);
        let mut names: Vec<&str> = fms.iter().map(ImplicitTaskSpec::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), HI_TASKS + LO_TASKS);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn sub_unit_gamma_is_rejected() {
        let _ = specs(Rational::new(1, 2));
    }
}
