//! Worst-case reservation EDF: no modes, no adaptation.
//!
//! The most conservative baseline schedules every task by its most
//! pessimistic WCET at all times. For implicit-deadline sets EDF is
//! optimal, so the exact test is the utilization condition
//! `Σ_LO u(LO) + Σ_HI u(HI) ≤ 1`.

use rbs_model::{Criticality, ImplicitTaskSpec};
use rbs_timebase::Rational;

/// The total worst-case utilization `Σ_LO u(LO) + Σ_HI u(HI)`.
#[must_use]
pub fn worst_case_utilization(specs: &[ImplicitTaskSpec]) -> Rational {
    specs
        .iter()
        .map(|s| match s.criticality() {
            Criticality::Hi => s.utilization_hi(),
            Criticality::Lo => s.utilization_lo(),
        })
        .sum()
}

/// Whether worst-case reservations fit on a unit-speed processor.
///
/// # Examples
///
/// ```
/// use rbs_baselines::reservation::is_schedulable;
/// use rbs_model::ImplicitTaskSpec;
/// use rbs_timebase::Rational;
///
/// let specs = [
///     ImplicitTaskSpec::hi("h", Rational::integer(10), Rational::integer(2), Rational::integer(6)),
///     ImplicitTaskSpec::lo("l", Rational::integer(10), Rational::integer(3)),
/// ];
/// // 0.6 + 0.3 ≤ 1.
/// assert!(is_schedulable(&specs));
/// ```
#[must_use]
pub fn is_schedulable(specs: &[ImplicitTaskSpec]) -> bool {
    worst_case_utilization(specs) <= Rational::ONE
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i128) -> Rational {
        Rational::integer(v)
    }

    #[test]
    fn utilization_sums_pessimistic_wcets() {
        let specs = [
            ImplicitTaskSpec::hi("h", int(10), int(2), int(6)),
            ImplicitTaskSpec::lo("l", int(4), int(1)),
        ];
        assert_eq!(
            worst_case_utilization(&specs),
            Rational::new(6, 10) + Rational::new(1, 4)
        );
        assert!(is_schedulable(&specs));
    }

    #[test]
    fn overload_is_rejected() {
        let specs = [
            ImplicitTaskSpec::hi("h", int(10), int(2), int(9)),
            ImplicitTaskSpec::lo("l", int(10), int(3)),
        ];
        assert!(!is_schedulable(&specs));
    }

    #[test]
    fn reservation_is_weaker_than_edf_vd() {
        // EDF-VD dominates reservations: whenever reservations fit,
        // EDF-VD accepts too (its trivial case).
        let specs = [
            ImplicitTaskSpec::hi("h", int(10), int(2), int(6)),
            ImplicitTaskSpec::lo("l", int(10), int(3)),
        ];
        assert!(is_schedulable(&specs));
        assert!(crate::edf_vd::is_schedulable(&specs));
    }
}
