//! EDF-VD (EDF with Virtual Deadlines), Baruah et al., ECRTS 2012.
//!
//! For implicit-deadline dual-criticality task sets, EDF-VD shortens the
//! deadlines of HI tasks in LO mode by a common factor
//! `x = u_HI(LO) / (1 − u_LO(LO))` and drops all LO tasks at the mode
//! switch. The classic sufficient schedulability condition is
//!
//! ```text
//! x·u_LO(LO) + u_HI(HI) ≤ 1     with the x above,
//! ```
//!
//! with the trivial case `u_LO(LO) + u_HI(HI) ≤ 1` (worst-case
//! reservations suffice, no virtual deadlines needed).
//!
//! Because EDF-VD's runtime is a special case of the paper's model
//! (eq. (3) termination + shortened LO deadlines + unit speed),
//! [`task_set`] materializes it as an `rbs_model::TaskSet`, making the
//! exact demand analysis of `rbs-core` and the `rbs-sim` simulator
//! directly applicable.

use rbs_core::speedup::{minimum_speedup, SpeedupBound};
use rbs_core::{AnalysisError, AnalysisLimits};
use rbs_model::{
    scaled_task_set, Criticality, ImplicitTaskSpec, ModelError, ScalingFactors, TaskSet,
};
use rbs_timebase::Rational;

/// The three utilization aggregates of the EDF-VD analysis:
/// `u_LO(LO)`, `u_HI(LO)`, `u_HI(HI)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Utilizations {
    /// `Σ_{τ_LO} C(LO)/T`.
    pub lo_tasks_lo: Rational,
    /// `Σ_{τ_HI} C(LO)/T`.
    pub hi_tasks_lo: Rational,
    /// `Σ_{τ_HI} C(HI)/T`.
    pub hi_tasks_hi: Rational,
}

/// Computes the utilization aggregates of an implicit-deadline spec
/// list.
///
/// # Examples
///
/// ```
/// use rbs_baselines::edf_vd::utilizations;
/// use rbs_model::ImplicitTaskSpec;
/// use rbs_timebase::Rational;
///
/// let specs = [
///     ImplicitTaskSpec::hi("h", Rational::integer(10), Rational::integer(2), Rational::integer(4)),
///     ImplicitTaskSpec::lo("l", Rational::integer(10), Rational::integer(3)),
/// ];
/// let u = utilizations(&specs);
/// assert_eq!(u.hi_tasks_lo, Rational::new(1, 5));
/// assert_eq!(u.hi_tasks_hi, Rational::new(2, 5));
/// assert_eq!(u.lo_tasks_lo, Rational::new(3, 10));
/// ```
#[must_use]
pub fn utilizations(specs: &[ImplicitTaskSpec]) -> Utilizations {
    let mut u = Utilizations {
        lo_tasks_lo: Rational::ZERO,
        hi_tasks_lo: Rational::ZERO,
        hi_tasks_hi: Rational::ZERO,
    };
    for s in specs {
        match s.criticality() {
            Criticality::Hi => {
                u.hi_tasks_lo += s.utilization_lo();
                u.hi_tasks_hi += s.utilization_hi();
            }
            Criticality::Lo => u.lo_tasks_lo += s.utilization_lo(),
        }
    }
    u
}

/// The EDF-VD deadline-scaling factor `x = u_HI(LO) / (1 − u_LO(LO))`,
/// clamped into `(0, 1]`; `None` when no valid factor exists
/// (`u_LO(LO) ≥ 1` or the formula exceeds 1).
#[must_use]
pub fn scaling_factor(specs: &[ImplicitTaskSpec]) -> Option<Rational> {
    let u = utilizations(specs);
    let headroom = Rational::ONE - u.lo_tasks_lo;
    if !headroom.is_positive() {
        return None;
    }
    let x = u.hi_tasks_lo / headroom;
    if x > Rational::ONE {
        return None;
    }
    // x = 0 (no HI tasks) degenerates to plain EDF; report x = 1 so the
    // returned factor is always usable as a deadline scale.
    Some(if x.is_positive() { x } else { Rational::ONE })
}

/// The classic EDF-VD sufficient schedulability test.
///
/// # Examples
///
/// ```
/// use rbs_baselines::edf_vd::is_schedulable;
/// use rbs_model::ImplicitTaskSpec;
/// use rbs_timebase::Rational;
///
/// let light = [
///     ImplicitTaskSpec::hi("h", Rational::integer(10), Rational::integer(2), Rational::integer(4)),
///     ImplicitTaskSpec::lo("l", Rational::integer(10), Rational::integer(3)),
/// ];
/// assert!(is_schedulable(&light));
/// ```
#[must_use]
pub fn is_schedulable(specs: &[ImplicitTaskSpec]) -> bool {
    let u = utilizations(specs);
    // Trivial case: worst-case reservations already fit.
    if u.lo_tasks_lo + u.hi_tasks_hi <= Rational::ONE {
        return true;
    }
    let headroom = Rational::ONE - u.lo_tasks_lo;
    if !headroom.is_positive() {
        return false;
    }
    let x = u.hi_tasks_lo / headroom;
    if x > Rational::ONE {
        return false;
    }
    x * u.lo_tasks_lo + u.hi_tasks_hi <= Rational::ONE
}

/// Materializes the EDF-VD runtime as a task set of the paper's model:
/// HI deadlines shortened by the EDF-VD `x` in LO mode, LO tasks
/// terminated at the switch.
///
/// # Errors
///
/// Returns `None` when no valid scaling factor exists; propagates model
/// validation errors otherwise.
pub fn task_set(specs: &[ImplicitTaskSpec]) -> Option<Result<TaskSet, ModelError>> {
    let x = scaling_factor(specs)?;
    let factors = match ScalingFactors::new(x, Rational::ONE) {
        Ok(f) => f,
        Err(e) => return Some(Err(e)),
    };
    Some(scaled_task_set(specs, factors).and_then(|set| set.with_lo_terminated()))
}

/// The exact minimum speedup EDF-VD would need for its HI mode — `≤ 1`
/// means the set is HI-mode schedulable under EDF-VD without any
/// speedup (a demand-exact refinement of the classic utilization test).
///
/// # Errors
///
/// Propagates exact-analysis errors.
pub fn exact_speedup_requirement(
    specs: &[ImplicitTaskSpec],
    limits: &AnalysisLimits,
) -> Result<Option<SpeedupBound>, AnalysisError> {
    let Some(set) = task_set(specs) else {
        return Ok(None);
    };
    let set = set.expect("specs validated by the model crate");
    Ok(Some(minimum_speedup(&set, limits)?.bound()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbs_core::lo_mode::is_lo_schedulable;
    use rbs_model::Mode;

    fn int(v: i128) -> Rational {
        Rational::integer(v)
    }

    fn rat(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    fn demanding() -> Vec<ImplicitTaskSpec> {
        // u_LO(LO) = 0.3, u_HI(LO) = 0.3, u_HI(HI) = 0.6.
        vec![
            ImplicitTaskSpec::hi("h1", int(10), int(1), int(2)),
            ImplicitTaskSpec::hi("h2", int(10), int(2), int(4)),
            ImplicitTaskSpec::lo("l1", int(10), int(3)),
        ]
    }

    #[test]
    fn scaling_factor_matches_formula() {
        // x = 0.3 / (1 − 0.3) = 3/7.
        assert_eq!(scaling_factor(&demanding()), Some(rat(3, 7)));
    }

    #[test]
    fn schedulability_test_cases() {
        // Demanding set: x·u_LO + u_HI(HI) = 3/7·3/10 + 6/10 = 0.728 ≤ 1.
        assert!(is_schedulable(&demanding()));

        // Over-committed HI side: u_HI(HI) = 1.2.
        let heavy = vec![
            ImplicitTaskSpec::hi("h", int(10), int(4), int(12)),
            ImplicitTaskSpec::lo("l", int(10), int(3)),
        ];
        assert!(!is_schedulable(&heavy));

        // u_LO(LO) = 1: no headroom at all.
        let saturated_lo = vec![
            ImplicitTaskSpec::hi("h", int(10), int(1), int(1)),
            ImplicitTaskSpec::lo("l", int(10), int(10)),
        ];
        assert!(!is_schedulable(&saturated_lo));
        assert_eq!(scaling_factor(&saturated_lo), None);
    }

    #[test]
    fn trivial_case_accepts_without_virtual_deadlines() {
        let light = vec![
            ImplicitTaskSpec::hi("h", int(10), int(2), int(4)),
            ImplicitTaskSpec::lo("l", int(10), int(3)),
        ];
        assert!(is_schedulable(&light));
    }

    #[test]
    fn no_hi_tasks_degenerates_to_plain_edf() {
        let lo_only = vec![ImplicitTaskSpec::lo("l", int(10), int(5))];
        assert_eq!(scaling_factor(&lo_only), Some(Rational::ONE));
        assert!(is_schedulable(&lo_only));
    }

    #[test]
    fn task_set_models_the_edf_vd_runtime() {
        let set = task_set(&demanding())
            .expect("factor exists")
            .expect("valid model");
        // HI tasks carry virtual deadlines x·T in LO mode.
        let h1 = set.by_name("h1").expect("present");
        assert_eq!(h1.lo().deadline(), rat(3, 7) * int(10));
        assert_eq!(h1.params(Mode::Hi).expect("continues").deadline(), int(10));
        // LO tasks are terminated.
        assert!(set.by_name("l1").expect("present").is_terminated_in_hi());
    }

    #[test]
    fn utilization_accepted_sets_pass_the_exact_tests() {
        // The classic test is sufficient: whenever it accepts, the
        // materialized task set must be LO-schedulable and need no
        // HI-mode speedup.
        let limits = AnalysisLimits::default();
        let specs = demanding();
        assert!(is_schedulable(&specs));
        let set = task_set(&specs).expect("factor").expect("valid");
        assert!(is_lo_schedulable(&set, &limits).expect("completes"));
        let bound = exact_speedup_requirement(&specs, &limits)
            .expect("completes")
            .expect("factor exists");
        match bound {
            SpeedupBound::Finite(s) => assert!(s <= Rational::ONE, "s_min = {s}"),
            SpeedupBound::Unbounded => panic!("unbounded for accepted set"),
        }
    }

    #[test]
    fn speedup_quantifies_how_far_edf_vd_misses() {
        // A set both the classic test and the exact demand test reject
        // under EDF-VD: u_LO = 0.5, u_HI(LO) = 0.3, u_HI(HI) = 0.72 give
        // x = 0.6 and x·u_LO + u_HI(HI) = 1.02 > 1. The exact analysis
        // shows a mere 5% temporary speedup rescues it — the paper's
        // central pitch: the carry-over peak is 42 units of work due 40
        // after the switch, i.e. s_min = 21/20.
        let specs = vec![
            ImplicitTaskSpec::hi("h", int(100), int(30), int(72)),
            ImplicitTaskSpec::lo("l", int(10), int(5)),
        ];
        assert!(!is_schedulable(&specs));
        let limits = AnalysisLimits::default();
        let bound = exact_speedup_requirement(&specs, &limits)
            .expect("completes")
            .expect("factor exists");
        assert_eq!(bound, SpeedupBound::Finite(rat(21, 20)));
    }
}
