//! Baseline mixed-criticality schedulers the paper compares against.
//!
//! The paper's proposal — temporary processor speedup — is evaluated
//! against the conventional ways of protecting HI tasks:
//!
//! * [`edf_vd`] — classic **EDF-VD** (Baruah et al., ECRTS 2012):
//!   virtual deadlines in LO mode, LO tasks *terminated* at the mode
//!   switch, no speedup. Its runtime behaviour is expressible in this
//!   workspace's task model (shortened LO deadlines + termination), so
//!   both the classic utilization test and the exact demand test apply,
//!   and the same simulator executes it;
//! * [`reservation`] — **worst-case reservation EDF**: schedule every HI
//!   task by its pessimistic WCET at all times (no modes at all);
//! * [`no_speedup`] — the paper's own adaptive protocol with the
//!   speedup forced to 1 (degradation/termination only) — the direct
//!   ablation of the paper's contribution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod edf_vd;
pub mod no_speedup;
pub mod reservation;
