//! The paper's protocol with the speedup ablated (`s = 1`).
//!
//! Degradation and termination remain available; only the processor
//! speedup is removed. Comparing this baseline against speeds `s > 1`
//! isolates the contribution of the speedup itself (the comparison made
//! in Figs. 6a and 7: "less than 25% of task sets are schedulable when
//! `U_bound = 0.9, s_min = 1`, increased to 75% when `s_min = 1.9`").

use rbs_core::lo_mode::is_lo_schedulable;
use rbs_core::speedup::is_hi_schedulable;
use rbs_core::{AnalysisError, AnalysisLimits};
use rbs_model::TaskSet;
use rbs_timebase::Rational;

/// Whether the full protocol (mode switch, degradation, termination —
/// but **no** speedup) schedules the set: LO mode feasible at unit speed
/// and `s_min ≤ 1`.
///
/// # Errors
///
/// Propagates exact-analysis errors.
///
/// # Examples
///
/// ```
/// use rbs_baselines::no_speedup::is_schedulable;
/// use rbs_core::AnalysisLimits;
/// use rbs_model::{Criticality, Task, TaskSet};
/// use rbs_timebase::Rational;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // The reconstructed Table I set needs s_min = 4/3: without speedup
/// // it is not schedulable.
/// let set = TaskSet::new(vec![
///     Task::builder("tau1", Criticality::Hi)
///         .period(Rational::integer(5))
///         .deadline_lo(Rational::integer(2))
///         .deadline_hi(Rational::integer(5))
///         .wcet_lo(Rational::integer(1))
///         .wcet_hi(Rational::integer(2))
///         .build()?,
///     Task::builder("tau2", Criticality::Lo)
///         .period(Rational::integer(10))
///         .deadline(Rational::integer(10))
///         .wcet(Rational::integer(3))
///         .build()?,
/// ]);
/// assert!(!is_schedulable(&set, &AnalysisLimits::default())?);
/// # Ok(())
/// # }
/// ```
pub fn is_schedulable(set: &TaskSet, limits: &AnalysisLimits) -> Result<bool, AnalysisError> {
    if !is_lo_schedulable(set, limits)? {
        return Ok(false);
    }
    is_hi_schedulable(set, Rational::ONE, limits)
}

/// Whether the set becomes schedulable at speedup `s` — the ablation's
/// counterpart (LO mode still at unit speed).
///
/// # Errors
///
/// Propagates exact-analysis errors.
pub fn is_schedulable_with_speedup(
    set: &TaskSet,
    speedup: Rational,
    limits: &AnalysisLimits,
) -> Result<bool, AnalysisError> {
    if !is_lo_schedulable(set, limits)? {
        return Ok(false);
    }
    is_hi_schedulable(set, speedup, limits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbs_model::{Criticality, Task};

    fn int(v: i128) -> Rational {
        Rational::integer(v)
    }

    fn table1() -> TaskSet {
        TaskSet::new(vec![
            Task::builder("tau1", Criticality::Hi)
                .period(int(5))
                .deadline_lo(int(2))
                .deadline_hi(int(5))
                .wcet_lo(int(1))
                .wcet_hi(int(2))
                .build()
                .expect("valid"),
            Task::builder("tau2", Criticality::Lo)
                .period(int(10))
                .deadline(int(10))
                .wcet(int(3))
                .build()
                .expect("valid"),
        ])
    }

    #[test]
    fn table1_needs_speedup() {
        let limits = AnalysisLimits::default();
        assert!(!is_schedulable(&table1(), &limits).expect("ok"));
        assert!(is_schedulable_with_speedup(&table1(), Rational::new(4, 3), &limits).expect("ok"));
        assert!(!is_schedulable_with_speedup(&table1(), Rational::new(5, 4), &limits).expect("ok"));
    }

    #[test]
    fn degradation_can_replace_speedup() {
        // Example 1's degraded variant has s_min < 1: schedulable even
        // without any speedup.
        let set = TaskSet::new(vec![
            table1()[0].clone(),
            Task::builder("tau2", Criticality::Lo)
                .period(int(10))
                .deadline(int(10))
                .period_hi(int(20))
                .deadline_hi(int(15))
                .wcet(int(3))
                .build()
                .expect("valid"),
        ]);
        assert!(is_schedulable(&set, &AnalysisLimits::default()).expect("ok"));
    }

    #[test]
    fn lo_infeasible_sets_fail_regardless_of_speedup() {
        let set = TaskSet::new(vec![Task::builder("t", Criticality::Lo)
            .period(int(4))
            .deadline(int(2))
            .wcet(int(3))
            .build()
            .expect("valid")]);
        let limits = AnalysisLimits::default();
        assert!(!is_schedulable(&set, &limits).expect("ok"));
        assert!(!is_schedulable_with_speedup(&set, int(100), &limits).expect("ok"));
    }
}
