//! `rbs-svc`: concurrent admission-control service with canonical-form
//! caching.
//!
//! The service turns the exact analyses of `rbs-core` into an online
//! admission-control endpoint: clients stream task sets (one JSON document
//! per line), and the service answers each with the full
//! [`rbs_core::AnalyzeReport`] — LO-mode verdict, Theorem 2's minimum
//! speedup `s_min`, Corollary 5's `Δ_R` rows, and the sized platform
//! speed — rendered as one JSON response line.
//!
//! Three pieces make it fast and deterministic:
//!
//! * **Canonical-form caching** ([`cache`]): every submission is reduced to
//!   a [`rbs_model::CanonicalTaskSet`]; resubmitting a set that differs
//!   only in task order or unreduced rationals hits the cache and returns
//!   the byte-identical report.
//! * **A fixed-size worker pool** ([`pool`]): analyses fan out over
//!   `std::thread` workers connected by `mpsc` channels; results are
//!   collected by submission index, so output order (and content) is
//!   independent of the worker count.
//! * **Shared ingestion** ([`ingest`]): the same reader serves JSON Lines
//!   on stdin (`-`), a single workload file, or a directory of `*.json`
//!   workloads, and is reused by `rbs-experiments analyze`; `--follow`
//!   mode reads stdin incrementally through a byte-capped line reader.
//!
//! And three layers keep it crash-isolated — no single request can take
//! the service down:
//!
//! * **Panic containment** ([`WorkerPool::run_ordered_caught`]): a
//!   panicking analysis becomes a structured `panic` error in its own
//!   response slot; every other request is still served, in order.
//! * **Per-request deadlines** ([`ServiceConfig::timeout`]): the analysis
//!   walks check a cooperative wall-clock deadline at breakpoint
//!   granularity and report a `timeout` error when it passes.
//! * **Ingest guards** ([`ServiceConfig::max_request_bytes`]): oversized
//!   bodies are rejected (and, in `--follow` mode, truncated on the wire)
//!   before parsing.
//!
//! Failed outcomes are negative-cached ([`ResultCache`]`<SvcError>`), so a
//! repeatedly submitted poison pill answers from the cache instead of
//! re-running its worst-case analysis. Every failure carries the
//! [`SvcErrorKind`] taxonomy (`parse|limits|timeout|panic|oversized|`
//! `overload`) rendered in both the JSONL error object and the footer
//! counters.
//!
//! The service core is transport-agnostic: [`framing`] holds the shared
//! byte-capped newline framer, [`stream`] the incremental JSONL loop
//! behind `--follow`, and the `rbs-net` crate layers a TCP front-end
//! (`rbs-netd`) over the same [`Service`] — socket responses are
//! byte-identical to this crate's batch and stream paths.
//!
//! No external dependencies: the whole service is `std` plus the workspace
//! crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod framing;
pub mod ingest;
/// The worker pool now lives in its own crate (`rbs-pool`) so the fleet
/// partitioner can parallelize without depending on the service; this
/// alias keeps `rbs_svc::pool::WorkerPool` paths working.
pub use rbs_pool as pool;
mod service;
pub mod stream;

pub use cache::ResultCache;
pub use framing::LineFramer;
pub use ingest::{read_line_bounded, read_source, Request};
pub use rbs_pool::WorkerPool;
pub use service::{
    BatchStats, ErrorCounters, Outcome, Response, Service, ServiceConfig, SvcError, SvcErrorKind,
    FAULT_PANIC_TASK, FAULT_REPAIR_TASK, FAULT_SLEEP_PREFIX, FAULT_SPLICE_TASK,
};
pub use stream::{serve_jsonl, StreamEnd, StreamOutcome};
