//! `rbs-svc`: concurrent admission-control service with canonical-form
//! caching.
//!
//! The service turns the exact analyses of `rbs-core` into an online
//! admission-control endpoint: clients stream task sets (one JSON document
//! per line), and the service answers each with the full
//! [`rbs_core::AnalyzeReport`] — LO-mode verdict, Theorem 2's minimum
//! speedup `s_min`, Corollary 5's `Δ_R` rows, and the sized platform
//! speed — rendered as one JSON response line.
//!
//! Three pieces make it fast and deterministic:
//!
//! * **Canonical-form caching** ([`cache`]): every submission is reduced to
//!   a [`rbs_model::CanonicalTaskSet`]; resubmitting a set that differs
//!   only in task order or unreduced rationals hits the cache and returns
//!   the byte-identical report.
//! * **A fixed-size worker pool** ([`pool`]): analyses fan out over
//!   `std::thread` workers connected by `mpsc` channels; results are
//!   collected by submission index, so output order (and content) is
//!   independent of the worker count.
//! * **Shared ingestion** ([`ingest`]): the same reader serves JSON Lines
//!   on stdin (`-`), a single workload file, or a directory of `*.json`
//!   workloads, and is reused by `rbs-experiments analyze`.
//!
//! No external dependencies: the whole service is `std` plus the workspace
//! crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod ingest;
pub mod pool;
mod service;

pub use cache::ResultCache;
pub use ingest::{read_source, Request};
pub use pool::WorkerPool;
pub use service::{BatchStats, Outcome, Response, Service};
