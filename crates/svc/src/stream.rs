//! The incremental JSONL stream loop, factored out of the `--follow`
//! daemon so any transport can drive it.
//!
//! [`serve_jsonl`] owns the protocol — byte-capped line framing, blank
//! line skipping, per-line [`Service::process_batch`] micro-batches, a
//! monotonic stream-wide `seq`, per-line flushing, and cumulative
//! [`BatchStats`] with periodic footers — while the caller owns the
//! transport (stdin/stdout for `rbs-svc --follow`, an in-memory pair for
//! the differential suites). The TCP front-end (`rbs-netd`) reuses the
//! same [`crate::framing::LineFramer`] discipline connection-by-
//! connection, which is why socket responses can be diffed byte-for-byte
//! against this loop's output.

use std::io::{self, BufRead, Write};

use crate::ingest::{read_line_bounded, Request};
use crate::service::{BatchStats, Service};

/// Why a [`serve_jsonl`] stream ended early. A clean end of input is not
/// an error — it is the graceful drain.
#[derive(Debug)]
pub enum StreamEnd {
    /// The input transport failed mid-stream; everything read so far was
    /// answered.
    Read(io::Error),
    /// The output transport failed (reader went away); the stream cannot
    /// continue.
    Write(io::Error),
}

/// Counters plus the optional early-end cause of one stream.
#[derive(Debug)]
pub struct StreamOutcome {
    /// Cumulative counters over the whole stream.
    pub stats: BatchStats,
    /// `None` on a graceful end-of-input drain.
    pub end: Option<StreamEnd>,
}

/// Serves JSON Lines from `reader` to `writer` until end of input:
/// each non-blank line is answered as it arrives (flushing per line),
/// `seq` stays monotonic across the stream, labels are
/// `{label_prefix}:{line_no}`, and the per-line byte cap comes from the
/// service's [`crate::ServiceConfig::max_request_bytes`]. Every
/// `stats_every` requests (0 = never) `footer` is called with the
/// cumulative stats; the final stats come back in the outcome.
pub fn serve_jsonl<R: BufRead, W: Write>(
    service: &Service,
    reader: &mut R,
    writer: &mut W,
    label_prefix: &str,
    stats_every: usize,
    mut footer: impl FnMut(&BatchStats),
) -> StreamOutcome {
    let cap = service.config().max_request_bytes;
    let mut cumulative = BatchStats::default();
    let mut line_no = 0usize;
    let mut seq = 0usize;
    let end = loop {
        let line = match read_line_bounded(reader, cap) {
            Ok(Some(line)) => line,
            Ok(None) => break None, // end of input: graceful drain
            Err(error) => break Some(StreamEnd::Read(error)),
        };
        line_no += 1;
        if line.trim().is_empty() {
            continue;
        }
        let request = Request {
            label: format!("{label_prefix}:{line_no}"),
            body: line,
        };
        let (responses, stats) = service.process_batch(std::slice::from_ref(&request));
        let mut write_error = None;
        for mut response in responses {
            // Keep `seq` monotonic across the stream, not per micro-batch.
            response.seq = seq;
            seq += 1;
            if let Err(error) = writeln!(writer, "{}", response.render()) {
                write_error = Some(error);
                break;
            }
        }
        cumulative.absorb(&stats);
        if let Some(error) = write_error {
            break Some(StreamEnd::Write(error));
        }
        let _ = writer.flush();
        if stats_every > 0 && cumulative.served % stats_every == 0 {
            footer(&cumulative);
        }
    };
    StreamOutcome {
        stats: cumulative,
        end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::WorkerPool;
    use crate::service::ServiceConfig;

    fn service() -> Service {
        Service::with_config(WorkerPool::new(2), ServiceConfig::default())
    }

    #[test]
    fn streams_answer_line_by_line_with_monotonic_seq() {
        let input = b"garbage\n\nmore garbage\n".to_vec();
        let mut reader = io::BufReader::new(&input[..]);
        let mut out = Vec::new();
        let outcome = serve_jsonl(&service(), &mut reader, &mut out, "stdin", 0, |_| {});
        assert!(outcome.end.is_none());
        assert_eq!(outcome.stats.served, 2);
        let text = String::from_utf8(out).expect("responses are UTF-8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        // The blank line is skipped without consuming a seq; labels keep
        // the physical line number.
        assert!(lines[0].starts_with("{\"seq\":0,"), "{}", lines[0]);
        assert!(lines[0].contains("stdin:1"), "{}", lines[0]);
        assert!(lines[1].starts_with("{\"seq\":1,"), "{}", lines[1]);
        assert!(lines[1].contains("stdin:3"), "{}", lines[1]);
    }

    #[test]
    fn periodic_footers_fire_on_the_cumulative_stats() {
        let input = b"a\nb\nc\n".to_vec();
        let mut reader = io::BufReader::new(&input[..]);
        let mut out = Vec::new();
        let mut footers = Vec::new();
        let outcome = serve_jsonl(&service(), &mut reader, &mut out, "stdin", 1, |stats| {
            footers.push(stats.served);
        });
        assert!(outcome.end.is_none());
        assert_eq!(footers, vec![1, 2, 3]);
        assert_eq!(outcome.stats.errors.parse, 3);
    }
}
