//! Input framing shared by `rbs-svc` and `rbs-experiments analyze`.
//!
//! One ingestion function serves the three supported sources:
//!
//! * `-` — JSON Lines on stdin: every non-blank line is one task-set
//!   document;
//! * a file — a single pretty-printed JSON document, or (when the whole
//!   file is not one document) JSON Lines;
//! * a directory — every `*.json` file directly inside it, in sorted
//!   order, one document per file.

use std::fs;
use std::io::{self, BufRead, Read};
use std::path::Path;

use crate::framing::LineFramer;

/// One task-set document to analyze, labeled with where it came from
/// (`stdin:3`, a file path, …) for error messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Human-readable origin of the document.
    pub label: String,
    /// The JSON text of the document.
    pub body: String,
}

/// Reads every task-set document from `source` (`-` for stdin, a file, or
/// a directory of `*.json` workloads).
///
/// # Errors
///
/// Propagates I/O failures; a directory with no `*.json` files yields an
/// error rather than a silent empty batch.
pub fn read_source(source: &str) -> io::Result<Vec<Request>> {
    if source == "-" {
        let mut text = String::new();
        io::stdin().read_to_string(&mut text)?;
        return Ok(split_lines("stdin", &text));
    }
    let path = Path::new(source);
    if path.is_dir() {
        return read_dir(path);
    }
    let text = fs::read_to_string(path)?;
    // A workload file is usually one (pretty-printed) document; fall back
    // to JSON Lines when the file as a whole is not a single document.
    if rbs_json::parse(&text).is_ok() {
        return Ok(vec![Request {
            label: source.to_owned(),
            body: text,
        }]);
    }
    Ok(split_lines(source, &text))
}

fn read_dir(dir: &Path) -> io::Result<Vec<Request>> {
    let mut paths: Vec<_> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|entry| entry.path())
        .filter(|p| p.is_file() && p.extension().is_some_and(|e| e == "json"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no *.json workloads under {}", dir.display()),
        ));
    }
    paths
        .into_iter()
        .map(|p| {
            Ok(Request {
                label: p.display().to_string(),
                body: fs::read_to_string(&p)?,
            })
        })
        .collect()
}

/// Reads one newline-terminated line with a byte cap — the `--follow`
/// mode ingest guard, a pull adapter over the shared
/// [`LineFramer`] framing (truncate-to-`cap + 1`, discard the
/// remainder, replace invalid UTF-8 — see [`crate::framing`]).
///
/// The reader is consumed only through the first newline, so bytes
/// after it stay buffered for the next call. Returns `None` at end of
/// input. `cap == None` means unbounded.
///
/// # Errors
///
/// Propagates I/O failures from the underlying reader.
pub fn read_line_bounded<R: BufRead>(
    reader: &mut R,
    cap: Option<usize>,
) -> io::Result<Option<String>> {
    let mut framer = LineFramer::new(cap);
    loop {
        if let Some(line) = framer.pop() {
            return Ok(Some(line));
        }
        let buffer = reader.fill_buf()?;
        if buffer.is_empty() {
            // EOF: a partial final line still counts as a line.
            return Ok(framer.finish());
        }
        let consumed = match buffer.iter().position(|&b| b == b'\n') {
            Some(newline) => newline + 1,
            None => buffer.len(),
        };
        framer.push(&buffer[..consumed]);
        reader.consume(consumed);
    }
}

fn split_lines(origin: &str, text: &str) -> Vec<Request> {
    let mut framer = LineFramer::new(None);
    framer.push(text.as_bytes());
    let mut lines = Vec::new();
    while let Some(line) = framer.pop() {
        lines.push(line);
    }
    if let Some(last) = framer.finish() {
        lines.push(last);
    }
    lines
        .into_iter()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| Request {
            label: format!("{origin}:{}", i + 1),
            body: line,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_lines_are_skipped_and_labeled_by_line() {
        let requests = split_lines("stdin", "[1]\n\n[2]\n   \n[3]");
        assert_eq!(requests.len(), 3);
        assert_eq!(requests[0].label, "stdin:1");
        assert_eq!(requests[1].label, "stdin:3");
        assert_eq!(requests[2].body, "[3]");
    }

    #[test]
    fn directories_yield_sorted_json_files() {
        let requests = read_source(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../examples/workloads"
        ))
        .expect("workloads directory reads");
        assert_eq!(requests.len(), 3);
        assert!(requests[0].label.ends_with("table1.json"));
        assert!(requests[1].label.ends_with("table1_degraded.json"));
        assert!(requests[2].label.ends_with("terminated.json"));
    }

    #[test]
    fn bounded_lines_truncate_but_stay_synchronized() {
        let text = format!("short\n{}\nafter\nlast", "x".repeat(100));
        let mut reader = io::BufReader::with_capacity(8, text.as_bytes());
        let cap = Some(10);
        assert_eq!(
            read_line_bounded(&mut reader, cap).expect("reads"),
            Some("short".to_owned())
        );
        // The 100-byte line is truncated to cap + 1 bytes, and the rest of
        // the line is discarded — the next read sees "after".
        let long = read_line_bounded(&mut reader, cap).expect("reads").unwrap();
        assert_eq!(long.len(), 11);
        assert_eq!(
            read_line_bounded(&mut reader, cap).expect("reads"),
            Some("after".to_owned())
        );
        // A partial final line (no trailing newline) still arrives.
        assert_eq!(
            read_line_bounded(&mut reader, cap).expect("reads"),
            Some("last".to_owned())
        );
        assert_eq!(read_line_bounded(&mut reader, cap).expect("reads"), None);
    }

    #[test]
    fn unbounded_lines_pass_through_untouched() {
        let mut reader = io::BufReader::new("abc\n\ndef".as_bytes());
        assert_eq!(
            read_line_bounded(&mut reader, None).expect("reads"),
            Some("abc".to_owned())
        );
        assert_eq!(
            read_line_bounded(&mut reader, None).expect("reads"),
            Some(String::new())
        );
        assert_eq!(
            read_line_bounded(&mut reader, None).expect("reads"),
            Some("def".to_owned())
        );
        assert_eq!(read_line_bounded(&mut reader, None).expect("reads"), None);
    }

    #[test]
    fn single_document_files_are_one_request() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../examples/workloads/table1.json"
        );
        let requests = read_source(path).expect("file reads");
        assert_eq!(requests.len(), 1);
        assert!(rbs_json::parse(&requests[0].body).is_ok());
    }
}
