//! Input framing shared by `rbs-svc` and `rbs-experiments analyze`.
//!
//! One ingestion function serves the three supported sources:
//!
//! * `-` — JSON Lines on stdin: every non-blank line is one task-set
//!   document;
//! * a file — a single pretty-printed JSON document, or (when the whole
//!   file is not one document) JSON Lines;
//! * a directory — every `*.json` file directly inside it, in sorted
//!   order, one document per file.

use std::fs;
use std::io::{self, BufRead, Read};
use std::path::Path;

/// One task-set document to analyze, labeled with where it came from
/// (`stdin:3`, a file path, …) for error messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Human-readable origin of the document.
    pub label: String,
    /// The JSON text of the document.
    pub body: String,
}

/// Reads every task-set document from `source` (`-` for stdin, a file, or
/// a directory of `*.json` workloads).
///
/// # Errors
///
/// Propagates I/O failures; a directory with no `*.json` files yields an
/// error rather than a silent empty batch.
pub fn read_source(source: &str) -> io::Result<Vec<Request>> {
    if source == "-" {
        let mut text = String::new();
        io::stdin().read_to_string(&mut text)?;
        return Ok(split_lines("stdin", &text));
    }
    let path = Path::new(source);
    if path.is_dir() {
        return read_dir(path);
    }
    let text = fs::read_to_string(path)?;
    // A workload file is usually one (pretty-printed) document; fall back
    // to JSON Lines when the file as a whole is not a single document.
    if rbs_json::parse(&text).is_ok() {
        return Ok(vec![Request {
            label: source.to_owned(),
            body: text,
        }]);
    }
    Ok(split_lines(source, &text))
}

fn read_dir(dir: &Path) -> io::Result<Vec<Request>> {
    let mut paths: Vec<_> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|entry| entry.path())
        .filter(|p| p.is_file() && p.extension().is_some_and(|e| e == "json"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no *.json workloads under {}", dir.display()),
        ));
    }
    paths
        .into_iter()
        .map(|p| {
            Ok(Request {
                label: p.display().to_string(),
                body: fs::read_to_string(&p)?,
            })
        })
        .collect()
}

/// Reads one newline-terminated line with a byte cap — the `--follow`
/// mode ingest guard. A line longer than `cap` bytes is *truncated to
/// `cap + 1` bytes* (enough for the service's oversized check to fire)
/// while the remainder is consumed and discarded, so a pathological
/// multi-gigabyte line can neither exhaust memory nor desynchronize the
/// stream. Invalid UTF-8 is replaced rather than rejected (an oversized
/// cut can split a code point; the body is never parsed in that case).
///
/// Returns `None` at end of input. `cap == None` means unbounded.
///
/// # Errors
///
/// Propagates I/O failures from the underlying reader.
pub fn read_line_bounded<R: BufRead>(
    reader: &mut R,
    cap: Option<usize>,
) -> io::Result<Option<String>> {
    let keep = cap.map_or(usize::MAX, |c| c.saturating_add(1));
    let mut line: Vec<u8> = Vec::new();
    let mut saw_any = false;
    loop {
        let buffer = reader.fill_buf()?;
        if buffer.is_empty() {
            // EOF: a partial final line still counts as a line.
            return Ok(if saw_any {
                Some(String::from_utf8_lossy(&line).into_owned())
            } else {
                None
            });
        }
        saw_any = true;
        let (chunk, done) = match buffer.iter().position(|&b| b == b'\n') {
            Some(newline) => (&buffer[..newline], true),
            None => (buffer, false),
        };
        let room = keep.saturating_sub(line.len());
        line.extend_from_slice(&chunk[..chunk.len().min(room)]);
        let consumed = chunk.len() + usize::from(done);
        reader.consume(consumed);
        if done {
            return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
        }
    }
}

fn split_lines(origin: &str, text: &str) -> Vec<Request> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| Request {
            label: format!("{origin}:{}", i + 1),
            body: line.to_owned(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_lines_are_skipped_and_labeled_by_line() {
        let requests = split_lines("stdin", "[1]\n\n[2]\n   \n[3]");
        assert_eq!(requests.len(), 3);
        assert_eq!(requests[0].label, "stdin:1");
        assert_eq!(requests[1].label, "stdin:3");
        assert_eq!(requests[2].body, "[3]");
    }

    #[test]
    fn directories_yield_sorted_json_files() {
        let requests = read_source(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../examples/workloads"
        ))
        .expect("workloads directory reads");
        assert_eq!(requests.len(), 3);
        assert!(requests[0].label.ends_with("table1.json"));
        assert!(requests[1].label.ends_with("table1_degraded.json"));
        assert!(requests[2].label.ends_with("terminated.json"));
    }

    #[test]
    fn bounded_lines_truncate_but_stay_synchronized() {
        let text = format!("short\n{}\nafter\nlast", "x".repeat(100));
        let mut reader = io::BufReader::with_capacity(8, text.as_bytes());
        let cap = Some(10);
        assert_eq!(
            read_line_bounded(&mut reader, cap).expect("reads"),
            Some("short".to_owned())
        );
        // The 100-byte line is truncated to cap + 1 bytes, and the rest of
        // the line is discarded — the next read sees "after".
        let long = read_line_bounded(&mut reader, cap).expect("reads").unwrap();
        assert_eq!(long.len(), 11);
        assert_eq!(
            read_line_bounded(&mut reader, cap).expect("reads"),
            Some("after".to_owned())
        );
        // A partial final line (no trailing newline) still arrives.
        assert_eq!(
            read_line_bounded(&mut reader, cap).expect("reads"),
            Some("last".to_owned())
        );
        assert_eq!(read_line_bounded(&mut reader, cap).expect("reads"), None);
    }

    #[test]
    fn unbounded_lines_pass_through_untouched() {
        let mut reader = io::BufReader::new("abc\n\ndef".as_bytes());
        assert_eq!(
            read_line_bounded(&mut reader, None).expect("reads"),
            Some("abc".to_owned())
        );
        assert_eq!(
            read_line_bounded(&mut reader, None).expect("reads"),
            Some(String::new())
        );
        assert_eq!(
            read_line_bounded(&mut reader, None).expect("reads"),
            Some("def".to_owned())
        );
        assert_eq!(read_line_bounded(&mut reader, None).expect("reads"), None);
    }

    #[test]
    fn single_document_files_are_one_request() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../examples/workloads/table1.json"
        );
        let requests = read_source(path).expect("file reads");
        assert_eq!(requests.len(), 1);
        assert!(rbs_json::parse(&requests[0].body).is_ok());
    }
}
