//! Transport-agnostic newline framing with a byte cap.
//!
//! One [`LineFramer`] implements the wire discipline shared by every
//! JSONL transport the service speaks — the batch reader, the `--follow`
//! stdin daemon, and the TCP connections of `rbs-netd`:
//!
//! * a *line* is any byte run terminated by `\n` (a trailing `\r` is
//!   stripped, so CRLF peers work), plus a final unterminated run at end
//!   of input;
//! * a line longer than the configured cap is *truncated to `cap + 1`
//!   bytes* — enough for the service's oversized check to fire — while
//!   the remainder is consumed and discarded, so a pathological
//!   multi-gigabyte line can neither exhaust memory nor desynchronize
//!   the stream;
//! * invalid UTF-8 is replaced rather than rejected (an oversized cut
//!   can split a code point; the body is never parsed in that case).
//!
//! The framer is push-based: transports feed whatever bytes they have
//! (`BufRead` chunks, nonblocking socket reads) and pop complete lines.
//! Keeping one implementation here is what makes the socket path's
//! framing bit-identical to the stdin path's — the differential suite
//! relies on it.

use std::collections::VecDeque;

/// An incremental, byte-capped newline framer. Feed bytes with
/// [`LineFramer::push`], take complete lines with [`LineFramer::pop`],
/// and flush the final unterminated line with [`LineFramer::finish`] when
/// the transport reaches end of input.
#[derive(Debug)]
pub struct LineFramer {
    /// Bytes kept per line: `cap + 1` (truncation sentinel included) or
    /// `usize::MAX` when unbounded.
    keep: usize,
    /// Kept bytes of the line currently being assembled.
    line: Vec<u8>,
    /// Whether the current line has seen any input bytes (a truncated
    /// line keeps fewer bytes than it consumed, so `line.is_empty()`
    /// alone cannot distinguish "nothing yet" from "empty line").
    saw_any: bool,
    /// Whether the current line dropped bytes to the cap. A truncated
    /// line must keep all `cap + 1` bytes it is entitled to — stripping
    /// a trailing `\r` from the *kept prefix* would shrink it to exactly
    /// `cap` bytes and defeat the oversized check downstream.
    truncated: bool,
    /// Complete lines ready to pop, oldest first.
    ready: VecDeque<String>,
}

impl LineFramer {
    /// A framer keeping at most `cap + 1` bytes per line (`None` means
    /// unbounded).
    #[must_use]
    pub fn new(cap: Option<usize>) -> LineFramer {
        LineFramer {
            keep: cap.map_or(usize::MAX, |c| c.saturating_add(1)),
            line: Vec::new(),
            saw_any: false,
            truncated: false,
            ready: VecDeque::new(),
        }
    }

    /// Feeds `chunk` into the framer; every newline in it completes one
    /// line (possibly empty, possibly truncated to the cap).
    pub fn push(&mut self, chunk: &[u8]) {
        let mut rest = chunk;
        loop {
            match rest.iter().position(|&b| b == b'\n') {
                Some(newline) => {
                    self.absorb(&rest[..newline]);
                    self.complete();
                    rest = &rest[newline + 1..];
                }
                None => {
                    self.absorb(rest);
                    return;
                }
            }
        }
    }

    /// The oldest complete line, if any.
    pub fn pop(&mut self) -> Option<String> {
        self.ready.pop_front()
    }

    /// Whether a complete line is ready to pop.
    #[must_use]
    pub fn has_line(&self) -> bool {
        !self.ready.is_empty()
    }

    /// Flushes the final unterminated line at end of input: a partial
    /// line still counts as a line, but input ending exactly at a
    /// newline yields nothing.
    pub fn finish(&mut self) -> Option<String> {
        if !self.saw_any {
            return None;
        }
        self.complete();
        self.ready.pop_back()
    }

    fn absorb(&mut self, bytes: &[u8]) {
        if !bytes.is_empty() {
            self.saw_any = true;
        }
        let room = self.keep.saturating_sub(self.line.len());
        if bytes.len() > room {
            self.truncated = true;
        }
        self.line.extend_from_slice(&bytes[..bytes.len().min(room)]);
    }

    fn complete(&mut self) {
        // Only a line that really *ended* in CRLF gets its `\r` stripped.
        // On a truncated line the last kept byte is a cut mid-line, not a
        // terminator — stripping a coincidental `\r` there would hand a
        // `cap`-byte prefix downstream as if it were the whole line.
        if !self.truncated && self.line.last() == Some(&b'\r') {
            self.line.pop();
        }
        self.ready
            .push_back(String::from_utf8_lossy(&self.line).into_owned());
        self.line.clear();
        self.saw_any = false;
        self.truncated = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(framer: &mut LineFramer) -> Vec<String> {
        let mut lines = Vec::new();
        while let Some(line) = framer.pop() {
            lines.push(line);
        }
        lines
    }

    #[test]
    fn lines_split_across_arbitrary_chunks() {
        let mut framer = LineFramer::new(None);
        for chunk in [&b"ab"[..], b"c\nde", b"", b"f\n\ng"] {
            framer.push(chunk);
        }
        assert_eq!(drain(&mut framer), vec!["abc", "def", ""]);
        assert_eq!(framer.finish(), Some("g".to_owned()));
        assert_eq!(framer.finish(), None);
    }

    #[test]
    fn capped_lines_truncate_but_stay_synchronized() {
        let mut framer = LineFramer::new(Some(4));
        framer.push(b"0123456789\nok\n");
        let lines = drain(&mut framer);
        assert_eq!(lines[0], "01234"); // cap + 1 bytes kept
        assert_eq!(lines[1], "ok");
    }

    #[test]
    fn input_ending_at_a_newline_has_no_final_line() {
        let mut framer = LineFramer::new(None);
        framer.push(b"last\n");
        assert_eq!(framer.pop(), Some("last".to_owned()));
        assert_eq!(framer.finish(), None);
    }

    #[test]
    fn crlf_terminators_are_stripped() {
        let mut framer = LineFramer::new(None);
        framer.push(b"a\r\nb\n");
        assert_eq!(drain(&mut framer), vec!["a", "b"]);
    }

    #[test]
    fn truncated_bytes_are_discarded_not_buffered() {
        let mut framer = LineFramer::new(Some(2));
        framer.push(&vec![b'x'; 1 << 16]);
        framer.push(b"\nok\n");
        let lines = drain(&mut framer);
        assert_eq!(lines[0].len(), 3);
        assert_eq!(lines[1], "ok");
    }

    #[test]
    fn truncated_line_cut_at_a_cr_keeps_its_sentinel_byte() {
        // The kept prefix of the oversized line happens to end in `\r`.
        // It must still surface with `cap + 1` bytes so the downstream
        // oversized check fires — stripping the `\r` would disguise the
        // truncated prefix as a complete `cap`-byte line.
        let mut framer = LineFramer::new(Some(4));
        framer.push(b"abcd\rTRAILING BYTES\nok\n");
        let lines = drain(&mut framer);
        assert_eq!(lines[0], "abcd\r");
        assert_eq!(lines[0].len(), 5); // cap + 1: sentinel intact
        assert_eq!(lines[1], "ok");
    }

    #[test]
    fn crlf_exactly_at_the_cap_still_strips() {
        // `cap` payload bytes plus the `\r` fill the keep budget without
        // dropping anything: a genuine CRLF terminator, not a cut.
        let mut framer = LineFramer::new(Some(4));
        framer.push(b"abcd\r\nok\r\n");
        assert_eq!(drain(&mut framer), vec!["abcd", "ok"]);
    }

    #[test]
    fn truncation_cut_at_a_cr_across_chunk_boundaries() {
        // The cut lands on a `\r` fed in an earlier chunk; the truncated
        // flag must persist until the newline arrives.
        let mut framer = LineFramer::new(Some(4));
        framer.push(b"abcd\r");
        framer.push(b"more");
        framer.push(b"\nok\n");
        let lines = drain(&mut framer);
        assert_eq!(lines[0], "abcd\r");
        assert_eq!(lines[1], "ok");
    }

    #[test]
    fn invalid_utf8_is_replaced() {
        let mut framer = LineFramer::new(None);
        framer.push(&[0xff, 0xfe, b'\n']);
        assert_eq!(framer.pop(), Some("\u{fffd}\u{fffd}".to_owned()));
    }
}
