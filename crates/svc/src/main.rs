//! `rbs-svc` binary: JSONL admission control over stdin/files/directories,
//! in one-shot batch mode or as a long-running `--follow` daemon.

use std::io;
use std::process::ExitCode;
use std::time::Duration;

use rbs_svc::{read_source, serve_jsonl, Outcome, Service, ServiceConfig, StreamEnd, WorkerPool};

const USAGE: &str = "\
usage: rbs-svc [INPUT] [--follow] [--jobs N] [--cache-size N] [options]

INPUT is '-' (default: JSON Lines on stdin, one request per line), a
workload file, or a directory containing *.json workloads. A request is
either a task-set document (a JSON array of tasks) or a campaign sweep:

  {\"sweep\":{\"specs\":[...],\"x\":RAT?,\"ys\":[RAT,...],\"speeds\":[RAT,...]}}

where specs are implicit-deadline tasks ({\"name\",\"criticality\",
\"period\",\"wcet_lo\",\"wcet_hi\"}), rationals are {\"num\":N,\"den\":N},
\"x\" is optional (omitted: the minimal density-feasible x is derived),
and the answer is the whole (y, s) grid computed by the incremental
sweep engine — s_min plus the resetting time at every speed, per y —
e.g.:

  {\"sweep\":{\"specs\":[{\"name\":\"t1\",\"criticality\":\"Hi\",\
\"period\":{\"num\":5,\"den\":1},\"wcet_lo\":{\"num\":1,\"den\":1},\
\"wcet_hi\":{\"num\":2,\"den\":1}}],\"ys\":[{\"num\":1,\"den\":1}],\
\"speeds\":[{\"num\":2,\"den\":1}]}}

Every request is answered on stdout with one JSON line:

  {\"seq\":N,\"hash\":\"<canonical hash>\",\"cached\":BOOL,\"report\":{...}}
  {\"seq\":N,\"source\":\"...\",\"cached\":BOOL,\"error\":{\"kind\":\"...\",\"detail\":\"...\"}}

where error kind is one of parse|limits|timeout|panic|oversized|overload
(overload is shed by the rbs-netd front-end, never this binary), and a
summary footer (request counters, error taxonomy, cache hits, walk and
component-reuse counters, latency percentiles) goes to stderr. Sweep
responses report infeasible spec lists as {\"infeasible\":true} and carry
\"reused\"/\"rebuilt\" component counts in their \"walks\" block.

modes:
  (default)       batch: read all of INPUT, answer every request, exit
                  non-zero if any request failed
  --follow        daemon: read stdin incrementally, answer each line as it
                  arrives (flushing per line), drain gracefully on EOF and
                  exit zero; per-request failures are reported in-band

options:
  --jobs N               worker threads (default: available parallelism)
  --cache-size N         cached reports across shards (default: 1024; 0 disables)
  --neg-cache-size N     cached failed outcomes (default: 256; 0 disables)
  --timeout-ms N         per-request analysis deadline (default: 0 = none)
  --max-request-bytes N  reject larger request bodies as oversized
                         (default: 0 = unlimited)
  --stats-every N        in --follow mode, print the cumulative footer to
                         stderr every N requests (default: 0 = only at EOF)
  --fault-injection      honor chaos-testing task-name markers
                         (__rbs_fault_panic__, __rbs_fault_sleep_ms_N__,
                         __rbs_fault_splice__, __rbs_fault_repair__)
";

struct Args {
    input: String,
    follow: bool,
    jobs: Option<usize>,
    stats_every: usize,
    config: ServiceConfig,
}

fn parse_args(args: &[String]) -> Result<Option<Args>, String> {
    let mut parsed = Args {
        input: "-".to_owned(),
        follow: false,
        jobs: None,
        stats_every: 0,
        config: ServiceConfig::default(),
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => return Ok(None),
            "--follow" => {
                parsed.follow = true;
                i += 1;
            }
            "--fault-injection" => {
                parsed.config.fault_injection = true;
                i += 1;
            }
            flag @ ("--jobs"
            | "--cache-size"
            | "--neg-cache-size"
            | "--timeout-ms"
            | "--max-request-bytes"
            | "--stats-every") => {
                let Some(value) = args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) else {
                    return Err(format!("{flag} requires a non-negative integer"));
                };
                match flag {
                    "--jobs" => parsed.jobs = Some(value),
                    "--cache-size" => parsed.config.cache_capacity = value,
                    "--neg-cache-size" => parsed.config.negative_cache_capacity = value,
                    "--timeout-ms" => {
                        parsed.config.timeout =
                            (value > 0).then(|| Duration::from_millis(value as u64));
                    }
                    "--max-request-bytes" => {
                        parsed.config.max_request_bytes = (value > 0).then_some(value);
                    }
                    "--stats-every" => parsed.stats_every = value,
                    _ => unreachable!("covered by the outer match"),
                }
                i += 2;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag: {other}"));
            }
            other => {
                parsed.input = other.to_owned();
                i += 1;
            }
        }
    }
    Ok(Some(parsed))
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(Some(args)) => args,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("{message}");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let pool = match args.jobs {
        Some(n) => WorkerPool::new(n),
        None => WorkerPool::with_available_parallelism(),
    };
    let service = Service::with_config(pool, args.config);
    if args.follow {
        run_follow(&service, args.stats_every)
    } else {
        run_batch(&service, &args.input)
    }
}

/// One-shot mode: read everything, answer everything, exit non-zero if
/// any request failed.
fn run_batch(service: &Service, input: &str) -> ExitCode {
    let requests = match read_source(input) {
        Ok(requests) => requests,
        Err(error) => {
            eprintln!("cannot read {input}: {error}");
            return ExitCode::FAILURE;
        }
    };
    let (responses, stats) = service.process_batch(&requests);
    let mut failed = false;
    for response in &responses {
        println!("{}", response.render());
        failed |= matches!(response.outcome, Outcome::Error { .. });
    }
    eprintln!("{}", stats.footer(service.jobs()));
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Daemon mode: answer each stdin line as it arrives, flushing per line;
/// keep cumulative stats, print the footer periodically and at EOF, then
/// drain gracefully. Per-request failures are reported in-band, so a
/// clean drain exits zero; only transport failures (stdout gone) don't.
/// The protocol itself lives in [`serve_jsonl`], shared with the network
/// front-end's differential suite.
fn run_follow(service: &Service, stats_every: usize) -> ExitCode {
    let stdin = io::stdin();
    let mut reader = stdin.lock();
    let stdout = io::stdout();
    let mut writer = stdout.lock();
    let jobs = service.jobs();
    let outcome = serve_jsonl(
        service,
        &mut reader,
        &mut writer,
        "stdin",
        stats_every,
        |stats| eprintln!("{}", stats.footer(jobs)),
    );
    if let Some(StreamEnd::Read(error)) = &outcome.end {
        eprintln!("rbs-svc: stdin read error: {error}");
    }
    eprintln!("{}", outcome.stats.footer(jobs));
    match outcome.end {
        // Reader went away (broken pipe): only transport failures on the
        // response side fail the daemon.
        Some(StreamEnd::Write(_)) => ExitCode::FAILURE,
        _ => ExitCode::SUCCESS,
    }
}
