//! `rbs-svc` binary: JSONL admission control over stdin/files/directories.

use std::process::ExitCode;

use rbs_core::AnalysisLimits;
use rbs_svc::{read_source, Outcome, Service, WorkerPool};

const USAGE: &str = "\
usage: rbs-svc [INPUT] [--jobs N] [--cache-size N]

INPUT is '-' (default: JSON Lines on stdin, one task set per line), a
workload file, or a directory containing *.json workloads. Every request
is answered on stdout with one JSON line:

  {\"seq\":N,\"hash\":\"<canonical hash>\",\"cached\":BOOL,\"report\":{...}}
  {\"seq\":N,\"source\":\"...\",\"error\":\"...\"}

and a summary footer (request counters, cache hits, latency percentiles)
goes to stderr.

options:
  --jobs N        worker threads (default: available parallelism)
  --cache-size N  total cached reports across shards (default: 1024; 0 disables)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input = "-".to_owned();
    let mut jobs: Option<usize> = None;
    let mut cache_size = 1024usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--jobs" | "--cache-size" => {
                let flag = args[i].clone();
                let Some(value) = args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("{flag} requires a non-negative integer");
                    return ExitCode::FAILURE;
                };
                if flag == "--jobs" {
                    jobs = Some(value);
                } else {
                    cache_size = value;
                }
                i += 2;
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag: {other}");
                eprint!("{USAGE}");
                return ExitCode::FAILURE;
            }
            other => {
                input = other.to_owned();
                i += 1;
            }
        }
    }

    let pool = match jobs {
        Some(n) => WorkerPool::new(n),
        None => WorkerPool::with_available_parallelism(),
    };
    let requests = match read_source(&input) {
        Ok(requests) => requests,
        Err(error) => {
            eprintln!("cannot read {input}: {error}");
            return ExitCode::FAILURE;
        }
    };
    let service = Service::new(pool, cache_size, AnalysisLimits::default());
    let (responses, stats) = service.process_batch(&requests);
    let mut failed = false;
    for response in &responses {
        println!("{}", response.render());
        failed |= matches!(response.outcome, Outcome::Error(_));
    }
    eprintln!("{}", stats.footer(pool.jobs()));
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
