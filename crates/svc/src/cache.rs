//! Sharded LRU cache for analysis outcomes, keyed on canonical task-set
//! bytes.
//!
//! The cache is generic over its value type: the service keeps one
//! `ResultCache<Arc<str>>` of rendered report JSON (the positive cache)
//! and one bounded `ResultCache<SvcError>` of failed outcomes (the
//! negative cache), so a repeatedly submitted poison-pill set answers
//! from the cache instead of re-running its worst-case analysis.
//!
//! The shard is selected by the canonical form's 64-bit FNV-1a
//! [`content_hash`](rbs_model::CanonicalTaskSet::content_hash), but the map
//! inside each shard is keyed on the **full canonical byte string** — a
//! hash collision can cost a shard imbalance, never a wrong report.
//!
//! Recency is tracked with a monotonic use-stamp per entry; eviction scans
//! the (small, bounded) shard for the minimum stamp. With the default
//! 16-way sharding and per-shard capacities in the tens, the scan is
//! cheaper than maintaining an intrusive list and keeps the code free of
//! unsafe pointer juggling.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rbs_model::CanonicalTaskSet;

const SHARDS: usize = 16;

/// A sharded least-recently-used map from canonical task sets to a cached
/// outcome `V` (rendered report JSON by default). Cloning is cheap and
/// shares the shards.
#[derive(Debug, Clone)]
pub struct ResultCache<V = Arc<str>> {
    shards: Arc<Vec<Mutex<Shard<V>>>>,
    per_shard_capacity: usize,
    hits: Arc<AtomicU64>,
    misses: Arc<AtomicU64>,
}

#[derive(Debug)]
struct Shard<V> {
    entries: HashMap<Vec<u8>, Entry<V>>,
    clock: u64,
}

impl<V> Default for Shard<V> {
    fn default() -> Shard<V> {
        Shard {
            entries: HashMap::new(),
            clock: 0,
        }
    }
}

#[derive(Debug)]
struct Entry<V> {
    stamp: u64,
    value: V,
}

impl<V: Clone> ResultCache<V> {
    /// A cache holding at most `capacity` entries in total (rounded up to
    /// a multiple of the shard count). `capacity == 0` disables caching:
    /// every lookup misses and inserts are dropped.
    #[must_use]
    pub fn new(capacity: usize) -> ResultCache<V> {
        let per_shard_capacity = capacity.div_ceil(SHARDS);
        let shards = (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect();
        ResultCache {
            shards: Arc::new(shards),
            per_shard_capacity,
            hits: Arc::new(AtomicU64::new(0)),
            misses: Arc::new(AtomicU64::new(0)),
        }
    }

    fn shard(&self, key: &CanonicalTaskSet) -> &Mutex<Shard<V>> {
        let index = (key.content_hash() % SHARDS as u64) as usize;
        &self.shards[index]
    }

    /// Looks `key` up, refreshing its recency on a hit.
    #[must_use]
    pub fn get(&self, key: &CanonicalTaskSet) -> Option<V> {
        if self.per_shard_capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut shard = self.shard(key).lock().expect("cache shard lock");
        shard.clock += 1;
        let clock = shard.clock;
        match shard.entries.get_mut(key.bytes()) {
            Some(entry) => {
                entry.stamp = clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.value.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the shard's least-recently
    /// used entry when it is full.
    pub fn insert(&self, key: &CanonicalTaskSet, value: V) {
        if self.per_shard_capacity == 0 {
            return;
        }
        let mut shard = self.shard(key).lock().expect("cache shard lock");
        shard.clock += 1;
        let stamp = shard.clock;
        if !shard.entries.contains_key(key.bytes())
            && shard.entries.len() >= self.per_shard_capacity
        {
            if let Some(oldest) = shard
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.stamp)
                .map(|(bytes, _)| bytes.clone())
            {
                shard.entries.remove(&oldest);
            }
        }
        shard
            .entries
            .insert(key.bytes().to_vec(), Entry { stamp, value });
    }

    /// Cached entries across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock").entries.len())
            .sum()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from the cache since construction.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that fell through to analysis since construction.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbs_model::{Criticality, Task, TaskSet};
    use rbs_timebase::Rational;

    fn set(period: i128) -> CanonicalTaskSet {
        CanonicalTaskSet::of(&TaskSet::new(vec![Task::builder("t", Criticality::Lo)
            .period(Rational::integer(period))
            .deadline(Rational::integer(period))
            .wcet(Rational::ONE)
            .build()
            .expect("valid")]))
    }

    #[test]
    fn get_after_insert_hits() {
        let cache: ResultCache = ResultCache::new(8);
        let key = set(10);
        assert!(cache.get(&key).is_none());
        cache.insert(&key, Arc::from("report"));
        assert_eq!(cache.get(&key).as_deref(), Some("report"));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache: ResultCache = ResultCache::new(0);
        let key = set(10);
        cache.insert(&key, Arc::from("report"));
        assert!(cache.get(&key).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn eviction_prefers_the_least_recently_used() {
        // Capacity 16 → one slot per shard; keys landing in the same shard
        // evict each other, and a refreshed key survives.
        let cache: ResultCache = ResultCache::new(16);
        let keys: Vec<CanonicalTaskSet> = (2..200).map(set).collect();
        // Find two distinct keys in the same shard.
        let first = &keys[0];
        let sibling = keys[1..]
            .iter()
            .find(|k| k.content_hash() % SHARDS as u64 == first.content_hash() % SHARDS as u64)
            .expect("198 keys over 16 shards collide somewhere");
        cache.insert(first, Arc::from("first"));
        cache.insert(sibling, Arc::from("sibling"));
        // `first` was least recently used and the shard held one slot.
        assert!(cache.get(first).is_none());
        assert_eq!(cache.get(sibling).as_deref(), Some("sibling"));
    }

    #[test]
    fn recency_is_refreshed_by_get() {
        // Two keys in one shard, capacity two per shard: touching the
        // older key protects it from the next eviction.
        let cache: ResultCache = ResultCache::new(32);
        let keys: Vec<CanonicalTaskSet> = (2..200).map(set).collect();
        let first = &keys[0];
        let mut same_shard = keys[1..]
            .iter()
            .filter(|k| k.content_hash() % SHARDS as u64 == first.content_hash() % SHARDS as u64);
        let second = same_shard.next().expect("shard sibling");
        let third = same_shard.next().expect("second shard sibling");
        cache.insert(first, Arc::from("first"));
        cache.insert(second, Arc::from("second"));
        assert_eq!(cache.get(first).as_deref(), Some("first")); // refresh
        cache.insert(third, Arc::from("third")); // evicts `second`
        assert_eq!(cache.get(first).as_deref(), Some("first"));
        assert!(cache.get(second).is_none());
        assert_eq!(cache.get(third).as_deref(), Some("third"));
    }
}
