//! The admission-control service: JSONL requests in, JSONL reports out.
//!
//! Each request line is one task-set document (the same format as
//! `examples/workloads/*.json`). The service canonicalizes the set,
//! consults the sharded LRU [`ResultCache`], and analyzes misses on the
//! fixed-size [`WorkerPool`]; duplicate submissions inside one batch are
//! coalesced so the analysis runs once. Responses come back in submission
//! order and are bit-for-bit independent of the worker count.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use rbs_core::{analyze_with_meta, AnalysisLimits, AnalyzeMeta};
use rbs_json::Json;
use rbs_model::{CanonicalTaskSet, TaskSet};

use crate::cache::ResultCache;
use crate::ingest::Request;
use crate::pool::WorkerPool;

/// The admission-control service. Cloning shares the cache (and its
/// hit/miss counters) with the original.
#[derive(Debug, Clone)]
pub struct Service {
    pool: WorkerPool,
    cache: ResultCache,
    limits: AnalysisLimits,
}

/// What the service decided for one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The set was analyzed (or found in the cache).
    Report {
        /// Hex content hash of the canonical form.
        hash: String,
        /// Whether the report came out of the cache.
        cached: bool,
        /// Walk statistics of the analysis that produced the report;
        /// `None` when the report was served from the cache.
        walks: Option<AnalyzeMeta>,
        /// The rendered [`rbs_core::AnalyzeReport`] JSON.
        report_json: Arc<str>,
    },
    /// The request could not be served (parse error, analysis failure).
    Error(String),
}

/// One response line, paired with the submission index (`seq`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Submission index within the batch.
    pub seq: usize,
    /// Origin label of the request (file path or `stdin:N`).
    pub label: String,
    /// Service time for this request in microseconds (parse + analysis
    /// share). Wall-clock observability only — never part of the cached
    /// report and the only non-deterministic field of a response line.
    pub micros: u64,
    /// The verdict.
    pub outcome: Outcome,
}

impl Response {
    /// Renders the response as one JSONL line.
    #[must_use]
    pub fn render(&self) -> String {
        match &self.outcome {
            Outcome::Report {
                hash,
                cached,
                walks,
                report_json,
            } => {
                let walks = match walks {
                    Some(meta) => format!(
                        ",\"walks\":{{\"integer\":{},\"exact\":{}}}",
                        meta.integer_walks, meta.exact_walks
                    ),
                    None => String::new(),
                };
                format!(
                    "{{\"seq\":{},\"hash\":\"{hash}\",\"cached\":{cached},\"micros\":{}{walks},\"report\":{report_json}}}",
                    self.seq, self.micros
                )
            }
            Outcome::Error(message) => format!(
                "{{\"seq\":{},\"source\":{},\"micros\":{},\"error\":{}}}",
                self.seq,
                Json::Str(self.label.clone()).render(),
                self.micros,
                Json::Str(message.clone()).render()
            ),
        }
    }
}

/// Counters and per-request latencies for one batch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Requests in the batch.
    pub served: usize,
    /// Requests answered with a report.
    pub ok: usize,
    /// Requests answered with an error.
    pub errors: usize,
    /// Requests answered from the cache.
    pub cache_hits: usize,
    /// Analyses actually executed (misses after in-batch coalescing).
    pub analyzed: usize,
    /// Breakpoint walks served by the integer fast path, summed over the
    /// executed analyses.
    pub integer_walks: u64,
    /// Breakpoint walks that fell back to the exact rational path,
    /// summed over the executed analyses.
    pub exact_walks: u64,
    /// Per-request service time in microseconds (parse + analysis share),
    /// indexed by `seq`.
    pub latencies_micros: Vec<u64>,
}

impl BatchStats {
    /// One-line summary footer for the CLI.
    #[must_use]
    pub fn footer(&self, jobs: usize) -> String {
        let mut sorted = self.latencies_micros.clone();
        sorted.sort_unstable();
        let p50 = sorted.get(sorted.len() / 2).copied().unwrap_or(0);
        let max = sorted.last().copied().unwrap_or(0);
        let mean = if sorted.is_empty() {
            0
        } else {
            sorted.iter().sum::<u64>() / sorted.len() as u64
        };
        format!(
            "rbs-svc: served={} ok={} errors={} cache_hits={} analyzed={} jobs={jobs} \
             walks{{integer={} exact={}}} latency_micros{{p50={p50} mean={mean} max={max}}}",
            self.served,
            self.ok,
            self.errors,
            self.cache_hits,
            self.analyzed,
            self.integer_walks,
            self.exact_walks
        )
    }
}

/// A parsed request waiting for analysis.
struct Pending {
    canonical: CanonicalTaskSet,
    set: TaskSet,
}

/// Per-request bookkeeping between the parse pass and response assembly.
enum Slot {
    Done(Outcome),
    /// Index into the pending (deduplicated) job list.
    Waiting(usize),
}

impl Service {
    /// A service with `pool` workers and a result cache holding up to
    /// `cache_capacity` reports.
    #[must_use]
    pub fn new(pool: WorkerPool, cache_capacity: usize, limits: AnalysisLimits) -> Service {
        Service {
            pool,
            cache: ResultCache::new(cache_capacity),
            limits,
        }
    }

    /// The shared result cache.
    #[must_use]
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Serves one batch of requests, returning responses in submission
    /// order plus the batch counters.
    #[must_use]
    pub fn process_batch(&self, requests: &[Request]) -> (Vec<Response>, BatchStats) {
        let mut stats = BatchStats {
            served: requests.len(),
            latencies_micros: vec![0; requests.len()],
            ..BatchStats::default()
        };

        // Pass 1 (sequential): parse, canonicalize, consult the cache, and
        // coalesce duplicate submissions onto one analysis job.
        let mut slots: Vec<Slot> = Vec::with_capacity(requests.len());
        let mut pending: Vec<Pending> = Vec::new();
        let mut job_of: HashMap<Vec<u8>, usize> = HashMap::new();
        for (seq, request) in requests.iter().enumerate() {
            let start = Instant::now();
            let slot = match rbs_json::from_str::<TaskSet>(&request.body) {
                Err(error) => Slot::Done(Outcome::Error(format!("invalid task set: {error}"))),
                Ok(set) => {
                    let canonical = CanonicalTaskSet::of(&set);
                    match self.cache.get(&canonical) {
                        Some(report_json) => {
                            stats.cache_hits += 1;
                            Slot::Done(Outcome::Report {
                                hash: canonical.to_string(),
                                cached: true,
                                walks: None,
                                report_json,
                            })
                        }
                        None => {
                            let job =
                                *job_of.entry(canonical.bytes().to_vec()).or_insert_with(|| {
                                    pending.push(Pending { canonical, set });
                                    pending.len() - 1
                                });
                            Slot::Waiting(job)
                        }
                    }
                }
            };
            stats.latencies_micros[seq] = elapsed_micros(start);
            slots.push(slot);
        }

        // Pass 2 (parallel): analyze the deduplicated misses on the pool.
        stats.analyzed = pending.len();
        let limits = self.limits;
        type JobResult = (
            CanonicalTaskSet,
            Result<(Arc<str>, AnalyzeMeta), String>,
            u64,
        );
        let results: Vec<JobResult> = self.pool.run_ordered(pending, |_, job| {
            let start = Instant::now();
            let outcome = analyze_with_meta(job.set, &limits)
                .map(|(report, meta)| (Arc::from(rbs_json::to_string(&report)), meta))
                .map_err(|error| format!("analysis failed: {error}"));
            (job.canonical, outcome, elapsed_micros(start))
        });

        // Pass 3 (sequential): fill the cache and assemble responses.
        for (canonical, outcome, _) in &results {
            if let Ok((report_json, meta)) = outcome {
                self.cache.insert(canonical, Arc::clone(report_json));
                stats.integer_walks += meta.integer_walks;
                stats.exact_walks += meta.exact_walks;
            }
        }
        let responses = slots
            .into_iter()
            .enumerate()
            .map(|(seq, slot)| {
                let outcome = match slot {
                    Slot::Done(outcome) => outcome,
                    Slot::Waiting(job) => {
                        let (canonical, result, micros) = &results[job];
                        stats.latencies_micros[seq] += micros;
                        match result {
                            Ok((report_json, meta)) => Outcome::Report {
                                hash: canonical.to_string(),
                                cached: false,
                                walks: Some(*meta),
                                report_json: Arc::clone(report_json),
                            },
                            Err(message) => Outcome::Error(message.clone()),
                        }
                    }
                };
                match &outcome {
                    Outcome::Report { .. } => stats.ok += 1,
                    Outcome::Error(_) => stats.errors += 1,
                }
                Response {
                    seq,
                    label: requests[seq].label.clone(),
                    micros: stats.latencies_micros[seq],
                    outcome,
                }
            })
            .collect();
        (responses, stats)
    }

    /// Serves a single request (a one-element batch).
    #[must_use]
    pub fn handle(&self, request: &Request) -> Response {
        let (mut responses, _) = self.process_batch(std::slice::from_ref(request));
        responses.remove(0)
    }
}

fn elapsed_micros(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}
