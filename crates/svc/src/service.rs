//! The admission-control service: JSONL requests in, JSONL reports out.
//!
//! Each request line is one task-set document (the same format as
//! `examples/workloads/*.json`), a campaign sweep
//! `{"sweep":{"specs":[...],"ys":[...],"speeds":[...]}}` answered by the
//! incremental [`rbs_core::SweepAnalysis`] engine — one set plus a
//! `(y, s)` grid in, the full grid of `s_min`/`Δ_R` values out — or an
//! online-admission delta `{"delta":{"base":...,"ops":[...]}}` answered
//! by the incremental [`rbs_core::DeltaAnalysis`] engine: admit/evict/
//! replace ops against a base set named inline or by the canonical hash
//! of any previously seen set, cached under the canonical form of the
//! resulting set (byte-identical to analyzing that set directly), or a
//! fleet partitioning `{"partition":{"tasks":[...],"cores":N,...}}`
//! answered by the delta-backed bin-packer in `rbs-partition` — the
//! per-core assignment with each core's exact `s_min`, or the first
//! task the fleet must shed. The
//! service canonicalizes the request (task sets, sweep grids and
//! partition specs live in
//! disjoint canonical domains), consults the sharded LRU [`ResultCache`]
//! (and a bounded negative cache of failed outcomes), and analyzes misses
//! on the fixed-size [`WorkerPool`]; duplicate submissions inside one
//! batch are coalesced so the analysis runs once. Responses come back in
//! submission order and are bit-for-bit independent of the worker count.
//!
//! Failures are structured: every error response carries a
//! [`SvcError`] with a machine-readable [`SvcErrorKind`]
//! (`parse|limits|timeout|panic|oversized|overload`), the same taxonomy
//! the footer counters report. A panicking analysis is contained by the pool
//! ([`WorkerPool::run_ordered_caught`]), a slow one is cut off by the
//! per-request deadline threaded through
//! [`rbs_core::AnalysisLimits::with_deadline`], and an oversized body is
//! rejected before it is even parsed — one poison-pill request can never
//! take the batch (or the daemon) down.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rbs_core::{
    analyze_with_meta_in, run_delta_in, run_sweep_in, AnalysisError, AnalysisLimits,
    AnalysisScratch, AnalyzeMeta, DeltaBase, DeltaOp, DeltaRequest, DeltaRunError, SweepGrid,
};
use rbs_json::{FromJson, Json, ToJson};
use rbs_model::{CanonicalTaskSet, ImplicitTaskSpec, TaskSet};
use rbs_partition::wire::PartitionRequest;
use rbs_partition::PartitionSpec;

use crate::cache::ResultCache;
use crate::ingest::Request;
use crate::pool::WorkerPool;

/// Task-name marker that makes a worker panic when
/// [`ServiceConfig::fault_injection`] is enabled — the chaos-testing hook
/// behind the crash-isolation test suite and CI's poison-pill smoke.
pub const FAULT_PANIC_TASK: &str = "__rbs_fault_panic__";

/// Task-name prefix (`__rbs_fault_sleep_ms_<N>__`) that makes a worker
/// sleep `N` milliseconds before analyzing when
/// [`ServiceConfig::fault_injection`] is enabled — used to exercise the
/// per-request deadline deterministically.
pub const FAULT_SLEEP_PREFIX: &str = "__rbs_fault_sleep_ms_";

/// Task-name marker that makes the delta engine panic *between* its
/// profile splices when [`ServiceConfig::fault_injection`] is enabled
/// (admitted or replaced tasks only) — the chaos hook proving a
/// half-spliced context is contained and the service keeps answering
/// correctly afterwards.
pub const FAULT_SPLICE_TASK: &str = "__rbs_fault_splice__";

/// Task-name marker that makes the delta engine panic as it enters
/// frontier repair when [`ServiceConfig::fault_injection`] is enabled
/// (admitted or replaced tasks only) — the chaos hook proving a panic
/// inside the repair window (profiles spliced, dirty guard still set)
/// is contained and the next request heals from the set.
pub const FAULT_REPAIR_TASK: &str = "__rbs_fault_repair__";

/// Machine-readable failure class of a request, mirrored in the JSONL
/// `error.kind` field and the footer counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SvcErrorKind {
    /// The request body is not a valid task-set document.
    Parse,
    /// The analysis hit a resource limit (breakpoint budget, overflow) or
    /// rejected its input.
    Limits,
    /// The analysis exceeded the per-request wall-clock deadline.
    Timeout,
    /// The analysis panicked; the worker survived and the panic message is
    /// the detail.
    Panic,
    /// The request body exceeded the configured byte limit and was
    /// rejected before parsing.
    Oversized,
    /// The request was shed before analysis because a bounded queue was
    /// full — the network front-end's load-shedding verdict. The batch
    /// pipeline never emits this kind itself; it is part of the shared
    /// taxonomy so shed requests are classified and counted exactly like
    /// every other failure.
    Overload,
}

impl SvcErrorKind {
    /// The lowercase wire name (`parse`, `limits`, `timeout`, `panic`,
    /// `oversized`, `overload`).
    #[must_use]
    pub const fn as_str(self) -> &'static str {
        match self {
            SvcErrorKind::Parse => "parse",
            SvcErrorKind::Limits => "limits",
            SvcErrorKind::Timeout => "timeout",
            SvcErrorKind::Panic => "panic",
            SvcErrorKind::Oversized => "oversized",
            SvcErrorKind::Overload => "overload",
        }
    }
}

/// A structured service error: a taxonomy [`kind`](SvcErrorKind) plus a
/// human-readable detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SvcError {
    /// The failure class.
    pub kind: SvcErrorKind,
    /// Human-readable context (parse message, panic payload, …).
    pub detail: String,
}

impl SvcError {
    /// An error of `kind` with `detail`.
    #[must_use]
    pub fn new(kind: SvcErrorKind, detail: impl Into<String>) -> SvcError {
        SvcError {
            kind,
            detail: detail.into(),
        }
    }

    /// Classifies an analysis failure: a missed deadline is a `timeout`,
    /// everything else is `limits`.
    #[must_use]
    pub fn from_analysis(error: &AnalysisError) -> SvcError {
        let kind = match error {
            AnalysisError::DeadlineExceeded { .. } => SvcErrorKind::Timeout,
            _ => SvcErrorKind::Limits,
        };
        SvcError::new(kind, format!("analysis failed: {error}"))
    }

    /// Renders the `{"kind":...,"detail":...}` JSON object.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{{\"kind\":\"{}\",\"detail\":{}}}",
            self.kind.as_str(),
            Json::Str(self.detail.clone()).render()
        )
    }
}

/// Tunables of a [`Service`] beyond its worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Reports kept in the positive cache (0 disables).
    pub cache_capacity: usize,
    /// Failed outcomes kept in the negative cache (0 disables). Bounded
    /// separately so poison pills can never evict good reports wholesale.
    pub negative_cache_capacity: usize,
    /// Analysis resource limits (per-request deadlines are layered on top
    /// of these via [`ServiceConfig::timeout`]).
    pub limits: AnalysisLimits,
    /// Per-request wall-clock deadline for the analysis phase. `None`
    /// disables timeouts.
    pub timeout: Option<Duration>,
    /// Requests with bodies larger than this many bytes are rejected as
    /// `oversized` without parsing. `None` disables the guard.
    pub max_request_bytes: Option<usize>,
    /// Enables the chaos-testing task-name markers
    /// ([`FAULT_PANIC_TASK`], [`FAULT_SLEEP_PREFIX`]). Off by default:
    /// production sets may name tasks anything they like.
    pub fault_injection: bool,
    /// Task sets kept in the base registry that `delta` requests resolve
    /// `"base": "<hash>"` keys against (0 disables key-based bases;
    /// inline bases always work).
    pub base_registry_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            cache_capacity: 1024,
            negative_cache_capacity: 256,
            limits: AnalysisLimits::default(),
            timeout: None,
            max_request_bytes: None,
            fault_injection: false,
            base_registry_capacity: 1024,
        }
    }
}

/// The admission-control service. Cloning shares both caches (and their
/// hit/miss counters) and the scratch pool with the original.
#[derive(Debug, Clone)]
pub struct Service {
    pool: WorkerPool,
    cache: ResultCache,
    negative: ResultCache<SvcError>,
    config: ServiceConfig,
    /// Analysis scratches (profile buffers + parked walk-kernel lanes)
    /// parked between batches. [`WorkerPool`] spawns fresh scoped threads
    /// per batch, so worker-local state alone would start cold every
    /// time; leasing scratches from this shared pool carries the warmed
    /// arenas across batches — the long-running daemons (`--follow`,
    /// rbs-netd micro-batches) reach zero-allocation steady state. At
    /// most `pool.jobs()` scratches are ever leased at once, so the pool
    /// is naturally bounded.
    scratches: Arc<Mutex<Vec<AnalysisScratch>>>,
    /// Canonical-hash → task-set bindings for `delta` base resolution;
    /// shared by clones like the caches. Fed by every successfully
    /// parsed task set (analyze requests, inline delta bases, and delta
    /// results), so a client can chain deltas off the `hash` field of
    /// any earlier response.
    bases: Arc<Mutex<BaseRegistry>>,
}

/// A bounded FIFO registry of canonical-hash → task-set bindings (see
/// [`Service::bases`]). FIFO rather than LRU: resident fleets re-ship a
/// base at most once per eviction, and insertion order is deterministic
/// where recency under parallel batches is not.
#[derive(Debug, Default)]
struct BaseRegistry {
    map: HashMap<String, Arc<TaskSet>>,
    order: VecDeque<String>,
}

impl BaseRegistry {
    fn insert(&mut self, capacity: usize, hash: String, set: &Arc<TaskSet>) {
        if capacity == 0 || self.map.contains_key(&hash) {
            return;
        }
        while self.order.len() >= capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.map.remove(&oldest);
            }
        }
        self.order.push_back(hash.clone());
        self.map.insert(hash, Arc::clone(set));
    }

    fn get(&self, hash: &str) -> Option<Arc<TaskSet>> {
        self.map.get(hash).cloned()
    }
}

/// A worker's checkout from the [`Service`] scratch pool; returns the
/// scratch (and its grown buffers and arena) on drop — including when a
/// contained panic unwinds the batch closure.
struct ScratchLease {
    pool: Arc<Mutex<Vec<AnalysisScratch>>>,
    scratch: Option<AnalysisScratch>,
}

impl ScratchLease {
    fn get(&mut self) -> &mut AnalysisScratch {
        self.scratch.as_mut().expect("scratch present until drop")
    }
}

impl Drop for ScratchLease {
    fn drop(&mut self) {
        if let Some(scratch) = self.scratch.take() {
            if let Ok(mut pool) = self.pool.lock() {
                pool.push(scratch);
            }
        }
    }
}

/// What the service decided for one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The set was analyzed (or found in the cache).
    Report {
        /// Hex content hash of the canonical form.
        hash: String,
        /// Whether the report came out of the cache.
        cached: bool,
        /// Whether this response rode along on another in-batch
        /// submission's analysis (duplicate coalescing).
        coalesced: bool,
        /// Walk statistics of the analysis that produced the report;
        /// `None` when the report was served from the cache.
        walks: Option<AnalyzeMeta>,
        /// The rendered [`rbs_core::AnalyzeReport`] JSON.
        report_json: Arc<str>,
    },
    /// The request could not be served.
    Error {
        /// The structured failure.
        error: SvcError,
        /// Whether the error came out of the negative cache.
        cached: bool,
    },
}

impl Outcome {
    /// The structured error, when this outcome is one.
    #[must_use]
    pub fn error(&self) -> Option<&SvcError> {
        match self {
            Outcome::Report { .. } => None,
            Outcome::Error { error, .. } => Some(error),
        }
    }
}

/// One response line, paired with the submission index (`seq`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Submission index within the batch.
    pub seq: usize,
    /// Origin label of the request (file path or `stdin:N`).
    pub label: String,
    /// Service time for this request in microseconds (parse + analysis
    /// share; coalesced duplicates are charged only their parse share).
    /// Wall-clock observability only — never part of the cached report
    /// and the only non-deterministic field of a response line.
    pub micros: u64,
    /// The verdict.
    pub outcome: Outcome,
}

impl Response {
    /// Renders the response as one JSONL line.
    #[must_use]
    pub fn render(&self) -> String {
        match &self.outcome {
            Outcome::Report {
                hash,
                cached,
                coalesced,
                walks,
                report_json,
            } => {
                let coalesced = if *coalesced {
                    ",\"coalesced\":true"
                } else {
                    ""
                };
                let walks = match walks {
                    Some(meta) => format!(
                        ",\"walks\":{{\"integer\":{},\"exact\":{},\"pruned\":{},\"avoided\":{},\"reused\":{},\"rebuilt\":{},\"lockstep\":{},\"patched\":{},\"repaired\":{},\"kept\":{},\"rewalked\":{}}}",
                        meta.integer_walks,
                        meta.exact_walks,
                        meta.pruned_walks,
                        meta.avoided_walks,
                        meta.reused_components,
                        meta.rebuilt_components,
                        meta.lockstep_walks,
                        meta.patched_profiles,
                        meta.repaired_frontiers,
                        meta.kept_records,
                        meta.rewalked_frontiers
                    ),
                    None => String::new(),
                };
                format!(
                    "{{\"seq\":{},\"hash\":\"{hash}\",\"cached\":{cached}{coalesced},\"micros\":{}{walks},\"report\":{report_json}}}",
                    self.seq, self.micros
                )
            }
            Outcome::Error { error, cached } => format!(
                "{{\"seq\":{},\"source\":{},\"cached\":{cached},\"micros\":{},\"error\":{}}}",
                self.seq,
                Json::Str(self.label.clone()).render(),
                self.micros,
                error.render()
            ),
        }
    }
}

/// Error counts by [`SvcErrorKind`] — the footer taxonomy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ErrorCounters {
    /// Bodies that failed to parse as task sets.
    pub parse: usize,
    /// Analyses stopped by resource limits.
    pub limits: usize,
    /// Analyses stopped by the per-request deadline.
    pub timeout: usize,
    /// Analyses that panicked (and were contained).
    pub panic: usize,
    /// Bodies rejected by the byte-size guard.
    pub oversized: usize,
    /// Requests shed by a full bounded queue (network front-end).
    pub overload: usize,
}

impl ErrorCounters {
    /// Increments the counter for `kind`.
    pub fn bump(&mut self, kind: SvcErrorKind) {
        match kind {
            SvcErrorKind::Parse => self.parse += 1,
            SvcErrorKind::Limits => self.limits += 1,
            SvcErrorKind::Timeout => self.timeout += 1,
            SvcErrorKind::Panic => self.panic += 1,
            SvcErrorKind::Oversized => self.oversized += 1,
            SvcErrorKind::Overload => self.overload += 1,
        }
    }

    /// Total errors across all kinds.
    #[must_use]
    pub fn total(&self) -> usize {
        self.parse + self.limits + self.timeout + self.panic + self.oversized + self.overload
    }
}

/// Counters and per-request latencies for one batch (or, in `--follow`
/// mode, accumulated over the stream so far — see
/// [`BatchStats::absorb`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Requests in the batch.
    pub served: usize,
    /// Requests answered with a report.
    pub ok: usize,
    /// Requests answered with an error, by failure class.
    pub errors: ErrorCounters,
    /// Requests answered from the positive cache.
    pub cache_hits: usize,
    /// Requests answered from the negative cache.
    pub negative_hits: usize,
    /// Duplicate submissions that rode along on another request's
    /// analysis inside the same batch.
    pub coalesced: usize,
    /// Analyses actually executed (misses after in-batch coalescing).
    pub analyzed: usize,
    /// Breakpoint walks served by the integer fast path, summed over the
    /// executed analyses.
    pub integer_walks: u64,
    /// Breakpoint walks that fell back to the exact rational path,
    /// summed over the executed analyses.
    pub exact_walks: u64,
    /// Walks that terminated early at the utilization-envelope horizon,
    /// summed over the executed analyses.
    pub pruned_walks: u64,
    /// Resetting-time queries answered from a cached reset frontier
    /// without walking, summed over the executed analyses.
    pub avoided_walks: u64,
    /// Demand components reused across sweep grid points instead of being
    /// rebuilt, summed over the executed analyses. Zero for single-set
    /// requests — only the incremental sweep engine reuses components.
    pub reused_components: u64,
    /// Demand components built (initial construction plus `rescale_lo`
    /// patches), summed over the executed analyses.
    pub rebuilt_components: u64,
    /// Integer-fast-path walks answered by the chunked lockstep driver
    /// (several profiles' event streams advanced together), summed over
    /// the executed analyses. Each is also counted in
    /// [`Self::integer_walks`] — this reports how many of those walks
    /// ran batched rather than one at a time.
    pub lockstep_walks: u64,
    /// Demand profiles updated by an in-place patch (sweep rescales and
    /// delta splices), summed over the executed analyses. Zero for
    /// single-set requests.
    pub patched_profiles: u64,
    /// Deltas whose reset frontier survived (possibly truncated) a
    /// splice, summed over the executed analyses.
    pub repaired_frontiers: u64,
    /// Frontier records kept across those repairs, summed over the
    /// executed analyses.
    pub kept_records: u64,
    /// Deltas that dropped the frontier and forced a re-walk, summed
    /// over the executed analyses.
    pub rewalked_frontiers: u64,
    /// Per-request service time in microseconds (parse + analysis share),
    /// indexed by `seq` within the batch.
    pub latencies_micros: Vec<u64>,
}

impl BatchStats {
    /// Folds another batch's counters and latencies into this one —
    /// `--follow` mode keeps one cumulative `BatchStats` across the
    /// stream.
    pub fn absorb(&mut self, other: &BatchStats) {
        self.served += other.served;
        self.ok += other.ok;
        self.errors.parse += other.errors.parse;
        self.errors.limits += other.errors.limits;
        self.errors.timeout += other.errors.timeout;
        self.errors.panic += other.errors.panic;
        self.errors.oversized += other.errors.oversized;
        self.errors.overload += other.errors.overload;
        self.cache_hits += other.cache_hits;
        self.negative_hits += other.negative_hits;
        self.coalesced += other.coalesced;
        self.analyzed += other.analyzed;
        self.integer_walks += other.integer_walks;
        self.exact_walks += other.exact_walks;
        self.pruned_walks += other.pruned_walks;
        self.avoided_walks += other.avoided_walks;
        self.reused_components += other.reused_components;
        self.rebuilt_components += other.rebuilt_components;
        self.lockstep_walks += other.lockstep_walks;
        self.patched_profiles += other.patched_profiles;
        self.repaired_frontiers += other.repaired_frontiers;
        self.kept_records += other.kept_records;
        self.rewalked_frontiers += other.rewalked_frontiers;
        self.latencies_micros
            .extend_from_slice(&other.latencies_micros);
    }

    /// One-line summary footer for the CLI.
    #[must_use]
    pub fn footer(&self, jobs: usize) -> String {
        let mut sorted = self.latencies_micros.clone();
        sorted.sort_unstable();
        let p50 = median(&sorted);
        let p99 = percentile(&sorted, 99);
        let max = sorted.last().copied().unwrap_or(0);
        let mean = if sorted.is_empty() {
            0
        } else {
            let n = sorted.len() as u64;
            (sorted.iter().sum::<u64>() + n / 2) / n
        };
        format!(
            "rbs-svc: served={} ok={} errors{{total={} parse={} limits={} timeout={} panic={} oversized={} overload={}}} \
             cache{{hits={} negative={}}} coalesced={} analyzed={} jobs={jobs} \
             walks{{integer={} exact={} pruned={} avoided={} reused={} rebuilt={} lockstep={} patched={} repaired={} kept={} rewalked={}}} latency_micros{{p50={p50} p99={p99} mean={mean} max={max}}}",
            self.served,
            self.ok,
            self.errors.total(),
            self.errors.parse,
            self.errors.limits,
            self.errors.timeout,
            self.errors.panic,
            self.errors.oversized,
            self.errors.overload,
            self.cache_hits,
            self.negative_hits,
            self.coalesced,
            self.analyzed,
            self.integer_walks,
            self.exact_walks,
            self.pruned_walks,
            self.avoided_walks,
            self.reused_components,
            self.rebuilt_components,
            self.lockstep_walks,
            self.patched_profiles,
            self.repaired_frontiers,
            self.kept_records,
            self.rewalked_frontiers
        )
    }
}

/// The median of an already-sorted slice: the middle element for odd
/// lengths, the rounded midpoint of the two central elements for even
/// lengths (`sorted[len/2]` alone would systematically overshoot).
fn median(sorted: &[u64]) -> u64 {
    let n = sorted.len();
    if n == 0 {
        return 0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        let (a, b) = (sorted[n / 2 - 1], sorted[n / 2]);
        // Round half up without overflowing near u64::MAX.
        a / 2 + b / 2 + (a % 2 + b % 2).div_ceil(2)
    }
}

/// Nearest-rank percentile of an already-sorted slice. `pct` is clamped
/// to `[0, 100]`: values above 100 would otherwise compute a rank past
/// the end of the slice and panic on the index.
fn percentile(sorted: &[u64], pct: usize) -> u64 {
    let n = sorted.len();
    if n == 0 {
        return 0;
    }
    let rank = (n * pct.min(100)).div_ceil(100).clamp(1, n);
    sorted[rank - 1]
}

/// A parsed request waiting for analysis.
struct Pending {
    canonical: CanonicalTaskSet,
    job: Job,
}

/// The kinds of work a request can ask for.
enum Job {
    /// Classic single-set admission analysis.
    Analyze { set: TaskSet },
    /// A `(y, s)` campaign grid over one spec list, answered by the
    /// incremental sweep engine.
    Sweep { grid: SweepGrid },
    /// Admit/evict/replace ops against a resident base set, answered by
    /// the incremental delta engine. Cached under the canonical form of
    /// the *resulting* set — the report is byte-identical to analyzing
    /// that set directly, so both request kinds share entries.
    Delta {
        base: Arc<TaskSet>,
        ops: Vec<DeltaOp>,
    },
    /// Fleet partitioning: place a set onto the platform's cores with
    /// the delta-backed bin-packer, reporting per-core `s_min`.
    Partition { set: TaskSet, spec: PartitionSpec },
}

/// Per-request bookkeeping between the parse pass and response assembly.
enum Slot {
    Done(Outcome),
    /// Index into the pending (deduplicated) job list.
    Waiting(usize),
}

/// Honors the chaos-testing task-name markers. Only called when
/// [`ServiceConfig::fault_injection`] is enabled.
fn inject_faults(set: &TaskSet) {
    for task in set.iter() {
        fault_for_name(task.name());
    }
}

/// The sweep-request counterpart of [`inject_faults`]: the markers live
/// in spec names, so poison-pill sweeps exercise the same containment.
fn inject_sweep_faults(specs: &[ImplicitTaskSpec]) {
    for spec in specs {
        fault_for_name(spec.name());
    }
}

fn fault_for_name(name: &str) {
    if name == FAULT_PANIC_TASK {
        panic!("injected fault: task '{FAULT_PANIC_TASK}' requested a worker panic");
    }
    if let Some(rest) = name.strip_prefix(FAULT_SLEEP_PREFIX) {
        if let Ok(ms) = rest.trim_end_matches('_').parse::<u64>() {
            std::thread::sleep(Duration::from_millis(ms));
        }
    }
}

impl Service {
    /// A service with `pool` workers and a result cache holding up to
    /// `cache_capacity` reports; everything else at
    /// [`ServiceConfig::default`].
    #[must_use]
    pub fn new(pool: WorkerPool, cache_capacity: usize, limits: AnalysisLimits) -> Service {
        Service::with_config(
            pool,
            ServiceConfig {
                cache_capacity,
                limits,
                ..ServiceConfig::default()
            },
        )
    }

    /// A service with explicit [`ServiceConfig`] tunables.
    #[must_use]
    pub fn with_config(pool: WorkerPool, config: ServiceConfig) -> Service {
        Service {
            pool,
            cache: ResultCache::new(config.cache_capacity),
            negative: ResultCache::new(config.negative_cache_capacity),
            config,
            scratches: Arc::new(Mutex::new(Vec::new())),
            bases: Arc::new(Mutex::new(BaseRegistry::default())),
        }
    }

    /// Binds `canonical → set` in the base registry (no-op when the
    /// registry is disabled or the poisoned-lock case ever occurs).
    fn register_base(&self, canonical: &CanonicalTaskSet, set: &Arc<TaskSet>) {
        if self.config.base_registry_capacity == 0 {
            return;
        }
        if let Ok(mut bases) = self.bases.lock() {
            bases.insert(
                self.config.base_registry_capacity,
                canonical.to_string(),
                set,
            );
        }
    }

    /// Checks a scratch out of the shared pool (or starts a fresh one
    /// when the pool is dry — the first batch, or more workers than ever
    /// before).
    fn lease_scratch(&self) -> ScratchLease {
        let scratch = self
            .scratches
            .lock()
            .ok()
            .and_then(|mut pool| pool.pop())
            .unwrap_or_default();
        ScratchLease {
            pool: Arc::clone(&self.scratches),
            scratch: Some(scratch),
        }
    }

    /// The shared (positive) result cache.
    #[must_use]
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// The shared negative cache of failed outcomes.
    #[must_use]
    pub fn negative_cache(&self) -> &ResultCache<SvcError> {
        &self.negative
    }

    /// The configuration this service was built with.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The worker count of the underlying pool.
    #[must_use]
    pub const fn jobs(&self) -> usize {
        self.pool.jobs()
    }

    /// Serves one batch of requests, returning responses in submission
    /// order plus the batch counters.
    #[must_use]
    pub fn process_batch(&self, requests: &[Request]) -> (Vec<Response>, BatchStats) {
        let mut stats = BatchStats {
            served: requests.len(),
            latencies_micros: vec![0; requests.len()],
            ..BatchStats::default()
        };

        // Pass 1 (sequential): guard sizes, parse, canonicalize, consult
        // both caches, and coalesce duplicate submissions onto one
        // analysis job.
        let mut slots: Vec<Slot> = Vec::with_capacity(requests.len());
        let mut pending: Vec<Pending> = Vec::new();
        let mut job_of: HashMap<Vec<u8>, usize> = HashMap::new();
        for (seq, request) in requests.iter().enumerate() {
            let start = Instant::now();
            let slot = self.triage(request, &mut stats, &mut pending, &mut job_of);
            stats.latencies_micros[seq] = elapsed_micros(start);
            slots.push(slot);
        }

        // Pass 2 (parallel): analyze the deduplicated misses on the pool,
        // with panic containment and per-job deadlines. The canonical
        // forms stay on this side of the pool so a panicking job can still
        // be negative-cached.
        stats.analyzed = pending.len();
        let canonicals: Vec<CanonicalTaskSet> =
            pending.iter().map(|job| job.canonical.clone()).collect();
        let config = self.config;
        type JobResult = (Result<(Arc<str>, AnalyzeMeta), SvcError>, u64);
        let results: Vec<JobResult> = self
            .pool
            .run_ordered_scoped_caught(
                pending,
                || self.lease_scratch(),
                |lease, _, job| {
                    let scratch = lease.get();
                    let start = Instant::now();
                    let limits = match config.timeout {
                        Some(timeout) => config.limits.with_deadline(start + timeout),
                        None => config.limits,
                    };
                    let outcome = match job.job {
                        Job::Analyze { set } => {
                            if config.fault_injection {
                                inject_faults(&set);
                            }
                            analyze_with_meta_in(set, &limits, scratch)
                                .map(|(report, meta)| {
                                    (Arc::<str>::from(rbs_json::to_string(&report)), meta)
                                })
                                .map_err(|error| SvcError::from_analysis(&error))
                        }
                        Job::Delta { base, ops } => {
                            if config.fault_injection {
                                inject_faults(&base);
                                for op in &ops {
                                    if let DeltaOp::Admit(task) | DeltaOp::Replace { task, .. } = op
                                    {
                                        fault_for_name(task.name());
                                        if task.name() == FAULT_SPLICE_TASK {
                                            rbs_core::DeltaAnalysis::arm_mid_splice_fault();
                                        }
                                        if task.name() == FAULT_REPAIR_TASK {
                                            rbs_core::DeltaAnalysis::arm_mid_repair_fault();
                                        }
                                    }
                                }
                            }
                            run_delta_in((*base).clone(), &ops, &limits, scratch)
                                .map(|(report, meta)| {
                                    (Arc::<str>::from(rbs_json::to_string(&report)), meta)
                                })
                                .map_err(|error| match error {
                                    // Op validation re-runs inside the worker;
                                    // triage already vetted the sequence, so
                                    // this arm is unreachable in practice but
                                    // keeps the taxonomy honest if it ever
                                    // fires.
                                    DeltaRunError::Delta(e) => SvcError::new(
                                        SvcErrorKind::Parse,
                                        format!("delta op rejected: {e}"),
                                    ),
                                    DeltaRunError::Analysis(e) => SvcError::from_analysis(&e),
                                })
                        }
                        Job::Sweep { grid } => {
                            if config.fault_injection {
                                inject_sweep_faults(&grid.specs);
                            }
                            run_sweep_in(&grid, &limits, scratch)
                                .map(|swept| match swept {
                                    Some((report, meta)) => {
                                        (Arc::<str>::from(rbs_json::to_string(&report)), meta)
                                    }
                                    // No density-feasible x at any y: a stable
                                    // verdict, cacheable like any report.
                                    None => (
                                        Arc::<str>::from("{\"infeasible\":true}"),
                                        AnalyzeMeta::default(),
                                    ),
                                })
                                .map_err(|error| SvcError::from_analysis(&error))
                        }
                        Job::Partition { set, spec } => {
                            if config.fault_injection {
                                inject_faults(&set);
                            }
                            // Batch-level parallelism already fans out over
                            // the service pool; a width-1 sizing pool avoids
                            // oversubscribing it (the outcome is pool-width
                            // independent either way).
                            rbs_partition::partition_with(&set, &spec, &WorkerPool::new(1), &limits)
                                .map(|outcome| {
                                    let walks = outcome.walks();
                                    let meta = AnalyzeMeta {
                                        integer_walks: walks.integer,
                                        exact_walks: walks.exact,
                                        pruned_walks: walks.pruned,
                                        avoided_walks: walks.avoided,
                                        reused_components: walks.reused_components,
                                        rebuilt_components: walks.rebuilt_components,
                                        lockstep_walks: walks.lockstep,
                                        patched_profiles: walks.patched,
                                        repaired_frontiers: walks.repaired,
                                        kept_records: walks.kept,
                                        rewalked_frontiers: walks.rewalked,
                                    };
                                    (
                                        Arc::<str>::from(rbs_json::to_string(&outcome.to_json())),
                                        meta,
                                    )
                                })
                                .map_err(|error| SvcError::from_analysis(&error))
                        }
                    };
                    (outcome, elapsed_micros(start))
                },
            )
            .into_iter()
            .map(|slot| match slot {
                Ok(result) => result,
                // The job unwound before reporting a duration; its panic
                // message becomes the structured detail.
                Err(panic_message) => (Err(SvcError::new(SvcErrorKind::Panic, panic_message)), 0),
            })
            .collect();

        // Pass 3 (sequential): fill both caches and assemble responses.
        for (canonical, (outcome, _)) in canonicals.iter().zip(&results) {
            match outcome {
                Ok((report_json, meta)) => {
                    self.cache.insert(canonical, Arc::clone(report_json));
                    stats.integer_walks += meta.integer_walks;
                    stats.exact_walks += meta.exact_walks;
                    stats.pruned_walks += meta.pruned_walks;
                    stats.avoided_walks += meta.avoided_walks;
                    stats.reused_components += meta.reused_components;
                    stats.rebuilt_components += meta.rebuilt_components;
                    stats.lockstep_walks += meta.lockstep_walks;
                    stats.patched_profiles += meta.patched_profiles;
                    stats.repaired_frontiers += meta.repaired_frontiers;
                    stats.kept_records += meta.kept_records;
                    stats.rewalked_frontiers += meta.rewalked_frontiers;
                }
                Err(error) => {
                    // Every post-parse failure (limits, timeout, panic) is
                    // negative-cached: resubmitting a poison pill answers
                    // from the cache instead of re-running the worst-case
                    // analysis.
                    self.negative.insert(canonical, error.clone());
                }
            }
        }
        let mut charged: Vec<bool> = vec![false; results.len()];
        let responses = slots
            .into_iter()
            .enumerate()
            .map(|(seq, slot)| {
                let outcome = match slot {
                    Slot::Done(outcome) => outcome,
                    Slot::Waiting(job) => {
                        let (result, micros) = &results[job];
                        let coalesced = charged[job];
                        if coalesced {
                            stats.coalesced += 1;
                        } else {
                            // Charge the analysis time to the first
                            // submission only; duplicates carry just their
                            // parse share.
                            stats.latencies_micros[seq] += micros;
                            charged[job] = true;
                        }
                        match result {
                            Ok((report_json, meta)) => Outcome::Report {
                                hash: canonicals[job].to_string(),
                                cached: false,
                                coalesced,
                                walks: Some(*meta),
                                report_json: Arc::clone(report_json),
                            },
                            Err(error) => Outcome::Error {
                                error: error.clone(),
                                cached: false,
                            },
                        }
                    }
                };
                match &outcome {
                    Outcome::Report { .. } => stats.ok += 1,
                    Outcome::Error { error, .. } => stats.errors.bump(error.kind),
                }
                Response {
                    seq,
                    label: requests[seq].label.clone(),
                    micros: stats.latencies_micros[seq],
                    outcome,
                }
            })
            .collect();
        (responses, stats)
    }

    /// Pass-1 decision for one request: an immediate outcome (guard
    /// rejection, parse error, cache hit) or a pending analysis job.
    fn triage(
        &self,
        request: &Request,
        stats: &mut BatchStats,
        pending: &mut Vec<Pending>,
        job_of: &mut HashMap<Vec<u8>, usize>,
    ) -> Slot {
        if let Some(cap) = self.config.max_request_bytes {
            if request.body.len() > cap {
                return Slot::Done(Outcome::Error {
                    error: SvcError::new(
                        SvcErrorKind::Oversized,
                        format!("request body is {} bytes (limit {cap})", request.body.len()),
                    ),
                    cached: false,
                });
            }
        }
        let parsed = match rbs_json::parse(&request.body) {
            Ok(value) => value,
            Err(error) => {
                return Slot::Done(Outcome::Error {
                    error: SvcError::new(SvcErrorKind::Parse, format!("invalid request: {error}")),
                    cached: false,
                });
            }
        };
        // A request is a campaign sweep (an object wrapping the grid
        // under a "sweep" key), a delta (an object wrapping base + ops
        // under a "delta" key — both impossible for a task-set document,
        // which is a JSON array), or a plain task set.
        let (canonical, job) = if let Some(sweep) = parsed.get("sweep") {
            match SweepGrid::from_json(sweep) {
                Ok(grid) => (
                    CanonicalTaskSet::of_sweep(&grid.specs, grid.x, &grid.ys, &grid.speeds),
                    Job::Sweep { grid },
                ),
                Err(error) => {
                    return Slot::Done(Outcome::Error {
                        error: SvcError::new(
                            SvcErrorKind::Parse,
                            format!("invalid sweep request: {error}"),
                        ),
                        cached: false,
                    });
                }
            }
        } else if let Some(delta) = parsed.get("delta") {
            match self.triage_delta(delta) {
                Ok(entry) => entry,
                Err(error) => {
                    return Slot::Done(Outcome::Error {
                        error,
                        cached: false,
                    })
                }
            }
        } else if let Some(partition) = parsed.get("partition") {
            match PartitionRequest::from_json(partition) {
                Ok(request) => (
                    CanonicalTaskSet::of_partition(&request.set, &request.spec.canonical_detail()),
                    Job::Partition {
                        set: request.set,
                        spec: request.spec,
                    },
                ),
                Err(error) => {
                    return Slot::Done(Outcome::Error {
                        error: SvcError::new(
                            SvcErrorKind::Parse,
                            format!("invalid partition request: {error}"),
                        ),
                        cached: false,
                    });
                }
            }
        } else {
            match TaskSet::from_json(&parsed) {
                Ok(set) => {
                    let canonical = CanonicalTaskSet::of(&set);
                    // Every successfully parsed set becomes a delta base
                    // candidate, addressable by the hash echoed in the
                    // response.
                    self.register_base(&canonical, &Arc::new(set.clone()));
                    (canonical, Job::Analyze { set })
                }
                Err(error) => {
                    return Slot::Done(Outcome::Error {
                        error: SvcError::new(
                            SvcErrorKind::Parse,
                            format!("invalid task set: {error}"),
                        ),
                        cached: false,
                    });
                }
            }
        };
        if let Some(report_json) = self.cache.get(&canonical) {
            stats.cache_hits += 1;
            return Slot::Done(Outcome::Report {
                hash: canonical.to_string(),
                cached: true,
                coalesced: false,
                walks: None,
                report_json,
            });
        }
        if let Some(error) = self.negative.get(&canonical) {
            stats.negative_hits += 1;
            return Slot::Done(Outcome::Error {
                error,
                cached: true,
            });
        }
        let slot = *job_of.entry(canonical.bytes().to_vec()).or_insert_with(|| {
            pending.push(Pending { canonical, job });
            pending.len() - 1
        });
        Slot::Waiting(slot)
    }

    /// Pass-1 handling of a `{"delta": ...}` body: decode the request,
    /// resolve its base (inline or registry key), vet the op sequence by
    /// applying it at the set level, and key the job on the canonical
    /// form of the *resulting* set so delta and analyze requests share
    /// cache entries. All rejections here are `parse`-class: they are
    /// properties of the request, not of the analysis.
    fn triage_delta(&self, delta: &Json) -> Result<(CanonicalTaskSet, Job), SvcError> {
        let request = DeltaRequest::from_json(delta).map_err(|error| {
            SvcError::new(
                SvcErrorKind::Parse,
                format!("invalid delta request: {error}"),
            )
        })?;
        let base = match request.base {
            DeltaBase::Inline(set) => {
                let set = Arc::new(set);
                self.register_base(&CanonicalTaskSet::of(&set), &set);
                set
            }
            DeltaBase::Key(key) => self
                .bases
                .lock()
                .ok()
                .and_then(|bases| bases.get(&key))
                .ok_or_else(|| {
                    SvcError::new(
                        SvcErrorKind::Parse,
                        format!(
                            "unknown delta base key \"{key}\" (analyze the set first or ship it inline)"
                        ),
                    )
                })?,
        };
        let mut result = (*base).clone();
        for op in &request.ops {
            op.apply_to(&mut result).map_err(|error| {
                SvcError::new(SvcErrorKind::Parse, format!("delta op rejected: {error}"))
            })?;
        }
        let canonical = CanonicalTaskSet::of(&result);
        // The resulting set is itself a base candidate, so clients can
        // chain deltas off each response's hash.
        self.register_base(&canonical, &Arc::new(result));
        Ok((
            canonical,
            Job::Delta {
                base,
                ops: request.ops,
            },
        ))
    }

    /// Serves a single request (a one-element batch).
    #[must_use]
    pub fn handle(&self, request: &Request) -> Response {
        let (mut responses, _) = self.process_batch(std::slice::from_ref(request));
        responses.remove(0)
    }
}

fn elapsed_micros(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_handles_even_and_odd_lengths() {
        assert_eq!(median(&[]), 0);
        assert_eq!(median(&[7]), 7);
        assert_eq!(median(&[1, 3]), 2);
        assert_eq!(median(&[1, 2]), 2); // midpoint 1.5 rounds half up
        assert_eq!(median(&[1, 2, 3, 4]), 3); // midpoint 2.5 rounds half up
        assert_eq!(median(&[1, 2, 3, 4, 5]), 3);
        assert_eq!(median(&[u64::MAX - 1, u64::MAX]), u64::MAX); // no overflow
    }

    #[test]
    fn percentile_uses_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&v, 100), 100);
        assert_eq!(percentile(&[5], 99), 5);
        assert_eq!(percentile(&[], 99), 0);
        let small: Vec<u64> = (1..=10).collect();
        assert_eq!(percentile(&small, 99), 10);
    }

    #[test]
    fn percentile_clamps_out_of_range_requests() {
        let v: Vec<u64> = (1..=100).collect();
        // pct = 0 still selects the first element (rank floor of 1).
        assert_eq!(percentile(&v, 0), 1);
        // pct > 100 must clamp to the maximum instead of indexing past
        // the end of the slice.
        assert_eq!(percentile(&v, 101), 100);
        assert_eq!(percentile(&v, usize::MAX / 128), 100);
        assert_eq!(percentile(&[7], 0), 7);
        assert_eq!(percentile(&[7], 250), 7);
        assert_eq!(percentile(&[], 0), 0);
        assert_eq!(percentile(&[], 250), 0);
    }

    #[test]
    fn error_counters_track_each_kind() {
        let mut counters = ErrorCounters::default();
        for kind in [
            SvcErrorKind::Parse,
            SvcErrorKind::Limits,
            SvcErrorKind::Timeout,
            SvcErrorKind::Panic,
            SvcErrorKind::Oversized,
            SvcErrorKind::Panic,
            SvcErrorKind::Overload,
        ] {
            counters.bump(kind);
        }
        assert_eq!(counters.total(), 7);
        assert_eq!(counters.panic, 2);
        assert_eq!(counters.parse, 1);
        assert_eq!(counters.overload, 1);
    }

    #[test]
    fn svc_error_renders_structured_json() {
        let error = SvcError::new(SvcErrorKind::Timeout, "too \"slow\"");
        let json = error.render();
        assert_eq!(
            json,
            "{\"kind\":\"timeout\",\"detail\":\"too \\\"slow\\\"\"}"
        );
    }

    #[test]
    fn scratch_leases_return_to_the_shared_pool() {
        let service = Service::new(WorkerPool::new(2), 0, AnalysisLimits::default());
        {
            let _a = service.lease_scratch();
            let _b = service.lease_scratch();
            assert_eq!(service.scratches.lock().unwrap().len(), 0);
        }
        assert_eq!(service.scratches.lock().unwrap().len(), 2);
        // A clone shares the pool: the netd dispatcher's cloned service
        // hands the same warmed scratches to every micro-batch.
        let lease = service.clone().lease_scratch();
        drop(lease);
        assert_eq!(service.scratches.lock().unwrap().len(), 2);
    }

    #[test]
    fn batch_stats_absorb_accumulates() {
        let mut total = BatchStats::default();
        let mut one = BatchStats {
            served: 2,
            ok: 1,
            cache_hits: 1,
            latencies_micros: vec![10, 20],
            ..BatchStats::default()
        };
        one.errors.bump(SvcErrorKind::Panic);
        total.absorb(&one);
        total.absorb(&one);
        assert_eq!(total.served, 4);
        assert_eq!(total.ok, 2);
        assert_eq!(total.errors.panic, 2);
        assert_eq!(total.latencies_micros, vec![10, 20, 10, 20]);
        let footer = total.footer(4);
        assert!(footer.contains("errors{total=2"), "{footer}");
        assert!(footer.contains("p99="), "{footer}");
    }
}
