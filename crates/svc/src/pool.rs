//! A fixed-size `std::thread` worker pool over `mpsc` channels.
//!
//! [`WorkerPool::run_ordered`] fans a batch of jobs out to exactly
//! `jobs` scoped worker threads and collects the results *by submission
//! index*, so the returned vector is identical for any worker count —
//! parallelism never changes observable output, only wall-clock time.

use std::sync::mpsc;
use std::sync::Mutex;
use std::thread;

/// A fixed-size worker pool. The pool itself is cheap to construct; each
/// [`WorkerPool::run_ordered`] call spawns its scoped workers, drains the
/// job queue, and joins them, so borrowed data can flow into the closure.
#[derive(Debug, Clone, Copy)]
pub struct WorkerPool {
    jobs: usize,
}

impl WorkerPool {
    /// A pool with `jobs` workers (clamped to at least one).
    #[must_use]
    pub fn new(jobs: usize) -> WorkerPool {
        WorkerPool { jobs: jobs.max(1) }
    }

    /// A pool sized to the machine (`std::thread::available_parallelism`,
    /// falling back to one worker when the count is unavailable).
    #[must_use]
    pub fn with_available_parallelism() -> WorkerPool {
        WorkerPool::new(
            thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// The worker count.
    #[must_use]
    pub const fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs `f(index, item)` for every item and returns the results in
    /// submission order, regardless of which worker finished first.
    ///
    /// With one worker (or one item) the items run inline on the calling
    /// thread — the degenerate pool is just a loop.
    ///
    /// # Panics
    ///
    /// Propagates a panic from `f` (the scope joins all workers first).
    pub fn run_ordered<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.jobs.min(n);
        if workers <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }

        let (job_tx, job_rx) = mpsc::channel::<(usize, T)>();
        for entry in items.into_iter().enumerate() {
            job_tx.send(entry).expect("receiver lives until scope ends");
        }
        drop(job_tx); // workers see a closed queue once it drains
        let job_rx = Mutex::new(job_rx);

        let (result_tx, result_rx) = mpsc::channel::<(usize, R)>();
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        thread::scope(|scope| {
            for _ in 0..workers {
                let result_tx = result_tx.clone();
                let job_rx = &job_rx;
                let f = &f;
                scope.spawn(move || loop {
                    // Hold the lock only for the dequeue, not the work.
                    let job = job_rx.lock().expect("queue lock").try_recv();
                    match job {
                        Ok((index, item)) => {
                            if result_tx.send((index, f(index, item))).is_err() {
                                break;
                            }
                        }
                        Err(_) => break, // queue fully drained
                    }
                });
            }
            drop(result_tx);
            for (index, result) in result_rx {
                results[index] = Some(result);
            }
        });
        results
            .into_iter()
            .map(|slot| slot.expect("every submitted job reports back"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..100).collect();
        let out = pool.run_ordered(items, |i, v| {
            assert_eq!(i, v);
            // Stagger completion times so out-of-order finishes happen.
            std::thread::sleep(std::time::Duration::from_micros(((v * 37) % 50) as u64));
            v * v
        });
        assert_eq!(out, (0..100).map(|v| v * v).collect::<Vec<_>>());
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let items: Vec<u64> = (0..64).collect();
        let one = WorkerPool::new(1).run_ordered(items.clone(), |_, v| v.wrapping_mul(v) ^ 17);
        let eight = WorkerPool::new(8).run_ordered(items, |_, v| v.wrapping_mul(v) ^ 17);
        assert_eq!(one, eight);
    }

    #[test]
    fn empty_batches_and_oversized_pools_are_fine() {
        let pool = WorkerPool::new(16);
        let out: Vec<i32> = pool.run_ordered(Vec::<i32>::new(), |_, v| v);
        assert!(out.is_empty());
        let out = pool.run_ordered(vec![5], |_, v| v + 1);
        assert_eq!(out, vec![6]);
    }

    #[test]
    fn zero_becomes_one_worker() {
        assert_eq!(WorkerPool::new(0).jobs(), 1);
        assert!(WorkerPool::with_available_parallelism().jobs() >= 1);
    }
}
