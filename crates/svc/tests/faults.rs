//! Fault-injection suite: a panicking, a timed-out, and an oversized
//! request must each be classified by the error taxonomy while every
//! other request in the batch is still served, in submission order,
//! bit-identically for any worker count.

use std::time::Duration;

use rbs_core::AnalysisLimits;
use rbs_svc::{
    Outcome, Request, Service, ServiceConfig, SvcErrorKind, WorkerPool, FAULT_PANIC_TASK,
    FAULT_REPAIR_TASK, FAULT_SLEEP_PREFIX, FAULT_SPLICE_TASK,
};

/// One LO task as a JSON object; distinct periods make distinct sets.
fn lo_task(name: &str, period: i128, wcet: i128) -> String {
    format!(
        "{{\"name\":\"{name}\",\"criticality\":\"Lo\",\
         \"lo\":{{\"period\":{{\"num\":{period},\"den\":1}},\
         \"deadline\":{{\"num\":{period},\"den\":1}},\
         \"wcet\":{{\"num\":{wcet},\"den\":1}}}},\
         \"hi\":{{\"Continue\":{{\"period\":{{\"num\":{period},\"den\":1}},\
         \"deadline\":{{\"num\":{period},\"den\":1}},\
         \"wcet\":{{\"num\":{wcet},\"den\":1}}}}}}}}"
    )
}

fn request(label: &str, tasks: &[String]) -> Request {
    Request {
        label: label.to_owned(),
        body: format!("[{}]", tasks.join(",")),
    }
}

fn good(label: &str, period: i128) -> Request {
    request(label, &[lo_task("worker", period, 1)])
}

fn panicking(label: &str) -> Request {
    request(label, &[lo_task(FAULT_PANIC_TASK, 7, 1)])
}

fn sleepy(label: &str, ms: u64) -> Request {
    request(
        label,
        &[lo_task(&format!("{FAULT_SLEEP_PREFIX}{ms}__"), 11, 1)],
    )
}

fn chaos_config() -> ServiceConfig {
    ServiceConfig {
        fault_injection: true,
        timeout: Some(Duration::from_millis(5)),
        max_request_bytes: Some(2048),
        ..ServiceConfig::default()
    }
}

fn kind(outcome: &Outcome) -> Option<SvcErrorKind> {
    outcome.error().map(|e| e.kind)
}

#[test]
fn a_panicking_request_is_contained_and_classified() {
    let svc = Service::with_config(WorkerPool::new(4), chaos_config());
    let batch = vec![good("a", 5), panicking("boom"), good("b", 9)];
    let (responses, stats) = svc.process_batch(&batch);
    assert_eq!(responses.len(), 3);
    assert!(matches!(responses[0].outcome, Outcome::Report { .. }));
    assert_eq!(kind(&responses[1].outcome), Some(SvcErrorKind::Panic));
    assert!(matches!(responses[2].outcome, Outcome::Report { .. }));
    assert_eq!(stats.ok, 2);
    assert_eq!(stats.errors.panic, 1);
    assert_eq!(stats.errors.total(), 1);
    let detail = &responses[1].outcome.error().expect("error").detail;
    assert!(detail.contains("injected fault"), "{detail}");
}

#[test]
fn a_timed_out_request_is_classified_and_others_served() {
    // The sleep marker burns the whole 5 ms deadline before the walk
    // starts; the first cooperative check then fires deterministically.
    let svc = Service::with_config(WorkerPool::new(4), chaos_config());
    let batch = vec![good("a", 5), sleepy("slow", 50), good("b", 9)];
    let (responses, stats) = svc.process_batch(&batch);
    assert_eq!(kind(&responses[1].outcome), Some(SvcErrorKind::Timeout));
    assert!(matches!(responses[0].outcome, Outcome::Report { .. }));
    assert!(matches!(responses[2].outcome, Outcome::Report { .. }));
    assert_eq!(stats.errors.timeout, 1);
    assert_eq!(stats.ok, 2);
    let detail = &responses[1].outcome.error().expect("error").detail;
    assert!(detail.contains("deadline"), "{detail}");
}

#[test]
fn an_oversized_request_is_rejected_before_parsing() {
    let svc = Service::with_config(WorkerPool::new(2), chaos_config());
    let huge = Request {
        label: "huge".to_owned(),
        // Not even valid JSON — the guard must fire before the parser.
        body: "x".repeat(4096),
    };
    let (responses, stats) = svc.process_batch(&[good("a", 5), huge]);
    assert!(matches!(responses[0].outcome, Outcome::Report { .. }));
    assert_eq!(kind(&responses[1].outcome), Some(SvcErrorKind::Oversized));
    assert_eq!(stats.errors.oversized, 1);
    let detail = &responses[1].outcome.error().expect("error").detail;
    assert!(detail.contains("4096"), "{detail}");
    assert!(detail.contains("2048"), "{detail}");
}

#[test]
fn a_mixed_poison_batch_is_bit_identical_for_any_worker_count() {
    let batch = vec![
        good("g1", 5),
        panicking("boom"),
        good("g2", 9),
        sleepy("slow", 50),
        Request {
            label: "bad-json".to_owned(),
            body: "{\"not\": \"a task set\"}".to_owned(),
        },
        Request {
            label: "huge".to_owned(),
            body: "y".repeat(4096),
        },
        good("g3", 13),
    ];
    let run = |jobs: usize| -> (Vec<String>, rbs_svc::BatchStats) {
        // A fresh service per run: shared caches would otherwise make the
        // second run's `cached` flags differ.
        let svc = Service::with_config(WorkerPool::new(jobs), chaos_config());
        let (responses, stats) = svc.process_batch(&batch);
        let lines = responses
            .into_iter()
            .map(|mut response| {
                response.micros = 0; // the only non-deterministic field
                response.render()
            })
            .collect();
        (lines, stats)
    };
    let (lines1, stats1) = run(1);
    let (lines8, stats8) = run(8);
    assert_eq!(lines1, lines8, "responses must not depend on --jobs");
    assert_eq!(stats1.ok, 3);
    assert_eq!(stats1.errors.panic, 1);
    assert_eq!(stats1.errors.timeout, 1);
    assert_eq!(stats1.errors.parse, 1);
    assert_eq!(stats1.errors.oversized, 1);
    assert_eq!(stats1.errors.total(), 4);
    assert_eq!(stats8.errors, stats1.errors);
    // Submission order is preserved: seq fields count up.
    for (seq, line) in lines1.iter().enumerate() {
        assert!(line.starts_with(&format!("{{\"seq\":{seq},")), "{line}");
    }
    // Each failure is classified in the rendered JSONL too.
    assert!(lines1[1].contains("\"kind\":\"panic\""), "{}", lines1[1]);
    assert!(lines1[3].contains("\"kind\":\"timeout\""), "{}", lines1[3]);
    assert!(lines1[4].contains("\"kind\":\"parse\""), "{}", lines1[4]);
    assert!(
        lines1[5].contains("\"kind\":\"oversized\""),
        "{}",
        lines1[5]
    );
}

/// A sweep request whose spec names carry a fault-injection marker.
fn sweep_request(label: &str, marker_name: &str) -> Request {
    Request {
        label: label.to_owned(),
        body: format!(
            "{{\"sweep\":{{\"specs\":[\
             {{\"name\":\"{marker_name}\",\"criticality\":\"Hi\",\
             \"period\":{{\"num\":5,\"den\":1}},\
             \"wcet_lo\":{{\"num\":1,\"den\":1}},\
             \"wcet_hi\":{{\"num\":2,\"den\":1}}}}],\
             \"ys\":[{{\"num\":1,\"den\":1}},{{\"num\":2,\"den\":1}}],\
             \"speeds\":[{{\"num\":2,\"den\":1}}]}}}}"
        ),
    }
}

#[test]
fn poisoned_sweep_requests_share_the_error_taxonomy() {
    // The chaos markers live in spec names for sweeps, so the same
    // containment (panic, deadline) must classify a poisoned sweep while
    // a healthy sweep in the same batch is still served.
    let svc = Service::with_config(WorkerPool::new(4), chaos_config());
    let batch = vec![
        sweep_request("ok", "tau1"),
        sweep_request("boom", FAULT_PANIC_TASK),
        sweep_request("slow", &format!("{FAULT_SLEEP_PREFIX}50__")),
        good("plain", 5),
    ];
    let (responses, stats) = svc.process_batch(&batch);
    assert!(matches!(responses[0].outcome, Outcome::Report { .. }));
    assert_eq!(kind(&responses[1].outcome), Some(SvcErrorKind::Panic));
    assert_eq!(kind(&responses[2].outcome), Some(SvcErrorKind::Timeout));
    assert!(matches!(responses[3].outcome, Outcome::Report { .. }));
    assert_eq!(stats.ok, 2);
    assert_eq!(stats.errors.panic, 1);
    assert_eq!(stats.errors.timeout, 1);
    // The healthy sweep reports the incremental engine's reuse counters.
    assert!(stats.reused_components > 0, "{stats:?}");
    assert!(stats.rebuilt_components > 0, "{stats:?}");
    // Poisoned sweeps are negative-cached like poisoned task sets.
    let (again, stats) = svc.process_batch(&[sweep_request("boom", FAULT_PANIC_TASK)]);
    assert_eq!(stats.analyzed, 0);
    assert_eq!(stats.negative_hits, 1);
    assert_eq!(kind(&again[0].outcome), Some(SvcErrorKind::Panic));
}

#[test]
fn failed_analyses_are_negative_cached() {
    // A zero breakpoint budget fails every analysis deterministically.
    let svc = Service::with_config(
        WorkerPool::new(2),
        ServiceConfig {
            limits: AnalysisLimits::new(0),
            ..ServiceConfig::default()
        },
    );
    let batch = vec![good("a", 5)];
    let (first, stats) = svc.process_batch(&batch);
    assert_eq!(stats.analyzed, 1);
    assert_eq!(stats.errors.limits, 1);
    let Outcome::Error { error, cached } = &first[0].outcome else {
        panic!("expected a limits error");
    };
    assert!(!cached);
    // Resubmission: answered from the negative cache, nothing re-analyzed.
    let (second, stats) = svc.process_batch(&batch);
    assert_eq!(stats.analyzed, 0, "poison pill must not re-run");
    assert_eq!(stats.negative_hits, 1);
    assert_eq!(stats.errors.limits, 1);
    let Outcome::Error {
        error: again,
        cached,
    } = &second[0].outcome
    else {
        panic!("expected the cached error");
    };
    assert!(cached, "second failure must come from the negative cache");
    assert_eq!(again, error);
    assert!(second[0].render().contains("\"cached\":true"));
}

#[test]
fn panics_are_negative_cached_too() {
    let svc = Service::with_config(WorkerPool::new(2), chaos_config());
    let batch = vec![panicking("boom")];
    let (_, stats) = svc.process_batch(&batch);
    assert_eq!(stats.analyzed, 1);
    assert_eq!(stats.errors.panic, 1);
    let (responses, stats) = svc.process_batch(&batch);
    assert_eq!(stats.analyzed, 0);
    assert_eq!(stats.negative_hits, 1);
    assert_eq!(kind(&responses[0].outcome), Some(SvcErrorKind::Panic));
}

#[test]
fn a_zero_capacity_negative_cache_disables_negative_caching() {
    let svc = Service::with_config(
        WorkerPool::new(1),
        ServiceConfig {
            limits: AnalysisLimits::new(0),
            negative_cache_capacity: 0,
            ..ServiceConfig::default()
        },
    );
    let batch = vec![good("a", 5)];
    let _ = svc.process_batch(&batch);
    let (_, stats) = svc.process_batch(&batch);
    assert_eq!(stats.analyzed, 1, "disabled cache must re-run");
    assert_eq!(stats.negative_hits, 0);
}

#[test]
fn coalesced_duplicates_are_marked_and_charged_once() {
    let svc = Service::with_config(WorkerPool::new(4), ServiceConfig::default());
    let batch = vec![good("a", 5), good("b", 5), good("c", 5), good("d", 9)];
    let (responses, stats) = svc.process_batch(&batch);
    assert_eq!(stats.analyzed, 2, "three duplicates coalesce onto one job");
    assert_eq!(stats.coalesced, 2);
    assert_eq!(stats.ok, 4);
    let coalesced_flags: Vec<bool> = responses
        .iter()
        .map(|r| match &r.outcome {
            Outcome::Report { coalesced, .. } => *coalesced,
            Outcome::Error { .. } => panic!("expected reports"),
        })
        .collect();
    assert_eq!(coalesced_flags, vec![false, true, true, false]);
    // Rendered lines advertise coalescing (and never claim a cache hit).
    assert!(!responses[0].render().contains("\"coalesced\""));
    assert!(responses[1].render().contains("\"coalesced\":true"));
    assert!(responses[1].render().contains("\"cached\":false"));
    // All three duplicates share the identical report bytes.
    let reports: Vec<&str> = responses[..3]
        .iter()
        .map(|r| match &r.outcome {
            Outcome::Report { report_json, .. } => report_json.as_ref(),
            Outcome::Error { .. } => unreachable!(),
        })
        .collect();
    assert_eq!(reports[0], reports[1]);
    assert_eq!(reports[1], reports[2]);
}

/// A fleet-partitioning request over the given task objects.
fn partition_request(label: &str, tasks: &[String], cores: usize) -> Request {
    Request {
        label: label.to_owned(),
        body: format!(
            "{{\"partition\":{{\"tasks\":[{}],\"cores\":{cores},\
             \"max_speedup\":{{\"num\":2,\"den\":1}}}}}}",
            tasks.join(",")
        ),
    }
}

fn report_of(outcome: &Outcome) -> &str {
    match outcome {
        Outcome::Report { report_json, .. } => report_json.as_ref(),
        Outcome::Error { error, .. } => panic!("expected a report, got {error:?}"),
    }
}

#[test]
fn partition_requests_are_served_poisoned_and_cached() {
    let svc = Service::with_config(WorkerPool::new(4), chaos_config());
    let fit = partition_request("fit", &[lo_task("a", 5, 1), lo_task("b", 7, 1)], 2);
    let batch = vec![
        fit.clone(),
        partition_request("boom", &[lo_task(FAULT_PANIC_TASK, 7, 1)], 1),
        // Three half-utilization tasks cannot share one core: the fleet
        // must shed (a healthy report naming the task), not error.
        partition_request(
            "shed",
            &[lo_task("x", 2, 1), lo_task("y", 2, 1), lo_task("z", 2, 1)],
            1,
        ),
    ];
    let (responses, stats) = svc.process_batch(&batch);
    let placed = report_of(&responses[0].outcome);
    assert!(placed.contains("\"fits\":true"), "{placed}");
    assert!(placed.contains("\"s_min\""), "{placed}");
    assert_eq!(kind(&responses[1].outcome), Some(SvcErrorKind::Panic));
    let shed = report_of(&responses[2].outcome);
    assert!(shed.contains("\"fits\":false"), "{shed}");
    assert!(shed.contains("\"unplaced\""), "{shed}");
    assert_eq!(stats.ok, 2);
    assert_eq!(stats.errors.panic, 1);
    // The placement ran real walks, surfaced through the footer counters.
    assert!(stats.integer_walks + stats.exact_walks > 0, "{stats:?}");
    // Resubmission answers from the result cache without re-partitioning.
    let (again, stats) = svc.process_batch(&[fit]);
    assert_eq!(stats.analyzed, 0);
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(report_of(&again[0].outcome), placed);
}

#[test]
fn a_mid_splice_delta_fault_is_contained() {
    let svc = Service::with_config(WorkerPool::new(2), chaos_config());
    let poisoned = Request {
        label: "splice".to_owned(),
        body: format!(
            "{{\"delta\":{{\"base\":[{}],\"ops\":[{{\"admit\":{}}}]}}}}",
            lo_task("w", 5, 1),
            lo_task(FAULT_SPLICE_TASK, 7, 1)
        ),
    };
    let (responses, stats) = svc.process_batch(&[poisoned, good("after", 9)]);
    assert_eq!(kind(&responses[0].outcome), Some(SvcErrorKind::Panic));
    let detail = &responses[0].outcome.error().expect("error").detail;
    assert!(detail.contains("mid-splice"), "{detail}");
    // The worker that unwound mid-splice still serves the next request.
    assert!(matches!(responses[1].outcome, Outcome::Report { .. }));
    assert_eq!(stats.ok, 1);
    assert_eq!(stats.errors.panic, 1);
}

#[test]
fn a_mid_repair_delta_fault_is_contained() {
    let svc = Service::with_config(WorkerPool::new(2), chaos_config());
    let poisoned = Request {
        label: "repair".to_owned(),
        body: format!(
            "{{\"delta\":{{\"base\":[{}],\"ops\":[{{\"admit\":{}}}]}}}}",
            lo_task("w", 5, 1),
            lo_task(FAULT_REPAIR_TASK, 7, 1)
        ),
    };
    let (responses, stats) = svc.process_batch(&[poisoned, good("after", 9)]);
    assert_eq!(kind(&responses[0].outcome), Some(SvcErrorKind::Panic));
    let detail = &responses[0].outcome.error().expect("error").detail;
    assert!(detail.contains("mid-repair"), "{detail}");
    // The worker that unwound inside frontier repair still serves the
    // next request.
    assert!(matches!(responses[1].outcome, Outcome::Report { .. }));
    assert_eq!(stats.ok, 1);
    assert_eq!(stats.errors.panic, 1);
}

#[test]
fn duplicate_heavy_batches_charge_the_analysis_time_once() {
    // 32 copies of one heavy-ish set: if every duplicate were charged the
    // full analysis time (the old bug), the latency sum would be ~32x the
    // analyzed time. Charging once keeps duplicate latencies at their
    // parse-only share, so the maximum latency dominates the sum.
    let svc = Service::with_config(WorkerPool::new(4), ServiceConfig::default());
    let tasks: Vec<String> = (0..12)
        .map(|i| lo_task(&format!("t{i}"), 97 + i128::from(i) * 2, 1))
        .collect();
    let batch: Vec<Request> = (0..32).map(|_| request("dup", &tasks)).collect();
    let (responses, stats) = svc.process_batch(&batch);
    assert_eq!(stats.analyzed, 1);
    assert_eq!(stats.coalesced, 31);
    let latencies = &stats.latencies_micros;
    let max = *latencies.iter().max().expect("non-empty");
    let sum: u64 = latencies.iter().sum();
    // The single charged response holds the analysis share; the other 31
    // parse-only latencies cannot add up to more than that again.
    assert!(
        sum <= max.saturating_mul(2),
        "duplicates appear to be double-charged: sum={sum} max={max} latencies={latencies:?}"
    );
    assert_eq!(responses.len(), 32);
}
