//! End-to-end tests driving the `rbs-svc` binary: batch-mode exit
//! behavior for poison-pill input, and the incremental `--follow`
//! protocol (per-line flushing, stream resynchronization after an
//! oversized line, graceful drain with a final footer).

use std::io::{BufRead, BufReader, Read, Write};
use std::process::{Child, Command, Stdio};

fn binary() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rbs-svc"))
}

fn good_line(period: i128) -> String {
    format!(
        "[{{\"name\":\"w\",\"criticality\":\"Lo\",\
         \"lo\":{{\"period\":{{\"num\":{period},\"den\":1}},\
         \"deadline\":{{\"num\":{period},\"den\":1}},\
         \"wcet\":{{\"num\":1,\"den\":1}}}},\
         \"hi\":{{\"Continue\":{{\"period\":{{\"num\":{period},\"den\":1}},\
         \"deadline\":{{\"num\":{period},\"den\":1}},\
         \"wcet\":{{\"num\":1,\"den\":1}}}}}}}}]"
    )
}

fn panic_line() -> String {
    good_line(7).replace("\"name\":\"w\"", "\"name\":\"__rbs_fault_panic__\"")
}

fn sleep_line() -> String {
    good_line(11).replace("\"name\":\"w\"", "\"name\":\"__rbs_fault_sleep_ms_50__\"")
}

#[test]
fn batch_mode_classifies_poison_pills_and_exits_nonzero() {
    let stdin_payload = format!(
        "{}\nnot json at all\n{}\n{}\n{}\n{}\n",
        good_line(5),
        panic_line(),
        sleep_line(),
        "z".repeat(8192),
        good_line(9),
    );
    let mut child = binary()
        .args([
            "-",
            "--jobs",
            "4",
            "--fault-injection",
            "--timeout-ms",
            "5",
            "--max-request-bytes",
            "4096",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(stdin_payload.as_bytes())
        .expect("writes");
    let output = child.wait_with_output().expect("binary runs");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        !output.status.success(),
        "poison-pill batch must exit non-zero\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );

    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 6, "one response per request:\n{stdout}");
    // Every poison pill is classified; every good request is served.
    assert!(lines[0].contains("\"report\":"), "{}", lines[0]);
    assert!(lines[1].contains("\"kind\":\"parse\""), "{}", lines[1]);
    assert!(lines[2].contains("\"kind\":\"panic\""), "{}", lines[2]);
    assert!(lines[3].contains("\"kind\":\"timeout\""), "{}", lines[3]);
    assert!(lines[4].contains("\"kind\":\"oversized\""), "{}", lines[4]);
    assert!(lines[5].contains("\"report\":"), "{}", lines[5]);
    // Submission order is preserved.
    for (seq, line) in lines.iter().enumerate() {
        assert!(line.starts_with(&format!("{{\"seq\":{seq},")), "{line}");
    }
    // The footer reports the taxonomy.
    assert!(
        stderr
            .contains("errors{total=4 parse=1 limits=0 timeout=1 panic=1 oversized=1 overload=0}"),
        "{stderr}"
    );
}

struct Follow {
    child: Child,
    stdin: std::process::ChildStdin,
    stdout: BufReader<std::process::ChildStdout>,
}

impl Follow {
    fn spawn(extra_args: &[&str]) -> Follow {
        let mut child = binary()
            .args(["--follow", "--jobs", "2"])
            .args(extra_args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("binary spawns");
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        Follow {
            child,
            stdin,
            stdout,
        }
    }

    /// Sends one request line and reads exactly one response line — this
    /// deadlocks unless the daemon flushes per line, so it doubles as the
    /// flushing test.
    fn roundtrip(&mut self, line: &str) -> String {
        writeln!(self.stdin, "{line}").expect("request writes");
        self.stdin.flush().expect("request flushes");
        let mut response = String::new();
        let n = self
            .stdout
            .read_line(&mut response)
            .expect("response reads");
        assert!(n > 0, "daemon closed stdout unexpectedly");
        response
    }

    /// Closes stdin (graceful drain) and returns (exit-success, stderr).
    fn drain(mut self) -> (bool, String) {
        drop(self.stdin);
        let status = self.child.wait().expect("daemon exits");
        let mut stderr = String::new();
        self.child
            .stderr
            .take()
            .expect("piped stderr")
            .read_to_string(&mut stderr)
            .expect("stderr reads");
        (status.success(), stderr)
    }
}

#[test]
fn follow_mode_answers_each_line_as_it_arrives() {
    let mut daemon = Follow::spawn(&[]);
    let first = daemon.roundtrip(&good_line(5));
    assert!(first.contains("\"report\":"), "{first}");
    assert!(first.starts_with("{\"seq\":0,"), "{first}");
    // A resubmission is served from the cache, still incrementally.
    let second = daemon.roundtrip(&good_line(5));
    assert!(second.contains("\"cached\":true"), "{second}");
    assert!(second.starts_with("{\"seq\":1,"), "{second}");
    let third = daemon.roundtrip("garbage");
    assert!(third.contains("\"kind\":\"parse\""), "{third}");
    let (success, stderr) = daemon.drain();
    assert!(success, "clean drain must exit zero:\n{stderr}");
    assert!(stderr.contains("served=3"), "{stderr}");
    assert!(stderr.contains("cache{hits=1"), "{stderr}");
}

#[test]
fn follow_mode_survives_poison_pills_and_oversized_lines() {
    let mut daemon = Follow::spawn(&[
        "--fault-injection",
        "--timeout-ms",
        "5",
        "--max-request-bytes",
        "2048",
    ]);
    let panic_response = daemon.roundtrip(&panic_line());
    assert!(
        panic_response.contains("\"kind\":\"panic\""),
        "{panic_response}"
    );
    // A line far beyond the cap is truncated on the wire, rejected as
    // oversized, and the stream stays synchronized for the next request.
    let oversized = daemon.roundtrip(&"q".repeat(100_000));
    assert!(oversized.contains("\"kind\":\"oversized\""), "{oversized}");
    let timeout = daemon.roundtrip(&sleep_line());
    assert!(timeout.contains("\"kind\":\"timeout\""), "{timeout}");
    let healthy = daemon.roundtrip(&good_line(9));
    assert!(healthy.contains("\"report\":"), "{healthy}");
    let (success, stderr) = daemon.drain();
    assert!(
        success,
        "in-band failures must not fail the daemon:\n{stderr}"
    );
    assert!(
        stderr
            .contains("errors{total=3 parse=0 limits=0 timeout=1 panic=1 oversized=1 overload=0}"),
        "{stderr}"
    );
}

#[test]
fn truncated_line_cut_at_a_cr_never_leaks_its_prefix() {
    // The wire cap is exactly the length of a valid request, and the
    // poison line is that request plus a `\r` plus junk: the framer
    // keeps cap + 1 bytes, ending in the coincidental `\r`. Stripping
    // it as a CRLF terminator would hand the valid prefix to the
    // service, which would serve a report for a request the client
    // never finished sending.
    let valid = good_line(5);
    let cap = valid.len().to_string();
    let mut daemon = Follow::spawn(&["--max-request-bytes", &cap]);
    let smuggled = format!("{valid}\r{}", "x".repeat(4096));
    let response = daemon.roundtrip(&smuggled);
    assert!(response.contains("\"kind\":\"oversized\""), "{response}");
    // The stream stays synchronized, and the same bytes sent as a whole
    // line still fit the cap.
    let healthy = daemon.roundtrip(&valid);
    assert!(healthy.contains("\"report\":"), "{healthy}");
    let (success, stderr) = daemon.drain();
    assert!(
        success,
        "in-band oversized must not fail the daemon:\n{stderr}"
    );
    assert!(stderr.contains("oversized=1"), "{stderr}");
}

#[test]
fn follow_mode_emits_periodic_footers() {
    let mut daemon = Follow::spawn(&["--stats-every", "1"]);
    let _ = daemon.roundtrip(&good_line(5));
    let _ = daemon.roundtrip(&good_line(9));
    let (success, stderr) = daemon.drain();
    assert!(success, "{stderr}");
    // One footer per request plus the final drain footer.
    let footers = stderr
        .lines()
        .filter(|l| l.starts_with("rbs-svc: served="))
        .count();
    assert_eq!(footers, 3, "{stderr}");
}

/// Extracts `[integer, exact, pruned, avoided, reused, rebuilt,
/// lockstep, patched]` from a footer's `walks{integer=.. exact=..
/// pruned=.. avoided=.. reused=.. rebuilt=.. lockstep=.. patched=..}`
/// block.
fn parse_walks(footer: &str) -> [u64; 8] {
    let start = footer.find("walks{").expect("footer has a walks block") + "walks{".len();
    let body = &footer[start..];
    let body = &body[..body.find('}').expect("walks block closes")];
    let mut counters = [0u64; 8];
    for (slot, key) in [
        "integer=",
        "exact=",
        "pruned=",
        "avoided=",
        "reused=",
        "rebuilt=",
        "lockstep=",
        "patched=",
    ]
    .into_iter()
    .enumerate()
    {
        let field = body
            .split(' ')
            .find_map(|part| part.strip_prefix(key))
            .unwrap_or_else(|| panic!("walks block must carry {key}: {footer}"));
        counters[slot] = field.parse().expect("counter parses");
    }
    counters
}

#[test]
fn walk_counters_appear_per_response_and_grow_monotonically() {
    let mut daemon = Follow::spawn(&["--stats-every", "1"]);
    let first = daemon.roundtrip(&good_line(5));
    // Fresh reports carry the full per-analysis walk accounting,
    // including the pruning observability counters.
    for needle in [
        "\"walks\":{\"integer\":",
        "\"pruned\":",
        "\"avoided\":",
        "\"reused\":",
        "\"rebuilt\":",
        "\"lockstep\":",
        "\"patched\":",
    ] {
        assert!(
            first.contains(needle),
            "response must carry {needle}: {first}"
        );
    }
    let _ = daemon.roundtrip(&good_line(9));
    let _ = daemon.roundtrip(&good_line(13));
    let (success, stderr) = daemon.drain();
    assert!(success, "{stderr}");
    let footers: Vec<[u64; 8]> = stderr
        .lines()
        .filter(|line| line.starts_with("rbs-svc: served="))
        .map(parse_walks)
        .collect();
    assert!(
        footers.len() >= 3,
        "periodic + drain footers expected: {stderr}"
    );
    // The footer aggregates are cumulative, so every counter must be
    // non-decreasing across consecutive footers.
    for pair in footers.windows(2) {
        for (slot, (earlier, later)) in pair[0].iter().zip(pair[1].iter()).enumerate() {
            assert!(
                earlier <= later,
                "walk counter {slot} regressed across footers: {stderr}"
            );
        }
    }
    let last = footers.last().expect("at least one footer");
    assert!(
        last[0] + last[1] > 0,
        "three analyses must execute at least one walk: {stderr}"
    );
}

/// The Table I set as a sweep request over `ys` with a single `s = 2`
/// probe speed.
fn sweep_line(ys: &[i128]) -> String {
    let ys_json = ys
        .iter()
        .map(|y| format!("{{\"num\":{y},\"den\":1}}"))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"sweep\":{{\"specs\":[\
         {{\"name\":\"tau1\",\"criticality\":\"Hi\",\"period\":{{\"num\":5,\"den\":1}},\
         \"wcet_lo\":{{\"num\":1,\"den\":1}},\"wcet_hi\":{{\"num\":2,\"den\":1}}}},\
         {{\"name\":\"tau2\",\"criticality\":\"Lo\",\"period\":{{\"num\":10,\"den\":1}},\
         \"wcet_lo\":{{\"num\":3,\"den\":1}},\"wcet_hi\":{{\"num\":3,\"den\":1}}}}],\
         \"ys\":[{ys_json}],\
         \"speeds\":[{{\"num\":2,\"den\":1}}]}}}}"
    )
}

#[test]
fn sweep_requests_answer_the_full_grid_and_reuse_components() {
    let mut daemon = Follow::spawn(&["--stats-every", "1"]);
    let first = daemon.roundtrip(&sweep_line(&[1, 2, 3]));
    // One response carries the whole (y, s) grid plus the component-reuse
    // accounting of the incremental engine.
    for needle in [
        "\"points\":",
        "\"s_min\":",
        "\"resetting\":",
        "\"reused\":",
        "\"rebuilt\":",
    ] {
        assert!(
            first.contains(needle),
            "sweep response needs {needle}: {first}"
        );
    }
    // Three grid points on a two-task set: components were reused, not
    // rebuilt from scratch per point.
    let reused = first
        .split("\"reused\":")
        .nth(1)
        .and_then(|rest| rest.split(&[',', '}'][..]).next())
        .and_then(|n| n.parse::<u64>().ok())
        .expect("reused counter parses");
    assert!(reused > 0, "sweep must reuse components: {first}");
    // Resubmission hits the positive cache under the sweep canonical form.
    let second = daemon.roundtrip(&sweep_line(&[1, 2, 3]));
    assert!(second.contains("\"cached\":true"), "{second}");
    // A different grid is a different cache entry.
    let third = daemon.roundtrip(&sweep_line(&[1, 2]));
    assert!(third.contains("\"cached\":false"), "{third}");
    // Malformed grids are classified as parse errors.
    let bad = daemon.roundtrip("{\"sweep\":{\"ys\":[]}}");
    assert!(bad.contains("\"kind\":\"parse\""), "{bad}");
    assert!(bad.contains("invalid sweep request"), "{bad}");
    let (success, stderr) = daemon.drain();
    assert!(success, "{stderr}");
    let last = *stderr
        .lines()
        .filter(|line| line.starts_with("rbs-svc: served="))
        .map(parse_walks)
        .collect::<Vec<_>>()
        .last()
        .expect("drain footer present");
    assert!(last[4] > 0, "footer must aggregate reused: {stderr}");
    assert!(last[5] > 0, "footer must aggregate rebuilt: {stderr}");
    assert!(stderr.contains("cache{hits=1"), "{stderr}");
}

/// A HI-terminated admittee for delta requests.
fn admit_task_json() -> String {
    "{\"name\":\"x\",\"criticality\":\"Lo\",\
     \"lo\":{\"period\":{\"num\":4,\"den\":1},\
     \"deadline\":{\"num\":4,\"den\":1},\
     \"wcet\":{\"num\":1,\"den\":1}},\
     \"hi\":\"Terminated\"}"
        .to_owned()
}

/// Extracts the `"hash":"..."` field of a response line.
fn extract_hash(response: &str) -> String {
    response
        .split("\"hash\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .expect("response carries a hash")
        .to_owned()
}

#[test]
fn delta_requests_resolve_bases_and_share_the_report_cache() {
    let mut daemon = Follow::spawn(&[]);
    // Analyzing a set registers it as a delta base under its hash.
    let base = daemon.roundtrip(&good_line(5));
    let base_hash = extract_hash(&base);
    // Admit one task against the resident base by key. The splice stays
    // on the integer fast path: exactly one profile patched in place.
    let admit = format!(
        "{{\"delta\":{{\"base\":\"{base_hash}\",\"ops\":[{{\"admit\":{}}}]}}}}",
        admit_task_json()
    );
    let grown = daemon.roundtrip(&admit);
    assert!(grown.contains("\"report\":"), "{grown}");
    assert!(grown.contains("\"cached\":false"), "{grown}");
    assert!(grown.contains("\"patched\":1"), "{grown}");
    let grown_hash = extract_hash(&grown);
    assert_ne!(grown_hash, base_hash);
    // The same delta again is a cache hit under the resulting set's
    // canonical form.
    let again = daemon.roundtrip(&admit);
    assert!(again.contains("\"cached\":true"), "{again}");
    // Evicting the admittee from the grown set lands back on the base
    // set's cache entry — delta responses chain by hash, and delta and
    // analyze requests share the cache.
    let evict =
        format!("{{\"delta\":{{\"base\":\"{grown_hash}\",\"ops\":[{{\"evict\":\"x\"}}]}}}}");
    let shrunk = daemon.roundtrip(&evict);
    assert!(shrunk.contains("\"cached\":true"), "{shrunk}");
    assert_eq!(extract_hash(&shrunk), base_hash);
    // An inline base works without prior registration.
    let inline = format!(
        "{{\"delta\":{{\"base\":{},\"ops\":[{{\"admit\":{}}}]}}}}",
        good_line(7),
        admit_task_json()
    );
    let inline_response = daemon.roundtrip(&inline);
    assert!(inline_response.contains("\"report\":"), "{inline_response}");
    // Request-level rejections are parse-class: unknown base keys and
    // ops naming unknown tasks never reach a worker.
    let unknown_key =
        daemon.roundtrip("{\"delta\":{\"base\":\"feedfeed\",\"ops\":[{\"evict\":\"x\"}]}}");
    assert!(unknown_key.contains("\"kind\":\"parse\""), "{unknown_key}");
    assert!(
        unknown_key.contains("unknown delta base key"),
        "{unknown_key}"
    );
    let unknown_task = daemon.roundtrip(&format!(
        "{{\"delta\":{{\"base\":\"{base_hash}\",\"ops\":[{{\"evict\":\"ghost\"}}]}}}}"
    ));
    assert!(
        unknown_task.contains("\"kind\":\"parse\""),
        "{unknown_task}"
    );
    assert!(unknown_task.contains("delta op rejected"), "{unknown_task}");
    let (success, stderr) = daemon.drain();
    assert!(success, "{stderr}");
    assert!(stderr.contains("patched="), "{stderr}");
}

#[test]
fn help_exits_zero_and_documents_the_protocol() {
    let output = binary().arg("--help").output().expect("binary runs");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    for needle in [
        "--follow",
        "--timeout-ms",
        "--max-request-bytes",
        "oversized",
    ] {
        assert!(stdout.contains(needle), "usage must mention {needle}");
    }
}
