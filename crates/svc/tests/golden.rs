//! Golden tests: the service must answer with exactly the bytes a direct
//! `rbs_core::analyze` call renders, and resubmissions must be cache hits
//! with the identical report.

use rbs_core::{analyze, AnalysisLimits};
use rbs_model::TaskSet;
use rbs_svc::{read_source, Outcome, Request, Service, WorkerPool};

fn workloads_dir() -> String {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/workloads").to_owned()
}

fn service(jobs: usize) -> Service {
    Service::new(WorkerPool::new(jobs), 64, AnalysisLimits::default())
}

#[test]
fn responses_match_direct_analyze_bytes_for_every_workload() {
    let requests = read_source(&workloads_dir()).expect("workloads readable");
    assert_eq!(requests.len(), 3, "expected the three shipped workloads");
    let svc = service(4);
    let (responses, stats) = svc.process_batch(&requests);
    assert_eq!(stats.ok, requests.len());
    assert_eq!(stats.errors.total(), 0);
    assert_eq!(stats.cache_hits, 0);
    assert_eq!(stats.analyzed, requests.len());
    for (request, response) in requests.iter().zip(&responses) {
        let Outcome::Report {
            cached,
            report_json,
            ..
        } = &response.outcome
        else {
            panic!("{}: expected a report, got {:?}", request.label, response);
        };
        assert!(!cached);
        let set: TaskSet = rbs_json::from_str(&request.body).expect("workload parses");
        let direct = analyze(set, &AnalysisLimits::default()).expect("analysis completes");
        assert_eq!(
            report_json.as_ref(),
            rbs_json::to_string(&direct),
            "{}: service bytes differ from direct analyze()",
            request.label
        );
    }
}

#[test]
fn resubmission_is_a_cache_hit_with_the_identical_report() {
    let requests = read_source(&workloads_dir()).expect("workloads readable");
    let svc = service(2);
    let (first, _) = svc.process_batch(&requests);
    let (second, stats) = svc.process_batch(&requests);
    assert_eq!(stats.cache_hits, requests.len());
    assert_eq!(stats.analyzed, 0);
    for (a, b) in first.iter().zip(&second) {
        let (
            Outcome::Report {
                hash: ha,
                report_json: ra,
                ..
            },
            Outcome::Report {
                hash: hb,
                cached,
                report_json: rb,
                ..
            },
        ) = (&a.outcome, &b.outcome)
        else {
            panic!("expected reports");
        };
        assert!(cached, "second submission must be served from the cache");
        assert_eq!(ha, hb);
        assert_eq!(ra, rb, "cached report differs from the computed one");
    }
}

#[test]
fn task_order_does_not_defeat_the_cache() {
    let requests = read_source(&workloads_dir()).expect("workloads readable");
    let svc = service(2);
    let _ = svc.process_batch(&requests);
    // Reverse every set's task order; the canonical form must still hit.
    let reversed: Vec<Request> = requests
        .iter()
        .map(|r| {
            let set: TaskSet = rbs_json::from_str(&r.body).expect("parses");
            let mut tasks: Vec<_> = set.iter().cloned().collect();
            tasks.reverse();
            Request {
                label: format!("{} (reversed)", r.label),
                body: rbs_json::to_string(&TaskSet::new(tasks)),
            }
        })
        .collect();
    let (responses, stats) = svc.process_batch(&reversed);
    assert_eq!(stats.cache_hits, reversed.len());
    for response in &responses {
        assert!(matches!(
            &response.outcome,
            Outcome::Report { cached: true, .. }
        ));
    }
}

#[test]
fn duplicate_lines_in_one_batch_are_coalesced() {
    let requests = read_source(&workloads_dir()).expect("workloads readable");
    let doubled: Vec<Request> = requests.iter().chain(&requests).cloned().collect();
    let svc = service(4);
    let (responses, stats) = svc.process_batch(&doubled);
    assert_eq!(stats.served, doubled.len());
    assert_eq!(stats.analyzed, requests.len(), "duplicates must coalesce");
    for (a, b) in responses[..requests.len()]
        .iter()
        .zip(&responses[requests.len()..])
    {
        let (
            Outcome::Report {
                report_json: ra, ..
            },
            Outcome::Report {
                report_json: rb, ..
            },
        ) = (&a.outcome, &b.outcome)
        else {
            panic!("expected reports");
        };
        assert_eq!(ra, rb);
    }
}

#[test]
fn worker_count_never_changes_the_rendered_responses() {
    let requests = read_source(&workloads_dir()).expect("workloads readable");
    let render = |jobs: usize| -> Vec<String> {
        let (responses, _) = service(jobs).process_batch(&requests);
        responses
            .into_iter()
            .map(|mut response| {
                // `micros` is wall-clock — the one deliberately
                // non-deterministic field. Everything else must match.
                response.micros = 0;
                response.render()
            })
            .collect()
    };
    assert_eq!(render(1), render(8));
}

#[test]
fn walk_counters_are_reported_and_deterministic() {
    let requests = read_source(&workloads_dir()).expect("workloads readable");
    let svc = service(2);
    let (first, stats) = svc.process_batch(&requests);
    let mut total = (0u64, 0u64);
    for response in &first {
        let Outcome::Report { walks, .. } = &response.outcome else {
            panic!("expected a report");
        };
        let meta = walks.expect("fresh analyses must carry walk stats");
        assert!(
            meta.integer_walks > 0,
            "integer-timebase workloads must use the fast path"
        );
        total.0 += meta.integer_walks;
        total.1 += meta.exact_walks;
        let line = response.render();
        assert!(line.contains("\"walks\":{\"integer\":"), "{line}");
        assert!(line.contains("\"micros\":"), "{line}");
    }
    assert_eq!((stats.integer_walks, stats.exact_walks), total);
    // Cache hits carry no walk stats (no analysis ran) ...
    let (second, stats) = svc.process_batch(&requests);
    assert_eq!((stats.integer_walks, stats.exact_walks), (0, 0));
    for response in &second {
        let Outcome::Report { walks, .. } = &response.outcome else {
            panic!("expected a report");
        };
        assert_eq!(*walks, None);
        assert!(!response.render().contains("\"walks\""));
    }
    // ... and re-analyzing from scratch reproduces the exact counts.
    let (_, again) = service(1).process_batch(&requests);
    assert_eq!((again.integer_walks, again.exact_walks), total);
}

#[test]
fn malformed_lines_get_error_responses_without_poisoning_the_batch() {
    let mut requests = read_source(&workloads_dir()).expect("workloads readable");
    requests.insert(
        1,
        Request {
            label: "stdin:2".to_owned(),
            body: "{\"not\": \"a task set\"}".to_owned(),
        },
    );
    let svc = service(2);
    let (responses, stats) = svc.process_batch(&requests);
    assert_eq!(stats.errors.total(), 1);
    assert_eq!(stats.errors.parse, 1);
    assert_eq!(stats.ok, requests.len() - 1);
    let line = responses[1].render();
    assert!(line.contains("\"error\":"), "{line}");
    assert!(line.contains("stdin:2"), "{line}");
}
