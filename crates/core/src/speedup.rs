//! Minimum processor speedup for HI-mode schedulability (Theorem 2).
//!
//! When the system enters HI mode the processor is sped up by a factor
//! `s`; HI mode is schedulable under EDF iff the total HI-mode demand
//! never exceeds the supplied service: `Σ_i DBF_HI(τ_i, Δ) ≤ s·Δ` for all
//! `Δ ≥ 0`. The minimum such factor is therefore
//!
//! ```text
//! s_min = max_{Δ ≥ 0}  Σ_i DBF_HI(τ_i, Δ) / Δ        (eq. (8))
//! ```
//!
//! with `s_min = +∞` when demand is positive at `Δ = 0` (which happens
//! exactly when some HI task's deadline is not shortened in LO mode —
//! see the discussion following eq. (8)).

use std::fmt;

use rbs_model::TaskSet;
use rbs_timebase::Rational;

use crate::dbf::hi_profile;
use crate::demand::SupRatio;
use crate::{AnalysisError, AnalysisLimits};

/// The minimum speedup factor, possibly infinite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpeedupBound {
    /// A finite minimum speedup. Values below 1 mean the system may even
    /// *slow down* in HI mode (Example 1 with service degradation).
    Finite(Rational),
    /// No finite speedup guarantees HI-mode schedulability
    /// (`s_min = +∞`).
    Unbounded,
}

impl SpeedupBound {
    /// The finite value, if any.
    #[must_use]
    pub fn as_finite(&self) -> Option<Rational> {
        match self {
            SpeedupBound::Finite(v) => Some(*v),
            SpeedupBound::Unbounded => None,
        }
    }

    /// Whether a given speed `s` satisfies this bound (`s ≥ s_min`).
    #[must_use]
    pub fn is_met_by(&self, speed: Rational) -> bool {
        match self {
            SpeedupBound::Finite(v) => speed >= *v,
            SpeedupBound::Unbounded => false,
        }
    }
}

impl fmt::Display for SpeedupBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpeedupBound::Finite(v) => write!(f, "{v}"),
            SpeedupBound::Unbounded => f.write_str("+inf"),
        }
    }
}

/// The result of a Theorem 2 analysis.
///
/// Besides the bound itself the analysis exposes the witness interval
/// length attaining the supremum — useful for plotting Fig. 1-style
/// demand diagrams and for debugging unschedulable sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpeedupAnalysis {
    bound: SpeedupBound,
    witness: Option<Rational>,
}

impl SpeedupAnalysis {
    /// Wraps a raw sup-ratio query result.
    pub(crate) fn from_sup_ratio(sup: SupRatio) -> SpeedupAnalysis {
        match sup {
            SupRatio::Unbounded => SpeedupAnalysis {
                bound: SpeedupBound::Unbounded,
                witness: None,
            },
            SupRatio::Finite { value, witness } => SpeedupAnalysis {
                bound: SpeedupBound::Finite(value),
                witness,
            },
        }
    }

    /// The minimum speedup factor `s_min`.
    #[must_use]
    pub fn bound(&self) -> SpeedupBound {
        self.bound
    }

    /// An interval length `Δ` at which the demand/supply ratio attains
    /// `s_min` (`None` for unbounded or zero-demand results).
    #[must_use]
    pub fn witness(&self) -> Option<Rational> {
        self.witness
    }
}

/// Computes Theorem 2's minimum HI-mode speedup `s_min` exactly.
///
/// # Errors
///
/// Propagates [`AnalysisError::BreakpointBudgetExhausted`] on pathological
/// instances (see [`AnalysisLimits`]).
///
/// # Examples
///
/// Example 1 of the paper: degrading τ2's service to `D(HI) = 15,
/// T(HI) = 20` lowers the reconstructed Table I set's requirement below 1
/// (the system may slow down in HI mode):
///
/// ```
/// use rbs_core::speedup::{minimum_speedup, SpeedupBound};
/// use rbs_core::AnalysisLimits;
/// use rbs_model::{Criticality, Task, TaskSet};
/// use rbs_timebase::Rational;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let set = TaskSet::new(vec![
///     Task::builder("tau1", Criticality::Hi)
///         .period(Rational::integer(5))
///         .deadline_lo(Rational::integer(2))
///         .deadline_hi(Rational::integer(5))
///         .wcet_lo(Rational::integer(1))
///         .wcet_hi(Rational::integer(2))
///         .build()?,
///     Task::builder("tau2", Criticality::Lo)
///         .period(Rational::integer(10))
///         .deadline(Rational::integer(10))
///         .period_hi(Rational::integer(20))
///         .deadline_hi(Rational::integer(15))
///         .wcet(Rational::integer(3))
///         .build()?,
/// ]);
/// let s_min = minimum_speedup(&set, &AnalysisLimits::default())?
///     .bound()
///     .as_finite()
///     .expect("finite");
/// assert!(s_min < Rational::ONE);
/// # Ok(())
/// # }
/// ```
pub fn minimum_speedup(
    set: &TaskSet,
    limits: &AnalysisLimits,
) -> Result<SpeedupAnalysis, AnalysisError> {
    let profile = hi_profile(set);
    Ok(SpeedupAnalysis::from_sup_ratio(profile.sup_ratio(limits)?))
}

/// Whether HI mode is EDF-schedulable at speed `s` (i.e. `s ≥ s_min`).
///
/// Decided directly via the demand test `Σ DBF_HI(Δ) ≤ s·Δ` — much
/// cheaper than computing `s_min` when only the verdict is needed, since
/// the decision walk stops at the `burst/(s − rate)` horizon.
///
/// # Errors
///
/// * [`AnalysisError::NonPositiveSpeed`] if `s ≤ 0`.
/// * Budget errors as for [`minimum_speedup`].
pub fn is_hi_schedulable(
    set: &TaskSet,
    speed: Rational,
    limits: &AnalysisLimits,
) -> Result<bool, AnalysisError> {
    hi_profile(set).fits(speed, limits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbs_model::{Criticality, Task};

    fn int(v: i128) -> Rational {
        Rational::integer(v)
    }

    fn rat(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    fn table1() -> TaskSet {
        TaskSet::new(vec![
            Task::builder("tau1", Criticality::Hi)
                .period(int(5))
                .deadline_lo(int(2))
                .deadline_hi(int(5))
                .wcet_lo(int(1))
                .wcet_hi(int(2))
                .build()
                .expect("valid"),
            Task::builder("tau2", Criticality::Lo)
                .period(int(10))
                .deadline(int(10))
                .wcet(int(3))
                .build()
                .expect("valid"),
        ])
    }

    fn table1_degraded() -> TaskSet {
        TaskSet::new(vec![
            table1()[0].clone(),
            Task::builder("tau2", Criticality::Lo)
                .period(int(10))
                .deadline(int(10))
                .period_hi(int(20))
                .deadline_hi(int(15))
                .wcet(int(3))
                .build()
                .expect("valid"),
        ])
    }

    #[test]
    fn example1_no_degradation_requires_four_thirds() {
        let analysis = minimum_speedup(&table1(), &AnalysisLimits::default()).expect("ok");
        assert_eq!(analysis.bound(), SpeedupBound::Finite(rat(4, 3)));
        assert_eq!(analysis.witness(), Some(int(3)));
    }

    #[test]
    fn example1_with_degradation_allows_slowdown() {
        let analysis = minimum_speedup(&table1_degraded(), &AnalysisLimits::default()).expect("ok");
        let s_min = analysis.bound().as_finite().expect("finite");
        // The paper reports ≈0.94 for its (lost) Table I numbers; the
        // reconstruction preserves the qualitative claim s_min < 1.
        assert!(s_min < Rational::ONE, "s_min = {s_min}");
        assert!(s_min > Rational::ZERO);
    }

    #[test]
    fn unprepared_hi_deadline_means_unbounded_speedup() {
        // D(LO) = D(HI): demand at Δ=0 is C(HI) − C(LO) > 0.
        let set = TaskSet::new(vec![Task::builder("t", Criticality::Hi)
            .period(int(5))
            .deadline(int(5))
            .wcet_lo(int(1))
            .wcet_hi(int(2))
            .build()
            .expect("valid")]);
        let analysis = minimum_speedup(&set, &AnalysisLimits::default()).expect("ok");
        assert_eq!(analysis.bound(), SpeedupBound::Unbounded);
        assert_eq!(analysis.witness(), None);
        assert!(!analysis.bound().is_met_by(int(1_000_000)));
        assert!(!is_hi_schedulable(&set, int(1_000_000), &AnalysisLimits::default()).expect("ok"));
    }

    #[test]
    fn terminating_lo_tasks_lowers_the_requirement() {
        let base = minimum_speedup(&table1(), &AnalysisLimits::default())
            .expect("ok")
            .bound()
            .as_finite()
            .expect("finite");
        let terminated = table1().with_lo_terminated().expect("valid");
        let term = minimum_speedup(&terminated, &AnalysisLimits::default())
            .expect("ok")
            .bound()
            .as_finite()
            .expect("finite");
        assert!(term < base, "{term} !< {base}");
    }

    #[test]
    fn schedulability_is_monotone_in_speed() {
        let set = table1();
        let limits = AnalysisLimits::default();
        assert!(!is_hi_schedulable(&set, Rational::ONE, &limits).expect("ok"));
        assert!(is_hi_schedulable(&set, rat(4, 3), &limits).expect("ok"));
        assert!(is_hi_schedulable(&set, int(2), &limits).expect("ok"));
    }

    #[test]
    fn non_positive_speed_is_rejected() {
        assert_eq!(
            is_hi_schedulable(&table1(), Rational::ZERO, &AnalysisLimits::default()),
            Err(AnalysisError::NonPositiveSpeed)
        );
    }

    #[test]
    fn empty_set_needs_no_speedup() {
        let analysis = minimum_speedup(&TaskSet::empty(), &AnalysisLimits::default()).expect("ok");
        assert_eq!(analysis.bound(), SpeedupBound::Finite(Rational::ZERO));
        assert_eq!(analysis.witness(), None);
    }

    #[test]
    fn bound_display() {
        assert_eq!(SpeedupBound::Finite(rat(4, 3)).to_string(), "4/3");
        assert_eq!(SpeedupBound::Unbounded.to_string(), "+inf");
    }

    #[test]
    fn witness_attains_the_bound() {
        let set = table1();
        let analysis = minimum_speedup(&set, &AnalysisLimits::default()).expect("ok");
        let witness = analysis.witness().expect("witness");
        let value = analysis.bound().as_finite().expect("finite");
        assert_eq!(crate::dbf::total_dbf_hi(&set, witness) / witness, value);
    }
}
