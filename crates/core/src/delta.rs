//! Incremental task-set deltas against a cached analysis.
//!
//! The paper's analysis is a whole-set fixed point, but an online
//! admission monitor mutates its set one task at a time: admit a task,
//! evict one, replace one. Rebuilding the three demand profiles
//! (`DBF_LO`, `DBF_HI`, `ADB_HI`) from scratch for every delta throws
//! away almost all of the construction work — each profile holds one
//! component per (HI-active) task, in declaration order, and a
//! single-task delta touches exactly one component per profile.
//!
//! [`DeltaAnalysis`] owns the task set and its three profiles across
//! deltas and splices components instead of rebuilding:
//!
//! * **admit** appends. The old component list is a prefix of the new
//!   one, so every left-to-right fold of a fresh build — the timebase
//!   lcm, the rate/envelope sums, the narrow-lane headroom aggregates —
//!   extends the cached fold result by one step, in O(1).
//! * **evict / replace** splice at the task's component index and
//!   refold the profile aggregates over the per-component contributions
//!   in component order — the same exact sums as a fresh build, without
//!   re-deriving any untouched component's scaled form.
//!
//! Bit-identity with a fresh [`Analysis`] of the resulting set is the
//! contract, overflow behavior included: an in-place splice is only
//! kept when the patched profile stays on the timebase a fresh build
//! would pick (otherwise the overflow-bail points of the integer walks
//! could move), and any splice that cannot prove this rebuilds that
//! profile exactly as [`crate::demand::DemandProfile::new`] would.
//! `tests/delta_differential.rs` pins results *and* examined-walk
//! counts after arbitrary admit/evict/replace churn.
//!
//! The reset-frontier staircase is invalidated by every delta: the
//! frontier is an exact record of first-fit times, and any admitted or
//! evicted demand moves those times in a way only a re-walk can
//! reproduce bit-identically — and a fresh context starts frontier-less
//! anyway, so whole-staircase invalidation is precisely what keeps the
//! avoided-walk accounting aligned with a fresh analysis.
//!
//! # Examples
//!
//! ```
//! use rbs_core::{DeltaAnalysis, AnalysisLimits};
//! use rbs_model::{Criticality, Task, TaskSet};
//! use rbs_timebase::Rational;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let base = TaskSet::new(vec![Task::builder("tau1", Criticality::Hi)
//!     .period(Rational::integer(5))
//!     .deadline_lo(Rational::integer(2))
//!     .deadline_hi(Rational::integer(5))
//!     .wcet_lo(Rational::integer(1))
//!     .wcet_hi(Rational::integer(2))
//!     .build()?]);
//! let mut delta = DeltaAnalysis::new(base, &AnalysisLimits::default());
//! let before = delta.minimum_speedup()?;
//! delta.admit(
//!     Task::builder("tau2", Criticality::Lo)
//!         .period(Rational::integer(10))
//!         .deadline(Rational::integer(10))
//!         .wcet(Rational::integer(3))
//!         .build()?,
//! )?;
//! let after = delta.minimum_speedup()?;
//! assert_ne!(after, before); // tau2's demand moved the supremum
//! delta.evict("tau2")?;
//! assert_eq!(delta.minimum_speedup()?, before);
//! # Ok(())
//! # }
//! ```

use std::error::Error;
use std::fmt;

use rbs_model::{Mode, Task, TaskSet};
use rbs_timebase::Rational;

use crate::adb::{arrival_component_of, hi_arrival_profile};
use crate::analysis::{Analysis, WalkCounts};
use crate::dbf::{hi_component_of, hi_profile, lo_component_of, lo_profile};
use crate::demand::{DemandProfile, PeriodicDemand, ResetFrontier};
use crate::resetting::ResettingAnalysis;
use crate::speedup::SpeedupAnalysis;
use crate::{AnalysisError, AnalysisLimits};

thread_local! {
    /// One-shot fault armed by [`DeltaAnalysis::arm_mid_splice_fault`]:
    /// the next admit on this thread panics between its profile splices.
    static MID_SPLICE_FAULT: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    /// One-shot fault armed by [`DeltaAnalysis::arm_mid_repair_fault`]:
    /// the next delta on this thread panics as it enters frontier repair.
    static MID_REPAIR_FAULT: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Panics (once) if a mid-splice fault is armed on this thread — the
/// injection point sits after the set mutation and the `DBF_LO` splice
/// but before the `DBF_HI`/`ADB_HI` splices, the worst spot a real
/// splice could bail: set and profiles disagree until the dirty guard
/// heals them.
fn mid_splice_fault_check() {
    if MID_SPLICE_FAULT.with(std::cell::Cell::get) {
        MID_SPLICE_FAULT.with(|flag| flag.set(false));
        panic!("injected fault: admit bailed mid-splice");
    }
}

/// Panics (once) if a mid-repair fault is armed on this thread — the
/// injection point sits at the top of the frontier repair, after every
/// profile splice has landed but before the dirty guard clears: the set
/// and profiles already agree, yet an unwind here must still leave the
/// context rebuildable (the heal rebuild discards the stale staircase,
/// so the next resetting-time query simply re-walks).
fn mid_repair_fault_check() {
    if MID_REPAIR_FAULT.with(std::cell::Cell::get) {
        MID_REPAIR_FAULT.with(|flag| flag.set(false));
        panic!("injected fault: delta bailed mid-repair");
    }
}

/// The earliest instant at which any of `changed` contributes demand —
/// the truncation bound for a frontier repair ([`ResetFrontier`] keeps
/// records whose segments end at or below it). `None` when no changed
/// component ever contributes (empty delta on this profile, or
/// identically-zero components): the whole staircase survives.
fn frontier_cut<'c>(changed: impl IntoIterator<Item = &'c PeriodicDemand>) -> Option<Rational> {
    let mut cut = None;
    for c in changed {
        cut = merge_cut(cut, c.first_positive_instant());
    }
    cut
}

/// Combines two truncation bounds: `None` means "never diverges"
/// (+∞), so the merge is the finite minimum.
fn merge_cut(a: Option<Rational>, b: Option<Rational>) -> Option<Rational> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (cut, None) | (None, cut) => cut,
    }
}

/// A one-bit name fingerprint for [`DeltaAnalysis::apply_batch`]'s
/// resolver prefilter: cheap enough to compute per resident (four byte
/// peeks, no full-string hashing), selective enough that residents a
/// batch never names almost always miss the combined mask. A collision
/// only costs the string comparisons the prefilter would have skipped.
fn name_fingerprint(name: &str) -> u64 {
    let b = name.as_bytes();
    let mix = (b.len() as u64)
        ^ (u64::from(b.first().copied().unwrap_or(0)) << 8)
        ^ (u64::from(b.last().copied().unwrap_or(0)) << 16)
        ^ (u64::from(b.get(b.len() / 2).copied().unwrap_or(0)) << 24);
    1 << (mix.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58)
}

/// A set mutation a [`DeltaAnalysis`] can apply — the in-memory form of
/// the service's `{"delta": {"ops": [...]}}` wire entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaOp {
    /// Admit a new task (appended in declaration order).
    Admit(Task),
    /// Evict the task with this name.
    Evict(String),
    /// Replace the task with this name in place (the replacement may be
    /// renamed).
    Replace {
        /// Name of the task being replaced.
        id: String,
        /// Its replacement.
        task: Task,
    },
}

/// Why a delta op could not be applied. The set (and every profile) is
/// left exactly as it was.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DeltaError {
    /// `evict`/`replace` named a task the set does not contain.
    UnknownTask {
        /// The unmatched name.
        id: String,
    },
    /// `admit` (or a renaming `replace`) would duplicate a task name —
    /// names are the delta engine's task ids, so they must stay unique.
    DuplicateTask {
        /// The already-present name.
        id: String,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::UnknownTask { id } => write!(f, "no task named `{id}` in the base set"),
            DeltaError::DuplicateTask { id } => {
                write!(f, "a task named `{id}` is already in the set")
            }
        }
    }
}

impl Error for DeltaError {}

impl DeltaOp {
    /// Applies this op to a bare task set — the same validation and set
    /// mutation as [`DeltaAnalysis::apply`], without any profile work.
    /// Lets a front-end compute the resulting set (e.g. to key a report
    /// cache on it) before committing to the full incremental analysis.
    ///
    /// # Errors
    ///
    /// As for [`DeltaAnalysis::apply`]; the set is unchanged on error.
    pub fn apply_to(&self, set: &mut TaskSet) -> Result<(), DeltaError> {
        match self {
            DeltaOp::Admit(task) => {
                if set.by_name(task.name()).is_some() {
                    return Err(DeltaError::DuplicateTask {
                        id: task.name().to_owned(),
                    });
                }
                set.push(task.clone());
            }
            DeltaOp::Evict(id) => {
                let Some(pos) = set.position(id) else {
                    return Err(DeltaError::UnknownTask { id: id.clone() });
                };
                set.remove(pos);
            }
            DeltaOp::Replace { id, task } => {
                let Some(pos) = set.position(id) else {
                    return Err(DeltaError::UnknownTask { id: id.clone() });
                };
                if task.name() != id && set.by_name(task.name()).is_some() {
                    return Err(DeltaError::DuplicateTask {
                        id: task.name().to_owned(),
                    });
                }
                set.replace(pos, task.clone());
            }
        }
        Ok(())
    }
}

/// A resident analysis context that survives task-set mutations.
///
/// Owns the set and its three demand profiles; [`DeltaAnalysis::admit`],
/// [`DeltaAnalysis::evict`] and [`DeltaAnalysis::replace`] splice the
/// affected components in place (see the module docs for the
/// bit-identity argument), and every query method answers exactly what
/// a fresh [`Analysis`] of the current set would.
#[derive(Debug)]
pub struct DeltaAnalysis {
    limits: AnalysisLimits,
    set: TaskSet,
    lo: DemandProfile,
    hi: DemandProfile,
    arrival: DemandProfile,
    /// The resetting-time staircase carried between queries (exactly
    /// [`Analysis`]' cache); dropped by every delta op.
    frontier: Option<ResetFrontier>,
    /// Set while the profiles are lent to a query session *or* while a
    /// delta op is mid-splice, and cleared on orderly completion; a panic
    /// in either window leaves it set, and the next use rebuilds the
    /// profiles from the (never-lent, mutated-first) set.
    dirty: bool,
    integer_walks: u64,
    exact_walks: u64,
    pruned_walks: u64,
    avoided_walks: u64,
    lockstep_walks: u64,
    reused_components: u64,
    rebuilt_components: u64,
    patched_profiles: u64,
    repaired_frontiers: u64,
    kept_records: u64,
    rewalked_records: u64,
}

impl DeltaAnalysis {
    /// Builds the resident context: three fresh profiles, counted as
    /// rebuilt — exactly the components a fresh [`Analysis`] constructs.
    #[must_use]
    pub fn new(set: TaskSet, limits: &AnalysisLimits) -> DeltaAnalysis {
        let lo = lo_profile(&set);
        let hi = hi_profile(&set);
        let arrival = hi_arrival_profile(&set);
        let rebuilt =
            (lo.components().len() + hi.components().len() + arrival.components().len()) as u64;
        DeltaAnalysis {
            limits: *limits,
            set,
            lo,
            hi,
            arrival,
            frontier: None,
            dirty: false,
            integer_walks: 0,
            exact_walks: 0,
            pruned_walks: 0,
            avoided_walks: 0,
            lockstep_walks: 0,
            reused_components: 0,
            rebuilt_components: rebuilt,
            patched_profiles: 0,
            repaired_frontiers: 0,
            kept_records: 0,
            rewalked_records: 0,
        }
    }

    /// The current task set (base set with every applied delta).
    #[must_use]
    pub fn set(&self) -> &TaskSet {
        &self.set
    }

    /// Consumes the context, returning the current task set.
    #[must_use]
    pub fn into_set(self) -> TaskSet {
        self.set
    }

    /// The breakpoint budget every query runs under.
    #[must_use]
    pub fn limits(&self) -> &AnalysisLimits {
        &self.limits
    }

    /// Cumulative walk/coverage counters across all deltas and queries.
    /// `patched` counts profile updates applied by an in-place splice;
    /// `reused_components`/`rebuilt_components` partition each delta's
    /// component work exactly as the sweep engine's counters do.
    #[must_use]
    pub fn walk_counts(&self) -> WalkCounts {
        WalkCounts {
            integer: self.integer_walks,
            exact: self.exact_walks,
            pruned: self.pruned_walks,
            avoided: self.avoided_walks,
            reused_components: self.reused_components,
            rebuilt_components: self.rebuilt_components,
            lockstep: self.lockstep_walks,
            patched: self.patched_profiles,
            repaired: self.repaired_frontiers,
            kept: self.kept_records,
            rewalked: self.rewalked_records,
        }
    }

    /// Arms a one-shot fault on the calling thread: the next
    /// [`DeltaAnalysis::admit`] panics after the set mutation and the
    /// `DBF_LO` splice but before the `DBF_HI`/`ADB_HI` splices. This is
    /// the fault-injection hook behind the service's mid-splice poison
    /// pill; the dirty guard must make the bailed context heal on its
    /// next use (an evict of the half-admitted task restores the
    /// original set bit-identically).
    pub fn arm_mid_splice_fault() {
        MID_SPLICE_FAULT.with(|flag| flag.set(true));
    }

    /// Arms a one-shot fault on the calling thread: the next delta op
    /// panics as it enters frontier repair — after all profile splices,
    /// before the dirty guard clears. This is the fault-injection hook
    /// behind the service's mid-repair poison pill; it proves a panic
    /// inside the repair window leaves the context rebuildable and at
    /// worst costs the staircase (the next `Δ_R` query re-walks).
    pub fn arm_mid_repair_fault() {
        MID_REPAIR_FAULT.with(|flag| flag.set(true));
    }

    /// Test hook: unconditionally drops the resetting-time staircase,
    /// exactly what every delta op did before frontier repair existed.
    /// The frontier-repair differential suite churns a shadow context
    /// through this whole-invalidation path to pin that repair changes
    /// walk *counts* only, never answers.
    #[doc(hidden)]
    pub fn invalidate_frontier(&mut self) {
        if let Some(frontier) = self.frontier.take() {
            self.rewalked_records += frontier.len() as u64;
        }
    }

    /// Applies one [`DeltaOp`].
    ///
    /// # Errors
    ///
    /// As for the named op; the set and profiles are unchanged on error.
    pub fn apply(&mut self, op: DeltaOp) -> Result<(), DeltaError> {
        match op {
            DeltaOp::Admit(task) => self.admit(task),
            DeltaOp::Evict(id) => self.evict(&id).map(|_| ()),
            DeltaOp::Replace { id, task } => self.replace(&id, task).map(|_| ()),
        }
    }

    /// Applies a multi-op delta as **one composite splice**: the ops are
    /// validated atomically against the simulated final set, per-name
    /// chains are canonicalized (an admit later evicted vanishes, a
    /// replace chain collapses to its last task), and each profile then
    /// pays the splice bookkeeping — aggregate refold, overflow
    /// certificate, narrow-lane update, frontier repair — once for the
    /// whole batch instead of once per op.
    ///
    /// The resulting set (and every query answer) is bit-identical to
    /// applying the ops one by one: survivors keep their relative order,
    /// surviving admits append in admit order, and a replace keeps its
    /// task's position. An evict-then-readmit of the same name is a
    /// removal plus an append (the readmitted task moves to the end),
    /// exactly as the sequential ops would leave it.
    ///
    /// # Errors
    ///
    /// The error of the first op that would fail when applying the ops
    /// in order; the set and profiles are unchanged on error.
    pub fn apply_batch(&mut self, ops: Vec<DeltaOp>) -> Result<(), DeltaError> {
        // Slot simulation, O(k) in the batch size: only the slots the
        // ops touch are tracked (a map over every resident name would
        // make a 2-op delta pay O(set) setup). A name resolves to a
        // pending admit, a touched original slot's *current* name, or —
        // failing both — an untouched original slot.
        enum SlotRef {
            Orig(usize),
            New(usize),
        }
        enum OrigState {
            Removed,
            Replaced(Box<Task>),
        }
        let mut touched: Vec<(usize, OrigState)> = Vec::new();
        let mut new_tasks: Vec<Option<Task>> = Vec::new();
        // Each op resolves up to two names against the resident set. A
        // full name → position map would pay O(set) hashing and
        // allocation per batch, and per-op linear scans pay O(ops·set),
        // so base positions come from one fingerprint-filtered pass:
        // the ops' names fold into a 64-bit mask of one-bit name
        // fingerprints, and a single scan of the set string-compares
        // only the residents whose fingerprint bit is set — O(set)
        // byte peeks plus O(ops²) real work.
        let mut op_names: Vec<&str> = Vec::with_capacity(ops.len() * 2);
        for op in &ops {
            match op {
                DeltaOp::Admit(task) => op_names.push(task.name()),
                DeltaOp::Evict(id) => op_names.push(id),
                DeltaOp::Replace { id, task } => {
                    op_names.push(id);
                    op_names.push(task.name());
                }
            }
        }
        let mask: u64 = op_names
            .iter()
            .fold(0, |m, name| m | name_fingerprint(name));
        let mut positions: Vec<(&str, usize)> = Vec::with_capacity(op_names.len());
        for (i, t) in self.set.iter().enumerate() {
            let name = t.name();
            if mask & name_fingerprint(name) != 0 && op_names.contains(&name) {
                positions.push((name, i));
            }
        }
        let resolve = |touched: &[(usize, OrigState)],
                       new_tasks: &[Option<Task>],
                       id: &str|
         -> Option<SlotRef> {
            for (j, slot) in new_tasks.iter().enumerate() {
                if slot.as_ref().is_some_and(|t| t.name() == id) {
                    return Some(SlotRef::New(j));
                }
            }
            for (i, state) in touched {
                // A removed slot no longer owns a name; a replaced slot
                // answers to its replacement's (possibly new) name.
                if let OrigState::Replaced(t) = state {
                    if t.name() == id {
                        return Some(SlotRef::Orig(*i));
                    }
                }
            }
            let i = positions
                .iter()
                .find_map(|&(name, i)| (name == id).then_some(i))?;
            touched
                .iter()
                .all(|(p, _)| *p != i)
                .then_some(SlotRef::Orig(i))
        };
        let touch = |touched: &mut Vec<(usize, OrigState)>, i: usize, state: OrigState| {
            match touched.iter_mut().find(|(p, _)| *p == i) {
                Some(entry) => entry.1 = state,
                None => touched.push((i, state)),
            }
        };
        for op in &ops {
            match op {
                DeltaOp::Admit(task) => {
                    if resolve(&touched, &new_tasks, task.name()).is_some() {
                        return Err(DeltaError::DuplicateTask {
                            id: task.name().to_owned(),
                        });
                    }
                    new_tasks.push(Some(task.clone()));
                }
                DeltaOp::Evict(id) => {
                    match resolve(&touched, &new_tasks, id) {
                        None => return Err(DeltaError::UnknownTask { id: id.clone() }),
                        Some(SlotRef::Orig(i)) => touch(&mut touched, i, OrigState::Removed),
                        Some(SlotRef::New(j)) => new_tasks[j] = None,
                    }
                }
                DeltaOp::Replace { id, task } => {
                    let Some(slot) = resolve(&touched, &new_tasks, id) else {
                        return Err(DeltaError::UnknownTask { id: id.clone() });
                    };
                    if task.name() != id
                        && resolve(&touched, &new_tasks, task.name()).is_some()
                    {
                        return Err(DeltaError::DuplicateTask {
                            id: task.name().to_owned(),
                        });
                    }
                    match slot {
                        SlotRef::Orig(i) => {
                            touch(&mut touched, i, OrigState::Replaced(Box::new(task.clone())));
                        }
                        SlotRef::New(j) => new_tasks[j] = Some(task.clone()),
                    }
                }
            }
        }

        // Canonical plan: in-place replacements, removals (ascending),
        // and surviving admits, all against the pre-edit set.
        touched.sort_unstable_by_key(|(i, _)| *i);
        let mut replaced: Vec<(usize, Task)> = Vec::new();
        let mut removed: Vec<usize> = Vec::new();
        for (i, state) in touched {
            match state {
                OrigState::Removed => removed.push(i),
                OrigState::Replaced(task) => replaced.push((i, *task)),
            }
        }
        let admits: Vec<Task> = new_tasks.into_iter().flatten().collect();
        if replaced.is_empty() && removed.is_empty() && admits.is_empty() {
            // Fully cancelled (or empty) batch: the final set is the
            // current set, so there is nothing to splice or invalidate.
            return Ok(());
        }

        // A replace that turns a HI-terminated task HI-active inserts
        // components mid-profile — rarer than every other shape and not
        // worth a batched insert path. The canonical plan cannot stand
        // in for the op sequence here (rename chains can be impossible
        // to replay pairwise), so replay the original, validated ops one
        // by one — none of them can fail.
        let flips_active = replaced.iter().any(|(pos, task)| {
            self.set[*pos].params(Mode::Hi).is_none() && hi_component_of(task).is_some()
        });
        if flips_active {
            for op in ops {
                self.apply(op)?;
            }
            return Ok(());
        }

        self.ensure_profiles();
        // Per-profile splice plans, on pre-edit positions/ranks.
        let mut lo_patched = Vec::with_capacity(replaced.len());
        let mut hi_patched = Vec::new();
        let mut arrival_patched = Vec::new();
        let mut hi_removed = Vec::new();
        for &(pos, ref task) in &replaced {
            lo_patched.push((pos, lo_component_of(task)));
            if self.set[pos].params(Mode::Hi).is_some() {
                let rank = self.hi_rank(pos);
                match (hi_component_of(task), arrival_component_of(task)) {
                    (Some(hi_c), Some(arrival_c)) => {
                        hi_patched.push((rank, hi_c));
                        arrival_patched.push((rank, arrival_c));
                    }
                    (None, None) => hi_removed.push(rank),
                    _ => unreachable!("hi/arrival activity always agrees"),
                }
            }
        }
        for &pos in &removed {
            if self.set[pos].params(Mode::Hi).is_some() {
                hi_removed.push(self.hi_rank(pos));
            }
        }
        hi_removed.sort_unstable();
        let mut lo_appended = Vec::with_capacity(admits.len());
        let mut hi_appended = Vec::new();
        let mut arrival_appended = Vec::new();
        for task in &admits {
            lo_appended.push(lo_component_of(task));
            if let (Some(hi_c), Some(arrival_c)) =
                (hi_component_of(task), arrival_component_of(task))
            {
                hi_appended.push(hi_c);
                arrival_appended.push(arrival_c);
            }
        }
        let hi_untouched =
            hi_patched.is_empty() && hi_removed.is_empty() && hi_appended.is_empty();
        let cut = {
            let arrival_components = self.arrival.components();
            let mut cut = frontier_cut(
                hi_removed
                    .iter()
                    .map(|&rank| &arrival_components[rank])
                    .chain(arrival_appended.iter()),
            );
            // Patched (replaced-in-place) components diverge only where
            // old and new actually disagree, exactly as in the single
            // replace path.
            for &(rank, ref new_c) in &arrival_patched {
                cut = merge_cut(cut, arrival_components[rank].divergence_bound(new_c));
            }
            cut
        };

        // Mid-splice guard, as for the single-op paths: the set mutates
        // first; a panic in a profile splice leaves the dirty flag set
        // and the next use rebuilds from the set.
        self.dirty = true;
        for (pos, task) in replaced {
            self.set.replace(pos, task);
        }
        for &pos in removed.iter().rev() {
            self.set.remove(pos);
        }
        for task in admits {
            self.set.push(task);
        }
        let lo_changed = (lo_patched.len() + lo_appended.len()) as u64;
        let in_place = self.lo.splice_components(&lo_patched, &removed, lo_appended);
        self.note_touched(Which::Lo, in_place, lo_changed);
        mid_splice_fault_check();
        if hi_untouched {
            self.note_untouched(Which::Hi);
            self.note_untouched(Which::Arrival);
        } else {
            let hi_changed = (hi_patched.len() + hi_appended.len()) as u64;
            let in_place = self.hi.splice_components(&hi_patched, &hi_removed, hi_appended);
            self.note_touched(Which::Hi, in_place, hi_changed);
            let in_place =
                self.arrival
                    .splice_components(&arrival_patched, &hi_removed, arrival_appended);
            self.note_touched(Which::Arrival, in_place, hi_changed);
        }
        self.repair_frontier(cut);
        self.dirty = false;
        Ok(())
    }

    /// Admits `task` (appended in declaration order), splicing its
    /// demand components onto the ends of the profiles — O(1) per
    /// profile when the task fits the resident timebase.
    ///
    /// # Errors
    ///
    /// [`DeltaError::DuplicateTask`] when a task of that name exists.
    pub fn admit(&mut self, task: Task) -> Result<(), DeltaError> {
        if self.set.by_name(task.name()).is_some() {
            return Err(DeltaError::DuplicateTask {
                id: task.name().to_owned(),
            });
        }
        self.ensure_profiles();
        let lo_c = lo_component_of(&task);
        let hi_c = hi_component_of(&task);
        let arrival_c = arrival_component_of(&task);
        let hi_active = hi_c.is_some();
        let cut = frontier_cut(arrival_c.as_ref());
        // Mid-splice guard: the set mutates before the three profile
        // splices, so a panic anywhere in between (overflow in a splice,
        // an injected fault) must not strand profiles that disagree with
        // the set. With the flag raised, the next use — including the
        // rollback evict — rebuilds all three profiles from the set.
        self.dirty = true;
        self.set.push(task);
        let in_place = self.lo.append_component(lo_c);
        self.note_touched(Which::Lo, in_place, 1);
        mid_splice_fault_check();
        if let (Some(hi_c), Some(arrival_c)) = (hi_c, arrival_c) {
            let in_place = self.hi.append_component(hi_c);
            self.note_touched(Which::Hi, in_place, 1);
            let in_place = self.arrival.append_component(arrival_c);
            self.note_touched(Which::Arrival, in_place, 1);
        } else {
            debug_assert!(!hi_active, "hi/arrival activity always agrees");
            self.note_untouched(Which::Hi);
            self.note_untouched(Which::Arrival);
        }
        self.repair_frontier(cut);
        self.dirty = false;
        Ok(())
    }

    /// Evicts the task named `id`, returning it. The surviving
    /// components keep their scaled forms unless the evicted task
    /// carried the profile timebase (its denominators were the lcm).
    ///
    /// # Errors
    ///
    /// [`DeltaError::UnknownTask`] when no task has that name.
    pub fn evict(&mut self, id: &str) -> Result<Task, DeltaError> {
        let Some(pos) = self.set.position(id) else {
            return Err(DeltaError::UnknownTask { id: id.to_owned() });
        };
        self.ensure_profiles();
        let rank = self.hi_rank(pos);
        let was_active = self.set[pos].params(Mode::Hi).is_some();
        let cut = frontier_cut(was_active.then(|| &self.arrival.components()[rank]));
        self.dirty = true;
        let task = self.set.remove(pos);
        let in_place = self.lo.remove_component(pos);
        self.note_touched(Which::Lo, in_place, 0);
        if was_active {
            let in_place = self.hi.remove_component(rank);
            self.note_touched(Which::Hi, in_place, 0);
            let in_place = self.arrival.remove_component(rank);
            self.note_touched(Which::Arrival, in_place, 0);
        } else {
            self.note_untouched(Which::Hi);
            self.note_untouched(Which::Arrival);
        }
        self.repair_frontier(cut);
        self.dirty = false;
        Ok(task)
    }

    /// Replaces the task named `id` with `task` in place (the
    /// replacement may change name, parameters, and even HI-mode
    /// activity — a termination change inserts or removes the
    /// `DBF_HI`/`ADB_HI` components at the task's rank). Returns the
    /// replaced task.
    ///
    /// # Errors
    ///
    /// [`DeltaError::UnknownTask`] when no task is named `id`;
    /// [`DeltaError::DuplicateTask`] when renaming onto an existing
    /// name.
    pub fn replace(&mut self, id: &str, task: Task) -> Result<Task, DeltaError> {
        let Some(pos) = self.set.position(id) else {
            return Err(DeltaError::UnknownTask { id: id.to_owned() });
        };
        if task.name() != id && self.set.by_name(task.name()).is_some() {
            return Err(DeltaError::DuplicateTask {
                id: task.name().to_owned(),
            });
        }
        self.ensure_profiles();
        let rank = self.hi_rank(pos);
        let old_active = self.set[pos].params(Mode::Hi).is_some();
        let lo_c = lo_component_of(&task);
        let hi_c = hi_component_of(&task);
        let arrival_c = arrival_component_of(&task);
        let cut = match (old_active, &arrival_c) {
            // An in-place swap diverges only where old and new arrival
            // curves actually disagree — a replace that keeps the
            // `ADB_HI` component (rename, LO-deadline tweak past the
            // shared flat prefix) keeps more of the staircase than
            // treating it as an evict + admit would.
            (true, Some(new_c)) => self.arrival.components()[rank].divergence_bound(new_c),
            (true, None) => frontier_cut(Some(&self.arrival.components()[rank])),
            (false, _) => frontier_cut(arrival_c.as_ref()),
        };
        self.dirty = true;
        let old = self.set.replace(pos, task);
        let in_place = self.lo.replace_component(pos, lo_c);
        self.note_touched(Which::Lo, in_place, 1);
        match (old_active, hi_c, arrival_c) {
            (true, Some(hi_c), Some(arrival_c)) => {
                let in_place = self.hi.replace_component(rank, hi_c);
                self.note_touched(Which::Hi, in_place, 1);
                let in_place = self.arrival.replace_component(rank, arrival_c);
                self.note_touched(Which::Arrival, in_place, 1);
            }
            (true, None, None) => {
                let in_place = self.hi.remove_component(rank);
                self.note_touched(Which::Hi, in_place, 0);
                let in_place = self.arrival.remove_component(rank);
                self.note_touched(Which::Arrival, in_place, 0);
            }
            (false, Some(hi_c), Some(arrival_c)) => {
                let in_place = self.hi.insert_component(rank, hi_c);
                self.note_touched(Which::Hi, in_place, 1);
                let in_place = self.arrival.insert_component(rank, arrival_c);
                self.note_touched(Which::Arrival, in_place, 1);
            }
            (false, None, None) => {
                self.note_untouched(Which::Hi);
                self.note_untouched(Which::Arrival);
            }
            _ => unreachable!("hi/arrival activity always agrees"),
        }
        self.repair_frontier(cut);
        self.dirty = false;
        Ok(old)
    }

    /// Lends the set and profiles to `f` as a regular [`Analysis`]
    /// context — the full query surface, lockstep priming included —
    /// and absorbs the session's walk counts when it returns. The
    /// reset frontier persists across sessions (until the next delta),
    /// exactly like repeated queries on one long-lived [`Analysis`].
    pub fn with_analysis<R>(&mut self, f: impl FnOnce(&Analysis<'_>) -> R) -> R {
        self.ensure_profiles();
        let lo = std::mem::take(&mut self.lo);
        let hi = std::mem::take(&mut self.hi);
        let arrival = std::mem::take(&mut self.arrival);
        let frontier = self.frontier.take();
        // If `f` unwinds, the lent profiles are gone with the context;
        // the flag makes the next use rebuild them from the set.
        self.dirty = true;
        let ctx = Analysis::adopt(&self.set, &self.limits, lo, hi, arrival, frontier);
        let result = f(&ctx);
        let (lo, hi, arrival, frontier, counts) = ctx.release();
        self.lo = lo;
        self.hi = hi;
        self.arrival = arrival;
        self.frontier = frontier;
        self.dirty = false;
        self.integer_walks += counts.integer;
        self.exact_walks += counts.exact;
        self.pruned_walks += counts.pruned;
        self.avoided_walks += counts.avoided;
        self.lockstep_walks += counts.lockstep;
        result
    }

    /// Theorem 2's minimum HI-mode speedup (see
    /// [`Analysis::minimum_speedup`]).
    ///
    /// # Errors
    ///
    /// As for [`Analysis::minimum_speedup`].
    pub fn minimum_speedup(&mut self) -> Result<SpeedupAnalysis, AnalysisError> {
        self.with_analysis(|ctx| ctx.minimum_speedup())
    }

    /// Whether HI mode is EDF-schedulable at `speed` (see
    /// [`Analysis::is_hi_schedulable`]).
    ///
    /// # Errors
    ///
    /// As for [`Analysis::is_hi_schedulable`].
    pub fn is_hi_schedulable(&mut self, speed: Rational) -> Result<bool, AnalysisError> {
        self.with_analysis(|ctx| ctx.is_hi_schedulable(speed))
    }

    /// Corollary 5's service resetting time at `speed` (see
    /// [`Analysis::resetting_time`]).
    ///
    /// # Errors
    ///
    /// As for [`Analysis::resetting_time`].
    pub fn resetting_time(&mut self, speed: Rational) -> Result<ResettingAnalysis, AnalysisError> {
        self.with_analysis(|ctx| ctx.resetting_time(speed))
    }

    /// Whether LO mode meets all deadlines at nominal speed (see
    /// [`Analysis::is_lo_schedulable`]).
    ///
    /// # Errors
    ///
    /// As for [`Analysis::is_lo_schedulable`].
    pub fn is_lo_schedulable(&mut self) -> Result<bool, AnalysisError> {
        self.with_analysis(|ctx| ctx.is_lo_schedulable())
    }

    /// The smallest speed at which LO mode is EDF-schedulable (see
    /// [`Analysis::lo_speed_requirement`]).
    ///
    /// # Errors
    ///
    /// As for [`Analysis::lo_speed_requirement`].
    pub fn lo_speed_requirement(&mut self) -> Result<Rational, AnalysisError> {
        self.with_analysis(|ctx| ctx.lo_speed_requirement())
    }

    /// The smallest speed within `tolerance` meeting both HI-mode
    /// schedulability and the resetting-time `budget` (see
    /// [`Analysis::minimal_speed_within_budget`]).
    ///
    /// # Errors
    ///
    /// As for [`Analysis::minimal_speed_within_budget`].
    ///
    /// # Panics
    ///
    /// As for [`Analysis::minimal_speed_within_budget`].
    pub fn minimal_speed_within_budget(
        &mut self,
        budget: Rational,
        max_speed: Rational,
        tolerance: Rational,
    ) -> Result<Option<Rational>, AnalysisError> {
        self.with_analysis(|ctx| ctx.minimal_speed_within_budget(budget, max_speed, tolerance))
    }

    /// Repairs the resetting-time staircase across a delta instead of
    /// dropping it: records whose whole segment lies below `cut` — the
    /// earliest instant any changed `ADB_HI` component contributes
    /// demand — still answer lookups bit-identically against the new
    /// profile (see [`ResetFrontier::truncated_below`] for the
    /// argument), and a delta that never touches the arrival profile
    /// (`cut = None`, e.g. LO-task churn) keeps the staircase whole.
    fn repair_frontier(&mut self, cut: Option<Rational>) {
        mid_repair_fault_check();
        let Some(frontier) = self.frontier.take() else {
            return;
        };
        let before = frontier.len() as u64;
        match frontier.truncated_below(cut) {
            Some(repaired) => {
                self.repaired_frontiers += 1;
                self.kept_records += repaired.len() as u64;
                self.rewalked_records += before - repaired.len() as u64;
                self.frontier = Some(repaired);
            }
            None => {
                self.rewalked_records += before;
            }
        }
    }

    /// The number of HI-active components before task position `pos` —
    /// the task's component index inside the `DBF_HI`/`ADB_HI` profiles
    /// (the `DBF_LO` index is the task position itself).
    fn hi_rank(&self, pos: usize) -> usize {
        self.set
            .iter()
            .take(pos)
            .filter(|t| t.params(Mode::Hi).is_some())
            .count()
    }

    /// Rebuilds all three profiles from the set after a query session
    /// panicked mid-lend (the panic-pill path): the set itself is never
    /// lent, so the rebuild restores exactly the fresh-build state.
    fn ensure_profiles(&mut self) {
        if !self.dirty {
            return;
        }
        self.lo = lo_profile(&self.set);
        self.hi = hi_profile(&self.set);
        self.arrival = hi_arrival_profile(&self.set);
        self.rebuilt_components += (self.lo.components().len()
            + self.hi.components().len()
            + self.arrival.components().len()) as u64;
        self.frontier = None;
        self.dirty = false;
    }

    /// Accounts one profile's delta: `changed` freshly constructed
    /// components (1 for admit/replace/insert, 0 for a pure removal) and
    /// the rest reused when the splice stayed in place; the whole
    /// profile rebuilt otherwise.
    fn note_touched(&mut self, which: Which, in_place: bool, changed: u64) {
        let len = match which {
            Which::Lo => self.lo.components().len(),
            Which::Hi => self.hi.components().len(),
            Which::Arrival => self.arrival.components().len(),
        } as u64;
        if in_place {
            self.patched_profiles += 1;
            self.rebuilt_components += changed;
            self.reused_components += len - changed;
        } else {
            self.rebuilt_components += len;
        }
    }

    /// Accounts a profile the delta did not touch at all (e.g. the
    /// `DBF_HI` profile when a HI-terminated task is admitted): every
    /// component is served as-is, mirroring the sweep engine's
    /// whole-profile reuse tally.
    fn note_untouched(&mut self, which: Which) {
        let len = match which {
            Which::Lo => self.lo.components().len(),
            Which::Hi => self.hi.components().len(),
            Which::Arrival => self.arrival.components().len(),
        } as u64;
        self.reused_components += len;
    }
}

/// Which profile a delta accounting note addresses.
#[derive(Clone, Copy)]
enum Which {
    Lo,
    Hi,
    Arrival,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbs_model::Criticality;

    fn int(v: i128) -> Rational {
        Rational::integer(v)
    }

    fn rat(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    fn hi_task(name: &str, period: i128, dl_lo: i128, c_lo: i128, c_hi: i128) -> Task {
        Task::builder(name, Criticality::Hi)
            .period(int(period))
            .deadline_lo(int(dl_lo))
            .deadline_hi(int(period))
            .wcet_lo(int(c_lo))
            .wcet_hi(int(c_hi))
            .build()
            .expect("valid")
    }

    fn lo_task(name: &str, period: i128, wcet: i128) -> Task {
        Task::builder(name, Criticality::Lo)
            .period(int(period))
            .deadline(int(period))
            .wcet(int(wcet))
            .build()
            .expect("valid")
    }

    fn table1() -> TaskSet {
        TaskSet::new(vec![hi_task("tau1", 5, 2, 1, 2), lo_task("tau2", 10, 3)])
    }

    fn assert_matches_fresh(delta: &mut DeltaAnalysis) {
        let set = delta.set().clone();
        let limits = *delta.limits();
        let fresh = Analysis::new(&set, &limits);
        assert_eq!(
            delta.minimum_speedup().expect("ok"),
            fresh.minimum_speedup().expect("ok")
        );
        assert_eq!(
            delta.is_lo_schedulable().expect("ok"),
            fresh.is_lo_schedulable().expect("ok")
        );
        assert_eq!(
            delta.lo_speed_requirement().expect("ok"),
            fresh.lo_speed_requirement().expect("ok")
        );
        for speed in [Rational::ONE, rat(3, 2), int(2)] {
            assert_eq!(
                delta.is_hi_schedulable(speed).expect("ok"),
                fresh.is_hi_schedulable(speed).expect("ok")
            );
            assert_eq!(
                delta.resetting_time(speed).expect("ok"),
                fresh.resetting_time(speed).expect("ok")
            );
        }
    }

    #[test]
    fn admit_then_evict_round_trips() {
        let limits = AnalysisLimits::default();
        let mut delta = DeltaAnalysis::new(table1(), &limits);
        assert_matches_fresh(&mut delta);
        delta.admit(hi_task("tau3", 20, 6, 2, 5)).expect("admit");
        assert_eq!(delta.set().len(), 3);
        assert_matches_fresh(&mut delta);
        let evicted = delta.evict("tau3").expect("evict");
        assert_eq!(evicted.name(), "tau3");
        assert_matches_fresh(&mut delta);
    }

    #[test]
    fn replace_handles_activity_changes() {
        let limits = AnalysisLimits::default();
        let mut delta = DeltaAnalysis::new(table1(), &limits);
        // Active -> terminated: the DBF_HI/ADB_HI components vanish.
        let old = delta
            .replace("tau2", lo_task("tau2", 10, 3).terminated().expect("lo"))
            .expect("replace");
        assert!(!old.is_terminated_in_hi());
        assert_matches_fresh(&mut delta);
        // Terminated -> active again, renamed.
        delta
            .replace("tau2", lo_task("tau2b", 20, 4))
            .expect("replace");
        assert_eq!(delta.set().position("tau2b"), Some(1));
        assert_matches_fresh(&mut delta);
    }

    #[test]
    fn errors_leave_everything_unchanged() {
        let limits = AnalysisLimits::default();
        let mut delta = DeltaAnalysis::new(table1(), &limits);
        let before = delta.walk_counts();
        assert_eq!(
            delta.admit(lo_task("tau1", 4, 1)).expect_err("duplicate"),
            DeltaError::DuplicateTask {
                id: "tau1".to_owned()
            }
        );
        assert_eq!(
            delta.evict("ghost").expect_err("unknown"),
            DeltaError::UnknownTask {
                id: "ghost".to_owned()
            }
        );
        assert_eq!(
            delta
                .replace("tau2", lo_task("tau1", 4, 1))
                .expect_err("rename collision"),
            DeltaError::DuplicateTask {
                id: "tau1".to_owned()
            }
        );
        assert_eq!(delta.walk_counts(), before);
        assert_eq!(delta.set().len(), 2);
        assert_matches_fresh(&mut delta);
    }

    #[test]
    fn admit_splices_in_place_on_a_shared_timebase() {
        let limits = AnalysisLimits::default();
        let mut delta = DeltaAnalysis::new(table1(), &limits);
        let before = delta.walk_counts();
        // Table I is integer-valued and tau3 is too: all three profiles
        // extend in place.
        delta.admit(hi_task("tau3", 4, 2, 1, 1)).expect("admit");
        let counts = delta.walk_counts();
        assert_eq!(counts.patched, before.patched + 3);
        // One new component per profile; every old component reused.
        assert_eq!(counts.rebuilt_components, before.rebuilt_components + 3);
        assert_eq!(
            counts.reused_components,
            before.reused_components + 2 + 2 + 2
        );
    }

    #[test]
    fn offgrid_admit_rebuilds_and_still_matches() {
        let limits = AnalysisLimits::default();
        let mut delta = DeltaAnalysis::new(table1(), &limits);
        let before = delta.walk_counts();
        // A denominator the resident timebase (1) misses forces the
        // rebuild path of all three profiles.
        delta
            .admit(
                Task::builder("frac", Criticality::Hi)
                    .period(rat(7, 3))
                    .deadline_lo(rat(2, 3))
                    .deadline_hi(rat(7, 3))
                    .wcet_lo(rat(1, 3))
                    .wcet_hi(rat(2, 3))
                    .build()
                    .expect("valid"),
            )
            .expect("admit");
        let counts = delta.walk_counts();
        assert_eq!(counts.patched, before.patched);
        assert_eq!(counts.rebuilt_components, before.rebuilt_components + 9);
        assert_matches_fresh(&mut delta);
    }

    #[test]
    fn panic_in_session_self_heals() {
        let limits = AnalysisLimits::default();
        let mut delta = DeltaAnalysis::new(table1(), &limits);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            delta.with_analysis(|_| panic!("poison pill"));
        }));
        assert!(result.is_err());
        // The next use rebuilds the profiles from the set and answers
        // exactly like a fresh context.
        assert_matches_fresh(&mut delta);
        delta.admit(lo_task("late", 8, 1)).expect("admit");
        assert_matches_fresh(&mut delta);
    }

    #[test]
    fn admit_bailing_mid_splice_still_rolls_back_by_evict() {
        let limits = AnalysisLimits::default();
        let mut delta = DeltaAnalysis::new(table1(), &limits);
        let baseline = delta.minimum_speedup().expect("ok");

        // The admit panics after the set mutation and the DBF_LO splice
        // but before the DBF_HI/ADB_HI splices — the worst interleaving
        // a real splice bail could produce.
        DeltaAnalysis::arm_mid_splice_fault();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            delta
                .admit(hi_task("probe", 7, 3, 2, 3))
                .expect("unreached");
        }));
        assert!(result.is_err(), "the armed fault must fire");

        // The half-admitted task is in the set; the dirty guard makes the
        // rollback evict heal the profiles first, then remove it — the
        // probe-then-rollback invariant the partitioner relies on.
        assert!(delta.set().by_name("probe").is_some());
        delta.evict("probe").expect("rollback evict");
        assert_matches_fresh(&mut delta);
        assert_eq!(delta.minimum_speedup().expect("ok"), baseline);

        // And the context is fully usable afterwards: the same admit,
        // unarmed, completes and matches a fresh analysis.
        delta.admit(hi_task("probe", 7, 3, 2, 3)).expect("admit");
        assert_matches_fresh(&mut delta);
    }

    #[test]
    fn empty_base_set_grows() {
        let limits = AnalysisLimits::default();
        let mut delta = DeltaAnalysis::new(TaskSet::empty(), &limits);
        assert!(delta.is_lo_schedulable().expect("ok"));
        delta.admit(hi_task("first", 5, 2, 1, 2)).expect("admit");
        assert_matches_fresh(&mut delta);
        delta.evict("first").expect("evict");
        assert!(delta.set().is_empty());
        assert_matches_fresh(&mut delta);
    }

    #[test]
    fn batch_matches_sequential_ops() {
        let limits = AnalysisLimits::default();
        let mut batched = DeltaAnalysis::new(table1(), &limits);
        let mut sequential = DeltaAnalysis::new(table1(), &limits);
        let ops = vec![
            DeltaOp::Evict("tau1".to_owned()),
            DeltaOp::Admit(hi_task("tau3", 20, 6, 2, 5)),
            DeltaOp::Replace {
                id: "tau2".to_owned(),
                task: lo_task("tau2b", 8, 2),
            },
            DeltaOp::Admit(lo_task("tau4", 16, 1)),
        ];
        for op in ops.clone() {
            sequential.apply(op).expect("ok");
        }
        batched.apply_batch(ops).expect("ok");
        assert_eq!(batched.set(), sequential.set());
        assert_matches_fresh(&mut batched);
        assert_eq!(
            batched.minimum_speedup().expect("ok"),
            sequential.minimum_speedup().expect("ok")
        );
    }

    #[test]
    fn batch_cancels_opposing_ops() {
        let limits = AnalysisLimits::default();
        let mut delta = DeltaAnalysis::new(table1(), &limits);
        let before = delta.walk_counts();
        delta
            .apply_batch(vec![
                DeltaOp::Admit(hi_task("ghost", 12, 4, 1, 2)),
                DeltaOp::Replace {
                    id: "ghost".to_owned(),
                    task: lo_task("ghost2", 6, 1),
                },
                DeltaOp::Evict("ghost2".to_owned()),
            ])
            .expect("ok");
        // The batch cancels to a no-op: no profile was touched at all.
        assert_eq!(delta.walk_counts(), before);
        assert_eq!(delta.set().len(), 2);
        assert_matches_fresh(&mut delta);
    }

    #[test]
    fn batch_evict_readmit_moves_task_to_the_end() {
        let limits = AnalysisLimits::default();
        let mut delta = DeltaAnalysis::new(table1(), &limits);
        delta
            .apply_batch(vec![
                DeltaOp::Evict("tau1".to_owned()),
                DeltaOp::Admit(hi_task("tau1", 6, 3, 1, 2)),
            ])
            .expect("ok");
        // Same order the sequential ops leave: tau1 re-enters at the end.
        assert_eq!(delta.set().position("tau1"), Some(1));
        assert_matches_fresh(&mut delta);
    }

    #[test]
    fn batch_replays_rename_chains_on_activity_flip() {
        let limits = AnalysisLimits::default();
        let mut delta = DeltaAnalysis::new(table1(), &limits);
        // tau2 goes HI-terminated first so the flip back to active takes
        // the sequential-replay path, together with a rename chain the
        // canonical plan could not apply pairwise.
        delta
            .replace("tau2", lo_task("tau2", 10, 3).terminated().expect("lo"))
            .expect("ok");
        delta
            .apply_batch(vec![
                DeltaOp::Replace {
                    id: "tau1".to_owned(),
                    task: hi_task("tmp", 5, 2, 1, 2),
                },
                DeltaOp::Replace {
                    id: "tau2".to_owned(),
                    task: lo_task("tau1", 10, 3),
                },
                DeltaOp::Replace {
                    id: "tmp".to_owned(),
                    task: hi_task("tau2", 5, 2, 1, 2),
                },
            ])
            .expect("ok");
        assert_eq!(delta.set().position("tau2"), Some(0));
        assert_eq!(delta.set().position("tau1"), Some(1));
        assert_matches_fresh(&mut delta);
    }

    #[test]
    fn batch_first_failing_op_reports_and_leaves_state() {
        let limits = AnalysisLimits::default();
        let mut delta = DeltaAnalysis::new(table1(), &limits);
        let err = delta
            .apply_batch(vec![
                DeltaOp::Admit(lo_task("tau3", 8, 1)),
                DeltaOp::Evict("ghost".to_owned()),
                DeltaOp::Admit(lo_task("tau3", 8, 1)),
            ])
            .expect_err("second op fails first");
        assert_eq!(
            err,
            DeltaError::UnknownTask {
                id: "ghost".to_owned()
            }
        );
        // Atomic: the valid first op was not applied either.
        assert_eq!(delta.set().len(), 2);
        assert_matches_fresh(&mut delta);
    }

    #[test]
    fn frontier_is_dropped_by_every_op() {
        let limits = AnalysisLimits::default();
        let mut delta = DeltaAnalysis::new(table1(), &limits);
        delta.resetting_time(int(2)).expect("ok");
        delta.resetting_time(int(3)).expect("ok");
        // Second query is served by the frontier carried across
        // sessions, exactly like one long-lived Analysis.
        assert_eq!(delta.walk_counts().avoided, 1);
        // A degraded LO task stays live in HI mode, so its arrival
        // component contributes the carried-over job from Δ = 0: the
        // repair cut is 0 and the whole staircase must go.
        delta.admit(lo_task("tau3", 8, 1)).expect("admit");
        delta.resetting_time(int(3)).expect("ok");
        // Post-delta the frontier was dropped: this walk rebuilt it.
        assert_eq!(delta.walk_counts().avoided, 1);
        assert_eq!(delta.walk_counts().repaired, 0);
        assert!(delta.walk_counts().rewalked > 0);
        delta.resetting_time(int(3)).expect("ok");
        assert_eq!(delta.walk_counts().avoided, 2);
    }

    fn terminated_task(name: &str, period: i128, wcet: i128) -> Task {
        Task::builder(name, Criticality::Lo)
            .period(int(period))
            .deadline(int(period))
            .wcet(int(wcet))
            .terminated()
            .build()
            .expect("valid")
    }

    #[test]
    fn frontier_survives_terminated_task_churn() {
        let limits = AnalysisLimits::default();
        let mut delta = DeltaAnalysis::new(table1(), &limits);
        delta.resetting_time(int(2)).expect("ok");
        let staircase = {
            delta.resetting_time(int(3)).expect("ok");
            assert_eq!(delta.walk_counts().avoided, 1);
            delta.walk_counts()
        };
        // A HI-terminated task never touches the `ADB_HI` profile, so
        // churning one leaves the resetting staircase whole — the next
        // queries are still served without a walk.
        delta
            .admit(terminated_task("stop3", 8, 1))
            .expect("admit");
        delta.resetting_time(int(2)).expect("ok");
        delta.resetting_time(int(3)).expect("ok");
        let counts = delta.walk_counts();
        assert_eq!(counts.avoided, staircase.avoided + 2, "kept staircase serves");
        assert_eq!(counts.repaired, 1, "one repaired delta");
        assert!(counts.kept > 0, "records were kept");
        assert_eq!(counts.rewalked, 0, "nothing to re-walk");
        // And eviction repairs just the same.
        delta.evict("stop3").expect("evict");
        delta.resetting_time(int(3)).expect("ok");
        let counts = delta.walk_counts();
        assert_eq!(counts.avoided, staircase.avoided + 3);
        assert_eq!(counts.repaired, 2);
        assert_matches_fresh(&mut delta);
    }

    #[test]
    fn frontier_survives_arrival_identical_replace() {
        let limits = AnalysisLimits::default();
        let mut delta = DeltaAnalysis::new(table1(), &limits);
        delta.resetting_time(int(2)).expect("ok");
        delta.resetting_time(int(2)).expect("ok");
        assert_eq!(delta.walk_counts().avoided, 1);
        // A pure rename keeps every demand curve: the replace path's
        // divergence cut is +∞ and the staircase survives whole.
        delta
            .replace("tau1", hi_task("tau1b", 5, 2, 1, 2))
            .expect("replace");
        delta.resetting_time(int(2)).expect("ok");
        let counts = delta.walk_counts();
        assert_eq!(counts.avoided, 2, "kept staircase serves post-rename");
        assert_eq!(counts.repaired, 1);
        assert_eq!(counts.rewalked, 0);
        assert_matches_fresh(&mut delta);
    }

    #[test]
    fn batched_terminated_churn_keeps_the_frontier() {
        let limits = AnalysisLimits::default();
        let mut set = table1();
        set.push(terminated_task("stop0", 6, 1));
        let mut delta = DeltaAnalysis::new(set, &limits);
        delta.resetting_time(int(2)).expect("ok");
        delta.resetting_time(int(2)).expect("ok");
        assert_eq!(delta.walk_counts().avoided, 1);
        // One batched evict + admit of HI-terminated tasks: a single
        // repair, and the staircase still answers.
        delta
            .apply_batch(vec![
                DeltaOp::Evict("stop0".to_owned()),
                DeltaOp::Admit(terminated_task("stop1", 9, 2)),
            ])
            .expect("batch");
        delta.resetting_time(int(2)).expect("ok");
        let counts = delta.walk_counts();
        assert_eq!(counts.avoided, 2);
        assert_eq!(counts.repaired, 1);
        assert_eq!(counts.rewalked, 0);
        assert_matches_fresh(&mut delta);
    }
}
