//! Exact periodic piecewise-linear demand curves.
//!
//! All three demand quantities of the paper share one shape per task: a
//! periodic pattern of period `T` that per period adds a constant amount
//! of demand and, at an offset within the period, exhibits an upward jump
//! followed by a unit-slope ramp:
//!
//! * `DBF_LO` (eq. (4)): pure step of height `C(LO)` at offset `D(LO)`;
//! * `DBF_HI` (Lemma 1): jump `C(HI)−C(LO)` at offset `D(HI)−D(LO)`,
//!   then a ramp of length `C(LO)`, plus `C(HI)` per full period;
//! * `ADB_HI` (Theorem 4): the same with offset `T(HI)−D(LO)` and an
//!   additional constant `C(HI)` (the carried-over job counts from Δ=0).
//!
//! [`PeriodicDemand`] captures one such component; [`DemandProfile`] sums
//! several and answers the two queries the paper needs:
//!
//! * [`DemandProfile::sup_ratio`] — `sup_{Δ>0} demand(Δ)/Δ`, which is
//!   Theorem 2's minimum speedup when applied to `DBF_HI` curves;
//! * [`DemandProfile::first_fit`] — `min{Δ ≥ 0 : demand(Δ) ≤ s·Δ}`,
//!   which is Corollary 5's resetting time when applied to `ADB_HI`
//!   curves.
//!
//! Both queries walk the curve's breakpoints exactly (no sampling). They
//! terminate because (a) demand is additive over hyperperiods —
//! `demand(Δ+P) = demand(Δ) + rate·P` — so no point beyond the first
//! hyperperiod can improve on the points within it, and (b) once a ratio
//! above the long-run rate is found, `demand(Δ) ≤ rate·Δ + burst` yields
//! a horizon beyond which no improvement is possible.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::sync::OnceLock;

use rbs_timebase::{lcm_i128, Rational};

use crate::scaled::{FitsMachine, MachineStep, ScaledProfile, SupRatioMachine};
use crate::splice_buf::SpliceBuf;
use crate::{AnalysisError, AnalysisLimits};

/// One periodic demand component (typically: one task's demand curve).
///
/// The curve value at `Δ ≥ 0` is
///
/// ```text
/// constant + floor(Δ/period)·per_period + r(Δ mod period)
/// r(u) = jump + min(u − ramp_start, ramp_len)   if u ≥ ramp_start
///      = 0                                       otherwise
/// ```
///
/// # Examples
///
/// ```
/// use rbs_core::demand::PeriodicDemand;
/// use rbs_timebase::Rational;
///
/// // DBF_LO of a task with T=10, D=4, C=3: step of 3 at 4, 14, 24, ...
/// let step = PeriodicDemand::step(Rational::integer(10),
///                                 Rational::integer(4),
///                                 Rational::integer(3));
/// assert_eq!(step.eval(Rational::integer(3)), Rational::ZERO);
/// assert_eq!(step.eval(Rational::integer(4)), Rational::integer(3));
/// assert_eq!(step.eval(Rational::integer(14)), Rational::integer(6));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PeriodicDemand {
    period: Rational,
    per_period: Rational,
    constant: Rational,
    ramp_start: Rational,
    jump: Rational,
    ramp_len: Rational,
}

impl PeriodicDemand {
    /// Creates a component.
    ///
    /// # Panics
    ///
    /// Panics unless `period > 0`, `0 ≤ ramp_start < period`, all demand
    /// quantities are non-negative, and `jump + ramp_len ≤ per_period`
    /// (which makes the curve non-decreasing — every demand bound
    /// function is).
    #[must_use]
    pub fn new(
        period: Rational,
        per_period: Rational,
        constant: Rational,
        ramp_start: Rational,
        jump: Rational,
        ramp_len: Rational,
    ) -> PeriodicDemand {
        assert!(period.is_positive(), "period must be positive");
        assert!(
            !ramp_start.is_negative() && ramp_start < period,
            "ramp_start must lie in [0, period)"
        );
        assert!(
            !per_period.is_negative()
                && !constant.is_negative()
                && !jump.is_negative()
                && !ramp_len.is_negative(),
            "demand quantities must be non-negative"
        );
        assert!(
            jump + ramp_len <= per_period,
            "jump + ramp_len must not exceed per_period (curve must be non-decreasing)"
        );
        PeriodicDemand {
            period,
            per_period,
            constant,
            ramp_start,
            jump,
            ramp_len,
        }
    }

    /// A pure step curve: `height` demand arriving at
    /// `offset + k·period`. This is the shape of `DBF_LO` (eq. (4)) with
    /// `offset = D` — implicit-deadline tasks (`offset == period`) fold
    /// into pure per-period demand.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < offset ≤ period` and `height ≥ 0`.
    #[must_use]
    pub fn step(period: Rational, offset: Rational, height: Rational) -> PeriodicDemand {
        assert!(
            offset.is_positive() && offset <= period,
            "step offset must lie in (0, period]"
        );
        if offset == period {
            // A step of `height` at every multiple of the period is
            // exactly `height·floor(Δ/period)`.
            return PeriodicDemand::new(
                period,
                height,
                Rational::ZERO,
                Rational::ZERO,
                Rational::ZERO,
                Rational::ZERO,
            );
        }
        PeriodicDemand::new(
            period,
            height,
            Rational::ZERO,
            offset,
            height,
            Rational::ZERO,
        )
    }

    /// The component's period.
    #[must_use]
    pub fn period(&self) -> Rational {
        self.period
    }

    /// Demand added per full period.
    #[must_use]
    pub fn per_period(&self) -> Rational {
        self.per_period
    }

    /// Long-run demand rate `per_period / period`.
    #[must_use]
    pub fn rate(&self) -> Rational {
        self.per_period / self.period
    }

    /// A constant `b` such that `eval(Δ) ≤ rate()·Δ + b` for all `Δ ≥ 0`.
    #[must_use]
    pub fn burst(&self) -> Rational {
        self.constant + self.jump + self.ramp_len
    }

    /// The *tightest* constant `b` with `eval(Δ) ≤ rate()·Δ + b` for all
    /// `Δ ≥ 0`: `constant + sup_u (r(u) − rate·u)`.
    ///
    /// Writing `eval(Δ) − rate·Δ = constant + h(u)` with
    /// `h(u) = r(u) − rate·u` periodic in `u = Δ mod period`, the
    /// supremum of the piecewise-linear `h` sits at one of its segment
    /// endpoints: `u = 0`, the post-jump `u = ramp_start`, or the
    /// (period-clipped) ramp end. This is the pruning bound of the
    /// breakpoint walks — often far below [`PeriodicDemand::burst`],
    /// e.g. zero for an implicit-deadline step (`ramp_start = 0`,
    /// `jump = per_period`).
    #[must_use]
    pub fn envelope_burst(&self) -> Rational {
        let rate = self.rate();
        let clipped = (self.period - self.ramp_start).min(self.ramp_len);
        let at_jump = self.jump - rate * self.ramp_start;
        let at_ramp_end = self.jump + clipped - rate * (self.ramp_start + clipped);
        self.constant + Rational::ZERO.max(at_jump).max(at_ramp_end)
    }

    /// All six quantities in declaration order (`period`, `per_period`,
    /// `constant`, `ramp_start`, `jump`, `ramp_len`) — for the integer
    /// rescaling in [`crate::scaled`].
    pub(crate) fn raw(&self) -> [Rational; 6] {
        [
            self.period,
            self.per_period,
            self.constant,
            self.ramp_start,
            self.jump,
            self.ramp_len,
        ]
    }

    /// The infimum of `{Δ ≥ 0 : eval(Δ) > 0}` — the instant before which
    /// this component contributes nothing — or `None` for an identically
    /// zero curve (which contributes nothing anywhere).
    ///
    /// The curve is non-decreasing and piecewise linear, so it is zero
    /// on `[0, t)` for the returned `t`: a positive `constant` makes it
    /// positive from `Δ = 0`; otherwise the earliest demand is the jump
    /// (or ramp onset) at `ramp_start` and/or the first per-period
    /// accrual at `period`, whichever comes first. This is what the
    /// frontier repair keys on: a delta whose changed components all
    /// have `first_positive_instant ≥ cut` leaves the profile's demand
    /// bit-identical on `[0, cut)`.
    pub(crate) fn first_positive_instant(&self) -> Option<Rational> {
        if self.constant.is_positive() {
            return Some(Rational::ZERO);
        }
        let mut first = self.per_period.is_positive().then_some(self.period);
        if self.jump.is_positive() || self.ramp_len.is_positive() {
            first = Some(match first {
                None => self.ramp_start,
                Some(t) => t.min(self.ramp_start),
            });
        }
        first
    }

    /// The earliest instant at which this curve departs from its
    /// constant term — `None` when it is constant forever.
    fn first_departure_from_constant(&self) -> Option<Rational> {
        let mut first = self.per_period.is_positive().then_some(self.period);
        if self.jump.is_positive() || self.ramp_len.is_positive() {
            first = Some(match first {
                None => self.ramp_start,
                Some(t) => t.min(self.ramp_start),
            });
        }
        first
    }

    /// A lower bound on the earliest instant at which this curve and
    /// `other` differ: `None` when they are identical (they never
    /// diverge), otherwise the first instant either departs from the
    /// shared constant (both are flat before that, so they agree on the
    /// whole prefix). This is the replace-op frontier-repair cut: a
    /// swap whose components agree below `cut` leaves the profile's
    /// demand bit-identical on `[0, cut)` even though both components
    /// contribute demand from `Δ = 0`.
    pub(crate) fn divergence_bound(&self, other: &PeriodicDemand) -> Option<Rational> {
        if self == other {
            return None;
        }
        if self.constant != other.constant {
            return Some(Rational::ZERO);
        }
        match (
            self.first_departure_from_constant(),
            other.first_departure_from_constant(),
        ) {
            // Both flat forever at the same constant: value-equal even
            // when the (irrelevant) periods differ.
            (None, None) => None,
            (Some(t), None) | (None, Some(t)) => Some(t),
            (Some(a), Some(b)) => Some(a.min(b)),
        }
    }

    /// Evaluates the curve at `Δ`.
    ///
    /// # Panics
    ///
    /// Panics if `Δ` is negative.
    #[must_use]
    pub fn eval(&self, delta: Rational) -> Rational {
        assert!(!delta.is_negative(), "demand curves are defined for Δ ≥ 0");
        let k = delta.floor_div(self.period);
        let u = delta - Rational::integer(k) * self.period;
        let base = self.constant + Rational::integer(k) * self.per_period;
        if u >= self.ramp_start {
            base + self.jump + (u - self.ramp_start).min(self.ramp_len)
        } else {
            base
        }
    }
}

/// The outcome of a `sup demand(Δ)/Δ` query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupRatio {
    /// The supremum is finite, attained at `witness` (or zero for an
    /// identically-zero profile, in which case `witness` is `None`).
    Finite {
        /// The supremum value.
        value: Rational,
        /// An interval length `Δ` attaining the supremum.
        witness: Option<Rational>,
    },
    /// Demand is positive at `Δ = 0`: no finite speedup suffices
    /// (the paper's `s_min = +∞` case).
    Unbounded,
}

/// The outcome of a `min{Δ : demand(Δ) ≤ s·Δ}` query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FirstFit {
    /// The earliest `Δ ≥ 0` at which supply has caught up with demand.
    At(Rational),
    /// Supply never catches up (`s` below the long-run demand rate).
    Never,
}

/// Which breakpoint-walk implementation answered a query.
///
/// Results are bit-identical either way; the kind only matters for
/// performance accounting (see [`crate::analysis::Analysis`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkKind {
    /// The common-timebase `i128` fast path.
    Integer,
    /// The exact [`Rational`] fallback walk.
    Rational,
}

/// How a breakpoint walk answered a query: which implementation ran, and
/// whether the envelope bound cut it short.
///
/// Results are bit-identical regardless of either flag; the trace only
/// feeds performance accounting (see [`crate::analysis::Analysis`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkTrace {
    /// Which implementation produced the result.
    pub kind: WalkKind,
    /// Whether the walk stopped at the envelope horizon with breakpoints
    /// still pending below the hyperperiod bound — i.e. the
    /// [`PeriodicDemand::envelope_burst`] pruning actually skipped work.
    pub pruned: bool,
    /// Whether a chunked multi-profile lockstep driver
    /// ([`sup_ratio_many`]/[`fits_many`] or an internal batch prime)
    /// completed this walk interleaved with others, rather than a
    /// dedicated one-shot walk.
    pub lockstep: bool,
}

/// A sum of [`PeriodicDemand`] components with exact sup-ratio and
/// first-fit queries.
///
/// # Examples
///
/// ```
/// use rbs_core::demand::{DemandProfile, PeriodicDemand, SupRatio};
/// use rbs_core::AnalysisLimits;
/// use rbs_timebase::Rational;
///
/// # fn main() -> Result<(), rbs_core::AnalysisError> {
/// // One implicit-deadline task, T = D = 4, C = 1: sup dbf/Δ = C/D = 1/4.
/// let profile = DemandProfile::new(vec![PeriodicDemand::step(
///     Rational::integer(4),
///     Rational::integer(4),
///     Rational::integer(1),
/// )]);
/// let sup = profile.sup_ratio(&AnalysisLimits::default())?;
/// assert_eq!(
///     sup,
///     SupRatio::Finite { value: Rational::new(1, 4), witness: Some(Rational::integer(4)) }
/// );
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DemandProfile {
    components: SpliceBuf<PeriodicDemand>,
    /// The integer fast path, built once here; `None` when the common
    /// timebase does not fit in `i128` (queries then always walk the
    /// exact rational path).
    scaled: Option<ScaledProfile>,
    /// Whole-profile aggregates (rate, bursts, hyperperiod), each
    /// computed on its own first use: every walk prologue needs some of
    /// them and they cost O(n) rational reductions, so repeated queries
    /// on the same profile shouldn't pay them again. Per-field laziness
    /// matters — a caller that only ever asks for the cheap `rate` (the
    /// sweep engine's resetting-time gate) must not be billed for the
    /// much dearer `envelope_burst`. Reset by
    /// [`DemandProfile::patch_components`].
    aggregates: Aggregates,
}

/// Memoized O(components) profile summaries, each filled independently —
/// see [`DemandProfile::aggregates`].
#[derive(Debug, Clone, Default)]
struct Aggregates {
    rate: OnceLock<Rational>,
    burst: OnceLock<Rational>,
    envelope_burst: OnceLock<Rational>,
    hyperperiod: OnceLock<Option<Rational>>,
}

/// The lazily-filled aggregate cache is derived state, so equality is
/// over components and fast path only (as the former `derive` produced).
impl PartialEq for DemandProfile {
    fn eq(&self, other: &DemandProfile) -> bool {
        self.components == other.components && self.scaled == other.scaled
    }
}

impl Eq for DemandProfile {}

impl DemandProfile {
    /// Creates a profile from components.
    #[must_use]
    pub fn new(components: Vec<PeriodicDemand>) -> DemandProfile {
        let scaled = ScaledProfile::build(&components);
        DemandProfile {
            components: components.into(),
            scaled,
            aggregates: Aggregates::default(),
        }
    }

    /// Assembles a profile from components and a pre-built fast path —
    /// the sweep engine's entry point, where the [`ScaledProfile`] is
    /// built on a timebase covering a whole campaign grid rather than
    /// this one component list.
    pub(crate) fn from_parts(
        components: Vec<PeriodicDemand>,
        scaled: Option<ScaledProfile>,
    ) -> DemandProfile {
        DemandProfile {
            components: components.into(),
            scaled,
            aggregates: Aggregates::default(),
        }
    }

    /// Replaces the components at `indices` with `patched` (parallel
    /// slices) and patches the integer fast path in place when the new
    /// components fit its timebase; otherwise rebuilds the fast path
    /// from scratch on the updated components' own timebase — exactly
    /// what [`DemandProfile::new`] would produce. Returns `true` when
    /// the patch stayed in place.
    pub(crate) fn patch_components(
        &mut self,
        indices: &[usize],
        patched: &[PeriodicDemand],
    ) -> bool {
        debug_assert_eq!(indices.len(), patched.len());
        for (&i, component) in indices.iter().zip(patched) {
            self.components[i] = component.clone();
        }
        let in_place = match self.scaled.as_mut() {
            Some(scaled) => scaled.patch(&self.components, indices).is_some(),
            None => false,
        };
        if !in_place {
            self.scaled = ScaledProfile::build(&self.components);
        }
        self.aggregates = Aggregates::default();
        in_place
    }

    /// Appends one component and extends the integer fast path in O(1)
    /// when the new component fits the current timebase (the old list is
    /// a prefix of the new one, so every stored fold extends
    /// bit-identically); otherwise rebuilds the fast path from scratch —
    /// exactly what [`DemandProfile::new`] on the appended list would
    /// produce either way. Returns `true` when the extension stayed in
    /// place.
    pub(crate) fn append_component(&mut self, component: PeriodicDemand) -> bool {
        self.components.push(component);
        let in_place = match self.scaled.as_mut() {
            Some(scaled) => scaled.append(&self.components).is_some(),
            None => false,
        };
        if !in_place {
            self.scaled = ScaledProfile::build(&self.components);
        }
        self.aggregates = Aggregates::default();
        in_place
    }

    /// Splices one component in at `index`, reusing every other
    /// component's scaled form when the fresh timebase is unchanged;
    /// otherwise rebuilds. Returns `true` when the splice stayed in
    /// place.
    pub(crate) fn insert_component(&mut self, index: usize, component: PeriodicDemand) -> bool {
        self.components.insert(index, component);
        let in_place = match self.scaled.as_mut() {
            Some(scaled) => scaled.insert_at(index, &self.components).is_some(),
            None => false,
        };
        if !in_place {
            self.scaled = ScaledProfile::build(&self.components);
        }
        self.aggregates = Aggregates::default();
        in_place
    }

    /// Drops the component at `index`, keeping the survivors' scaled
    /// forms when they still live on their own fresh timebase (the
    /// removed component may have carried the lcm); otherwise rebuilds.
    /// Returns `true` when the drop stayed in place.
    pub(crate) fn remove_component(&mut self, index: usize) -> bool {
        self.components.remove(index);
        let in_place = match self.scaled.as_mut() {
            Some(scaled) => scaled.remove_at(index, &self.components).is_some(),
            None => false,
        };
        if !in_place {
            self.scaled = ScaledProfile::build(&self.components);
        }
        self.aggregates = Aggregates::default();
        in_place
    }

    /// Replaces the component at `index` in place when the fresh
    /// timebase is unchanged; otherwise rebuilds. Returns `true` when
    /// the replacement stayed in place.
    pub(crate) fn replace_component(&mut self, index: usize, component: PeriodicDemand) -> bool {
        self.components[index] = component;
        let in_place = match self.scaled.as_mut() {
            Some(scaled) => scaled.replace_at(index, &self.components).is_some(),
            None => false,
        };
        if !in_place {
            self.scaled = ScaledProfile::build(&self.components);
        }
        self.aggregates = Aggregates::default();
        in_place
    }

    /// Applies one composite splice — replace the components at
    /// `patched` (pre-edit indices, ascending), drop the ones at
    /// `removed` (pre-edit, strictly ascending, disjoint from `patched`),
    /// append `appended` — patching the integer fast path with a single
    /// aggregate refold (see [`ScaledProfile::splice_batch`]); otherwise
    /// rebuilds the fast path from scratch, exactly what
    /// [`DemandProfile::new`] on the post-edit list would produce.
    /// Returns `true` when the splice stayed in place.
    pub(crate) fn splice_components(
        &mut self,
        patched: &[(usize, PeriodicDemand)],
        removed: &[usize],
        appended: Vec<PeriodicDemand>,
    ) -> bool {
        let appended_len = appended.len();
        for &(i, ref component) in patched {
            self.components[i] = component.clone();
        }
        self.components.remove_sorted(removed);
        for component in appended {
            self.components.push(component);
        }
        let components = &self.components;
        let appended_tail = &components[components.len() - appended_len..];
        let in_place = match self.scaled.as_mut() {
            Some(scaled) => scaled
                .splice_batch(patched, removed, appended_tail, components)
                .is_some(),
            None => false,
        };
        if !in_place {
            self.scaled = ScaledProfile::build(&self.components);
        }
        self.aggregates = Aggregates::default();
        in_place
    }

    /// Whether the profile carries the common-timebase integer fast path.
    #[must_use]
    pub fn has_fast_path(&self) -> bool {
        self.scaled.is_some()
    }

    /// The integer fast path, for callers building resumable walk
    /// machines ([`crate::scaled::SupRatioMachine`] etc.) directly.
    pub(crate) fn scaled(&self) -> Option<&ScaledProfile> {
        self.scaled.as_ref()
    }

    /// The components.
    #[must_use]
    pub fn components(&self) -> &[PeriodicDemand] {
        &self.components
    }

    /// Total demand at `Δ`.
    ///
    /// # Panics
    ///
    /// Panics if `Δ` is negative.
    #[must_use]
    pub fn eval(&self, delta: Rational) -> Rational {
        self.components.iter().map(|c| c.eval(delta)).sum()
    }

    /// Long-run total demand rate.
    #[must_use]
    pub fn rate(&self) -> Rational {
        *self
            .aggregates
            .rate
            .get_or_init(|| self.components.iter().map(PeriodicDemand::rate).sum())
    }

    /// Total burst: `eval(Δ) ≤ rate()·Δ + burst()`.
    #[must_use]
    pub fn burst(&self) -> Rational {
        *self
            .aggregates
            .burst
            .get_or_init(|| self.components.iter().map(PeriodicDemand::burst).sum())
    }

    /// Total tight envelope burst (per-component suprema of
    /// `eval_i(Δ) − rate_i·Δ`, summed): the pruning bound of every walk.
    #[must_use]
    pub fn envelope_burst(&self) -> Rational {
        *self.aggregates.envelope_burst.get_or_init(|| {
            self.components
                .iter()
                .map(PeriodicDemand::envelope_burst)
                .sum()
        })
    }

    /// Consumes the profile and returns its component vector — the
    /// allocation can then be pooled in an
    /// [`crate::analysis::AnalysisScratch`] and reused for the next set.
    #[must_use]
    pub fn into_components(self) -> Vec<PeriodicDemand> {
        self.components.into_vec()
    }

    /// The demand hyperperiod (lcm of component periods), if it fits in
    /// `i128`.
    #[must_use]
    pub fn hyperperiod(&self) -> Option<Rational> {
        *self.aggregates.hyperperiod.get_or_init(|| {
            let mut acc: Option<Rational> = None;
            for c in self.components.iter() {
                acc = Some(match acc {
                    None => c.period(),
                    Some(a) => a.lcm(c.period())?,
                });
            }
            acc
        })
    }

    /// Computes `sup_{Δ > 0} eval(Δ)/Δ` exactly.
    ///
    /// Applied to the HI-mode demand bound functions this is Theorem 2's
    /// minimum speedup (eq. (8)). The supremum is attained at a curve
    /// breakpoint within the first hyperperiod, or equals the long-run
    /// rate; the walk additionally stops early once the dynamic horizon
    /// `burst/(best − rate)` is passed.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::BreakpointBudgetExhausted`] when the hyperperiod
    /// overflows `i128` *and* the dynamic horizon never materializes
    /// within the breakpoint budget.
    pub fn sup_ratio(&self, limits: &AnalysisLimits) -> Result<SupRatio, AnalysisError> {
        self.sup_ratio_traced(limits).map(|(result, _)| result)
    }

    /// [`DemandProfile::sup_ratio`] plus how it was answered.
    ///
    /// # Errors
    ///
    /// As for [`DemandProfile::sup_ratio`].
    pub fn sup_ratio_traced(
        &self,
        limits: &AnalysisLimits,
    ) -> Result<(SupRatio, WalkTrace), AnalysisError> {
        if let Some(scaled) = &self.scaled {
            if let Some((result, pruned)) = scaled.sup_ratio(limits)? {
                return Ok((
                    result,
                    WalkTrace {
                        kind: WalkKind::Integer,
                        pruned,
                        lockstep: false,
                    },
                ));
            }
        }
        self.sup_ratio_exact_traced(limits).map(|(result, pruned)| {
            (
                result,
                WalkTrace {
                    kind: WalkKind::Rational,
                    pruned,
                    lockstep: false,
                },
            )
        })
    }

    /// The exact rational reference implementation of
    /// [`DemandProfile::sup_ratio`] — the fallback when the integer fast
    /// path overflows, kept public for differential tests and benches.
    ///
    /// Like the fast path, it prunes against the tight
    /// [`DemandProfile::envelope_burst`] bound; the fully unpruned walk
    /// survives as [`DemandProfile::sup_ratio_reference`].
    ///
    /// # Errors
    ///
    /// As for [`DemandProfile::sup_ratio`].
    pub fn sup_ratio_exact(&self, limits: &AnalysisLimits) -> Result<SupRatio, AnalysisError> {
        self.sup_ratio_exact_traced(limits)
            .map(|(result, _)| result)
    }

    /// [`DemandProfile::sup_ratio_exact`] plus whether the envelope bound
    /// pruned the walk.
    pub(crate) fn sup_ratio_exact_traced(
        &self,
        limits: &AnalysisLimits,
    ) -> Result<(SupRatio, bool), AnalysisError> {
        let mut walk = IncrementalWalk::new(&self.components, limits.max_breakpoints());
        if walk.value.is_positive() {
            return Ok((SupRatio::Unbounded, false));
        }
        let rate = self.rate();
        let envelope = self.envelope_burst();
        let hyperperiod = self.hyperperiod();

        let mut best: Option<(Rational, Rational)> = None;
        // eval(Δ) ≤ rate·Δ + envelope ≤ best_ratio·Δ for
        // Δ ≥ envelope/(best_ratio − rate), and the improvement test is
        // strict, so nothing at or past the horizon can displace `best`.
        // Recomputed only when `best` improves (the walk's only division).
        let mut horizon: Option<Rational> = None;
        // Float shadow of `best`'s ratio, for a pre-filter on the exact
        // improvement test. i128→f64 conversion and f64 division are
        // correctly rounded, so each approximation is within a few ulps
        // (relative error < 1e-14) of the true ratio; a breakpoint is
        // skipped only when it trails `best` by more than a 1e-9-scaled
        // margin — far outside that error — so every true improvement
        // still reaches the exact division below.
        let mut best_f = f64::NEG_INFINITY;
        let to_f = |q: Rational| q.numer() as f64 / q.denom() as f64;
        let mut pruned = false;
        let mut examined = 0usize;
        while let Some(delta) = walk.peek_next() {
            if let Some(hp) = hyperperiod {
                if delta > hp {
                    break;
                }
            }
            if let Some(h) = horizon {
                if delta >= h {
                    pruned = true;
                    break;
                }
            }
            examined += 1;
            limits.check_walk(examined)?;
            walk.advance();
            let ratio_f = to_f(walk.value) / to_f(walk.delta);
            let margin = 1e-9 * ratio_f.abs().max(best_f.abs());
            if ratio_f < best_f - margin {
                continue;
            }
            let ratio = walk.value / walk.delta;
            if best.is_none_or(|(b, _)| ratio > b) {
                best = Some((ratio, walk.delta));
                best_f = ratio_f;
                if ratio > rate {
                    horizon = Some(envelope / (ratio - rate));
                }
            }
        }
        let sup = match best {
            None => SupRatio::Finite {
                value: Rational::ZERO,
                witness: None,
            },
            Some((value, witness)) => SupRatio::Finite {
                value,
                witness: Some(witness),
            },
        };
        Ok((sup, pruned))
    }

    /// The pre-pruning reference walk for `sup_{Δ > 0} eval(Δ)/Δ`: stops
    /// only at the hyperperiod or the *loose* `burst/(best − rate)`
    /// horizon. Kept as the independent oracle the envelope-pruned walks
    /// are differentially tested against, and as the bench reference that
    /// quantifies the pruning gain.
    ///
    /// # Errors
    ///
    /// As for [`DemandProfile::sup_ratio`] (the pruned walk may complete
    /// within budgets this reference exhausts).
    pub fn sup_ratio_reference(&self, limits: &AnalysisLimits) -> Result<SupRatio, AnalysisError> {
        let mut walk = IncrementalWalk::new(&self.components, limits.max_breakpoints());
        if walk.value.is_positive() {
            return Ok(SupRatio::Unbounded);
        }
        let rate = self.rate();
        let burst = self.burst();
        let hyperperiod = self.hyperperiod();

        let mut best: Option<(Rational, Rational)> = None;
        let mut horizon: Option<Rational> = None;
        let mut examined = 0usize;
        while let Some(delta) = walk.peek_next() {
            if let Some(hp) = hyperperiod {
                if delta > hp {
                    break;
                }
            }
            if let Some(h) = horizon {
                if delta > h {
                    break;
                }
            }
            examined += 1;
            limits.check_walk(examined)?;
            walk.advance();
            let ratio = walk.value / walk.delta;
            if best.is_none_or(|(b, _)| ratio > b) {
                best = Some((ratio, walk.delta));
                if ratio > rate {
                    horizon = Some(burst / (ratio - rate));
                }
            }
        }
        Ok(match best {
            None => SupRatio::Finite {
                value: Rational::ZERO,
                witness: None,
            },
            Some((value, witness)) => SupRatio::Finite {
                value,
                witness: Some(witness),
            },
        })
    }

    /// Decides `eval(Δ) ≤ speed·Δ` for all `Δ ≥ 0` — the EDF
    /// schedulability test at a given processor speed.
    ///
    /// Unlike [`DemandProfile::sup_ratio`] (which must pin down the exact
    /// supremum and therefore has no small horizon when the margin is
    /// thin), the decision walks breakpoints only up to
    /// `burst/(speed − rate)`: beyond it, `eval(Δ) ≤ rate·Δ + burst ≤
    /// speed·Δ` holds unconditionally. Prefer this for yes/no questions
    /// (LO-mode feasibility, "is `s` enough?").
    ///
    /// # Errors
    ///
    /// * [`AnalysisError::NonPositiveSpeed`] if `speed ≤ 0`.
    /// * [`AnalysisError::BreakpointBudgetExhausted`] only in the
    ///   `speed == rate` corner with an astronomically large hyperperiod.
    pub fn fits(&self, speed: Rational, limits: &AnalysisLimits) -> Result<bool, AnalysisError> {
        self.fits_traced(speed, limits).map(|(result, _)| result)
    }

    /// [`DemandProfile::fits`] plus how it was answered.
    ///
    /// # Errors
    ///
    /// As for [`DemandProfile::fits`].
    pub fn fits_traced(
        &self,
        speed: Rational,
        limits: &AnalysisLimits,
    ) -> Result<(bool, WalkTrace), AnalysisError> {
        if !speed.is_positive() {
            return Err(AnalysisError::NonPositiveSpeed);
        }
        if let Some(scaled) = &self.scaled {
            if let Some((result, pruned)) = scaled.fits(speed, limits)? {
                return Ok((
                    result,
                    WalkTrace {
                        kind: WalkKind::Integer,
                        pruned,
                        lockstep: false,
                    },
                ));
            }
        }
        self.fits_exact_traced(speed, limits)
            .map(|(result, pruned)| {
                (
                    result,
                    WalkTrace {
                        kind: WalkKind::Rational,
                        pruned,
                        lockstep: false,
                    },
                )
            })
    }

    /// The exact rational reference implementation of
    /// [`DemandProfile::fits`] — the fallback when the integer fast path
    /// overflows, kept public for differential tests and benches.
    ///
    /// # Errors
    ///
    /// As for [`DemandProfile::fits`].
    pub fn fits_exact(
        &self,
        speed: Rational,
        limits: &AnalysisLimits,
    ) -> Result<bool, AnalysisError> {
        self.fits_exact_traced(speed, limits)
            .map(|(result, _)| result)
    }

    /// [`DemandProfile::fits_exact`] plus whether the envelope bound
    /// pruned the walk short of the hyperperiod.
    pub(crate) fn fits_exact_traced(
        &self,
        speed: Rational,
        limits: &AnalysisLimits,
    ) -> Result<(bool, bool), AnalysisError> {
        if !speed.is_positive() {
            return Err(AnalysisError::NonPositiveSpeed);
        }
        let mut walk = IncrementalWalk::new(&self.components, limits.max_breakpoints());
        if walk.value.is_positive() {
            // Demand at Δ = 0 can never be served.
            return Ok((false, false));
        }
        let rate = self.rate();
        if speed < rate {
            // Demand grows at `rate` along hyperperiod multiples
            // (eval(kP) ≥ rate·kP); a slower supply eventually loses.
            return Ok((false, false));
        }
        let hyperperiod = self.hyperperiod();
        // At Δ ≥ envelope/(speed − rate) the envelope bound alone gives
        // eval(Δ) ≤ rate·Δ + envelope ≤ speed·Δ: no violation can exist
        // at or past the horizon, so the break may be inclusive.
        let horizon = if speed > rate {
            Some(self.envelope_burst() / (speed - rate))
        } else {
            None
        };
        let mut pruned = false;
        let mut examined = 0usize;
        while let Some(delta) = walk.peek_next() {
            if let Some(h) = horizon {
                if delta >= h {
                    pruned = hyperperiod.is_none_or(|hp| delta <= hp);
                    break;
                }
            }
            if let Some(hp) = hyperperiod {
                if delta > hp {
                    break;
                }
            }
            examined += 1;
            limits.check_walk(examined)?;
            walk.advance();
            if walk.value > speed * walk.delta {
                return Ok((false, false));
            }
        }
        Ok((true, pruned))
    }

    /// Computes `min{Δ ≥ 0 : eval(Δ) ≤ s·Δ}` exactly.
    ///
    /// Applied to the arrived demand bound this is Corollary 5's service
    /// resetting time (eq. (12)): the earliest instant after the mode
    /// switch by which a speed-`s` processor has provably drained all
    /// arrived demand.
    ///
    /// # Errors
    ///
    /// * [`AnalysisError::NonPositiveSpeed`] if `s ≤ 0`.
    /// * [`AnalysisError::BreakpointBudgetExhausted`] when no provable
    ///   stopping horizon is reached within the breakpoint budget.
    pub fn first_fit(
        &self,
        speed: Rational,
        limits: &AnalysisLimits,
    ) -> Result<FirstFit, AnalysisError> {
        self.first_fit_traced(speed, limits)
            .map(|(result, _)| result)
    }

    /// [`DemandProfile::first_fit`] plus how it was answered. A first-fit
    /// walk stops at its answer, never at the envelope horizon, so the
    /// trace's `pruned` flag is always `false` here.
    ///
    /// # Errors
    ///
    /// As for [`DemandProfile::first_fit`].
    pub fn first_fit_traced(
        &self,
        speed: Rational,
        limits: &AnalysisLimits,
    ) -> Result<(FirstFit, WalkTrace), AnalysisError> {
        if !speed.is_positive() {
            return Err(AnalysisError::NonPositiveSpeed);
        }
        if let Some(scaled) = &self.scaled {
            if let Some(result) = scaled.first_fit(speed, limits)? {
                return Ok((
                    result,
                    WalkTrace {
                        kind: WalkKind::Integer,
                        pruned: false,
                        lockstep: false,
                    },
                ));
            }
        }
        self.first_fit_exact(speed, limits).map(|result| {
            (
                result,
                WalkTrace {
                    kind: WalkKind::Rational,
                    pruned: false,
                    lockstep: false,
                },
            )
        })
    }

    /// The exact rational reference implementation of
    /// [`DemandProfile::first_fit`] — the fallback when the integer fast
    /// path overflows, kept public for differential tests and benches.
    ///
    /// # Errors
    ///
    /// As for [`DemandProfile::first_fit`].
    pub fn first_fit_exact(
        &self,
        speed: Rational,
        limits: &AnalysisLimits,
    ) -> Result<FirstFit, AnalysisError> {
        if !speed.is_positive() {
            return Err(AnalysisError::NonPositiveSpeed);
        }
        let mut walk = IncrementalWalk::new(&self.components, limits.max_breakpoints());
        if !walk.value.is_positive() {
            return Ok(FirstFit::At(Rational::ZERO));
        }
        let rate = self.rate();
        let hyperperiod = self.hyperperiod();

        let mut examined = 0usize;
        loop {
            examined += 1;
            limits.check_walk(examined)?;
            let segment_start = walk.delta;
            let value = walk.value;
            let segment_end = walk
                .peek_next()
                .expect("periodic curves have unbounded breakpoints");
            if value <= speed * segment_start {
                return Ok(FirstFit::At(segment_start));
            }
            let slope = Rational::integer(i128::from(walk.slope));
            if speed > slope {
                // Solve value + slope·(Δ − start) = speed·Δ.
                let crossing = (value - slope * segment_start) / (speed - slope);
                if crossing < segment_end {
                    return Ok(FirstFit::At(crossing));
                }
            }
            if speed <= rate {
                if let Some(hp) = hyperperiod {
                    if segment_start > hp {
                        // Supply slope never exceeds the long-run demand
                        // rate and one full hyperperiod showed no fit:
                        // the gap can only grow (demand(Δ+P) − s(Δ+P) ≥
                        // demand(Δ) − sΔ).
                        return Ok(FirstFit::Never);
                    }
                }
            }
            walk.advance();
        }
    }

    /// Builds the reset frontier — the full staircase `s ↦ first_fit(s)`
    /// — in a single breakpoint walk, stopping as soon as `min_speed`
    /// itself is served.
    ///
    /// The walk examines exactly the segments a plain
    /// [`DemandProfile::first_fit`] at `min_speed` would (same breakpoint
    /// budget consumption, same errors), but records every segment that
    /// lowers a serving threshold, so [`ResetFrontier::lookup`] afterwards
    /// answers *any* speed at or above `min_speed` — and often many below
    /// it — without walking again.
    ///
    /// The returned [`WalkKind`] reports whether the integer fast path
    /// built it.
    ///
    /// # Errors
    ///
    /// As for [`DemandProfile::first_fit`] at `min_speed` (including the
    /// budget exhaustion of a `min_speed ≤ rate()` build whose hyperperiod
    /// overflows).
    pub fn reset_frontier(
        &self,
        min_speed: Rational,
        limits: &AnalysisLimits,
    ) -> Result<(ResetFrontier, WalkKind), AnalysisError> {
        if !min_speed.is_positive() {
            return Err(AnalysisError::NonPositiveSpeed);
        }
        if let Some(scaled) = &self.scaled {
            if let Some(frontier) = scaled.reset_frontier(min_speed, limits)? {
                return Ok((frontier, WalkKind::Integer));
            }
        }
        self.reset_frontier_exact(min_speed, limits)
            .map(|frontier| (frontier, WalkKind::Rational))
    }

    /// The exact rational construction behind
    /// [`DemandProfile::reset_frontier`].
    fn reset_frontier_exact(
        &self,
        min_speed: Rational,
        limits: &AnalysisLimits,
    ) -> Result<ResetFrontier, AnalysisError> {
        let mut walk = IncrementalWalk::new(&self.components, limits.max_breakpoints());
        if !walk.value.is_positive() {
            return Ok(ResetFrontier::everything_fits_at_zero());
        }
        let rate = self.rate();
        let hyperperiod = self.hyperperiod();
        let mut builder = FrontierBuilder::new(min_speed);
        let mut examined = 0usize;
        loop {
            if builder.serves_min_speed() {
                break;
            }
            examined += 1;
            limits.check_walk(examined)?;
            let segment_start = walk.delta;
            let value = walk.value;
            let segment_end = walk
                .peek_next()
                .expect("periodic curves have unbounded breakpoints");
            let slope = Rational::integer(i128::from(walk.slope));
            // Closed threshold ψ: `s ≥ value/start` fits exactly at the
            // segment start (absent for the Δ = 0 segment — its value is
            // positive here, so no speed fits at 0).
            let closed_at = segment_start.is_positive().then(|| value / segment_start);
            // Open threshold θ: the crossing
            // `(value − slope·start)/(s − slope)` lands strictly inside
            // the segment iff `s > slope` and `s > φ_pre(end)` where
            // `φ_pre(end) = (value + slope·(end − start))/end` is the
            // pre-jump ratio at the segment's right end.
            let phi_pre = (value + slope * (segment_end - segment_start)) / segment_end;
            builder.push_segment(
                segment_start,
                value,
                walk.slope,
                closed_at,
                phi_pre.max(slope),
            );
            if min_speed <= rate {
                if let Some(hp) = hyperperiod {
                    if segment_start > hp {
                        // Mirrors first_fit's Never bail-out: min_speed is
                        // unserved after a full hyperperiod and can never
                        // be; the staircase above it is complete.
                        break;
                    }
                }
            }
            walk.advance();
        }
        Ok(builder.finish())
    }

    /// The infimum of `eval(Δ)/Δ` over `(0, horizon]`, early-stopped once
    /// it can no longer matter: scanning stops when the running infimum
    /// reaches `floor` or comes within `tolerance` of the long-run rate
    /// (the ratio's own limit), so the walk is horizon-bound even for
    /// astronomically large `horizon`.
    ///
    /// When the scan runs to completion and the result exceeds `floor`,
    /// it is the exact infimum — though a pre-jump limit at a segment end
    /// is *approached*, not attained, so a caller wanting a speed that
    /// provably fits must probe the returned value (one first-fit) and
    /// step up by its own resolution if the probe misses. When an early
    /// stop fires the result is a genuinely observed ratio at most
    /// `max(floor, rate + tolerance)` — still an upper bound on the
    /// infimum.
    ///
    /// This is the one-walk replacement for bisecting
    /// `minimal_speed_within_budget` queries: the minimal speed whose
    /// first fit lands within `horizon` is exactly this infimum.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::BreakpointBudgetExhausted`] if the scan's
    /// breakpoint budget runs out first.
    pub(crate) fn min_ratio_within(
        &self,
        horizon: Rational,
        floor: Rational,
        tolerance: Rational,
        limits: &AnalysisLimits,
    ) -> Result<(Rational, WalkKind), AnalysisError> {
        assert!(horizon.is_positive(), "horizon must be positive");
        assert!(tolerance.is_positive(), "tolerance must be positive");
        if let Some(scaled) = &self.scaled {
            if let Some(result) = scaled.min_ratio_within(horizon, floor, tolerance, limits)? {
                return Ok((result, WalkKind::Integer));
            }
        }
        self.min_ratio_within_exact(horizon, floor, tolerance, limits)
            .map(|result| (result, WalkKind::Rational))
    }

    /// The exact rational reference implementation of
    /// [`DemandProfile::min_ratio_within`] — the fallback when the
    /// integer fast path overflows.
    fn min_ratio_within_exact(
        &self,
        horizon: Rational,
        floor: Rational,
        tolerance: Rational,
        limits: &AnalysisLimits,
    ) -> Result<Rational, AnalysisError> {
        let mut walk = IncrementalWalk::new(&self.components, limits.max_breakpoints());
        if !walk.value.is_positive() {
            // A zero-at-zero profile is drained instantly at any speed.
            return Ok(Rational::ZERO);
        }
        // Stop once nothing below this can change the caller's answer:
        // ratios never go below `rate`, and `eval(Δ)/Δ ≤ rate + envelope/Δ`
        // guarantees the threshold is reached by Δ = envelope/tolerance,
        // so the scan is bounded even for astronomical horizons.
        let stop_at = floor.max(self.rate() + tolerance);
        let mut best: Option<Rational> = None;
        let mut examined = 0usize;
        loop {
            let segment_start = walk.delta;
            if segment_start > horizon {
                break;
            }
            examined += 1;
            limits.check_walk(examined)?;
            let value = walk.value;
            let segment_end = walk
                .peek_next()
                .expect("periodic curves have unbounded breakpoints");
            let slope = Rational::integer(i128::from(walk.slope));
            // Closed candidate at the segment start.
            if segment_start.is_positive() {
                let phi = value / segment_start;
                best = Some(best.map_or(phi, |b| b.min(phi)));
            }
            if segment_end <= horizon {
                // Pre-jump limit at the segment's right end.
                let phi_pre = (value + slope * (segment_end - segment_start)) / segment_end;
                best = Some(best.map_or(phi_pre, |b| b.min(phi_pre)));
            } else if horizon > segment_start {
                // The horizon cuts this segment: its interior point is
                // the rightmost in-domain candidate.
                let phi_cut = (value + slope * (horizon - segment_start)) / horizon;
                best = Some(best.map_or(phi_cut, |b| b.min(phi_cut)));
            }
            if best.is_some_and(|b| b <= stop_at) {
                break;
            }
            walk.advance();
        }
        Ok(best.expect("a positive-at-zero profile yields a candidate on its first segment"))
    }
}

impl Default for DemandProfile {
    /// The empty profile — identical to `DemandProfile::new(Vec::new())`
    /// (including its fast path, so equality with constructed empties
    /// holds).
    fn default() -> DemandProfile {
        DemandProfile::new(Vec::new())
    }
}

/// Breakpoint batches each live walk advances per round-robin turn of a
/// lockstep driver. Small enough that a batch's walk state (a few SoA
/// lanes) stays cache-resident across the turn, large enough that the
/// round-robin bookkeeping amortizes to noise; results are bit-identical
/// for *any* chunk size, so this is purely a locality knob.
pub(crate) const LOCKSTEP_CHUNK: usize = 64;

/// A heterogeneous resumable walk machine, so one lockstep driver can
/// interleave sup-ratio and fits walks in the same batch.
///
/// The variants differ in size, but boxing the large one would put a
/// heap allocation back on every lockstep walk — the machines live
/// inline in the driver's short-lived batch vector on purpose.
#[allow(clippy::large_enum_variant)]
pub(crate) enum AnyMachine {
    /// A [`SupRatioMachine`] walk.
    Sup(SupRatioMachine),
    /// A [`FitsMachine`] walk.
    Fits(FitsMachine),
}

/// The finished result of an [`AnyMachine`].
#[derive(Debug, Clone, Copy)]
pub(crate) enum AnyOutcome {
    /// `(sup ratio, envelope-pruned)`.
    Sup(SupRatio, bool),
    /// `(fits, envelope-pruned)`.
    Fits(bool, bool),
}

impl AnyMachine {
    fn step(
        &mut self,
        batches: usize,
        limits: &AnalysisLimits,
    ) -> Result<MachineStep<AnyOutcome>, AnalysisError> {
        Ok(match self {
            AnyMachine::Sup(machine) => match machine.step(batches, limits)? {
                MachineStep::Pending => MachineStep::Pending,
                MachineStep::Overflow => MachineStep::Overflow,
                MachineStep::Done((sup, pruned)) => MachineStep::Done(AnyOutcome::Sup(sup, pruned)),
            },
            AnyMachine::Fits(machine) => match machine.step(batches, limits)? {
                MachineStep::Pending => MachineStep::Pending,
                MachineStep::Overflow => MachineStep::Overflow,
                MachineStep::Done((fits, pruned)) => {
                    MachineStep::Done(AnyOutcome::Fits(fits, pruned))
                }
            },
        })
    }
}

/// Drives `live` machines round-robin, [`LOCKSTEP_CHUNK`] breakpoint
/// batches per machine per round, until all finish. Each machine writes
/// its slot: `Some(Ok)` on completion, `Some(Err)` on a budget error,
/// and leaves `None` on integer overflow — the caller then runs the
/// exact rational fallback for those slots.
///
/// Every machine carries its own limits, and per-walk state (`examined`
/// counts, budget checks) is tracked per machine, so results are
/// bit-identical to driving each machine alone — the interleaving
/// affects cache behavior only.
pub(crate) fn drive_lockstep(
    mut live: Vec<(usize, AnyMachine, &AnalysisLimits)>,
    slots: &mut [Option<Result<AnyOutcome, AnalysisError>>],
) {
    while !live.is_empty() {
        live.retain_mut(
            |(i, machine, limits)| match machine.step(LOCKSTEP_CHUNK, limits) {
                Ok(MachineStep::Pending) => true,
                Ok(MachineStep::Done(outcome)) => {
                    slots[*i] = Some(Ok(outcome));
                    false
                }
                Ok(MachineStep::Overflow) => false,
                Err(error) => {
                    slots[*i] = Some(Err(error));
                    false
                }
            },
        );
    }
}

/// [`DemandProfile::sup_ratio_traced`] over many profiles at once,
/// advancing all integer fast-path walks in chunked lockstep for cache
/// locality. Results (and errors) are bit-identical to querying each
/// profile on its own; profiles whose fast path overflows (or is absent)
/// fall back to the exact rational walk afterwards, exactly as the
/// sequential query would. The returned traces report `lockstep: true`
/// for walks the batch driver completed.
///
/// # Errors
///
/// Per slot, as for [`DemandProfile::sup_ratio`].
pub fn sup_ratio_many(
    profiles: &[&DemandProfile],
    limits: &AnalysisLimits,
) -> Vec<Result<(SupRatio, WalkTrace), AnalysisError>> {
    let mut slots: Vec<Option<Result<AnyOutcome, AnalysisError>>> =
        (0..profiles.len()).map(|_| None).collect();
    let live = profiles
        .iter()
        .enumerate()
        .filter_map(|(i, profile)| {
            let machine = SupRatioMachine::new(profile.scaled()?, limits)?;
            Some((i, AnyMachine::Sup(machine), limits))
        })
        .collect();
    drive_lockstep(live, &mut slots);
    profiles
        .iter()
        .zip(slots)
        .map(|(profile, slot)| match slot {
            Some(Ok(AnyOutcome::Sup(sup, pruned))) => Ok((
                sup,
                WalkTrace {
                    kind: WalkKind::Integer,
                    pruned,
                    lockstep: true,
                },
            )),
            Some(Ok(AnyOutcome::Fits(..))) => unreachable!("sup machines yield sup outcomes"),
            Some(Err(error)) => Err(error),
            None => profile.sup_ratio_exact_traced(limits).map(|(sup, pruned)| {
                (
                    sup,
                    WalkTrace {
                        kind: WalkKind::Rational,
                        pruned,
                        lockstep: false,
                    },
                )
            }),
        })
        .collect()
}

/// [`DemandProfile::fits_traced`] over many `(profile, speed)` queries at
/// once, advancing all integer fast-path walks in chunked lockstep — the
/// batch counterpart of [`sup_ratio_many`], with the same bit-identity
/// contract.
///
/// # Errors
///
/// Per slot, as for [`DemandProfile::fits`] (including
/// [`AnalysisError::NonPositiveSpeed`] for that slot's speed).
pub fn fits_many(
    queries: &[(&DemandProfile, Rational)],
    limits: &AnalysisLimits,
) -> Vec<Result<(bool, WalkTrace), AnalysisError>> {
    let mut slots: Vec<Option<Result<AnyOutcome, AnalysisError>>> =
        (0..queries.len()).map(|_| None).collect();
    let mut live = Vec::new();
    for (i, (profile, speed)) in queries.iter().enumerate() {
        if !speed.is_positive() {
            slots[i] = Some(Err(AnalysisError::NonPositiveSpeed));
            continue;
        }
        if let Some(machine) = profile
            .scaled()
            .and_then(|s| FitsMachine::new(s, *speed, limits))
        {
            live.push((i, AnyMachine::Fits(machine), limits));
        }
    }
    drive_lockstep(live, &mut slots);
    queries
        .iter()
        .zip(slots)
        .map(|((profile, speed), slot)| match slot {
            Some(Ok(AnyOutcome::Fits(fits, pruned))) => Ok((
                fits,
                WalkTrace {
                    kind: WalkKind::Integer,
                    pruned,
                    lockstep: true,
                },
            )),
            Some(Ok(AnyOutcome::Sup(..))) => unreachable!("fits machines yield fits outcomes"),
            Some(Err(error)) => Err(error),
            None => profile
                .fits_exact_traced(*speed, limits)
                .map(|(fits, pruned)| {
                    (
                        fits,
                        WalkTrace {
                            kind: WalkKind::Rational,
                            pruned,
                            lockstep: false,
                        },
                    )
                }),
        })
        .collect()
}

impl FromIterator<PeriodicDemand> for DemandProfile {
    fn from_iter<I: IntoIterator<Item = PeriodicDemand>>(iter: I) -> DemandProfile {
        DemandProfile::new(iter.into_iter().collect())
    }
}

/// One recorded walk segment of a [`ResetFrontier`]: a breakpoint
/// interval that lowered a serving threshold when the frontier was
/// built, together with the data needed to reproduce
/// [`DemandProfile::first_fit`]'s answer inside it.
#[derive(Debug, Clone, PartialEq, Eq)]
struct FrontierRecord {
    /// Segment start `Δₖ`.
    start: Rational,
    /// Post-jump demand value at `Δₖ`.
    value: Rational,
    /// Integer demand slope on `[Δₖ, Δₖ₊₁)`.
    slope: i64,
    /// Closed threshold `ψₖ = value/start`: any `s ≥ ψₖ` fits exactly at
    /// `start`. Absent for the `Δ = 0` segment of a positive-at-zero
    /// profile (nothing fits at zero).
    closed_at: Option<Rational>,
    /// Open threshold `θₖ = max(slope, φ_pre(end))`: any `s > θₖ`
    /// (that fails the closed test) crosses demand strictly inside the
    /// segment at `(value − slope·start)/(s − slope)`.
    open_above: Rational,
}

impl FrontierRecord {
    /// Whether this record serves `speed`, and if so the exact first-fit
    /// instant — the same closed-then-crossing decision
    /// [`DemandProfile::first_fit`] makes on this segment.
    fn serve(&self, speed: Rational) -> Option<Rational> {
        if self.closed_at.is_some_and(|psi| speed >= psi) {
            return Some(self.start);
        }
        if speed > self.open_above {
            let slope = Rational::integer(i128::from(self.slope));
            return Some((self.value - slope * self.start) / (speed - slope));
        }
        None
    }
}

/// A [`FrontierRecord`] kept on the integer fast path's common timebase:
/// the same segment data as raw scaled integers, with no reduced
/// rationals built at record time. Nearly every walked segment lowers a
/// serving threshold and is recorded, so the integer build defers all
/// gcd-normalizing construction to the one record a lookup actually
/// lands on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ScaledFrontierRecord {
    /// Segment start `Δₖ·K` on the timebase `K`.
    pub(crate) start: i128,
    /// Post-jump demand `value·K` at the segment start.
    pub(crate) value: i128,
    /// Integer demand slope on the segment (scale-free).
    pub(crate) slope: i64,
    /// Raw open threshold `max(φ_pre(end), slope)` as a fraction with a
    /// positive denominator; the scale cancels in both candidates.
    pub(crate) open_num: i128,
    /// Denominator of the raw open threshold.
    pub(crate) open_den: i128,
}

impl ScaledFrontierRecord {
    /// The exact-representation record this scaled record denotes:
    /// `Rational::new`'s canonical reduction cancels the scale, so every
    /// field is bit-identical to what the exact rational build records.
    fn to_exact(&self, scale: i128) -> FrontierRecord {
        FrontierRecord {
            start: Rational::new(self.start, scale),
            value: Rational::new(self.value, scale),
            slope: self.slope,
            closed_at: (self.start > 0).then(|| Rational::new(self.value, self.start)),
            open_above: Rational::new(self.open_num, self.open_den),
        }
    }

    /// [`FrontierRecord::serve`] without materializing the record: the
    /// threshold tests are raw cross-multiplies, and only a served
    /// lookup builds its (reduced) answer. Falls back to the exact
    /// record on `i128` overflow.
    fn serve(&self, scale: i128, speed: Rational) -> Option<Rational> {
        // Closed test: speed ≥ value/start (absent when start = 0).
        if self.start > 0 {
            match cmp_raw(speed, self.value, self.start) {
                Some(Ordering::Greater | Ordering::Equal) => {
                    return Some(Rational::new(self.start, scale));
                }
                Some(Ordering::Less) => {}
                None => return self.to_exact(scale).serve(speed),
            }
        }
        // Crossing test: speed > max(φ_pre, slope), then the crossing
        // (value − slope·start)/(speed − slope) with the scale folded
        // into the denominator:
        // ((v' − m·Δ')/K)/((p − m·q)/q) = (v' − m·Δ')·q / (K·(p − m·q)).
        match cmp_raw(speed, self.open_num, self.open_den) {
            Some(Ordering::Greater) => {}
            Some(_) => return None,
            None => return self.to_exact(scale).serve(speed),
        }
        let slope = i128::from(self.slope);
        let exact = || self.to_exact(scale).serve(speed);
        let Some(num) = slope
            .checked_mul(self.start)
            .and_then(|ms| self.value.checked_sub(ms))
            .and_then(|a| a.checked_mul(speed.denom()))
        else {
            return exact();
        };
        let Some(den) = slope
            .checked_mul(speed.denom())
            .and_then(|mq| speed.numer().checked_sub(mq))
            .and_then(|d| d.checked_mul(scale))
        else {
            return exact();
        };
        Some(Rational::new(num, den))
    }
}

/// `speed.cmp(&(num/den))` by checked cross-multiplication (`den > 0`);
/// `None` when a product overflows `i128`.
fn cmp_raw(speed: Rational, num: i128, den: i128) -> Option<Ordering> {
    let lhs = speed.numer().checked_mul(den)?;
    let rhs = num.checked_mul(speed.denom())?;
    Some(lhs.cmp(&rhs))
}

/// The full non-increasing staircase `s ↦ Δ_R(s)` of a demand profile,
/// built by one breakpoint walk ([`DemandProfile::reset_frontier`]).
///
/// Every speed at or above the `min_speed` the frontier was built for is
/// covered; [`ResetFrontier::lookup`] then answers in time linear in the
/// (small) number of *records* — segments that lowered a serving
/// threshold — instead of re-walking breakpoints, and returns instants
/// bit-identical to a fresh [`DemandProfile::first_fit`] walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResetFrontier {
    repr: FrontierRepr,
    /// The profile's demand at `Δ = 0` is zero, so every positive speed
    /// fits instantly.
    fits_at_zero: bool,
}

/// The two record representations behind a [`ResetFrontier`]: reduced
/// rationals from the exact build, or raw scaled integers from the
/// integer fast path (whose lookups materialize rationals only for the
/// record that serves). Both answer lookups bit-identically.
#[derive(Debug, Clone, PartialEq, Eq)]
enum FrontierRepr {
    Exact {
        records: Vec<FrontierRecord>,
        /// Running minimum of the closed thresholds: `s ≥ closed_cover`
        /// is served by some record's closed test.
        closed_cover: Option<Rational>,
        /// Running minimum of the open thresholds: `s > open_cover` is
        /// served by some record's crossing test.
        open_cover: Option<Rational>,
    },
    Scaled {
        /// The common timebase every record's `start`/`value` is on.
        scale: i128,
        records: Vec<ScaledFrontierRecord>,
        /// As for the exact representation, but raw unreduced fractions
        /// (positive denominators).
        closed_cover: Option<(i128, i128)>,
        open_cover: Option<(i128, i128)>,
    },
}

impl ResetFrontier {
    /// The frontier of a profile with zero demand at `Δ = 0`.
    pub(crate) fn everything_fits_at_zero() -> ResetFrontier {
        ResetFrontier {
            repr: FrontierRepr::Exact {
                records: Vec::new(),
                closed_cover: None,
                open_cover: None,
            },
            fits_at_zero: true,
        }
    }

    /// A frontier built by the integer fast path on timebase `scale`.
    pub(crate) fn from_scaled(
        scale: i128,
        records: Vec<ScaledFrontierRecord>,
        closed_cover: Option<(i128, i128)>,
        open_cover: Option<(i128, i128)>,
    ) -> ResetFrontier {
        ResetFrontier {
            repr: FrontierRepr::Scaled {
                scale,
                records,
                closed_cover,
                open_cover,
            },
            fits_at_zero: false,
        }
    }

    /// Whether [`ResetFrontier::lookup`] can answer for `speed` without
    /// another walk. Coverage is upward-closed: everything at or above
    /// the build's `min_speed` is covered.
    #[must_use]
    pub fn covers(&self, speed: Rational) -> bool {
        if !speed.is_positive() {
            return false;
        }
        if self.fits_at_zero {
            return true;
        }
        match &self.repr {
            FrontierRepr::Exact {
                closed_cover,
                open_cover,
                ..
            } => {
                closed_cover.is_some_and(|psi| speed >= psi)
                    || open_cover.is_some_and(|theta| speed > theta)
            }
            FrontierRepr::Scaled {
                closed_cover,
                open_cover,
                ..
            } => {
                closed_cover.is_some_and(|(num, den)| {
                    match cmp_raw(speed, num, den) {
                        Some(ord) => ord != Ordering::Less,
                        // Overflowing cross-multiply: reduce and retry.
                        None => speed >= Rational::new(num, den),
                    }
                }) || open_cover.is_some_and(|(num, den)| match cmp_raw(speed, num, den) {
                    Some(ord) => ord == Ordering::Greater,
                    None => speed > Rational::new(num, den),
                })
            }
        }
    }

    /// The exact first instant at which a supply of slope `speed` drains
    /// all arrived demand — bit-identical to
    /// [`DemandProfile::first_fit`] at that speed — or `None` when
    /// `speed` is below the frontier's covered range (an uncovered speed
    /// needs a fresh walk; it may or may not fit).
    #[must_use]
    pub fn lookup(&self, speed: Rational) -> Option<FirstFit> {
        if !speed.is_positive() {
            return None;
        }
        if self.fits_at_zero {
            return Some(FirstFit::At(Rational::ZERO));
        }
        if !self.covers(speed) {
            return None;
        }
        // Records are in breakpoint order, so the first serving record is
        // the segment a plain walk would have stopped at: any earlier
        // segment that served `speed` would have lowered the same
        // threshold and been recorded itself.
        match &self.repr {
            FrontierRepr::Exact { records, .. } => records
                .iter()
                .find_map(|record| record.serve(speed))
                .map(FirstFit::At),
            FrontierRepr::Scaled { scale, records, .. } => records
                .iter()
                .find_map(|record| record.serve(*scale, speed))
                .map(FirstFit::At),
        }
    }

    /// Repairs this frontier across a task-set delta whose removed and
    /// added components are all zero on `[0, cut)` (`cut = None`: the
    /// changed components are identically zero, so the whole staircase
    /// survives). Returns the surviving frontier, or `None` when no
    /// record can be kept and the next query must re-walk.
    ///
    /// Demand below `cut` is bit-identical before and after the delta,
    /// so every record whose *whole* segment lies below `cut` still
    /// reproduces [`DemandProfile::first_fit`] on the new profile: its
    /// `value`/`slope`/threshold data only describe demand inside the
    /// segment, and both the closed answer (the segment start) and the
    /// crossing answer land strictly inside it. A record's segment ends
    /// at the next breakpoint, which is at most the next *record's*
    /// start — that is the bound checked here, which conservatively
    /// drops the final record (its end is not stored). Records are kept
    /// in breakpoint order as a prefix, so "first serving record" —
    /// the lookup rule — still selects the segment a fresh walk would
    /// stop at, and the coverage thresholds are refolded over the kept
    /// prefix (a covered speed is thus still served by a kept record).
    #[must_use]
    pub(crate) fn truncated_below(self, cut: Option<Rational>) -> Option<ResetFrontier> {
        let Some(cut) = cut else {
            return Some(self);
        };
        if self.fits_at_zero {
            // Demand at Δ = 0 is still zero (the changed components are
            // zero on [0, cut) ∋ 0), so every positive speed still fits
            // instantly — but only when the cut is not itself at zero.
            return cut.is_positive().then_some(self);
        }
        match self.repr {
            FrontierRepr::Exact { records, .. } => {
                let kept = records
                    .iter()
                    .skip(1)
                    .take_while(|r| r.start <= cut)
                    .count();
                if kept == 0 {
                    return None;
                }
                let mut records = records;
                records.truncate(kept);
                let closed_cover = records.iter().filter_map(|r| r.closed_at).min();
                let open_cover = records.iter().map(|r| r.open_above).min();
                Some(ResetFrontier {
                    repr: FrontierRepr::Exact {
                        records,
                        closed_cover,
                        open_cover,
                    },
                    fits_at_zero: false,
                })
            }
            FrontierRepr::Scaled { scale, records, .. } => {
                let kept = records
                    .iter()
                    .skip(1)
                    .take_while(|r| Rational::new(r.start, scale) <= cut)
                    .count();
                if kept == 0 {
                    return None;
                }
                let mut records = records;
                records.truncate(kept);
                // Raw running minima, exactly as the integer builder
                // tracks them; an overflowing cross-multiply falls back
                // to the reduced comparison (value-equal either way).
                let raw_min = |acc: Option<(i128, i128)>, cand: (i128, i128)| match acc {
                    None => Some(cand),
                    Some(best) => {
                        let cand_smaller = match cmp_raw(
                            Rational::new(cand.0, cand.1),
                            best.0,
                            best.1,
                        ) {
                            Some(ord) => ord == Ordering::Less,
                            None => {
                                Rational::new(cand.0, cand.1) < Rational::new(best.0, best.1)
                            }
                        };
                        Some(if cand_smaller { cand } else { best })
                    }
                };
                let closed_cover = records
                    .iter()
                    .filter(|r| r.start > 0)
                    .map(|r| (r.value, r.start))
                    .fold(None, raw_min);
                let open_cover = records
                    .iter()
                    .map(|r| (r.open_num, r.open_den))
                    .fold(None, raw_min);
                Some(ResetFrontier {
                    repr: FrontierRepr::Scaled {
                        scale,
                        records,
                        closed_cover,
                        open_cover,
                    },
                    fits_at_zero: false,
                })
            }
        }
    }

    /// Number of recorded threshold-improving segments (diagnostics).
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.repr {
            FrontierRepr::Exact { records, .. } => records.len(),
            FrontierRepr::Scaled { records, .. } => records.len(),
        }
    }

    /// Whether the frontier holds no records (an empty or zero-at-zero
    /// profile, or a build that bailed before any segment).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Shared accumulation logic behind both the exact and the integer
/// fast-path frontier builds: pushes exactly the segments that lower a
/// serving threshold and tracks when the build's `min_speed` is served.
pub(crate) struct FrontierBuilder {
    min_speed: Rational,
    records: Vec<FrontierRecord>,
    closed_cover: Option<Rational>,
    open_cover: Option<Rational>,
}

impl FrontierBuilder {
    pub(crate) fn new(min_speed: Rational) -> FrontierBuilder {
        FrontierBuilder {
            min_speed,
            records: Vec::new(),
            closed_cover: None,
            open_cover: None,
        }
    }

    /// Whether the segments pushed so far already serve the build's
    /// `min_speed` — the walk's stopping condition, equivalent to a plain
    /// first-fit walk at `min_speed` having returned.
    pub(crate) fn serves_min_speed(&self) -> bool {
        self.closed_cover.is_some_and(|psi| self.min_speed >= psi)
            || self.open_cover.is_some_and(|theta| self.min_speed > theta)
    }

    /// Considers one walk segment; records it iff it lowers the closed or
    /// the open serving threshold.
    pub(crate) fn push_segment(
        &mut self,
        start: Rational,
        value: Rational,
        slope: i64,
        closed_at: Option<Rational>,
        open_above: Rational,
    ) {
        let improves_closed =
            closed_at.is_some_and(|psi| self.closed_cover.is_none_or(|cur| psi < cur));
        let improves_open = self.open_cover.is_none_or(|cur| open_above < cur);
        if improves_closed || improves_open {
            self.records.push(FrontierRecord {
                start,
                value,
                slope,
                closed_at,
                open_above,
            });
            if improves_closed {
                self.closed_cover = closed_at;
            }
            if improves_open {
                self.open_cover = Some(open_above);
            }
        }
    }

    pub(crate) fn finish(self) -> ResetFrontier {
        ResetFrontier {
            repr: FrontierRepr::Exact {
                records: self.records,
                closed_cover: self.closed_cover,
                open_cover: self.open_cover,
            },
            fits_at_zero: false,
        }
    }
}

/// How an [`IncrementalWalk`] schedules its event streams.
///
/// Every stream is strictly periodic, so the walk needs only "next
/// pending time" per stream plus their minimum. When all stream times
/// and periods fit one integer grid (with headroom for the caller's
/// advance budget), the schedule keeps them as flat `i128` lanes and
/// each batch is one linear scan — no rational time arithmetic, no heap
/// sift, and the structure-of-arrays layout of [`crate::kernel`]. The
/// heap fallback covers profiles whose timebase overflows the grid.
///
/// Grid times are exact (`t = t'·K` with `K` the lcm of the stream
/// denominators) and [`IncrementalWalk::peek_next`] rebuilds rationals
/// through `Rational::new`'s canonical reduction, so both schedules
/// produce representation-identical breakpoints in the same order —
/// same-time events fire in stream creation order either way (the heap
/// keys are `(time, stream)` with streams numbered in creation order).
enum Schedule {
    /// Flat integer lanes on the common timebase `scale`.
    Grid {
        scale: i128,
        /// The grid time already advanced to (`delta·scale`).
        at: i128,
        /// Minimum of `times` (meaningless while `times` is empty).
        next: i128,
        /// `next/scale` reduced once per advance, so peeks and the
        /// segment bookkeeping don't re-run the gcd every breakpoint.
        next_q: Rational,
        times: Vec<i128>,
        periods: Vec<i128>,
    },
    /// Exact rational times for profiles off the integer grid.
    Heap {
        heap: BinaryHeap<Reverse<(Rational, usize)>>,
        periods: Vec<Rational>,
    },
}

/// Walks the merged breakpoint stream of a profile while maintaining the
/// exact curve value and slope incrementally — O(events) rational
/// operations per batch instead of a full O(components) re-evaluation
/// with divisions at every breakpoint.
///
/// Invariant after construction / each [`IncrementalWalk::advance`]:
/// `value == Σ_i eval_i(delta)` (the right-continuous, post-jump value)
/// and `slope` is the number of components inside their unit-slope ramp
/// on the right of `delta`.
///
/// Each event stream fires a precomputed `(value, slope)` delta: a wrap
/// stream adds `per_period` minus the carry the ramp reset forfeits, a
/// ramp-start stream adds the jump (and slope 1 for a true ramp), a
/// ramp-end stream subtracts slope 1. Value arithmetic is identical
/// under both schedules — only event *timing* moves to the grid.
struct IncrementalWalk {
    fire_value: Vec<Rational>,
    fire_slope: Vec<i64>,
    schedule: Schedule,
    delta: Rational,
    value: Rational,
    slope: i64,
}

impl IncrementalWalk {
    /// Builds the walk. `max_advances` bounds how many times the caller
    /// will [`IncrementalWalk::advance`]; the grid schedule is chosen
    /// only when every stream time stays in `i128` for that many firings
    /// (queries pass their breakpoint budget — the walk errors out of it
    /// before ever advancing further).
    fn new(components: &[PeriodicDemand], max_advances: usize) -> IncrementalWalk {
        let mut fire_value = Vec::with_capacity(components.len() * 2);
        let mut fire_slope = Vec::with_capacity(components.len() * 2);
        let mut starts = Vec::with_capacity(components.len() * 2);
        let mut periods = Vec::with_capacity(components.len() * 2);
        let mut value = Rational::ZERO;
        let mut slope = 0i64;
        for c in components {
            let ramp_restarts_at_wrap = c.ramp_start.is_zero();
            // Value and slope contributions at Δ = 0.
            value += c.constant;
            if ramp_restarts_at_wrap {
                value += c.jump;
                if c.ramp_len.is_positive() {
                    slope += 1;
                }
            }
            // r just below a period boundary: the ramp clipped at T.
            let carry_at_wrap = c.jump + (c.period - c.ramp_start).min(c.ramp_len);
            let r_at_zero = if ramp_restarts_at_wrap {
                c.jump
            } else {
                Rational::ZERO
            };
            // Just below the wrap the ramp is active iff it has not
            // finished strictly before the period end (a ramp ending
            // exactly at T is still climbing at T⁻).
            let in_ramp_before_wrap =
                c.ramp_len.is_positive() && (c.period - c.ramp_start) <= c.ramp_len;
            let in_ramp_after_wrap = ramp_restarts_at_wrap && c.ramp_len.is_positive();
            // Wrap stream: crossing a period boundary `kT` (`k ≥ 1`)
            // gains `per_period` while the carry term resets from its
            // clipped full value to `r(0)`.
            starts.push(c.period);
            periods.push(c.period);
            fire_value.push(c.per_period - carry_at_wrap + r_at_zero);
            fire_slope.push(i64::from(in_ramp_after_wrap) - i64::from(in_ramp_before_wrap));
            if c.ramp_start.is_positive() {
                // A ramp of positive length raises the slope; a pure
                // step (ramp_len = 0) does not.
                starts.push(c.ramp_start);
                periods.push(c.period);
                fire_value.push(c.jump);
                fire_slope.push(i64::from(!c.ramp_len.is_zero()));
            }
            // Ramp ends are needed even when the ramp starts at offset 0
            // (the wrap event restarts it); clipped ramps (running past
            // the period end) end via the wrap's slope delta instead.
            let ramp_end = c.ramp_start + c.ramp_len;
            if c.ramp_len.is_positive() && ramp_end < c.period {
                starts.push(ramp_end);
                periods.push(c.period);
                fire_value.push(Rational::ZERO);
                fire_slope.push(-1);
            }
        }
        let schedule =
            Schedule::grid(&starts, &periods, max_advances).unwrap_or_else(|| Schedule::Heap {
                heap: starts
                    .iter()
                    .enumerate()
                    .map(|(s, &t)| Reverse((t, s)))
                    .collect(),
                periods,
            });
        IncrementalWalk {
            fire_value,
            fire_slope,
            schedule,
            delta: Rational::ZERO,
            value,
            slope,
        }
    }

    /// The time of the next event batch, if any.
    fn peek_next(&self) -> Option<Rational> {
        match &self.schedule {
            Schedule::Grid { next_q, times, .. } => (!times.is_empty()).then_some(*next_q),
            Schedule::Heap { heap, .. } => heap.peek().map(|Reverse((t, _))| *t),
        }
    }

    /// Advances to the next event batch, applying the linear segment and
    /// every event due at that instant.
    ///
    /// # Panics
    ///
    /// Panics on an empty profile (no events exist), or past the
    /// `max_advances` bound the grid schedule was proofed for.
    fn advance(&mut self) {
        let IncrementalWalk {
            fire_value,
            fire_slope,
            schedule,
            delta,
            value,
            slope,
        } = self;
        match schedule {
            Schedule::Grid {
                scale,
                at,
                next,
                next_q,
                times,
                periods,
            } => {
                assert!(!times.is_empty(), "advance on an empty profile");
                let due = *next;
                // Segment contribution `slope·(next_q − delta)` computed
                // on the grid: one reduction through `Rational::new`
                // instead of a sub/mul rational chain. Canonical forms
                // are unique, so the sum is bit-identical; a slope of
                // zero contributes exactly `ZERO` either way.
                if *slope != 0 {
                    match (due - *at).checked_mul(i128::from(*slope)) {
                        Some(n) => *value += Rational::new(n, *scale),
                        None => {
                            *value += Rational::integer(i128::from(*slope)) * (*next_q - *delta);
                        }
                    }
                }
                *delta = *next_q;
                *at = due;
                let mut new_min = i128::MAX;
                for j in 0..times.len() {
                    let mut t = times[j];
                    if t == due {
                        *value += fire_value[j];
                        *slope += fire_slope[j];
                        t = t
                            .checked_add(periods[j])
                            .expect("grid schedule overflow-proofed at construction");
                        times[j] = t;
                    }
                    new_min = new_min.min(t);
                }
                *next = new_min;
                *next_q = Rational::new(new_min, *scale);
            }
            Schedule::Heap { heap, periods } => {
                let Some(&Reverse((next_t, _))) = heap.peek() else {
                    panic!("advance on an empty profile");
                };
                *value += Rational::integer(i128::from(*slope)) * (next_t - *delta);
                *delta = next_t;
                while let Some(&Reverse((t, s))) = heap.peek() {
                    if t != next_t {
                        break;
                    }
                    heap.pop();
                    *value += fire_value[s];
                    *slope += fire_slope[s];
                    heap.push(Reverse((t + periods[s], s)));
                }
            }
        }
    }
}

impl Schedule {
    /// Attempts the integer grid over the stream start times and periods:
    /// `scale` is the lcm of their denominators, and eligibility requires
    /// every stream's time to stay in `i128` after `max_advances` firings
    /// (each advance moves a stream by at most one period). `None` falls
    /// back to the heap.
    fn grid(starts: &[Rational], periods: &[Rational], max_advances: usize) -> Option<Schedule> {
        let mut scale: i128 = 1;
        for q in starts.iter().chain(periods) {
            scale = lcm_i128(scale, q.denom())?;
        }
        let times: Vec<i128> = starts
            .iter()
            .map(|&q| crate::scaled::to_scaled(q, scale))
            .collect::<Option<_>>()?;
        let periods: Vec<i128> = periods
            .iter()
            .map(|&q| crate::scaled::to_scaled(q, scale))
            .collect::<Option<_>>()?;
        // Overflow headroom: after A advances a stream sits at most at
        // `start + A·period`, and the A-th advance may compute one more
        // reschedule — proof the worst case with margin so the advance
        // loop's reschedule can never wrap.
        let advances = i128::try_from(max_advances).ok()?.checked_add(2)?;
        let start_max = times.iter().copied().max().unwrap_or(0);
        let period_max = periods.iter().copied().max().unwrap_or(0);
        period_max.checked_mul(advances)?.checked_add(start_max)?;
        let next = times.iter().copied().min().unwrap_or(0);
        Some(Schedule::Grid {
            scale,
            at: 0,
            next,
            next_q: Rational::new(next, scale),
            times,
            periods,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i128) -> Rational {
        Rational::integer(v)
    }

    fn rat(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    /// DBF_HI-shaped component of the paper's reconstructed τ1:
    /// T=5, C_L=1, C_H=2, D_L=2, D_H=5 → offset 3, jump 1, ramp 1.
    fn tau1_hi_curve() -> PeriodicDemand {
        PeriodicDemand::new(int(5), int(2), int(0), int(3), int(1), int(1))
    }

    #[test]
    fn step_curve_matches_dbf_lo_formula() {
        // T=10, D=4, C=3.
        let c = PeriodicDemand::step(int(10), int(4), int(3));
        let dbf = |delta: i128| {
            // max(floor((Δ-D)/T)+1, 0) * C
            (((delta - 4).div_euclid(10) + 1).max(0)) * 3
        };
        for delta in 0..=45 {
            assert_eq!(c.eval(int(delta)), int(dbf(delta)), "Δ={delta}");
        }
    }

    #[test]
    fn ramp_curve_values() {
        let c = tau1_hi_curve();
        assert_eq!(c.eval(int(0)), int(0));
        assert_eq!(c.eval(int(2)), int(0));
        assert_eq!(c.eval(int(3)), int(1)); // jump C_H - C_L at offset 3
        assert_eq!(c.eval(rat(7, 2)), rat(3, 2)); // mid-ramp
        assert_eq!(c.eval(int(4)), int(2)); // ramp complete = C_H
        assert_eq!(c.eval(rat(9, 2)), int(2)); // plateau
        assert_eq!(c.eval(int(5)), int(2)); // new period, r resets
        assert_eq!(c.eval(int(8)), int(3));
        assert_eq!(c.eval(int(9)), int(4));
    }

    #[test]
    fn curve_is_non_decreasing() {
        let c = tau1_hi_curve();
        let mut prev = Rational::ZERO;
        for i in 0..200 {
            let delta = rat(i, 7);
            let v = c.eval(delta);
            assert!(v >= prev, "decrease at Δ={delta}");
            prev = v;
        }
    }

    #[test]
    fn rate_and_burst_bound_the_curve() {
        let c = tau1_hi_curve();
        assert_eq!(c.rate(), rat(2, 5));
        for i in 1..300 {
            let delta = rat(i, 3);
            assert!(c.eval(delta) <= c.rate() * delta + c.burst());
        }
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn excess_jump_is_rejected() {
        let _ = PeriodicDemand::new(int(5), int(1), int(0), int(0), int(2), int(0));
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_is_rejected() {
        let _ = PeriodicDemand::new(int(0), int(1), int(0), int(0), int(1), int(0));
    }

    #[test]
    fn sup_ratio_single_implicit_task() {
        // T = D = 4, C = 1: sup at Δ=4, ratio 1/4.
        let p = DemandProfile::new(vec![PeriodicDemand::step(int(4), int(4), int(1))]);
        let sup = p.sup_ratio(&AnalysisLimits::default()).expect("finite");
        assert_eq!(
            sup,
            SupRatio::Finite {
                value: rat(1, 4),
                witness: Some(int(4))
            }
        );
    }

    #[test]
    fn sup_ratio_constrained_deadline_task() {
        // T=10, D=2, C=1: densest at Δ=2: 1/2.
        let p = DemandProfile::new(vec![PeriodicDemand::step(int(10), int(2), int(1))]);
        let sup = p.sup_ratio(&AnalysisLimits::default()).expect("finite");
        assert_eq!(
            sup,
            SupRatio::Finite {
                value: rat(1, 2),
                witness: Some(int(2))
            }
        );
    }

    #[test]
    fn sup_ratio_of_table1_reconstruction_is_four_thirds() {
        // τ1 DBF_HI plus τ2 (LO, no degradation): T=10, D_H=D_L=10, C=3
        // → offset 0, jump 0, ramp 3.
        let tau2 = PeriodicDemand::new(int(10), int(3), int(0), int(0), int(0), int(3));
        let p = DemandProfile::new(vec![tau1_hi_curve(), tau2]);
        let sup = p.sup_ratio(&AnalysisLimits::default()).expect("finite");
        assert_eq!(
            sup,
            SupRatio::Finite {
                value: rat(4, 3),
                witness: Some(int(3))
            }
        );
    }

    #[test]
    fn sup_ratio_detects_unbounded_demand_at_zero() {
        // Jump at offset 0 means demand at Δ=0 is positive: s_min = ∞.
        let c = PeriodicDemand::new(int(5), int(2), int(0), int(0), int(1), int(1));
        let p = DemandProfile::new(vec![c]);
        assert_eq!(
            p.sup_ratio(&AnalysisLimits::default()).expect("ok"),
            SupRatio::Unbounded
        );
    }

    #[test]
    fn sup_ratio_of_empty_profile_is_zero() {
        let p = DemandProfile::default();
        assert_eq!(
            p.sup_ratio(&AnalysisLimits::default()).expect("ok"),
            SupRatio::Finite {
                value: Rational::ZERO,
                witness: None
            }
        );
    }

    #[test]
    fn sup_ratio_matches_dense_scan() {
        // Two tasks with awkward parameters; cross-check against a dense
        // scan at 1/64 resolution over 4 hyperperiods.
        let a = PeriodicDemand::new(int(6), int(3), int(0), rat(5, 2), int(1), int(2));
        let b = PeriodicDemand::step(int(4), int(3), int(1));
        let p = DemandProfile::new(vec![a, b]);
        let sup = p.sup_ratio(&AnalysisLimits::default()).expect("finite");
        let SupRatio::Finite { value, witness } = sup else {
            panic!("finite expected");
        };
        let mut best_scan = Rational::ZERO;
        for i in 1..=(48 * 64) {
            let delta = rat(i, 64);
            best_scan = best_scan.max(p.eval(delta) / delta);
        }
        assert!(value >= best_scan, "sup {value} below scan {best_scan}");
        // The witness attains the reported value.
        let w = witness.expect("witness");
        assert_eq!(p.eval(w) / w, value);
    }

    #[test]
    fn sup_ratio_respects_breakpoint_budget() {
        // Coprime periods with large lcm under a tiny budget. Rate is
        // high enough that demand-at-breakpoints stays below rate for a
        // while only if... here we simply check the error surfaces when
        // the budget is absurdly small.
        let a = PeriodicDemand::step(int(10_007), int(1), int(1));
        let b = PeriodicDemand::step(int(10_009), int(10_008), int(10_000));
        let p = DemandProfile::new(vec![a, b]);
        let result = p.sup_ratio(&AnalysisLimits::new(2));
        assert!(matches!(
            result,
            Err(AnalysisError::BreakpointBudgetExhausted { .. }) | Ok(_)
        ));
    }

    #[test]
    fn first_fit_zero_demand_fits_immediately() {
        let p = DemandProfile::default();
        assert_eq!(
            p.first_fit(Rational::ONE, &AnalysisLimits::default())
                .expect("ok"),
            FirstFit::At(Rational::ZERO)
        );
    }

    #[test]
    fn first_fit_rejects_non_positive_speed() {
        let p = DemandProfile::default();
        assert_eq!(
            p.first_fit(Rational::ZERO, &AnalysisLimits::default()),
            Err(AnalysisError::NonPositiveSpeed)
        );
    }

    #[test]
    fn first_fit_single_burst() {
        // ADB-like: constant 2 at Δ=0, no further demand for a long time
        // (period 100). At speed 1 the fit is at Δ=2.
        let c = PeriodicDemand::new(int(100), int(2), int(2), int(50), int(0), int(2));
        let p = DemandProfile::new(vec![c]);
        assert_eq!(
            p.first_fit(Rational::ONE, &AnalysisLimits::default())
                .expect("ok"),
            FirstFit::At(int(2))
        );
        // At speed 2 the fit is at Δ=1.
        assert_eq!(
            p.first_fit(Rational::TWO, &AnalysisLimits::default())
                .expect("ok"),
            FirstFit::At(int(1))
        );
    }

    #[test]
    fn first_fit_accounts_for_recurring_arrivals() {
        // constant 3 plus 3 more every 4 time units (arrival at each kT,
        // offset 0 jump). At speed 1: demand(Δ) = 3 + 3·floor(Δ/4)+3·[u≥0]
        // Let's model arrivals via ramp at offset 0 with jump 3.
        let c = PeriodicDemand::new(int(4), int(3), int(3), int(0), int(3), int(0));
        let p = DemandProfile::new(vec![c]);
        // demand(Δ) = 6 + 3·⌊Δ/4⌋. On segment [12, 16) demand is 15, so
        // unit-rate supply first catches up at Δ = 15 (supply 15 ≥ 15).
        assert_eq!(
            p.first_fit(Rational::ONE, &AnalysisLimits::default())
                .expect("ok"),
            FirstFit::At(int(15))
        );
    }

    #[test]
    fn first_fit_never_when_speed_below_rate() {
        // rate 1 (C=4 every T=4, plus initial burst): speed 1/2 < 1.
        let c = PeriodicDemand::new(int(4), int(4), int(4), int(0), int(4), int(0));
        let p = DemandProfile::new(vec![c]);
        assert_eq!(
            p.first_fit(rat(1, 2), &AnalysisLimits::default())
                .expect("ok"),
            FirstFit::Never
        );
    }

    #[test]
    fn first_fit_never_when_speed_equals_rate_with_offset_demand() {
        // demand(Δ) = 2 + Δ·1 effectively... use constant 2, rate 1:
        // gap stays 2 forever at speed 1.
        let c = PeriodicDemand::new(int(4), int(4), int(2), int(0), int(4), int(0));
        let p = DemandProfile::new(vec![c]);
        assert_eq!(
            p.first_fit(Rational::ONE, &AnalysisLimits::default())
                .expect("ok"),
            FirstFit::Never
        );
    }

    #[test]
    fn first_fit_lands_mid_segment_exactly() {
        // constant 5, next breakpoint far away; speed 2 → crossing at 5/2.
        let c = PeriodicDemand::new(int(1000), int(5), int(5), int(999), int(0), int(1));
        let p = DemandProfile::new(vec![c]);
        assert_eq!(
            p.first_fit(Rational::TWO, &AnalysisLimits::default())
                .expect("ok"),
            FirstFit::At(rat(5, 2))
        );
    }

    #[test]
    fn first_fit_waits_out_a_ramp() {
        // A ramp with slope 1 starting at 0 of length 10 (period 100,
        // per_period 10), constant 0... demand(0)=0 → fits at 0.
        // Instead: constant 1 then ramp at offset 0: demand = 1 + min(Δ,10)
        // within first period. At speed 1: 1 + Δ > Δ during ramp; after
        // ramp: 11 ≤ Δ at Δ=11 < 100 ✓.
        let c = PeriodicDemand::new(int(100), int(11), int(1), int(0), int(0), int(10));
        let p = DemandProfile::new(vec![c]);
        assert_eq!(
            p.first_fit(Rational::ONE, &AnalysisLimits::default())
                .expect("ok"),
            FirstFit::At(int(11))
        );
    }

    #[test]
    fn incremental_walk_visits_sorted_breakpoints_with_exact_values() {
        let a = PeriodicDemand::step(int(4), int(2), int(1));
        let b = PeriodicDemand::step(int(6), int(2), int(1));
        let profile = DemandProfile::new(vec![a.clone(), b.clone()]);
        let mut walk = IncrementalWalk::new(&[a, b], 64);
        assert_eq!(walk.delta, Rational::ZERO);
        assert_eq!(walk.value, profile.eval(Rational::ZERO));
        let mut visited = Vec::new();
        for _ in 0..12 {
            walk.advance();
            assert_eq!(
                walk.value,
                profile.eval(walk.delta),
                "incremental value diverged at {}",
                walk.delta
            );
            visited.push(walk.delta);
        }
        assert!(visited.windows(2).all(|w| w[0] < w[1]), "{visited:?}");
    }

    #[test]
    fn incremental_walk_tracks_ramps_and_wraps_exactly() {
        // A clipped ramp (runs past the period end), a pure step and an
        // immediate-ramp component exercise every event-kind corner.
        let clipped = PeriodicDemand::new(int(6), int(5), int(1), int(4), int(1), int(4));
        let step = PeriodicDemand::step(int(5), int(3), int(2));
        let immediate = PeriodicDemand::new(int(4), int(3), int(0), int(0), int(1), int(2));
        let comps = vec![clipped, step, immediate];
        let profile = DemandProfile::new(comps.clone());
        let mut walk = IncrementalWalk::new(&comps, 128);
        assert_eq!(walk.value, profile.eval(Rational::ZERO));
        for _ in 0..60 {
            walk.advance();
            assert_eq!(
                walk.value,
                profile.eval(walk.delta),
                "diverged at {}",
                walk.delta
            );
        }
    }

    #[test]
    fn profile_collects_from_iterator() {
        let p: DemandProfile = vec![PeriodicDemand::step(int(4), int(4), int(1))]
            .into_iter()
            .collect();
        assert_eq!(p.components().len(), 1);
        assert_eq!(p.hyperperiod(), Some(int(4)));
    }
}

#[cfg(test)]
mod walk_equivalence_properties {
    use super::*;
    use rbs_rng::Rng;

    const CASES: usize = 128;

    fn int(v: i128) -> Rational {
        Rational::integer(v)
    }

    /// Arbitrary well-formed components covering every shape corner:
    /// steps, ramps, clipped ramps, immediate ramps, zero-offset steps.
    fn arb_component(rng: &mut Rng) -> PeriodicDemand {
        let period = rng.gen_range_i128(1, 12);
        let ramp_start = rng.gen_range_i128(0, 11).min(period - 1);
        let jump = rng.gen_range_i128(0, 6);
        let ramp_len = rng.gen_range_i128(0, 12);
        let extra = rng.gen_range_i128(0, 4);
        let per_period = jump + ramp_len + extra;
        PeriodicDemand::new(
            int(period),
            int(per_period),
            int(extra),
            int(ramp_start),
            int(jump),
            int(ramp_len),
        )
    }

    fn arb_components(rng: &mut Rng, max: usize) -> Vec<PeriodicDemand> {
        let len = rng.gen_range_usize(1, max);
        (0..len).map(|_| arb_component(rng)).collect()
    }

    #[test]
    fn incremental_walk_matches_direct_evaluation() {
        let mut rng = Rng::seed_from_u64(0xd31a_0001);
        for _ in 0..CASES {
            let comps = arb_components(&mut rng, 5);
            let profile = DemandProfile::new(comps.clone());
            let mut walk = IncrementalWalk::new(&comps, 128);
            assert_eq!(walk.value, profile.eval(Rational::ZERO));
            for _ in 0..100 {
                walk.advance();
                assert_eq!(
                    walk.value,
                    profile.eval(walk.delta),
                    "diverged at {}",
                    walk.delta
                );
            }
        }
    }

    #[test]
    fn fits_agrees_with_sup_ratio() {
        let mut rng = Rng::seed_from_u64(0xd31a_0002);
        for _ in 0..CASES {
            let comps = arb_components(&mut rng, 4);
            let num = rng.gen_range_i128(1, 40);
            let profile = DemandProfile::new(comps);
            let limits = AnalysisLimits::default();
            let speed = Rational::new(num, 8);
            let fits = profile.fits(speed, &limits).expect("decision completes");
            match profile.sup_ratio(&limits).expect("sup completes") {
                SupRatio::Unbounded => assert!(!fits),
                SupRatio::Finite { value, .. } => {
                    assert_eq!(
                        fits,
                        speed >= value,
                        "fits={fits} but sup={value} at speed {speed}"
                    );
                }
            }
        }
    }

    #[test]
    fn incremental_slope_matches_finite_differences() {
        let mut rng = Rng::seed_from_u64(0xd31a_0003);
        for _ in 0..CASES {
            let comps = arb_components(&mut rng, 4);
            let profile = DemandProfile::new(comps.clone());
            let mut walk = IncrementalWalk::new(&comps, 128);
            for _ in 0..60 {
                let start = walk.delta;
                let slope = walk.slope;
                walk.advance();
                let end = walk.delta;
                // Probe the open segment (start, end): linear with the
                // tracked slope.
                let mid = (start + end) / Rational::TWO;
                let probe = mid + (end - mid) / Rational::TWO;
                let expected =
                    profile.eval(mid) + Rational::integer(i128::from(slope)) * (probe - mid);
                assert_eq!(profile.eval(probe), expected, "segment [{start}, {end})");
            }
        }
    }

    #[test]
    fn min_ratio_dispatch_matches_exact_reference() {
        let mut rng = Rng::seed_from_u64(0xd31a_0004);
        let limits = AnalysisLimits::default();
        for _ in 0..CASES {
            let comps = arb_components(&mut rng, 4);
            let profile = DemandProfile::new(comps);
            let horizon = Rational::new(rng.gen_range_i128(1, 200), rng.gen_range_i128(1, 4));
            let floor = Rational::new(rng.gen_range_i128(0, 12), 4);
            let tolerance = Rational::new(1, rng.gen_range_i128(1, 128));
            let (value, kind) = profile
                .min_ratio_within(horizon, floor, tolerance, &limits)
                .expect("dispatch completes");
            let exact = profile
                .min_ratio_within_exact(horizon, floor, tolerance, &limits)
                .expect("exact reference completes");
            assert_eq!(
                value, exact,
                "horizon={horizon} floor={floor} tolerance={tolerance}"
            );
            assert_eq!(
                kind,
                WalkKind::Integer,
                "small-grid profiles must take the fast path"
            );
        }
    }
}
